// Loopback tests for hot-key attack detection and mitigation, plus the
// front-end cache regressions fixed alongside it:
//
//   * cache_lookup must not refresh (or re-admit) a value-less tier slot —
//     pre-fix, every request for an in-flight key kept its empty slot
//     maximally fresh, evicting real entries (exactly what a miss-flood
//     exploits).
//   * a forwarded MISS must settle a dirty perfect-oracle key, or deleted
//     keys leak dirty entries and forward forever.
//   * the values side-map reconcile bound must track the tier capacity,
//     not 4× it.
//   * the detection pipeline end to end: backends sketch their served GETs,
//     gossip kHotKeyReports over the replica mesh, push them to subscribed
//     front ends; the front end flags keys hot at the backends but absent
//     from its cache and warms them; an adaptive shift of the attacked key
//     set is re-detected and re-mitigated.
//
// Runs over both reactor backends like the other net suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "cluster/partitioner.h"
#include "net/backend_server.h"
#include "net/frontend_server.h"
#include "net/sync_client.h"
#include "obs/metrics.h"

namespace scp::net {
namespace {

constexpr std::uint64_t kPartitionSeed = 77;

ReactorKind g_reactor = ReactorKind::kEpoll;

class DetectLoopback : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(parse_reactor_kind(GetParam(), g_reactor));
    if (g_reactor == ReactorKind::kUring) {
      std::string reason;
      if (!uring_available(&reason)) {
        GTEST_SKIP() << "SKIPPED: no io_uring (" << reason << ")";
      }
    }
  }
  void TearDown() override { g_reactor = ReactorKind::kEpoll; }
};

static std::string reactor_name(
    const ::testing::TestParamInfo<const char*>& info) {
  return info.param;
}

INSTANTIATE_TEST_SUITE_P(Reactors, DetectLoopback,
                         ::testing::Values("epoll", "uring"), reactor_name);

BackendConfig backend_config(std::uint32_t node_id, std::uint32_t nodes,
                             std::uint32_t replication, std::uint64_t items) {
  BackendConfig config;
  config.node_id = node_id;
  config.nodes = nodes;
  config.replication = replication;
  config.partition_seed = kPartitionSeed;
  config.items = items;
  config.reactor = g_reactor;
  return config;
}

struct Fleet {
  std::vector<std::unique_ptr<BackendServer>> backends;
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
};

Fleet start_fleet(std::uint32_t nodes, std::uint32_t replication,
                  std::uint64_t items, bool detect = false,
                  double detect_interval_s = 0.05,
                  std::uint64_t detect_min_samples = 256) {
  Fleet fleet;
  for (std::uint32_t node = 0; node < nodes; ++node) {
    BackendConfig config = backend_config(node, nodes, replication, items);
    config.detect = detect;
    config.detect_interval_s = detect_interval_s;
    config.detect_min_samples = detect_min_samples;
    auto backend = std::make_unique<BackendServer>(config);
    EXPECT_TRUE(backend->start());
    fleet.endpoints.emplace_back("127.0.0.1", backend->port());
    fleet.backends.push_back(std::move(backend));
  }
  return fleet;
}

void mesh_fleet(Fleet& fleet) {
  for (auto& backend : fleet.backends) backend->set_peers(fleet.endpoints);
  for (auto& backend : fleet.backends) {
    ASSERT_TRUE(backend->wait_peers_up(5.0));
  }
}

FrontendConfig frontend_config(const Fleet& fleet, std::uint32_t nodes,
                               std::uint32_t replication,
                               std::uint64_t items) {
  FrontendConfig config;
  config.nodes = nodes;
  config.replication = replication;
  config.partition_seed = kPartitionSeed;
  config.backends = fleet.endpoints;
  config.items = items;
  config.reactor = g_reactor;
  return config;
}

std::uint64_t counter(const obs::MetricsSnapshot& snap,
                      const std::string& name) {
  const auto it = snap.counters.find(name);
  return it != snap.counters.end() ? it->second : 0;
}

std::int64_t gauge(const obs::MetricsSnapshot& snap, const std::string& name) {
  const auto it = snap.gauges.find(name);
  return it != snap.gauges.end() ? it->second : 0;
}

void expect_consistent(const ServerStats& stats) {
  EXPECT_EQ(stats.requests, stats.hits + stats.forwarded + stats.coalesced +
                                stats.failures)
      << "requests=" << stats.requests << " hits=" << stats.hits
      << " forwarded=" << stats.forwarded << " coalesced=" << stats.coalesced
      << " failures=" << stats.failures;
}

// --- regression: lookup must not refresh a value-less slot ----------------

TEST_P(DetectLoopback, LookupDoesNotRefreshValuelessSlots) {
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 1;
  constexpr std::uint64_t kItems = 64;

  // Node 1 exists only long enough to claim a real port, then dies: its
  // keys can never be fetched, so their admitted slots stay value-less.
  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  fleet.backends[1]->stop(0.0);

  auto partitioner =
      make_partitioner("hash", kNodes, kReplication, kPartitionSeed);
  std::vector<NodeId> group(kReplication);
  const auto owner = [&](std::uint64_t key) {
    partitioner->replica_group(key, group);
    return group[0];
  };
  // Three live keys (node 0) and one dead key (node 1).
  std::vector<std::uint64_t> live;
  std::uint64_t dead = kItems;
  for (std::uint64_t key = 0; key < kItems; ++key) {
    if (owner(key) == 0 && live.size() < 3) live.push_back(key);
    if (owner(key) == 1 && dead == kItems) dead = key;
  }
  ASSERT_EQ(live.size(), 3u);
  ASSERT_LT(dead, kItems);
  const std::uint64_t a = live[0], b = live[1], d = live[2];

  FrontendConfig config =
      frontend_config(fleet, kNodes, kReplication, kItems);
  config.cache_policy = "lru";
  config.cache_capacity = 2;
  // Keep the dead key's request retrying (slot value-less) for the whole
  // sequence instead of failing fast.
  config.retry.max_retries = 20;
  config.retry.backoff_base_s = 0.3;
  config.retry.backoff_cap_s = 0.3;
  config.retry.timeout_s = 10.0;
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());
  // wait_backends_up counts every node and node 1 is dead by design: wait
  // for node 0 by retrying the first fetch until its connection is up.

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
  SyncClient impatient;
  ASSERT_TRUE(impatient.connect("127.0.0.1", frontend.port()));

  // LRU capacity 2. GET a → [a]. GET dead admits a value-less slot → [a,
  // dead]. GET b evicts a → [dead, b]. GET dead again: pre-fix the lookup's
  // access() refreshed the value-less slot ([b, dead]); fixed, it leaves
  // recency alone ([dead, b]). GET d evicts the LRU head: fixed → dead goes
  // ([b, d]); pre-fix → b goes. The final GET b is a cache hit only with
  // the fix.
  std::optional<Message> reply;
  const auto warm_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < warm_deadline) {
    reply = client.get(a, /*timeout_s=*/2.0);
    if (reply.has_value()) break;
    ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kValue);

  EXPECT_FALSE(impatient.get(dead, /*timeout_s=*/0.2).has_value());
  ASSERT_TRUE(impatient.connect("127.0.0.1", frontend.port()));

  reply = client.get(b, 2.0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kValue);

  EXPECT_FALSE(impatient.get(dead, /*timeout_s=*/0.2).has_value());

  reply = client.get(d, 2.0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kValue);

  const std::uint64_t hits_before = frontend.stats().hits;
  reply = client.get(b, 2.0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kValue);
  EXPECT_EQ(reply->payload, make_value(b, 64));
  EXPECT_EQ(frontend.stats().hits, hits_before + 1)
      << "value-less slot refresh evicted a resident entry";

  frontend.stop(0.0);
}

// --- regression: forwarded MISS settles a dirty oracle key ----------------

TEST_P(DetectLoopback, ForwardedMissCleansDirtyOracleKey) {
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 1;
  constexpr std::uint64_t kItems = 64;
  constexpr std::size_t kCapacity = 8;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendConfig config =
      frontend_config(fleet, kNodes, kReplication, kItems);
  config.cache_policy = "perfect";
  config.cache_capacity = kCapacity;
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
  const std::uint64_t key = 3;  // < kCapacity: oracle-cached
  auto reply = client.get(key, 2.0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kValue);  // oracle hit

  Message erase;
  erase.type = MsgType::kDelete;
  erase.key = key;
  reply = client.call(erase, 2.0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kWriteReply);
  EXPECT_EQ(gauge(frontend.metrics_snapshot(), "frontend.dirty_keys"), 1);

  // The delete dirtied the oracle slot; the fetch relays the backend's
  // authoritative MISS — which must also settle the dirty marker.
  reply = client.get(key, 2.0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kMiss);
  EXPECT_EQ(gauge(frontend.metrics_snapshot(), "frontend.dirty_keys"), 0)
      << "forwarded MISS left the key dirty forever";

  // Pinned semantics of the trade: once settled, the oracle synthesizes
  // again (Assumption 2 models capacity, not deletions).
  reply = client.get(key, 2.0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kValue);
  EXPECT_EQ(reply->payload, make_value(key, 64));

  const ServerStats stats = frontend.stats();
  expect_consistent(stats);
  EXPECT_EQ(stats.hits, 2u);       // first and last GET
  EXPECT_EQ(stats.forwarded, 2u);  // the DELETE and the MISS fetch
  frontend.stop(0.0);
}

// --- regression: values side-map bound tracks the tier capacity -----------

TEST_P(DetectLoopback, ValuesSideMapStaysBounded) {
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 1;
  constexpr std::uint64_t kItems = 256;
  constexpr std::size_t kCapacity = 16;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendConfig config =
      frontend_config(fleet, kNodes, kReplication, kItems);
  config.cache_policy = "lru";
  config.cache_capacity = kCapacity;
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
  for (std::uint64_t key = 0; key < 200; ++key) {
    const auto reply = client.get(key, 2.0);
    ASSERT_TRUE(reply.has_value()) << "key " << key;
    ASSERT_EQ(reply->type, MsgType::kValue);
  }

  // Reconcile bound: capacity + max(64, capacity/8). The old 4c+64 bound
  // would have let the peak reach 128 entries for this 16-entry cache.
  const std::int64_t bound = static_cast<std::int64_t>(
      kCapacity + std::max<std::size_t>(64, kCapacity / 8));
  const obs::MetricsSnapshot snap = frontend.metrics_snapshot();
  EXPECT_GT(gauge(snap, "frontend.values_entries_peak"), 0);
  EXPECT_LE(gauge(snap, "frontend.values_entries_peak"), bound);
  EXPECT_LE(gauge(snap, "frontend.values_entries"), bound);
  frontend.stop(0.0);
}

// --- detection + mitigation, adaptive adversary ---------------------------

TEST_P(DetectLoopback, DetectsMissFloodMitigatesAndTracksShift) {
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 512;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems, /*detect=*/true,
                            /*detect_interval_s=*/0.05,
                            /*detect_min_samples=*/128);
  mesh_fleet(fleet);

  FrontendConfig config =
      frontend_config(fleet, kNodes, kReplication, kItems);
  config.cache_policy = "lru";
  config.cache_capacity = 24;
  config.detect = true;
  config.detect_min_samples = 128;
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  auto partitioner =
      make_partitioner("hash", kNodes, kReplication, kPartitionSeed);
  std::vector<NodeId> group(kReplication);

  // The "attack" hammers backends directly: hot at the backends, absent
  // from the front end — the miss-flood signature the FE mitigation keys
  // on. (Real attack traffic reaches backends through FE misses; skipping
  // the FE keeps its cache provably cold until mitigation warms it.)
  std::vector<SyncClient> to_backend(kNodes);
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    ASSERT_TRUE(to_backend[node].connect("127.0.0.1",
                                         fleet.backends[node]->port()));
  }
  const auto hammer = [&](const std::vector<std::uint64_t>& keys,
                          double seconds) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    std::size_t turn = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      for (const std::uint64_t key : keys) {
        partitioner->replica_group(key, group);
        const NodeId node = group[turn % group.size()];
        const auto reply = to_backend[node].get(key, 2.0);
        ASSERT_TRUE(reply.has_value());
        ASSERT_EQ(reply->type, MsgType::kValue);
      }
      ++turn;
    }
  };

  const std::vector<std::uint64_t> phase1 = {3, 17, 42, 99, 123, 200};
  hammer(phase1, 0.6);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Backends: every node sketched its slice, gossiped it, aggregated the
  // cluster view and flagged the attack keys.
  const obs::MetricsSnapshot be = fleet.backends[0]->metrics_snapshot();
  EXPECT_GT(counter(be, "detect.observed"), 0u);
  EXPECT_GT(counter(be, "detect.reports_sent"), 0u);
  EXPECT_GT(counter(be, "detect.reports_received"), 0u);
  EXPECT_GT(counter(be, "detect.flagged_keys"), 0u);
  EXPECT_GE(gauge(be, "detect.hot_keys"), 1);

  // Front end: subscribed pushes arrived, keys were flagged and warmed.
  obs::MetricsSnapshot fe = frontend.metrics_snapshot();
  EXPECT_GT(counter(fe, "detect.reports_received"), 0u);
  const std::uint64_t flagged_phase1 = counter(fe, "detect.flagged_keys");
  EXPECT_GT(flagged_phase1, 0u);
  EXPECT_GT(counter(fe, "detect.prefetches"), 0u);

  // Mitigation converged: the attacked keys now hit the FE cache.
  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
  const auto fe_hits = [&] { return frontend.stats().hits; };
  std::uint64_t hits_before = fe_hits();
  for (const std::uint64_t key : phase1) {
    const auto reply = client.get(key, 2.0);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MsgType::kValue);
    EXPECT_EQ(reply->payload, make_value(key, 64));
  }
  EXPECT_GT(fe_hits(), hits_before)
      << "no flagged key was served from the warmed cache";

  // Adaptive adversary: shift the attacked key set. The aged sketches
  // retire the old phase; the new keys must be re-detected and re-warmed.
  const std::vector<std::uint64_t> phase2 = {301, 333, 377, 401, 444, 480};
  hammer(phase2, 0.6);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  fe = frontend.metrics_snapshot();
  EXPECT_GT(counter(fe, "detect.flagged_keys"), flagged_phase1)
      << "shifted attack set was never re-detected";
  hits_before = fe_hits();
  for (const std::uint64_t key : phase2) {
    const auto reply = client.get(key, 2.0);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MsgType::kValue);
  }
  EXPECT_GT(fe_hits(), hits_before);

  expect_consistent(frontend.stats());
  frontend.stop(0.0);
}

// --- perfect provision: flagged keys re-provision the cached set ----------

TEST_P(DetectLoopback, PerfectCacheReprovisionsForFlaggedKeys) {
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 512;
  constexpr std::uint64_t kCapacity = 8;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems, /*detect=*/true,
                            /*detect_interval_s=*/0.05,
                            /*detect_min_samples=*/128);
  mesh_fleet(fleet);

  FrontendConfig config =
      frontend_config(fleet, kNodes, kReplication, kItems);
  config.cache_policy = "perfect";
  config.cache_capacity = kCapacity;
  config.detect = true;
  config.detect_min_samples = 128;
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  // Attack keys far outside the provisioned oracle prefix [0, 8): a static
  // perfect provision forwards every one of these, forever.
  auto partitioner =
      make_partitioner("hash", kNodes, kReplication, kPartitionSeed);
  std::vector<NodeId> group(kReplication);
  std::vector<SyncClient> to_backend(kNodes);
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    ASSERT_TRUE(to_backend[node].connect("127.0.0.1",
                                         fleet.backends[node]->port()));
  }
  const std::vector<std::uint64_t> attack = {100, 217, 350, 470};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(600);
  std::size_t turn = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (const std::uint64_t key : attack) {
      partitioner->replica_group(key, group);
      const auto reply = to_backend[group[turn % group.size()]].get(key, 2.0);
      ASSERT_TRUE(reply.has_value());
      ASSERT_EQ(reply->type, MsgType::kValue);
    }
    ++turn;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const obs::MetricsSnapshot fe = frontend.metrics_snapshot();
  EXPECT_GT(counter(fe, "detect.flagged_keys"), 0u);
  EXPECT_GT(counter(fe, "detect.reprovisioned"), 0u);
  // No tier to warm: re-provision synthesizes locally, no prefetches.
  EXPECT_EQ(counter(fe, "detect.prefetches"), 0u);

  // The flagged keys now hit the re-provisioned cache instead of
  // forwarding; prefix keys displaced by them simply forward (the cached
  // set never exceeds the provisioned capacity).
  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
  const std::uint64_t hits_before = frontend.stats().hits;
  for (const std::uint64_t key : attack) {
    const auto reply = client.get(key, 2.0);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MsgType::kValue);
    EXPECT_EQ(reply->payload, make_value(key, 64));
  }
  EXPECT_GT(frontend.stats().hits, hits_before)
      << "no flagged key was served from the re-provisioned set";
  expect_consistent(frontend.stats());
  frontend.stop(0.0);
}

// --- benign traffic: zero false positives ---------------------------------

TEST_P(DetectLoopback, BenignUniformTrafficFlagsNothing) {
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 1;
  constexpr std::uint64_t kItems = 512;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems, /*detect=*/true,
                            /*detect_interval_s=*/0.05,
                            /*detect_min_samples=*/256);
  mesh_fleet(fleet);

  FrontendConfig config =
      frontend_config(fleet, kNodes, kReplication, kItems);
  config.cache_policy = "lru";
  config.cache_capacity = 24;
  config.detect = true;
  config.detect_min_samples = 256;
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(i) * 2654435761u) % kItems;
    const auto reply = client.get(key, 2.0);
    ASSERT_TRUE(reply.has_value()) << "i=" << i;
    ASSERT_EQ(reply->type, MsgType::kValue);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  for (const auto& backend : fleet.backends) {
    const obs::MetricsSnapshot be = backend->metrics_snapshot();
    EXPECT_GT(counter(be, "detect.observed"), 0u);
    EXPECT_EQ(counter(be, "detect.flagged_keys"), 0u)
        << "benign uniform traffic flagged a key on node "
        << backend->config().node_id;
    EXPECT_EQ(gauge(be, "detect.hot_keys"), 0);
  }
  const obs::MetricsSnapshot fe = frontend.metrics_snapshot();
  EXPECT_GT(counter(fe, "detect.reports_received"), 0u);
  EXPECT_EQ(counter(fe, "detect.flagged_keys"), 0u);
  EXPECT_EQ(counter(fe, "detect.prefetches"), 0u);
  expect_consistent(frontend.stats());
  frontend.stop(0.0);
}

}  // namespace
}  // namespace scp::net
