// Fault injection through both simulators: bit-transparency when no faults
// are configured, degraded-mode physics when they are, and determinism of
// faulted runs across paths and thread counts.
#include <numeric>

#include <gtest/gtest.h>

#include "cache/perfect_cache.h"
#include "cluster/cluster.h"
#include "sim/event_sim.h"
#include "sim/fault.h"
#include "sim/rate_sim.h"
#include "sim/scenario.h"

namespace scp {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

// --- rate simulator -------------------------------------------------------

TEST(FaultRateSim, HealthyViewIsBitTransparent) {
  // The acceptance bar: wiring in a fault view with nothing to inject must
  // reproduce the fault-unaware simulation bit-for-bit (same RNG draws,
  // same loads), for every selector family.
  const auto d = QueryDistribution::zipf(2000, 1.05);
  const FaultView healthy(20);
  for (const char* kind : {"least-loaded", "random", "round-robin"}) {
    Cluster baseline_cluster(make_partitioner("hash", 20, 3, 11));
    Cluster faulted_cluster(make_partitioner("hash", 20, 3, 11));
    PerfectCache cache(100, d);
    auto baseline_selector = make_selector(kind);
    auto faulted_selector = make_selector(kind);
    RateSimConfig config;
    config.query_rate = 10000.0;
    config.seed = 5;
    const RateSimResult baseline = simulate_rates(
        baseline_cluster, cache, d, *baseline_selector, config);
    config.faults = &healthy;
    const RateSimResult faulted = simulate_rates(
        faulted_cluster, cache, d, *faulted_selector, config);
    EXPECT_EQ(faulted.node_loads, baseline.node_loads) << kind;
    EXPECT_EQ(faulted.normalized_max_load, baseline.normalized_max_load)
        << kind;
    EXPECT_DOUBLE_EQ(faulted.unserved_rate, 0.0) << kind;
    // Without faults the degraded gain *is* the gain.
    EXPECT_EQ(baseline.degraded_normalized_max_load,
              baseline.normalized_max_load)
        << kind;
    EXPECT_EQ(baseline.alive_nodes, 20u) << kind;
  }
}

TEST(FaultRateSim, CrashShiftsLoadToSurvivors) {
  const auto d = QueryDistribution::uniform(2000);
  Cluster cluster(make_partitioner("hash", 10, 3, 7));
  PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  FaultView faults(10);
  faults.alive[4] = 0;
  faults.alive_count = 9;
  RateSimConfig config;
  config.query_rate = 9000.0;
  config.seed = 3;
  config.faults = &faults;
  const RateSimResult r = simulate_rates(cluster, cache, d, *selector, config);
  EXPECT_DOUBLE_EQ(r.node_loads[4], 0.0);
  EXPECT_EQ(r.alive_nodes, 9u);
  // d = 3 replicas: every key keeps at least one survivor, nothing is lost.
  EXPECT_DOUBLE_EQ(r.unserved_rate, 0.0);
  EXPECT_NEAR(sum(r.node_loads), 9000.0, 1e-6);
  // Degraded gain renormalizes against R/(n-f) > R/n.
  EXPECT_LT(r.degraded_normalized_max_load, r.normalized_max_load);
}

TEST(FaultRateSim, WholeGroupDeadGoesUnserved) {
  const auto d = QueryDistribution::uniform(100);
  Cluster cluster(make_partitioner("hash", 5, 2, 9));
  PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  FaultView faults(5);
  for (NodeId n = 0; n < 5; ++n) {
    faults.alive[n] = 0;
  }
  faults.alive_count = 0;
  RateSimConfig config;
  config.query_rate = 1000.0;
  config.faults = &faults;
  const RateSimResult r = simulate_rates(cluster, cache, d, *selector, config);
  EXPECT_NEAR(r.unserved_rate, 1000.0, 1e-9);
  EXPECT_DOUBLE_EQ(sum(r.node_loads), 0.0);
  EXPECT_EQ(r.alive_nodes, 0u);
}

TEST(FaultRateSim, SlowNodesInflateOfferedWork) {
  const auto d = QueryDistribution::uniform(500);
  Cluster cluster(make_partitioner("hash", 8, 2, 5));
  PerfectCache cache(0, d);
  auto selector = make_selector("random");  // splits evenly: load is exact
  FaultView faults(8);
  for (NodeId n = 0; n < 8; ++n) {
    faults.slow[n] = 3.0;
  }
  RateSimConfig config;
  config.query_rate = 4000.0;
  config.faults = &faults;
  const RateSimResult r = simulate_rates(cluster, cache, d, *selector, config);
  // Every delivered query costs 3x the work on a uniformly slow cluster.
  EXPECT_NEAR(sum(r.node_loads), 3.0 * 4000.0, 1e-6);
  EXPECT_DOUBLE_EQ(r.unserved_rate, 0.0);
}

TEST(FaultRateSim, NetworkDropRetriesConserveMass) {
  const auto d = QueryDistribution::uniform(500);
  Cluster cluster(make_partitioner("hash", 8, 2, 5));
  PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  FaultView faults(8);
  for (NodeId n = 0; n < 8; ++n) {
    faults.drop[n] = 0.5;
  }
  RateSimConfig config;
  config.query_rate = 4000.0;
  config.faults = &faults;
  config.retry.max_retries = 2;
  const RateSimResult r = simulate_rates(cluster, cache, d, *selector, config);
  // Delivered + undeliverable-after-retries must add back up to R.
  EXPECT_NEAR(sum(r.node_loads) + r.unserved_rate, 4000.0, 1e-6);
  // p = 0.5, 3 attempts: 1/8 of the mass survives all attempts undelivered.
  EXPECT_NEAR(r.unserved_rate, 4000.0 / 8.0, 1e-6);
  // More retries leave less unserved.
  Cluster retry_cluster(make_partitioner("hash", 8, 2, 5));
  auto retry_selector = make_selector("least-loaded");
  config.retry.max_retries = 5;
  const RateSimResult more =
      simulate_rates(retry_cluster, cache, d, *retry_selector, config);
  EXPECT_LT(more.unserved_rate, r.unserved_rate);
}

TEST(FaultRateSim, FastPathMatchesLegacyUnderFaults) {
  const auto d = QueryDistribution::zipf(2000, 1.05);
  const auto partitioner = make_partitioner("ring", 16, 3, 6);
  const PlacementIndex index(*partitioner, 2000);
  RateSimScratch scratch;
  FaultView faults(16);
  faults.alive[1] = faults.alive[9] = 0;
  faults.alive_count = 14;
  faults.slow[3] = 2.5;
  faults.drop[5] = 0.4;
  for (const char* kind : {"least-loaded", "random", "round-robin"}) {
    Cluster legacy_cluster(make_partitioner("ring", 16, 3, 6));
    Cluster fast_cluster(make_partitioner("ring", 16, 3, 6));
    PerfectCache cache(50, d);
    auto legacy_selector = make_selector(kind);
    auto fast_selector = make_selector(kind);
    RateSimConfig config;
    config.query_rate = 8000.0;
    config.seed = 13;
    config.faults = &faults;
    const RateSimResult legacy =
        simulate_rates(legacy_cluster, cache, d, *legacy_selector, config);
    const RateSimResult fast = simulate_rates(
        fast_cluster, cache, d, *fast_selector, config, &index, &scratch);
    EXPECT_EQ(fast.node_loads, legacy.node_loads) << kind;
    EXPECT_EQ(fast.unserved_rate, legacy.unserved_rate) << kind;
    EXPECT_EQ(fast.degraded_normalized_max_load,
              legacy.degraded_normalized_max_load)
        << kind;
  }
}

// --- event simulator ------------------------------------------------------

EventSimConfig event_config_with(double rate, double duration,
                                 std::uint64_t seed = 1) {
  EventSimConfig c;
  c.query_rate = rate;
  c.duration_s = duration;
  c.queue_capacity = 100;
  c.seed = seed;
  return c;
}

TEST(FaultEventSim, EmptyScheduleIsBitTransparent) {
  const auto d = QueryDistribution::zipf(1000, 1.05);
  const FaultSchedule empty(20);
  Cluster baseline_cluster(make_partitioner("hash", 20, 3, 7), 500.0);
  Cluster faulted_cluster(make_partitioner("hash", 20, 3, 7), 500.0);
  PerfectCache cache(50, d);
  auto baseline_selector = make_selector("least-loaded");
  auto faulted_selector = make_selector("least-loaded");
  EventSimConfig config = event_config_with(5000.0, 1.0, 9);
  const EventSimResult baseline = simulate_events(
      baseline_cluster, cache, d, *baseline_selector, config);
  config.faults = &empty;
  const EventSimResult faulted = simulate_events(
      faulted_cluster, cache, d, *faulted_selector, config);
  EXPECT_EQ(faulted.node_arrivals, baseline.node_arrivals);
  EXPECT_EQ(faulted.cache_hits, baseline.cache_hits);
  EXPECT_EQ(faulted.dropped, baseline.dropped);
  EXPECT_EQ(faulted.unserved, 0u);
  EXPECT_EQ(faulted.retries, 0u);
  EXPECT_EQ(faulted.min_alive_nodes, 20u);
}

TEST(FaultEventSim, TotalOutageWindowGoesUnserved) {
  // d = n: every key's group is the whole cluster, so a full-cluster crash
  // window makes queries in [0.3, 0.6) unservable and nothing else.
  const auto d = QueryDistribution::uniform(100);
  Cluster cluster(make_partitioner("hash", 4, 4, 2), 1e6);
  PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  FaultSchedule schedule(4);
  for (NodeId n = 0; n < 4; ++n) {
    schedule.add_crash(n, 0.3, 0.6);
  }
  EventSimConfig config = event_config_with(2000.0, 1.0);
  config.faults = &schedule;
  const EventSimResult r = simulate_events(cluster, cache, d, *selector,
                                           config);
  EXPECT_EQ(r.min_alive_nodes, 0u);
  EXPECT_GT(r.unserved, 0u);
  // ~30% of the horizon is dark; Poisson noise stays well inside +-10 pts.
  EXPECT_NEAR(r.unserved_ratio, 0.3, 0.1);
  EXPECT_EQ(r.total_queries, r.cache_hits + r.backend_arrivals + r.unserved);
}

TEST(FaultEventSim, CrashLosesBacklogRecoveryRejoinsEmpty) {
  // One node, saturated queue, crash mid-run: the backlog is lost (counted
  // in crash_lost) and the node rejoins empty after recovery.
  const auto d = QueryDistribution::uniform(10);
  Cluster cluster(make_partitioner("hash", 1, 1, 2), 100.0);
  PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  FaultSchedule schedule(1);
  schedule.add_crash(0, 0.5, 0.6);
  EventSimConfig config = event_config_with(1000.0, 1.0);
  config.faults = &schedule;
  const EventSimResult r = simulate_events(cluster, cache, d, *selector,
                                           config);
  // 1000 qps against 100 qps capacity: ~100 queries queued by t = 0.5.
  EXPECT_GT(r.crash_lost, 50u);
  EXPECT_EQ(r.min_alive_nodes, 0u);
  // Queries during the outage window are unserved; the rest are routed.
  EXPECT_GT(r.unserved, 0u);
  EXPECT_EQ(r.total_queries, r.cache_hits + r.backend_arrivals + r.unserved);
}

TEST(FaultEventSim, SlowNodeStretchesWaits) {
  const auto d = QueryDistribution::uniform(200);
  auto selector = make_selector("least-loaded");
  PerfectCache cache(0, d);
  const EventSimConfig healthy_config = event_config_with(3000.0, 1.0);

  Cluster healthy(make_partitioner("hash", 4, 2, 3), 1000.0);
  const EventSimResult fast = simulate_events(healthy, cache, d, *selector,
                                              healthy_config);

  FaultSchedule schedule(4);
  for (NodeId n = 0; n < 4; ++n) {
    schedule.add_slow(n, 0.0, 1.0, 8.0);
  }
  Cluster degraded(make_partitioner("hash", 4, 2, 3), 1000.0);
  auto slow_selector = make_selector("least-loaded");
  EventSimConfig slow_config = event_config_with(3000.0, 1.0);
  slow_config.faults = &schedule;
  const EventSimResult slow = simulate_events(degraded, cache, d,
                                              *slow_selector, slow_config);
  EXPECT_GT(slow.wait_us.mean(), fast.wait_us.mean());
}

TEST(FaultEventSim, LossyLinksTriggerRetries) {
  const auto d = QueryDistribution::uniform(200);
  Cluster cluster(make_partitioner("hash", 6, 3, 3), 1e6);
  PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  FaultSchedule schedule(6);
  for (NodeId n = 0; n < 6; ++n) {
    schedule.add_network_drop(n, 0.0, 1.0, 0.5);
  }
  EventSimConfig config = event_config_with(3000.0, 1.0);
  config.faults = &schedule;
  config.retry.max_retries = 3;
  const EventSimResult r = simulate_events(cluster, cache, d, *selector,
                                           config);
  EXPECT_GT(r.retries, 0u);
  // p = 0.5, 4 attempts: ~1/16 of routed queries still fail.
  EXPECT_NEAR(r.unserved_ratio, 1.0 / 16.0, 0.03);
  EXPECT_EQ(r.total_queries, r.cache_hits + r.backend_arrivals + r.unserved);
}

TEST(FaultEventSim, FaultedRunsDeterministicAcrossPaths) {
  const auto d = QueryDistribution::zipf(1000, 1.05);
  const auto partitioner = make_partitioner("hash", 12, 3, 4);
  const PlacementIndex index(*partitioner, 1000);
  EventSimScratch scratch;
  FaultSchedule schedule(12);
  schedule.add_crash(2, 0.2, 0.7);
  schedule.add_crash(5, 0.1);
  schedule.add_slow(7, 0.0, 1.0, 4.0);
  schedule.add_network_drop(9, 0.3, 0.9, 0.4);
  auto run = [&](bool fast) {
    Cluster cluster(make_partitioner("hash", 12, 3, 4), 400.0);
    PerfectCache cache(30, d);
    auto selector = make_selector("least-loaded");
    EventSimConfig config = event_config_with(4000.0, 1.0, 21);
    config.faults = &schedule;
    return fast ? simulate_events(cluster, cache, d, *selector, config,
                                  &index, &scratch)
                : simulate_events(cluster, cache, d, *selector, config);
  };
  const EventSimResult legacy = run(false);
  const EventSimResult repeat = run(false);
  const EventSimResult fast = run(true);
  for (const EventSimResult* other : {&repeat, &fast}) {
    EXPECT_EQ(other->node_arrivals, legacy.node_arrivals);
    EXPECT_EQ(other->unserved, legacy.unserved);
    EXPECT_EQ(other->retries, legacy.retries);
    EXPECT_EQ(other->crash_lost, legacy.crash_lost);
    EXPECT_EQ(other->dropped, legacy.dropped);
    EXPECT_EQ(other->min_alive_nodes, legacy.min_alive_nodes);
  }
}

// --- scenario / sweep plumbing -------------------------------------------

TEST(FaultScenario, GainSweepWithFaultsThreadCountInvariant) {
  // Faulted Monte-Carlo sweeps must stay bit-identical regardless of worker
  // threads — the determinism half of the acceptance bar.
  FaultView faults(20);
  faults.alive[3] = faults.alive[11] = 0;
  faults.alive_count = 18;
  faults.slow[0] = 2.0;
  ScenarioConfig config;
  config.params.nodes = 20;
  config.params.replication = 3;
  config.params.items = 2000;
  config.params.cache_size = 50;
  config.params.query_rate = 20000.0;
  config.faults = &faults;
  const auto attack = QueryDistribution::uniform_over(51, 2000);
  const GainSweep::Point point{&attack, 50};

  GainSweepOptions serial;
  serial.threads = 1;
  GainSweepOptions parallel;
  parallel.threads = 4;
  const auto a =
      GainSweep(config, 12, 99, serial).run(std::span(&point, 1)).front();
  const auto b =
      GainSweep(config, 12, 99, parallel).run(std::span(&point, 1)).front();
  EXPECT_EQ(a.max_gain, b.max_gain);
  EXPECT_EQ(a.summary.mean, b.summary.mean);
  EXPECT_EQ(a.summary.p99, b.summary.p99);
}

TEST(FaultScenario, GainTrialFaultsReduceEffectiveChoices) {
  // Killing all but one replica per group degrades the power-of-d-choices
  // to d' = 1: the max load cannot improve. Weak sanity, exact per-seed.
  ScenarioConfig config;
  config.params.nodes = 10;
  config.params.replication = 2;
  config.params.items = 1000;
  config.params.cache_size = 0;
  config.params.query_rate = 10000.0;
  const double healthy = gain_trial(
      config, QueryDistribution::uniform(1000), 7);

  FaultView faults(10);
  for (NodeId n = 5; n < 10; ++n) {
    faults.alive[n] = 0;
  }
  faults.alive_count = 5;
  config.faults = &faults;
  const double degraded = gain_trial(
      config, QueryDistribution::uniform(1000), 7);
  EXPECT_GE(degraded, healthy);
}

}  // namespace
}  // namespace scp
