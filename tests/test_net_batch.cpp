// Single-flight coalescing + batched forwarding, end to end on real TCP:
// N concurrent misses for one cold key must reach the backend as exactly
// one fetch, a kBatchReply mixing kValue/kMiss/kRedirect items must settle
// each parked forward with its own outcome, a backend must answer a whole
// kBatchGet in one reply frame, and --batch-max 1 must stay reply-for-reply
// identical to the batched path. Backend-silence windows are made
// deterministic with a scripted FakeBackend that replies only when told.
// Labeled slow — each case spins up servers on real sockets.
#include <poll.h>
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "cluster/partitioner.h"
#include "net/backend_server.h"
#include "net/frontend_server.h"
#include "net/socket.h"
#include "net/sync_client.h"
#include "net/wire.h"

namespace scp::net {
namespace {

constexpr std::uint64_t kPartitionSeed = 77;

ReactorKind g_reactor = ReactorKind::kEpoll;

class ReactorSuite : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(parse_reactor_kind(GetParam(), g_reactor));
    if (g_reactor == ReactorKind::kUring) {
      std::string reason;
      if (!uring_available(&reason)) {
        GTEST_SKIP() << "SKIPPED: no io_uring (" << reason << ")";
      }
    }
  }
  void TearDown() override { g_reactor = ReactorKind::kEpoll; }
};

static std::string reactor_name(
    const ::testing::TestParamInfo<const char*>& info) {
  return info.param;
}

class BatchServing : public ReactorSuite {};
INSTANTIATE_TEST_SUITE_P(Reactors, BatchServing,
                         ::testing::Values("epoll", "uring"), reactor_name);

/// Deadline-polls `predicate` every millisecond. False on timeout.
bool poll_until(double timeout_s, const std::function<bool()>& predicate) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

/// A scripted stand-in for scp_backend: accepts the front end's connection,
/// decodes every frame, records GET keys in wire-arrival order (kBatchGet
/// flattened), and sends replies only when the test says so. The window in
/// which a forward stays in flight — where waiters park and batches build —
/// is therefore as wide as the test needs, with no race against a real
/// backend's reply.
class FakeBackend {
 public:
  ~FakeBackend() { stop(); }

  bool start() {
    listener_ = listen_tcp("127.0.0.1", 0, 16, &port_);
    if (!listener_.valid()) return false;
    thread_ = std::thread([this] { run(); });
    return true;
  }

  void stop() {
    stopping_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
    listener_.reset();
  }

  std::uint16_t port() const noexcept { return port_; }

  /// GET keys received so far, in wire order.
  std::vector<std::uint64_t> keys() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return keys_;
  }

  /// GET-carrying frames received so far (a kBatchGet counts once).
  std::uint64_t get_frames() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return get_frames_;
  }

  /// Encodes and sends `message` on the front end's connection.
  bool reply(const Message& message) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (conn_fd_ < 0) return false;
    const std::vector<std::uint8_t> frame = encode(message);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(conn_fd_, frame.data() + sent,
                               frame.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

 private:
  void run() {
    while (!stopping_.load(std::memory_order_relaxed)) {
      pollfd pfd{listener_.fd(), POLLIN, 0};
      if (::poll(&pfd, 1, 20) <= 0) continue;
      Socket conn(::accept(listener_.fd(), nullptr, nullptr));
      if (!conn.valid()) continue;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        conn_fd_ = conn.fd();
      }
      serve(conn);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        conn_fd_ = -1;
      }
    }
  }

  void serve(const Socket& conn) {
    FrameReader reader;
    std::uint8_t buffer[16384];
    while (!stopping_.load(std::memory_order_relaxed)) {
      pollfd pfd{conn.fd(), POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 20);
      if (ready < 0) return;
      if (ready == 0) continue;
      const ssize_t n = ::recv(conn.fd(), buffer, sizeof(buffer), 0);
      if (n <= 0) return;
      reader.append({buffer, static_cast<std::size_t>(n)});
      while (auto payload = reader.next_payload()) {
        auto message = decode_payload(*payload);
        if (!message.has_value()) return;
        std::lock_guard<std::mutex> lock(mutex_);
        if (message->type == MsgType::kGet) {
          keys_.push_back(message->key);
          ++get_frames_;
        } else if (message->type == MsgType::kBatchGet) {
          for (const std::uint64_t key : message->batch_keys) {
            keys_.push_back(key);
          }
          ++get_frames_;
        }
      }
      if (reader.corrupted()) return;
    }
  }

  Socket listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex mutex_;
  int conn_fd_ = -1;
  std::vector<std::uint64_t> keys_;
  std::uint64_t get_frames_ = 0;
};

/// Frontend over `fakes` with no cache (every GET forwards) and a long
/// per-request deadline, so an unanswered forward neither retries nor times
/// out while a test holds the backend silent.
FrontendConfig fake_frontend_config(
    const std::vector<std::unique_ptr<FakeBackend>>& fakes,
    std::uint32_t replication) {
  FrontendConfig config;
  config.nodes = static_cast<std::uint32_t>(fakes.size());
  config.replication = replication;
  config.partition_seed = kPartitionSeed;
  for (const auto& fake : fakes) {
    config.backends.emplace_back("127.0.0.1", fake->port());
  }
  config.cache_policy = "none";
  config.retry.max_retries = 2;
  config.retry.timeout_s = 8.0;
  config.reactor = g_reactor;
  return config;
}

// The tentpole's headline property: N clients missing on the same cold key
// concurrently cost the backend tier exactly ONE fetch — the first miss
// forwards, the rest park on it, and the single kValue fans out to all of
// them. The fake backend stays silent until every client's GET has been
// counted, so all N requests are provably concurrent.
TEST_P(BatchServing, ConcurrentMissesForOneColdKeyFetchOnce) {
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint64_t kKey = 17;
  constexpr std::size_t kClients = 4;

  std::vector<std::unique_ptr<FakeBackend>> fakes;
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    fakes.push_back(std::make_unique<FakeBackend>());
    ASSERT_TRUE(fakes.back()->start());
  }
  FrontendServer frontend(fake_frontend_config(fakes, 2));
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  std::vector<std::optional<Message>> replies(kClients);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&frontend, &replies, i] {
      SyncClient client;
      ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
      replies[i] = client.get(kKey, 10.0);
    });
  }

  // Every client's GET has reached the front end (coalesced ones never show
  // up at the backend, so the FE request counter is the arrival signal)...
  ASSERT_TRUE(poll_until(
      5.0, [&frontend] { return frontend.stats().requests >= kClients; }));
  // ...and the single forward is on the wire before the reply is released.
  ASSERT_TRUE(poll_until(5.0, [&fakes] {
    return !fakes[0]->keys().empty() || !fakes[1]->keys().empty();
  }));
  const std::string value = make_value(kKey, 64);
  Message reply;
  reply.type = MsgType::kValue;
  reply.key = kKey;
  reply.payload = value;
  const std::size_t target = fakes[0]->keys().empty() ? 1 : 0;
  ASSERT_TRUE(fakes[target]->reply(reply));
  for (std::thread& client : clients) client.join();

  for (std::size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(replies[i].has_value()) << "client " << i;
    EXPECT_EQ(replies[i]->type, MsgType::kValue) << "client " << i;
    EXPECT_EQ(replies[i]->payload, value) << "client " << i;
  }
  // Exactly one fetch crossed the wire, total, across the whole tier.
  EXPECT_EQ(fakes[0]->keys().size() + fakes[1]->keys().size(), 1u);
  const ServerStats stats = frontend.stats();
  EXPECT_EQ(stats.requests, kClients);
  EXPECT_EQ(stats.forwarded, 1u);
  EXPECT_EQ(stats.coalesced, kClients - 1);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.requests,
            stats.hits + stats.forwarded + stats.coalesced + stats.failures);
  frontend.stop(1.0);
}

// One kBatchReply may mix outcomes: each item settles its own pending
// forward — kValue answers its client, kMiss answers with a miss, and
// kRedirect re-forwards to the named node without the client ever seeing
// it. The fake owner holds all three forwards, then answers them with a
// single mixed batch frame in wire order (the FIFO contract).
TEST_P(BatchServing, MixedBatchReplySettlesEachForward) {
  constexpr std::uint32_t kNodes = 2;
  constexpr std::size_t kKeys = 3;

  std::vector<std::unique_ptr<FakeBackend>> fakes;
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    fakes.push_back(std::make_unique<FakeBackend>());
    ASSERT_TRUE(fakes.back()->start());
  }
  // d = 1: every key has exactly one candidate, so all traffic for node-0
  // keys lands on fake 0 deterministically.
  FrontendServer frontend(fake_frontend_config(fakes, 1));
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  const auto partitioner = make_partitioner("hash", kNodes, 1, kPartitionSeed);
  std::vector<std::uint64_t> keys;
  std::vector<NodeId> group(1);
  for (std::uint64_t key = 0; keys.size() < kKeys; ++key) {
    partitioner->replica_group(key, group);
    if (group[0] == 0) keys.push_back(key);
  }

  std::vector<std::optional<Message>> replies(kKeys);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < kKeys; ++i) {
    clients.emplace_back([&frontend, &replies, &keys, i] {
      SyncClient client;
      ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
      replies[i] = client.get(keys[i], 10.0);
    });
  }

  ASSERT_TRUE(
      poll_until(5.0, [&fakes] { return fakes[0]->keys().size() >= kKeys; }));
  // Answer in wire order — the first-arrived key gets the value, the second
  // a miss, the third a redirect to node 1.
  const std::vector<std::uint64_t> order = fakes[0]->keys();
  ASSERT_EQ(order.size(), kKeys);
  const std::string value = make_value(order[0], 64);
  Message batch;
  batch.type = MsgType::kBatchReply;
  batch.batch.push_back({MsgType::kValue, order[0], 0, value});
  batch.batch.push_back({MsgType::kMiss, order[1], 0, ""});
  batch.batch.push_back({MsgType::kRedirect, order[2], 1, ""});
  ASSERT_TRUE(fakes[0]->reply(batch));

  // The redirected key re-forwards to fake 1; answer it there.
  ASSERT_TRUE(poll_until(5.0, [&fakes, &order] {
    const auto keys1 = fakes[1]->keys();
    return keys1.size() == 1 && keys1[0] == order[2];
  }));
  const std::string redirected_value = make_value(order[2], 64);
  Message redirected;
  redirected.type = MsgType::kValue;
  redirected.key = order[2];
  redirected.payload = redirected_value;
  ASSERT_TRUE(fakes[1]->reply(redirected));
  for (std::thread& client : clients) client.join();

  for (std::size_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(replies[i].has_value()) << "client " << i;
    if (keys[i] == order[0]) {
      EXPECT_EQ(replies[i]->type, MsgType::kValue);
      EXPECT_EQ(replies[i]->payload, value);
    } else if (keys[i] == order[1]) {
      EXPECT_EQ(replies[i]->type, MsgType::kMiss);
    } else {
      EXPECT_EQ(replies[i]->type, MsgType::kValue);
      EXPECT_EQ(replies[i]->payload, redirected_value);
    }
  }
  const ServerStats stats = frontend.stats();
  EXPECT_EQ(stats.requests, kKeys);
  EXPECT_EQ(stats.forwarded, kKeys);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.redirects, 1u);
  EXPECT_EQ(stats.failures, 0u);
  frontend.stop(1.0);
}

// A real backend answers a whole kBatchGet in ONE kBatchReply frame, items
// in request order with per-key outcomes: owned+stored -> kValue,
// owned+absent -> kMiss, non-owned -> kRedirect naming a replica. The batch
// counts one request per key, keeping backend_requests == FE attempts.
TEST_P(BatchServing, BackendAnswersWholeBatchInOneReply) {
  constexpr std::uint32_t kNodes = 4;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 64;
  BackendConfig config;
  config.node_id = 0;
  config.nodes = kNodes;
  config.replication = kReplication;
  config.partition_seed = kPartitionSeed;
  config.items = kItems;
  config.reactor = g_reactor;
  BackendServer server(config);
  ASSERT_TRUE(server.start());

  const auto partitioner =
      make_partitioner("hash", kNodes, kReplication, kPartitionSeed);
  std::vector<NodeId> group(kReplication);
  const auto owned_by_0 = [&](std::uint64_t key) {
    partitioner->replica_group(key, group);
    return std::find(group.begin(), group.end(), NodeId{0}) != group.end();
  };
  std::uint64_t stored = 0;       // owned, preloaded -> kValue
  std::uint64_t foreign = 0;      // not owned -> kRedirect
  std::uint64_t absent = kItems;  // owned, beyond the preload -> kMiss
  while (!owned_by_0(stored)) ++stored;
  while (owned_by_0(foreign)) ++foreign;
  while (!owned_by_0(absent)) ++absent;

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  // Duplicate key included: each occurrence gets its own item.
  const std::vector<std::uint64_t> keys = {stored, foreign, absent, stored};
  const auto replies = client.batch_get(keys);
  ASSERT_TRUE(replies.has_value());
  ASSERT_EQ(replies->size(), keys.size());
  EXPECT_EQ((*replies)[0].type, MsgType::kValue);
  EXPECT_EQ((*replies)[0].payload, make_value(stored, config.value_bytes));
  EXPECT_EQ((*replies)[1].type, MsgType::kRedirect);
  partitioner->replica_group(foreign, group);
  EXPECT_NE(std::find(group.begin(), group.end(),
                      NodeId{(*replies)[1].node}),
            group.end())
      << "redirect must name one of the key's replicas";
  EXPECT_EQ((*replies)[2].type, MsgType::kMiss);
  EXPECT_EQ((*replies)[3].type, MsgType::kValue);
  EXPECT_EQ((*replies)[3].payload, make_value(stored, config.value_bytes));
  EXPECT_EQ(server.stats().requests, keys.size());
  server.stop(1.0);
}

// --batch-max 1 must be reply-for-reply identical to the batched default:
// same per-key outcomes, same bytes — batching only changes how forwards
// are framed, never what they return. Distinct keys keep coalescing out of
// the comparison; the client's kBatchGet lands all keys in one FE wakeup,
// which is what makes the batched side actually emit kBatchGet frames.
TEST_P(BatchServing, BatchMaxOneIsReplyForReplyIdentical) {
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 64;
  constexpr std::size_t kKeys = 16;

  std::vector<std::unique_ptr<BackendServer>> backends;
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    BackendConfig config;
    config.node_id = node;
    config.nodes = kNodes;
    config.replication = kReplication;
    config.partition_seed = kPartitionSeed;
    config.items = kItems;
    config.reactor = g_reactor;
    backends.push_back(std::make_unique<BackendServer>(config));
    ASSERT_TRUE(backends.back()->start());
    endpoints.emplace_back("127.0.0.1", backends.back()->port());
  }

  const auto make_frontend = [&](std::uint32_t batch_max) {
    FrontendConfig config;
    config.nodes = kNodes;
    config.replication = kReplication;
    config.partition_seed = kPartitionSeed;
    config.backends = endpoints;
    config.cache_policy = "none";  // every GET forwards
    config.batch_max = batch_max;
    config.reactor = g_reactor;
    return std::make_unique<FrontendServer>(config);
  };
  auto batched = make_frontend(64);
  auto unbatched = make_frontend(1);
  ASSERT_TRUE(batched->start());
  ASSERT_TRUE(unbatched->start());
  ASSERT_TRUE(batched->wait_backends_up(5.0));
  ASSERT_TRUE(unbatched->wait_backends_up(5.0));

  std::vector<std::uint64_t> keys;
  for (std::size_t i = 0; i < kKeys; ++i) keys.push_back(i * 3 + 1);
  SyncClient batched_client;
  SyncClient unbatched_client;
  ASSERT_TRUE(batched_client.connect("127.0.0.1", batched->port()));
  ASSERT_TRUE(unbatched_client.connect("127.0.0.1", unbatched->port()));
  const auto batched_replies = batched_client.batch_get(keys, 5.0);
  const auto unbatched_replies = unbatched_client.batch_get(keys, 5.0);
  ASSERT_TRUE(batched_replies.has_value());
  ASSERT_TRUE(unbatched_replies.has_value());
  ASSERT_EQ(batched_replies->size(), kKeys);
  ASSERT_EQ(unbatched_replies->size(), kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) {
    EXPECT_EQ((*batched_replies)[i], (*unbatched_replies)[i]) << "key index "
                                                              << i;
    EXPECT_EQ((*batched_replies)[i].type, MsgType::kValue);
    EXPECT_EQ((*batched_replies)[i].payload, make_value(keys[i], 64));
  }

  // The batched side really exercised the batch path; --batch-max 1 stayed
  // byte-identical to the classic one-kGet-per-forward wire traffic.
  const auto [batch_frames, batch_keys] = batched->batch_totals();
  EXPECT_GT(batch_frames, 0u);
  EXPECT_GT(batch_keys, batch_frames);  // at least one frame carried > 1 key
  const auto [unbatched_frames, unbatched_keys] = unbatched->batch_totals();
  EXPECT_EQ(unbatched_frames, 0u);
  EXPECT_EQ(unbatched_keys, 0u);
  for (const FrontendServer* frontend : {batched.get(), unbatched.get()}) {
    const ServerStats stats = frontend->stats();
    EXPECT_EQ(stats.requests, kKeys);
    EXPECT_EQ(stats.failures, 0u);
    EXPECT_EQ(stats.requests,
              stats.hits + stats.forwarded + stats.coalesced + stats.failures);
  }
  batched->stop(1.0);
  unbatched->stop(1.0);
  for (auto& backend : backends) backend->stop(1.0);
}

}  // namespace
}  // namespace scp::net
