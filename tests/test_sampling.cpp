#include "common/sampling.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace scp {
namespace {

TEST(AliasSampler, NormalizesWeights) {
  const std::vector<double> weights = {2.0, 1.0, 1.0};
  const AliasSampler sampler{std::span<const double>(weights)};
  EXPECT_EQ(sampler.size(), 3u);
  EXPECT_NEAR(sampler.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(sampler.probability(1), 0.25, 1e-12);
  EXPECT_NEAR(sampler.probability(2), 0.25, 1e-12);
}

TEST(AliasSampler, EmpiricalFrequenciesMatch) {
  const std::vector<double> weights = {5.0, 3.0, 1.0, 1.0};
  const AliasSampler sampler{std::span<const double>(weights)};
  Rng rng(1);
  constexpr int kDraws = 200000;
  std::vector<std::uint64_t> counts(4, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[sampler.sample(rng)];
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kDraws,
                sampler.probability(i), 0.01)
        << "category " << i;
  }
}

TEST(AliasSampler, HandlesZeroWeightCategories) {
  const std::vector<double> weights = {1.0, 0.0, 1.0, 0.0};
  const AliasSampler sampler{std::span<const double>(weights)};
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t s = sampler.sample(rng);
    EXPECT_TRUE(s == 0 || s == 2) << s;
  }
}

TEST(AliasSampler, SingleCategory) {
  const std::vector<double> weights = {3.0};
  const AliasSampler sampler{std::span<const double>(weights)};
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.sample(rng), 0u);
  }
}

TEST(AliasSampler, UniformWeightsAreUniform) {
  const std::vector<double> weights(16, 1.0);
  const AliasSampler sampler{std::span<const double>(weights)};
  Rng rng(4);
  constexpr int kDraws = 160000;
  std::vector<std::uint64_t> counts(16, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[sampler.sample(rng)];
  }
  const std::vector<double> expected(16, kDraws / 16.0);
  EXPECT_LT(chi_squared_statistic(counts, expected), 37.7);  // p=0.001, 15 dof
}

TEST(ZipfSampler, PmfSumsToOne) {
  const ZipfSampler zipf(1000, 1.01);
  double total = 0.0;
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    total += zipf.pmf(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, PmfIsMonotoneDecreasing) {
  const ZipfSampler zipf(100, 0.8);
  for (std::uint64_t k = 2; k <= 100; ++k) {
    EXPECT_LT(zipf.pmf(k), zipf.pmf(k - 1));
  }
}

TEST(ZipfSampler, SamplesStayInRange) {
  const ZipfSampler zipf(50, 1.2);
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = zipf.sample(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 50u);
  }
}

TEST(ZipfSampler, EmpiricalMatchesPmfHead) {
  const ZipfSampler zipf(10000, 1.01);
  Rng rng(6);
  constexpr int kDraws = 300000;
  std::vector<std::uint64_t> counts(11, 0);  // track ranks 1..10
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t k = zipf.sample(rng);
    if (k <= 10) {
      ++counts[k];
    }
  }
  for (std::uint64_t k = 1; k <= 10; ++k) {
    const double expected = zipf.pmf(k);
    const double observed = static_cast<double>(counts[k]) / kDraws;
    EXPECT_NEAR(observed, expected, 0.15 * expected + 0.001) << "rank " << k;
  }
}

TEST(ZipfSampler, ThetaNearOneIsHandled) {
  // θ = 1 exactly is a removable singularity in the inversion formulas.
  const ZipfSampler zipf(1000, 1.0);
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t k = zipf.sample(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 1000u);
  }
}

TEST(ZipfSampler, HigherThetaConcentratesOnHead) {
  Rng rng_a(8);
  Rng rng_b(8);
  const ZipfSampler mild(1000, 0.6);
  const ZipfSampler steep(1000, 1.4);
  int mild_head = 0;
  int steep_head = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    mild_head += (mild.sample(rng_a) <= 10) ? 1 : 0;
    steep_head += (steep.sample(rng_b) <= 10) ? 1 : 0;
  }
  EXPECT_GT(steep_head, mild_head * 2);
}

TEST(ZipfSampler, SingleElementDomain) {
  const ZipfSampler zipf(1, 1.01);
  Rng rng(9);
  EXPECT_EQ(zipf.sample(rng), 1u);
  EXPECT_NEAR(zipf.pmf(1), 1.0, 1e-12);
}

}  // namespace
}  // namespace scp
