#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/table.h"

namespace scp {
namespace {

// --- TextTable ---------------------------------------------------------------

TEST(TextTable, RendersHeadersAndRows) {
  TextTable table({"x", "gain"}, 2);
  table.add_row({std::int64_t{101}, 9.90});
  table.add_row({std::int64_t{1000}, 0.95});
  const std::string out = table.render();
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("gain"), std::string::npos);
  EXPECT_NE(out.find("101"), std::string::npos);
  EXPECT_NE(out.find("9.90"), std::string::npos);
  EXPECT_NE(out.find("0.95"), std::string::npos);
}

TEST(TextTable, RespectsPrecision) {
  TextTable table({"v"}, 1);
  table.add_row({3.14159});
  EXPECT_NE(table.render().find("3.1"), std::string::npos);
  EXPECT_EQ(table.render().find("3.14"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable table({"name", "note"});
  table.add_row({std::string("a,b"), std::string("say \"hi\"")});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, CsvHasHeaderAndRows) {
  TextTable table({"a", "b"});
  table.add_row({std::int64_t{1}, std::int64_t{2}});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, RowCount) {
  TextTable table({"a"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({std::int64_t{1}});
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TextTable, WriteCsvRoundTrips) {
  TextTable table({"k", "v"});
  table.add_row({std::string("key"), 1.5});
  const std::string path = ::testing::TempDir() + "/scp_table_test.csv";
  ASSERT_TRUE(table.write_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[256] = {};
  const std::size_t read = std::fread(buffer, 1, sizeof buffer - 1, f);
  std::fclose(f);
  EXPECT_GT(read, 0u);
  EXPECT_NE(std::string(buffer).find("key"), std::string::npos);
}

// --- FlagSet -----------------------------------------------------------------

std::vector<char*> make_argv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (auto& s : storage) {
    argv.push_back(s.data());
  }
  return argv;
}

TEST(FlagSet, ParsesEqualsSyntax) {
  std::uint64_t nodes = 10;
  double rate = 1.0;
  FlagSet flags("test");
  flags.add_uint64("nodes", &nodes, "n");
  flags.add_double("rate", &rate, "r");
  std::vector<std::string> args = {"prog", "--nodes=500", "--rate=2.5"};
  auto argv = make_argv(args);
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(nodes, 500u);
  EXPECT_DOUBLE_EQ(rate, 2.5);
}

TEST(FlagSet, ParsesSpaceSyntax) {
  std::int64_t v = 0;
  FlagSet flags("test");
  flags.add_int64("value", &v, "v");
  std::vector<std::string> args = {"prog", "--value", "-42"};
  auto argv = make_argv(args);
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(v, -42);
}

TEST(FlagSet, BareBooltogglesOn) {
  bool verbose = false;
  FlagSet flags("test");
  flags.add_bool("verbose", &verbose, "v");
  std::vector<std::string> args = {"prog", "--verbose"};
  auto argv = make_argv(args);
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(verbose);
}

TEST(FlagSet, BoolAcceptsExplicitValues) {
  bool flag = true;
  FlagSet flags("test");
  flags.add_bool("flag", &flag, "f");
  std::vector<std::string> args = {"prog", "--flag=false"};
  auto argv = make_argv(args);
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(flag);
}

TEST(FlagSet, RejectsUnknownFlag) {
  FlagSet flags("test");
  std::vector<std::string> args = {"prog", "--nope=1"};
  auto argv = make_argv(args);
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSet, RejectsBadValue) {
  std::uint64_t v = 0;
  FlagSet flags("test");
  flags.add_uint64("v", &v, "v");
  std::vector<std::string> args = {"prog", "--v=abc"};
  auto argv = make_argv(args);
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSet, RejectsNegativeForUnsigned) {
  std::uint64_t v = 0;
  FlagSet flags("test");
  flags.add_uint64("v", &v, "v");
  std::vector<std::string> args = {"prog", "--v=-5"};
  auto argv = make_argv(args);
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSet, HelpReturnsFalse) {
  FlagSet flags("test");
  std::vector<std::string> args = {"prog", "--help"};
  auto argv = make_argv(args);
  EXPECT_FALSE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(FlagSet, StringFlag) {
  std::string s = "default";
  FlagSet flags("test");
  flags.add_string("name", &s, "n");
  std::vector<std::string> args = {"prog", "--name=hash"};
  auto argv = make_argv(args);
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(s, "hash");
}

TEST(FlagSet, UsageListsFlagsWithDefaults) {
  std::uint64_t nodes = 1000;
  FlagSet flags("my description");
  flags.add_uint64("nodes", &nodes, "number of nodes");
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("my description"), std::string::npos);
  EXPECT_NE(usage.find("--nodes"), std::string::npos);
  EXPECT_NE(usage.find("1000"), std::string::npos);
  EXPECT_NE(usage.find("number of nodes"), std::string::npos);
}

TEST(FlagSet, EmptyArgvSucceeds) {
  FlagSet flags("test");
  std::vector<std::string> args = {"prog"};
  auto argv = make_argv(args);
  EXPECT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
}

}  // namespace
}  // namespace scp
