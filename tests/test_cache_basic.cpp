// LRU and LFU policy behaviour, plus the FrontEndCache contract that all
// policies share.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "cache/lfu_cache.h"
#include "cache/lru_cache.h"

namespace scp {
namespace {

// --- shared contract, parameterized over every real policy ------------------

class CacheContractTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<FrontEndCache> make(std::size_t capacity) {
    return make_cache(GetParam(), capacity);
  }
};

TEST_P(CacheContractTest, StartsEmpty) {
  const auto cache = make(4);
  EXPECT_EQ(cache->size(), 0u);
  EXPECT_EQ(cache->capacity(), 4u);
  EXPECT_FALSE(cache->contains(1));
}

TEST_P(CacheContractTest, FirstAccessMissesThenHits) {
  const auto cache = make(4);
  EXPECT_FALSE(cache->access(1));
  EXPECT_TRUE(cache->contains(1));
  EXPECT_TRUE(cache->access(1));
}

TEST_P(CacheContractTest, NeverExceedsCapacity) {
  const auto cache = make(8);
  for (KeyId k = 0; k < 1000; ++k) {
    cache->access(k % 37);
    ASSERT_LE(cache->size(), 8u);
  }
}

TEST_P(CacheContractTest, ZeroCapacityNeverCaches) {
  const auto cache = make(0);
  for (KeyId k = 0; k < 20; ++k) {
    EXPECT_FALSE(cache->access(k));
    EXPECT_FALSE(cache->access(k));  // second access still misses
  }
  EXPECT_EQ(cache->size(), 0u);
}

TEST_P(CacheContractTest, ClearEmptiesTheCache) {
  const auto cache = make(4);
  cache->access(1);
  cache->access(2);
  cache->clear();
  EXPECT_EQ(cache->size(), 0u);
  EXPECT_FALSE(cache->contains(1));
}

TEST_P(CacheContractTest, CapacityOneKeepsLastAdmittableKey) {
  const auto cache = make(1);
  cache->access(5);
  EXPECT_LE(cache->size(), 1u);
  EXPECT_TRUE(cache->access(5));
}

TEST_P(CacheContractTest, NameIsNonEmpty) {
  EXPECT_FALSE(make(2)->name().empty());
}

INSTANTIATE_TEST_SUITE_P(Policies, CacheContractTest,
                         ::testing::Values("lru", "lfu", "slru", "tinylfu"));

// --- LRU specifics -----------------------------------------------------------

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(3);
  cache.access(1);
  cache.access(2);
  cache.access(3);
  cache.access(1);   // 1 is now MRU; LRU order: 2, 3, 1
  cache.access(4);   // evicts 2
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LruCache, HitRefreshesRecency) {
  LruCache cache(2);
  cache.access(1);
  cache.access(2);
  cache.access(1);  // refresh 1
  cache.access(3);  // evicts 2, not 1
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruCache, TouchDoesNotAdmit) {
  LruCache cache(2);
  EXPECT_FALSE(cache.touch(9));
  EXPECT_FALSE(cache.contains(9));
}

TEST(LruCache, InsertReturnsEvictedKey) {
  LruCache cache(2);
  EXPECT_EQ(cache.insert(1), std::nullopt);
  EXPECT_EQ(cache.insert(2), std::nullopt);
  const auto evicted = cache.insert(3);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 1u);
}

TEST(LruCache, ScanEvictsEverything) {
  // Classic LRU weakness: a one-shot scan flushes the working set.
  LruCache cache(4);
  for (KeyId k = 0; k < 4; ++k) {
    cache.access(k);
  }
  for (KeyId k = 100; k < 104; ++k) {
    cache.access(k);
  }
  for (KeyId k = 0; k < 4; ++k) {
    EXPECT_FALSE(cache.contains(k));
  }
}

// --- LFU specifics -----------------------------------------------------------

TEST(LfuCache, EvictsLeastFrequent) {
  LfuCache cache(3);
  cache.access(1);
  cache.access(1);
  cache.access(1);
  cache.access(2);
  cache.access(2);
  cache.access(3);
  cache.access(4);  // evicts 3 (frequency 1, least-recently used among f=1)
  EXPECT_FALSE(cache.contains(3));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LfuCache, FrequencyCountsAccesses) {
  LfuCache cache(4);
  cache.access(7);
  cache.access(7);
  cache.access(7);
  EXPECT_EQ(cache.frequency(7), 3u);
  EXPECT_EQ(cache.frequency(8), 0u);
}

TEST(LfuCache, TieBrokenByRecencyWithinFrequency) {
  LfuCache cache(2);
  cache.access(1);
  cache.access(2);  // both frequency 1; 1 is older
  cache.access(3);  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(LfuCache, HeavyHitterSurvivesScan) {
  LfuCache cache(4);
  for (int i = 0; i < 10; ++i) {
    cache.access(42);
  }
  for (KeyId k = 100; k < 150; ++k) {
    cache.access(k);
  }
  EXPECT_TRUE(cache.contains(42));
}

TEST(LfuCache, NewKeysChurnAtFrequencyOne) {
  LfuCache cache(2);
  cache.access(1);
  cache.access(1);  // f(1) = 2
  for (KeyId k = 10; k < 20; ++k) {
    cache.access(k);  // each new key evicts the previous f=1 key
  }
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(MakeCache, RejectsUnknownKind) {
  EXPECT_DEATH(make_cache("arc", 10), "unknown cache kind");
}

}  // namespace
}  // namespace scp
