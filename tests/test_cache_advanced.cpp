// SLRU, W-TinyLFU, and the perfect popularity oracle.
#include <vector>

#include <gtest/gtest.h>

#include "cache/perfect_cache.h"
#include "cache/slru_cache.h"
#include "cache/tinylfu_cache.h"
#include "workload/distribution.h"
#include "workload/stream.h"

namespace scp {
namespace {

// --- SLRU --------------------------------------------------------------------

TEST(SlruCache, NewKeysEnterProbation) {
  SlruCache cache(10, 0.8);
  cache.access(1);
  EXPECT_EQ(cache.probation_size(), 1u);
  EXPECT_EQ(cache.protected_size(), 0u);
}

TEST(SlruCache, HitPromotesToProtected) {
  SlruCache cache(10, 0.8);
  cache.access(1);
  cache.access(1);
  EXPECT_EQ(cache.probation_size(), 0u);
  EXPECT_EQ(cache.protected_size(), 1u);
}

TEST(SlruCache, ProtectedOverflowDemotesToProbation) {
  SlruCache cache(5, 0.4);  // protected capacity = 2
  // Promote keys 1, 2, 3 in order; protected holds 2, overflow demotes.
  for (KeyId k = 1; k <= 3; ++k) {
    cache.access(k);
    cache.access(k);
  }
  EXPECT_EQ(cache.protected_size(), 2u);
  EXPECT_EQ(cache.probation_size(), 1u);
  EXPECT_TRUE(cache.contains(1));  // demoted but still cached
}

TEST(SlruCache, EvictionPrefersProbation) {
  SlruCache cache(3, 0.67);  // protected = 2, probation = 1
  cache.access(1);
  cache.access(1);  // 1 → protected
  cache.access(2);
  cache.access(2);  // 2 → protected
  cache.access(3);  // probation: 3
  cache.access(4);  // evicts 3 (probation LRU), protecteds survive
  EXPECT_FALSE(cache.contains(3));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(4));
}

TEST(SlruCache, ScanDoesNotFlushProtected) {
  SlruCache cache(8, 0.75);
  for (int rep = 0; rep < 3; ++rep) {
    for (KeyId k = 1; k <= 4; ++k) {
      cache.access(k);
    }
  }
  for (KeyId scan = 100; scan < 200; ++scan) {
    cache.access(scan);
  }
  for (KeyId k = 1; k <= 4; ++k) {
    EXPECT_TRUE(cache.contains(k)) << "protected key " << k << " flushed";
  }
}

TEST(SlruCache, VictimQueryMatchesEviction) {
  SlruCache cache(3, 0.5);
  cache.access(1);
  cache.access(2);
  cache.access(3);
  const KeyId victim = cache.eviction_victim();
  cache.evict_one();
  EXPECT_FALSE(cache.contains(victim));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SlruCache, InsertProbationRespectsContract) {
  SlruCache cache(2, 0.5);
  cache.insert_probation(9);
  EXPECT_TRUE(cache.contains(9));
  EXPECT_EQ(cache.probation_size(), 1u);
}

TEST(SlruCache, DegenerateZeroProtectedFraction) {
  SlruCache cache(3, 0.0);
  cache.access(1);
  EXPECT_TRUE(cache.access(1));  // hit stays in probation
  EXPECT_EQ(cache.protected_size(), 0u);
  EXPECT_TRUE(cache.contains(1));
}

// --- TinyLFU -----------------------------------------------------------------

TEST(TinyLfuCache, SizeSplitsWindowAndMain) {
  TinyLfuCache cache(100);
  EXPECT_EQ(cache.capacity(), 100u);
  for (KeyId k = 0; k < 500; ++k) {
    cache.access(k);
    ASSERT_LE(cache.size(), 100u);
  }
}

TEST(TinyLfuCache, FrequentKeyIsAdmittedOverCold) {
  TinyLfuCache::Options options;
  options.window_fraction = 0.1;
  TinyLfuCache cache(20, options);
  // Make key 7 hot so the sketch knows it.
  for (int i = 0; i < 50; ++i) {
    cache.access(7);
  }
  // Flood with cold keys; 7 must survive in main.
  for (KeyId k = 1000; k < 2000; ++k) {
    cache.access(k);
  }
  EXPECT_TRUE(cache.contains(7));
}

TEST(TinyLfuCache, EstimatedFrequencyGrowsWithAccesses) {
  TinyLfuCache cache(50);
  const std::uint32_t before = cache.estimated_frequency(3);
  for (int i = 0; i < 20; ++i) {
    cache.access(3);
  }
  EXPECT_GT(cache.estimated_frequency(3), before);
}

TEST(TinyLfuCache, ClearResetsEverything) {
  TinyLfuCache cache(50);
  for (int i = 0; i < 30; ++i) {
    cache.access(1);
  }
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_LE(cache.estimated_frequency(1), 1u);
}

TEST(TinyLfuCache, BeatsLruHitRatioOnZipf) {
  // The reason W-TinyLFU exists: frequency-informed admission outperforms
  // pure recency on skewed workloads.
  const auto d = QueryDistribution::zipf(10000, 1.01);
  QueryStream stream(d, 1000.0, 33);
  TinyLfuCache tinylfu(100);
  LruCache lru(100);
  std::uint64_t tinylfu_hits = 0;
  std::uint64_t lru_hits = 0;
  constexpr int kQueries = 60000;
  for (int i = 0; i < kQueries; ++i) {
    const Query q = stream.next();
    tinylfu_hits += tinylfu.access(q.key) ? 1 : 0;
    lru_hits += lru.access(q.key) ? 1 : 0;
  }
  EXPECT_GT(tinylfu_hits, lru_hits);
}

// --- PerfectCache ------------------------------------------------------------

TEST(PerfectCache, CachesTopCOfDistribution) {
  const auto d = QueryDistribution::zipf(100, 1.1);
  PerfectCache cache(10, d);
  EXPECT_EQ(cache.size(), 10u);
  for (KeyId k = 0; k < 10; ++k) {
    EXPECT_TRUE(cache.contains(k));
  }
  EXPECT_FALSE(cache.contains(10));
}

TEST(PerfectCache, AccessNeverMutates) {
  const auto d = QueryDistribution::uniform_over(5, 50);
  PerfectCache cache(3, d);
  EXPECT_FALSE(cache.access(40));  // miss does not admit
  EXPECT_FALSE(cache.contains(40));
  EXPECT_TRUE(cache.access(0));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PerfectCache, ClearIsANoOp) {
  // The oracle's contents are its definition; simulators may call clear()
  // between trials and must not lose the top-c set.
  const auto d = QueryDistribution::uniform_over(5, 50);
  PerfectCache cache(3, d);
  cache.clear();
  EXPECT_TRUE(cache.contains(0));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PerfectCache, ExplicitKeyProbabilityPairs) {
  const std::vector<KeyId> keys = {10, 20, 30, 40};
  const std::vector<double> probs = {0.1, 0.4, 0.3, 0.2};
  PerfectCache cache(2, keys, probs);
  EXPECT_TRUE(cache.contains(20));
  EXPECT_TRUE(cache.contains(30));
  EXPECT_FALSE(cache.contains(10));
  EXPECT_FALSE(cache.contains(40));
}

TEST(PerfectCache, TiesBrokenByKeyId) {
  const std::vector<KeyId> keys = {5, 3, 9};
  const std::vector<double> probs = {0.25, 0.25, 0.5};
  PerfectCache cache(2, keys, probs);
  EXPECT_TRUE(cache.contains(9));
  EXPECT_TRUE(cache.contains(3));  // lower key id wins the tie against 5
  EXPECT_FALSE(cache.contains(5));
}

TEST(PerfectCache, CapacityLargerThanKeySpace) {
  const auto d = QueryDistribution::uniform(5);
  PerfectCache cache(100, d);
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.capacity(), 100u);
}

TEST(PerfectCache, ZeroCapacity) {
  const auto d = QueryDistribution::uniform(5);
  PerfectCache cache(0, d);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.access(0));
}

}  // namespace
}  // namespace scp
