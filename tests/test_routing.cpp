#include "cluster/routing.h"

#include <array>
#include <vector>

#include <gtest/gtest.h>

namespace scp {
namespace {

constexpr std::array<NodeId, 3> kGroup = {4, 7, 9};

std::vector<double> make_loads(double l4, double l7, double l9) {
  std::vector<double> loads(12, 0.0);
  loads[4] = l4;
  loads[7] = l7;
  loads[9] = l9;
  return loads;
}

TEST(RandomSelector, StaysInRangeAndCoversGroup) {
  RandomSelector selector;
  Rng rng(1);
  const auto loads = make_loads(0, 0, 0);
  std::array<int, 3> counts{};
  for (int i = 0; i < 30000; ++i) {
    const std::size_t pick =
        selector.select(0, std::span<const NodeId>(kGroup), loads, rng);
    ASSERT_LT(pick, 3u);
    ++counts[pick];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 30000.0, 1.0 / 3.0, 0.02);
  }
}

TEST(RandomSelector, SplitsEvenly) {
  RandomSelector selector;
  EXPECT_TRUE(selector.splits_evenly());
}

TEST(RoundRobinSelector, CyclesPerKey) {
  RoundRobinSelector selector;
  Rng rng(2);
  const auto loads = make_loads(0, 0, 0);
  // Key 1 should cycle 0,1,2,0,1,2… independently of key 2's counter.
  EXPECT_EQ(selector.select(1, kGroup, loads, rng), 0u);
  EXPECT_EQ(selector.select(2, kGroup, loads, rng), 0u);
  EXPECT_EQ(selector.select(1, kGroup, loads, rng), 1u);
  EXPECT_EQ(selector.select(1, kGroup, loads, rng), 2u);
  EXPECT_EQ(selector.select(1, kGroup, loads, rng), 0u);
  EXPECT_EQ(selector.select(2, kGroup, loads, rng), 1u);
}

TEST(RoundRobinSelector, ResetClearsCounters) {
  RoundRobinSelector selector;
  Rng rng(3);
  const auto loads = make_loads(0, 0, 0);
  selector.select(5, kGroup, loads, rng);
  selector.select(5, kGroup, loads, rng);
  selector.reset();
  EXPECT_EQ(selector.select(5, kGroup, loads, rng), 0u);
}

TEST(RoundRobinSelector, SplitsEvenly) {
  RoundRobinSelector selector;
  EXPECT_TRUE(selector.splits_evenly());
}

TEST(LeastLoadedSelector, PicksStrictMinimum) {
  LeastLoadedSelector selector;
  Rng rng(4);
  EXPECT_EQ(selector.select(0, kGroup, make_loads(5, 1, 3), rng), 1u);
  EXPECT_EQ(selector.select(0, kGroup, make_loads(0.5, 1, 3), rng), 0u);
  EXPECT_EQ(selector.select(0, kGroup, make_loads(5, 4, 3), rng), 2u);
}

TEST(LeastLoadedSelector, BreaksTiesUniformly) {
  LeastLoadedSelector selector;
  Rng rng(5);
  const auto loads = make_loads(1, 1, 1);
  std::array<int, 3> counts{};
  for (int i = 0; i < 30000; ++i) {
    ++counts[selector.select(0, kGroup, loads, rng)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 30000.0, 1.0 / 3.0, 0.02);
  }
}

TEST(LeastLoadedSelector, PartialTieBetweenTwo) {
  LeastLoadedSelector selector;
  Rng rng(6);
  const auto loads = make_loads(2, 1, 1);  // nodes 7 and 9 tie
  std::array<int, 3> counts{};
  for (int i = 0; i < 20000; ++i) {
    ++counts[selector.select(0, kGroup, loads, rng)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 20000.0, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 20000.0, 0.5, 0.02);
}

TEST(LeastLoadedSelector, DoesNotSplitEvenly) {
  LeastLoadedSelector selector;
  EXPECT_FALSE(selector.splits_evenly());
}

TEST(LeastLoadedSelector, SingletonGroup) {
  LeastLoadedSelector selector;
  Rng rng(7);
  const std::array<NodeId, 1> group = {3};
  EXPECT_EQ(selector.select(0, group, make_loads(0, 0, 0), rng), 0u);
}

TEST(PinnedLeastLoadedSelector, FirstPickIsLeastLoadedThenSticky) {
  PinnedLeastLoadedSelector selector;
  Rng rng(8);
  EXPECT_EQ(selector.select(7, kGroup, make_loads(5, 1, 3), rng), 1u);
  // The pin holds even when another replica becomes less loaded.
  EXPECT_EQ(selector.select(7, kGroup, make_loads(5, 9, 3), rng), 1u);
  EXPECT_EQ(selector.select(7, kGroup, make_loads(0, 9, 3), rng), 1u);
}

TEST(PinnedLeastLoadedSelector, PinsArePerKey) {
  PinnedLeastLoadedSelector selector;
  Rng rng(9);
  EXPECT_EQ(selector.select(1, kGroup, make_loads(5, 1, 3), rng), 1u);
  EXPECT_EQ(selector.select(2, kGroup, make_loads(5, 9, 0), rng), 2u);
  EXPECT_EQ(selector.select(1, kGroup, make_loads(0, 0, 0), rng), 1u);
  EXPECT_EQ(selector.select(2, kGroup, make_loads(0, 0, 0), rng), 2u);
}

TEST(PinnedLeastLoadedSelector, ResetForgetsPins) {
  PinnedLeastLoadedSelector selector;
  Rng rng(10);
  EXPECT_EQ(selector.select(1, kGroup, make_loads(5, 1, 3), rng), 1u);
  selector.reset();
  EXPECT_EQ(selector.select(1, kGroup, make_loads(0, 9, 3), rng), 0u);
}

TEST(PinnedLeastLoadedSelector, DoesNotSplitEvenly) {
  PinnedLeastLoadedSelector selector;
  EXPECT_FALSE(selector.splits_evenly());
}

TEST(MakeSelector, CreatesEachKind) {
  EXPECT_EQ(make_selector("random")->name(), "random");
  EXPECT_EQ(make_selector("round-robin")->name(), "round-robin");
  EXPECT_EQ(make_selector("least-loaded")->name(), "least-loaded");
  EXPECT_EQ(make_selector("pinned")->name(), "pinned");
}

TEST(MakeSelector, RejectsUnknownKind) {
  EXPECT_DEATH(make_selector("best-effort"), "unknown selector");
}

}  // namespace
}  // namespace scp
