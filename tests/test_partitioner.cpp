#include "cluster/partitioner.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"

namespace scp {
namespace {

// Parameterized over the three partitioner kinds: they must all satisfy the
// system-model contract (d distinct nodes, deterministic, uniform spread).
class PartitionerContractTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<ReplicaPartitioner> make(std::uint32_t n, std::uint32_t d,
                                           std::uint64_t seed = 42) {
    return make_partitioner(GetParam(), n, d, seed);
  }
};

TEST_P(PartitionerContractTest, ReportsParameters) {
  const auto p = make(50, 3);
  EXPECT_EQ(p->node_count(), 50u);
  EXPECT_EQ(p->replication(), 3u);
  EXPECT_FALSE(p->name().empty());
}

TEST_P(PartitionerContractTest, GroupsHaveDistinctNodes) {
  const auto p = make(20, 5);
  for (KeyId key = 0; key < 500; ++key) {
    const std::vector<NodeId> group = p->replica_group(key);
    ASSERT_EQ(group.size(), 5u);
    const std::set<NodeId> unique(group.begin(), group.end());
    EXPECT_EQ(unique.size(), 5u) << "key " << key;
    for (const NodeId node : group) {
      EXPECT_LT(node, 20u);
    }
  }
}

TEST_P(PartitionerContractTest, GroupsAreDeterministicPerKey) {
  const auto p = make(100, 3);
  for (KeyId key = 0; key < 100; ++key) {
    EXPECT_EQ(p->replica_group(key), p->replica_group(key));
  }
}

TEST_P(PartitionerContractTest, DifferentSeedsGiveDifferentMappings) {
  const auto a = make(100, 3, 1);
  const auto b = make(100, 3, 2);
  int identical = 0;
  for (KeyId key = 0; key < 200; ++key) {
    identical += (a->replica_group(key) == b->replica_group(key)) ? 1 : 0;
  }
  // A few chance collisions are possible; identical mappings are not.
  EXPECT_LT(identical, 20);
}

TEST_P(PartitionerContractTest, PrimaryReplicaSpreadIsRoughlyUniform) {
  constexpr std::uint32_t kNodes = 20;
  constexpr KeyId kKeys = 40000;
  const auto p = make(kNodes, 3);
  std::vector<std::uint64_t> counts(kNodes, 0);
  std::vector<NodeId> group(3);
  for (KeyId key = 0; key < kKeys; ++key) {
    p->replica_group(key, std::span<NodeId>(group));
    ++counts[group[0]];
  }
  // The ring with finite vnodes has structural skew (arc-size variance ~
  // 1/sqrt(vnodes)), so assert a generous per-node band rather than a tight
  // chi-squared: every node owns between a third and three times its share.
  const double expected_share = static_cast<double>(kKeys) / kNodes;
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    EXPECT_GT(static_cast<double>(counts[node]), expected_share / 3.0)
        << "node " << node << " starved";
    EXPECT_LT(static_cast<double>(counts[node]), expected_share * 3.0)
        << "node " << node << " overloaded";
  }
}

TEST_P(PartitionerContractTest, AllNodesAppearInSomeGroup) {
  constexpr std::uint32_t kNodes = 30;
  const auto p = make(kNodes, 2);
  std::set<NodeId> seen;
  std::vector<NodeId> group(2);
  for (KeyId key = 0; key < 5000 && seen.size() < kNodes; ++key) {
    p->replica_group(key, std::span<NodeId>(group));
    seen.insert(group.begin(), group.end());
  }
  EXPECT_EQ(seen.size(), kNodes);
}

TEST_P(PartitionerContractTest, ReplicationOneWorks) {
  const auto p = make(10, 1);
  for (KeyId key = 0; key < 100; ++key) {
    EXPECT_EQ(p->replica_group(key).size(), 1u);
  }
}

TEST_P(PartitionerContractTest, FullReplicationCoversAllNodes) {
  const auto p = make(4, 4);
  const std::vector<NodeId> group = p->replica_group(7);
  const std::set<NodeId> unique(group.begin(), group.end());
  EXPECT_EQ(unique.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PartitionerContractTest,
                         ::testing::Values("hash", "ring", "rendezvous"));

// --- kind-specific behaviour -------------------------------------------------

TEST(ConsistentHashRing, AddNodeDisruptsFewKeys) {
  ConsistentHashRing ring(50, 3, 64, 7);
  constexpr KeyId kKeys = 5000;
  std::vector<std::vector<NodeId>> before(kKeys);
  for (KeyId key = 0; key < kKeys; ++key) {
    before[key] = ring.replica_group(key);
  }
  ring.add_node(50);
  std::size_t moved = 0;
  for (KeyId key = 0; key < kKeys; ++key) {
    if (ring.replica_group(key) != before[key]) {
      ++moved;
    }
  }
  // Expected disruption ≈ d/n ≈ 6%; assert well under a full reshuffle.
  EXPECT_LT(moved, kKeys / 4);
  EXPECT_GT(moved, 0u);
}

TEST(ConsistentHashRing, RemoveNodeOnlyRemapsItsKeys) {
  ConsistentHashRing ring(50, 2, 64, 8);
  constexpr KeyId kKeys = 5000;
  std::vector<std::vector<NodeId>> before(kKeys);
  for (KeyId key = 0; key < kKeys; ++key) {
    before[key] = ring.replica_group(key);
  }
  const NodeId victim = 13;
  ring.remove_node(victim);
  EXPECT_FALSE(ring.contains_node(victim));
  EXPECT_EQ(ring.node_count(), 49u);
  for (KeyId key = 0; key < kKeys; ++key) {
    const std::vector<NodeId> after = ring.replica_group(key);
    EXPECT_EQ(std::count(after.begin(), after.end(), victim), 0)
        << "key " << key;
    const bool had_victim = std::count(before[key].begin(), before[key].end(),
                                       victim) > 0;
    if (!had_victim) {
      EXPECT_EQ(after, before[key]) << "unaffected key moved: " << key;
    }
  }
}

TEST(ConsistentHashRing, WeightedRingShiftsOwnershipTowardHeavyNodes) {
  // Capacity-aware vnodes: a node with weight 2 should own roughly twice
  // the keys of a weight-1 node.
  constexpr std::uint32_t kNodes = 10;
  std::vector<double> weights(kNodes, 1.0);
  weights[0] = 2.0;
  ConsistentHashRing ring(kNodes, 1, 128, std::span<const double>(weights), 5);
  std::vector<std::uint64_t> owned(kNodes, 0);
  std::vector<NodeId> group(1);
  constexpr KeyId kKeys = 30000;
  for (KeyId key = 0; key < kKeys; ++key) {
    ring.replica_group(key, std::span<NodeId>(group));
    ++owned[group[0]];
  }
  const double expected_heavy = kKeys * 2.0 / 11.0;
  EXPECT_NEAR(static_cast<double>(owned[0]), expected_heavy,
              expected_heavy * 0.25);
}

TEST(ConsistentHashRing, WeightedRingStillGivesDistinctGroups) {
  std::vector<double> weights = {0.5, 1.0, 2.0, 1.5, 1.0};
  ConsistentHashRing ring(5, 3, 32, std::span<const double>(weights), 6);
  for (KeyId key = 0; key < 500; ++key) {
    const auto group = ring.replica_group(key);
    const std::set<NodeId> unique(group.begin(), group.end());
    EXPECT_EQ(unique.size(), 3u) << "key " << key;
  }
}

TEST(ConsistentHashRing, WeightedRingRejectsBadWeights) {
  const std::vector<double> short_weights = {1.0, 1.0};
  EXPECT_DEATH(ConsistentHashRing(3, 1, 8,
                                  std::span<const double>(short_weights), 1),
               "one weight per node");
  const std::vector<double> bad = {1.0, 0.0, 1.0};
  EXPECT_DEATH(ConsistentHashRing(3, 1, 8, std::span<const double>(bad), 1),
               "positive");
}

TEST(ConsistentHashRing, RejectsRemovingBelowReplication) {
  ConsistentHashRing ring(3, 2, 8, 9);
  ring.remove_node(0);  // 2 nodes left == replication, next remove must die
  EXPECT_DEATH(ring.remove_node(1), "replication");
}

TEST(ConsistentHashRing, RejectsDuplicateAdd) {
  ConsistentHashRing ring(5, 2, 8, 10);
  EXPECT_DEATH(ring.add_node(3), "already present");
}

TEST(RendezvousPartitioner, StableUnderNodeSetExtension) {
  // HRW property: growing n from 10 to 11 only moves keys whose new node
  // wins; all other groups stay identical.
  RendezvousPartitioner small(10, 3, 11);
  RendezvousPartitioner large(11, 3, 11);
  std::size_t moved = 0;
  constexpr KeyId kKeys = 2000;
  for (KeyId key = 0; key < kKeys; ++key) {
    auto a = small.replica_group(key);
    auto b = large.replica_group(key);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) {
      ++moved;
      // Any difference must involve the new node 10.
      EXPECT_TRUE(std::count(b.begin(), b.end(), 10u) > 0) << "key " << key;
    }
  }
  EXPECT_LT(moved, kKeys);  // and most keys should not move
}

TEST(MakePartitioner, RejectsUnknownKind) {
  EXPECT_DEATH(make_partitioner("nope", 10, 2, 1), "unknown partitioner");
}

TEST(HashPartitioner, RejectsBadParameters) {
  EXPECT_DEATH(HashPartitioner(10, 11, 1), "replication");
  EXPECT_DEATH(HashPartitioner(10, 0, 1), "replication");
  EXPECT_DEATH(HashPartitioner(0, 0, 1), "node");
}

}  // namespace
}  // namespace scp
