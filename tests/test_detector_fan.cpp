// AttackDetector (online detection) and the Fan et al. d=1 baseline bound.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/bounds.h"
#include "core/detector.h"

namespace scp {
namespace {

// --- AttackDetector ---------------------------------------------------------

std::vector<double> even_loads(std::size_t n, double value) {
  return std::vector<double>(n, value);
}

std::vector<double> hotspot_loads(std::size_t n, double value, double hot) {
  std::vector<double> loads(n, value);
  loads[0] = hot;
  return loads;
}

TEST(AttackDetector, StaysQuietOnBalancedLoad) {
  AttackDetector detector;
  for (int w = 0; w < 50; ++w) {
    EXPECT_FALSE(detector.observe(even_loads(20, 100.0)));
  }
  EXPECT_FALSE(detector.alarmed());
  EXPECT_NEAR(detector.baseline(), 1.0, 1e-9);
}

TEST(AttackDetector, TripsAfterConsecutiveSuspiciousWindows) {
  DetectorOptions options;
  options.windows_to_trip = 3;
  AttackDetector detector(options);
  detector.observe(even_loads(20, 100.0));
  // A 10x hotspot: imbalance = 10 / (1 + 9/20) ≈ 6.9.
  EXPECT_FALSE(detector.observe(hotspot_loads(20, 100.0, 1000.0)));
  EXPECT_FALSE(detector.observe(hotspot_loads(20, 100.0, 1000.0)));
  EXPECT_TRUE(detector.observe(hotspot_loads(20, 100.0, 1000.0)));
  EXPECT_TRUE(detector.alarmed());
  EXPECT_GE(detector.suspicious_windows(), 3u);
}

TEST(AttackDetector, SingleBlipDoesNotTrip) {
  AttackDetector detector;
  detector.observe(even_loads(20, 100.0));
  detector.observe(hotspot_loads(20, 100.0, 1000.0));  // one bad window
  for (int w = 0; w < 10; ++w) {
    EXPECT_FALSE(detector.observe(even_loads(20, 100.0)));
  }
  EXPECT_FALSE(detector.alarmed());
}

TEST(AttackDetector, AcknowledgeClearsAlarm) {
  DetectorOptions options;
  options.windows_to_trip = 1;
  AttackDetector detector(options);
  EXPECT_TRUE(detector.observe(hotspot_loads(20, 100.0, 1000.0)));
  detector.acknowledge();
  EXPECT_FALSE(detector.alarmed());
  EXPECT_FALSE(detector.observe(even_loads(20, 100.0)));
}

TEST(AttackDetector, BaselineDoesNotLearnFromAttacks) {
  DetectorOptions options;
  options.windows_to_trip = 100000;  // never trip; watch the baseline
  AttackDetector detector(options);
  detector.observe(even_loads(10, 50.0));
  const double baseline_before = detector.baseline();
  for (int w = 0; w < 50; ++w) {
    detector.observe(hotspot_loads(10, 50.0, 5000.0));
  }
  EXPECT_NEAR(detector.baseline(), baseline_before, 1e-9)
      << "slow-ramp attack poisoned the baseline";
}

TEST(AttackDetector, ToleratesOrganicSkewBelowThreshold) {
  // A persistently skewed but stable system below the absolute threshold
  // (ratio ~1.42 < 1.5): the EWMA baseline absorbs it and the alarm stays
  // quiet. (Persistent skew *above* the threshold is indistinguishable from
  // an attack and must alarm — the detector deliberately never learns a
  // suspicious baseline, or a slow-ramp attack would teach it silence.)
  DetectorOptions options;
  options.ewma_alpha = 0.5;  // learn fast for the test
  AttackDetector detector(options);
  const auto skewed = hotspot_loads(20, 100.0, 145.0);  // ratio ≈ 1.42
  for (int w = 0; w < 30; ++w) {
    EXPECT_FALSE(detector.observe(skewed));
  }
  EXPECT_FALSE(detector.alarmed());
  EXPECT_GT(detector.baseline(), 1.3);  // and the baseline absorbed it
}

TEST(AttackDetector, ZeroLoadWindowIsBenign) {
  AttackDetector detector;
  EXPECT_FALSE(detector.observe(even_loads(5, 0.0)));
  EXPECT_DOUBLE_EQ(detector.last_imbalance(), 1.0);
}

TEST(AttackDetector, StatusMentionsState) {
  AttackDetector detector;
  detector.observe(even_loads(5, 1.0));
  EXPECT_NE(detector.status().find("ok"), std::string::npos);
}

TEST(AttackDetector, RejectsBadOptions) {
  DetectorOptions options;
  options.imbalance_threshold = 1.0;
  EXPECT_DEATH(AttackDetector{options}, "imbalance_threshold");
  options = DetectorOptions{};
  options.ewma_alpha = 0.0;
  EXPECT_DEATH(AttackDetector{options}, "ewma_alpha");
}

// --- Fan et al. d=1 bound -----------------------------------------------------

SystemParams fan_params(std::uint64_t cache_size) {
  SystemParams p;
  p.nodes = 1000;
  p.replication = 1;
  p.items = 1000000;
  p.cache_size = cache_size;
  p.query_rate = 1.0;
  return p;
}

TEST(FanBound, MatchesHandComputation) {
  // x - c = 1000 balls into 1000 bins: 1 + sqrt(2 ln 1000) ≈ 4.717 keys per
  // node, times n/(x-1).
  const SystemParams p = fan_params(1000);
  const std::uint64_t x = 2000;
  const double expected =
      (1.0 + std::sqrt(2.0 * std::log(1000.0))) * 1000.0 / 1999.0;
  EXPECT_NEAR(fan_gain_bound(p, x), expected, 1e-9);
}

TEST(FanBound, HasInteriorMaximizer) {
  const SystemParams p = fan_params(1000);
  const std::uint64_t best = fan_optimal_queried_keys(p);
  EXPECT_GT(best, p.cache_size + 1);
  EXPECT_LT(best, p.items);
  // Neighbours are no better (local max) and the endpoints are worse.
  const double peak = fan_gain_bound(p, best);
  EXPECT_GE(peak, fan_gain_bound(p, best - 1) - 1e-12);
  EXPECT_GE(peak, fan_gain_bound(p, best + 1) - 1e-12);
  EXPECT_GT(peak, fan_gain_bound(p, p.cache_size + 1));
  EXPECT_GT(peak, fan_gain_bound(p, p.items));
}

TEST(FanBound, EffectiveForAnyCacheSmallRelativeToKeySpace) {
  // The paper's contrast: for d = 1 the optimal attack stays above gain 1
  // for every cache that is small relative to the key space. (The precise
  // finite-m condition: the adversary needs x − c ≳ c²/(2n·ln n) keys to
  // outgrow the cache's head start, so "always attackable" holds whenever
  // m − c exceeds that — true for every realistic c = O(n·polylog).)
  for (const std::uint64_t c : {100ULL, 1000ULL, 10000ULL, 100000ULL}) {
    const SystemParams p = fan_params(c);
    const std::uint64_t best = fan_optimal_queried_keys(p);
    EXPECT_GT(fan_gain_bound(p, best), 1.0) << "c=" << c;
  }
  // And the converse sanity check: caching half of the entire key space
  // (c = O(m), absurd in practice) finally closes even the d = 1 attack.
  const SystemParams huge = fan_params(500000);
  EXPECT_LT(fan_gain_bound(huge, fan_optimal_queried_keys(huge)), 1.0);
}

TEST(FanBound, OptimalXGrowsWithCache) {
  // Fan et al.: x* is a continuous function of c (and n) — bigger caches
  // push the adversary to spread further.
  EXPECT_LT(fan_optimal_queried_keys(fan_params(100)),
            fan_optimal_queried_keys(fan_params(10000)));
}

TEST(FanBound, RejectsReplicatedSystems) {
  SystemParams p = fan_params(100);
  p.replication = 3;
  EXPECT_DEATH(fan_gain_bound(p, 200), "unreplicated");
  EXPECT_DEATH(fan_optimal_queried_keys(p), "unreplicated");
}

}  // namespace
}  // namespace scp
