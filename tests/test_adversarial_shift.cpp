// Property tests for Theorem 1's mass-shifting procedure: iterated shift
// steps from arbitrary starting distributions must converge to the closed
// form (head at h, one fractional key, zero tail), and the closed form must
// be a fixpoint.
#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/distribution.h"

namespace scp {
namespace {

std::vector<double> probabilities_of(const QueryDistribution& d) {
  return {d.probabilities().begin(), d.probabilities().end()};
}

// Applies shift steps until fixpoint; returns the number of steps taken.
std::size_t iterate_to_fixpoint(std::vector<double>& p, std::uint64_t c,
                                std::size_t max_steps = 1000000) {
  std::size_t steps = 0;
  while (steps < max_steps && adversarial_shift_step(std::span<double>(p), c)) {
    ++steps;
  }
  return steps;
}

TEST(AdversarialShift, StepPreservesTotalMass) {
  auto p = probabilities_of(QueryDistribution::zipf(50, 1.1));
  const double before = std::accumulate(p.begin(), p.end(), 0.0);
  ASSERT_TRUE(adversarial_shift_step(std::span<double>(p), 5));
  const double after = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(before, after, 1e-12);
}

TEST(AdversarialShift, StepRaisesReceiverTowardH) {
  auto p = probabilities_of(QueryDistribution::zipf(50, 1.1));
  const double h = p[4];  // c = 5 → ceiling is p[c-1]
  ASSERT_TRUE(adversarial_shift_step(std::span<double>(p), 5));
  EXPECT_LE(p[5], h + 1e-12);
  EXPECT_GT(p[5], QueryDistribution::zipf(50, 1.1).probability(5));
}

TEST(AdversarialShift, ClosedFormIsAFixpoint) {
  const auto fix =
      adversarial_shift_fixpoint(QueryDistribution::zipf(100, 1.05), 10);
  auto p = probabilities_of(fix);
  EXPECT_FALSE(adversarial_shift_step(std::span<double>(p), 10));
}

TEST(AdversarialShift, UniformOverXIsAFixpointOfItself) {
  // The canonical attack pattern: all queried keys at the same rate. With
  // h = p[c-1] every uncached supported key is already at h.
  auto p = probabilities_of(QueryDistribution::uniform_over(20, 50));
  EXPECT_FALSE(adversarial_shift_step(std::span<double>(p), 10));
}

TEST(AdversarialShift, IterationConvergesToClosedForm) {
  const auto start = QueryDistribution::zipf(60, 1.2);
  const std::uint64_t c = 8;
  auto p = probabilities_of(start);
  iterate_to_fixpoint(p, c);
  const auto closed = adversarial_shift_fixpoint(start, c);
  // Compare un-normalized iterate against the (re-normalized) closed form;
  // iteration preserves mass exactly so both sum to 1.
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(p[i], closed.probability(i), 1e-9) << "index " << i;
  }
}

TEST(AdversarialShift, FixpointKeepsCachedHeadUntouched) {
  const auto start = QueryDistribution::zipf(40, 1.3);
  const auto fix = adversarial_shift_fixpoint(start, 6);
  for (KeyId i = 0; i < 6; ++i) {
    EXPECT_NEAR(fix.probability(i), start.probability(i), 1e-12);
  }
}

TEST(AdversarialShift, FixpointHasPaperShape) {
  // p_c … p_{x-2} = h, p_{x-1} in (0, h], zero tail (Eq. 4 of the paper).
  const auto start = QueryDistribution::zipf(100, 1.1);
  const std::uint64_t c = 10;
  const auto fix = adversarial_shift_fixpoint(start, c);
  const double h = start.probability(c - 1);
  std::uint64_t i = c;
  while (i < fix.size() && std::abs(fix.probability(i) - h) < 1e-12) {
    ++i;
  }
  if (i < fix.size() && fix.probability(i) > 0.0) {
    EXPECT_LT(fix.probability(i), h + 1e-12);
    ++i;
  }
  for (; i < fix.size(); ++i) {
    EXPECT_DOUBLE_EQ(fix.probability(i), 0.0) << "index " << i;
  }
}

TEST(AdversarialShift, NoCacheConcentratesEverything) {
  // c = 0: ceiling h = 1, so the fixpoint is a point mass.
  const auto fix =
      adversarial_shift_fixpoint(QueryDistribution::uniform(20), 0);
  EXPECT_NEAR(fix.probability(0), 1.0, 1e-9);
  EXPECT_EQ(fix.support_size(), 1u);
}

TEST(AdversarialShift, AllMassCachedIsAlreadyFixed) {
  // Support smaller than the cache: nothing uncached to shift.
  const auto start = QueryDistribution::uniform_over(5, 20);
  auto p = probabilities_of(start);
  EXPECT_FALSE(adversarial_shift_step(std::span<double>(p), 10));
  const auto fix = adversarial_shift_fixpoint(start, 10);
  for (KeyId i = 0; i < 20; ++i) {
    EXPECT_NEAR(fix.probability(i), start.probability(i), 1e-12);
  }
}

// Property sweep: random starting distributions over several (m, c) shapes
// all converge to the closed form.
class ShiftConvergence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t,
                                                 std::uint64_t>> {};

TEST_P(ShiftConvergence, IteratedStepsMatchClosedForm) {
  const auto [m, c, seed] = GetParam();
  // Random non-increasing distribution: sort uniform weights descending.
  Rng rng(seed);
  std::vector<double> weights(m);
  for (double& w : weights) {
    w = rng.uniform_double() + 1e-6;
  }
  std::sort(weights.begin(), weights.end(), std::greater<double>());
  const auto start = QueryDistribution::from_weights(std::move(weights));

  auto p = probabilities_of(start);
  iterate_to_fixpoint(p, c);
  const auto closed = adversarial_shift_fixpoint(start, c);
  for (std::size_t i = 0; i < p.size(); ++i) {
    ASSERT_NEAR(p[i], closed.probability(i), 1e-9)
        << "m=" << m << " c=" << c << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomStarts, ShiftConvergence,
    ::testing::Values(std::make_tuple(20ULL, 3ULL, 1ULL),
                      std::make_tuple(50ULL, 10ULL, 2ULL),
                      std::make_tuple(100ULL, 1ULL, 3ULL),
                      std::make_tuple(100ULL, 50ULL, 4ULL),
                      std::make_tuple(200ULL, 0ULL, 5ULL),
                      std::make_tuple(64ULL, 63ULL, 6ULL)));

}  // namespace
}  // namespace scp
