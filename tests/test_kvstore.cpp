// Replicated KV substrate: storage engine, quorum replication, coherence,
// failure handling, anti-entropy.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "kvstore/kv_cluster.h"

namespace scp {
namespace {

// --- StorageEngine -------------------------------------------------------

TEST(StorageEngine, PutGetRoundTrip) {
  StorageEngine storage;
  EXPECT_TRUE(storage.apply_put(1, "hello", 1));
  EXPECT_EQ(storage.get(1), "hello");
  EXPECT_EQ(storage.live_count(), 1u);
  EXPECT_EQ(storage.bytes_used(), 5u);
}

TEST(StorageEngine, StaleWritesAreRejected) {
  StorageEngine storage;
  EXPECT_TRUE(storage.apply_put(1, "new", 5));
  EXPECT_FALSE(storage.apply_put(1, "old", 3));
  EXPECT_FALSE(storage.apply_put(1, "same", 5));  // idempotent replay
  EXPECT_EQ(storage.get(1), "new");
}

TEST(StorageEngine, NewerWriteReplaces) {
  StorageEngine storage;
  storage.apply_put(1, "v1", 1);
  EXPECT_TRUE(storage.apply_put(1, "v2", 2));
  EXPECT_EQ(storage.get(1), "v2");
  EXPECT_EQ(storage.live_count(), 1u);
  EXPECT_EQ(storage.bytes_used(), 2u);
}

TEST(StorageEngine, TombstoneHidesAndBlocksStale) {
  StorageEngine storage;
  storage.apply_put(1, "value", 1);
  EXPECT_TRUE(storage.apply_erase(1, 2));
  EXPECT_EQ(storage.get(1), std::nullopt);
  EXPECT_EQ(storage.live_count(), 0u);
  // The tombstone's version must beat late writes.
  EXPECT_FALSE(storage.apply_put(1, "zombie", 1));
  EXPECT_EQ(storage.get(1), std::nullopt);
  // But a genuinely newer write resurrects.
  EXPECT_TRUE(storage.apply_put(1, "reborn", 3));
  EXPECT_EQ(storage.get(1), "reborn");
}

TEST(StorageEngine, EraseAbsentCreatesTombstone) {
  StorageEngine storage;
  EXPECT_TRUE(storage.apply_erase(9, 4));
  EXPECT_EQ(storage.get(9), std::nullopt);
  EXPECT_EQ(storage.entry_count(), 1u);
  EXPECT_EQ(storage.live_count(), 0u);
}

TEST(StorageEngine, ForEachVisitsEverything) {
  StorageEngine storage;
  storage.apply_put(1, "a", 1);
  storage.apply_put(2, "b", 2);
  storage.apply_erase(3, 3);
  std::set<KeyId> seen;
  storage.for_each_entry([&](KeyId key, const StorageEngine::Entry&) {
    seen.insert(key);
  });
  EXPECT_EQ(seen, (std::set<KeyId>{1, 2, 3}));
}

TEST(StorageEngine, ClearWipes) {
  StorageEngine storage;
  storage.apply_put(1, "a", 1);
  storage.clear();
  EXPECT_EQ(storage.entry_count(), 0u);
  EXPECT_EQ(storage.bytes_used(), 0u);
  EXPECT_EQ(storage.get(1), std::nullopt);
}

// --- KvCluster basics ------------------------------------------------------

KvClusterOptions small_options() {
  KvClusterOptions options;
  options.nodes = 10;
  options.replication = 3;
  options.write_quorum = 2;
  options.read_quorum = 2;
  options.seed = 42;
  return options;
}

TEST(KvCluster, PutGetEraseLifecycle) {
  KvCluster kv(small_options());
  EXPECT_EQ(kv.get(7), std::nullopt);
  EXPECT_TRUE(kv.put(7, "value"));
  EXPECT_EQ(kv.get(7), "value");
  EXPECT_TRUE(kv.erase(7));
  EXPECT_EQ(kv.get(7), std::nullopt);
  EXPECT_EQ(kv.stats().puts, 1u);
  EXPECT_EQ(kv.stats().gets, 3u);
  EXPECT_EQ(kv.stats().erases, 1u);
}

TEST(KvCluster, OverwriteReturnsLatest) {
  KvCluster kv(small_options());
  kv.put(1, "v1");
  kv.put(1, "v2");
  kv.put(1, "v3");
  EXPECT_EQ(kv.get(1), "v3");
}

TEST(KvCluster, WritesLandOnExactlyTheReplicaGroup) {
  KvCluster kv(small_options());
  kv.put(5, "data");
  const auto group = kv.partitioner().replica_group(5);
  std::uint32_t holders = 0;
  for (NodeId node = 0; node < kv.node_count(); ++node) {
    const bool has = kv.storage(node).get(5).has_value();
    const bool in_group =
        std::find(group.begin(), group.end(), node) != group.end();
    EXPECT_EQ(has, in_group) << "node " << node;
    holders += has ? 1 : 0;
  }
  EXPECT_EQ(holders, 3u);
}

TEST(KvCluster, ReplicasConvergeAfterWrite) {
  KvCluster kv(small_options());
  for (KeyId key = 0; key < 100; ++key) {
    kv.put(key, "v" + std::to_string(key));
    EXPECT_TRUE(kv.replicas_converged(key)) << "key " << key;
  }
}

// --- quorums and failures ----------------------------------------------------

TEST(KvCluster, ReadYourWritesAfterFailures) {
  // R + W > d (2 + 2 > 3): any read quorum intersects any write quorum, so
  // reads see the latest write even after d - W node failures.
  KvCluster kv(small_options());
  kv.put(11, "before");
  const auto group = kv.partitioner().replica_group(11);
  kv.fail_node(group[0]);  // d - W = 1 failure tolerated
  EXPECT_TRUE(kv.put(11, "after"));
  EXPECT_EQ(kv.get(11), "after");
}

TEST(KvCluster, QuorumFailureWhenTooFewReplicas) {
  KvCluster kv(small_options());
  const auto group = kv.partitioner().replica_group(3);
  kv.fail_node(group[0]);
  kv.fail_node(group[1]);  // only one alive < W = 2
  EXPECT_FALSE(kv.put(3, "nope"));
  EXPECT_EQ(kv.get(3), std::nullopt);
  EXPECT_GE(kv.stats().quorum_failures, 2u);
}

TEST(KvCluster, RecoveredStaleNodeIsReadRepaired) {
  KvCluster kv(small_options());
  kv.put(20, "v1");
  const auto group = kv.partitioner().replica_group(20);
  kv.fail_node(group[0]);
  kv.put(20, "v2");          // misses the failed node
  kv.recover_node(group[0]);  // stale now
  // Reads (quorum 2, starting from group[0]) must still return v2 and fix
  // the stale replica.
  EXPECT_EQ(kv.get(20), "v2");
  EXPECT_GE(kv.stats().read_repairs, 1u);
  EXPECT_EQ(kv.storage(group[0]).get(20), "v2");
}

TEST(KvCluster, AntiEntropyConvergesWipedNode) {
  KvCluster kv(small_options());
  for (KeyId key = 0; key < 50; ++key) {
    kv.put(key, "x" + std::to_string(key));
  }
  kv.wipe_node(2);
  kv.anti_entropy();
  for (KeyId key = 0; key < 50; ++key) {
    EXPECT_TRUE(kv.replicas_converged(key)) << "key " << key;
  }
}

TEST(KvCluster, AntiEntropyPropagatesTombstones) {
  KvCluster kv(small_options());
  kv.put(30, "doomed");
  const auto group = kv.partitioner().replica_group(30);
  kv.fail_node(group[2]);
  kv.erase(30);               // tombstone misses group[2]
  kv.recover_node(group[2]);
  kv.anti_entropy();
  EXPECT_EQ(kv.storage(group[2]).get(30), std::nullopt);
  EXPECT_TRUE(kv.replicas_converged(30));
}

// --- front-end cache integration ----------------------------------------------

KvClusterOptions cached_options(const std::string& policy = "lru") {
  KvClusterOptions options = small_options();
  options.cache_capacity = 16;
  options.cache_policy = policy;
  return options;
}

TEST(KvCluster, RepeatedGetsHitTheCache) {
  KvCluster kv(cached_options());
  kv.put(1, "hot");
  EXPECT_EQ(kv.get(1), "hot");  // miss → admit
  EXPECT_EQ(kv.get(1), "hot");  // hit
  EXPECT_EQ(kv.get(1), "hot");  // hit
  EXPECT_GE(kv.stats().cache_hits, 2u);
}

TEST(KvCluster, WriteInvalidatesCachedCopy) {
  // The coherence property: a cached read must never return a value older
  // than the latest acknowledged write.
  KvCluster kv(cached_options());
  kv.put(1, "v1");
  EXPECT_EQ(kv.get(1), "v1");  // now cached
  kv.put(1, "v2");
  EXPECT_EQ(kv.get(1), "v2") << "stale cache copy served after write";
}

TEST(KvCluster, EraseInvalidatesCachedCopy) {
  KvCluster kv(cached_options());
  kv.put(1, "v1");
  EXPECT_EQ(kv.get(1), "v1");
  kv.erase(1);
  EXPECT_EQ(kv.get(1), std::nullopt) << "deleted key still served from cache";
}

TEST(KvCluster, CoherenceHoldsUnderEveryPolicy) {
  for (const char* policy : {"lru", "lfu", "slru", "tinylfu"}) {
    KvCluster kv(cached_options(policy));
    for (int round = 0; round < 5; ++round) {
      for (KeyId key = 0; key < 40; ++key) {
        kv.put(key, std::to_string(round) + ":" + std::to_string(key));
      }
      for (KeyId key = 0; key < 40; ++key) {
        const auto value = kv.get(key);
        ASSERT_TRUE(value.has_value()) << policy;
        EXPECT_EQ(*value, std::to_string(round) + ":" + std::to_string(key))
            << policy << " served a stale value for key " << key;
      }
    }
  }
}

TEST(KvCluster, CacheAbsorbsHotKeyTraffic) {
  KvCluster kv(cached_options());
  kv.put(99, "hot");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(kv.get(99), "hot");
  }
  // First get misses, the rest hit.
  EXPECT_EQ(kv.stats().cache_hits, 99u);
  EXPECT_EQ(kv.stats().cache_misses, 1u);
}

// --- hinted handoff -----------------------------------------------------------

KvClusterOptions hinted_options() {
  KvClusterOptions options = small_options();
  options.hinted_handoff = true;
  return options;
}

TEST(KvClusterHints, WriteToDeadReplicaLeavesAHint) {
  KvCluster kv(hinted_options());
  const auto group = kv.partitioner().replica_group(7);
  kv.fail_node(group[2]);
  kv.put(7, "value");
  EXPECT_EQ(kv.stats().hints_stored, 1u);
  // The hint sits on the first live replica of the group.
  EXPECT_EQ(kv.hints_held_by(group[0]), 1u);
}

TEST(KvClusterHints, RecoveryReplaysHintsAndConverges) {
  KvCluster kv(hinted_options());
  const auto group = kv.partitioner().replica_group(7);
  kv.fail_node(group[2]);
  kv.put(7, "fresh");
  kv.recover_node(group[2]);
  EXPECT_EQ(kv.stats().hints_replayed, 1u);
  EXPECT_EQ(kv.storage(group[2]).get(7), "fresh");
  EXPECT_TRUE(kv.replicas_converged(7));
  EXPECT_EQ(kv.hints_held_by(group[0]), 0u);  // delivered hints are dropped
}

TEST(KvClusterHints, TombstoneHintsPropagateDeletes) {
  KvCluster kv(hinted_options());
  kv.put(9, "doomed");
  const auto group = kv.partitioner().replica_group(9);
  kv.fail_node(group[1]);
  kv.erase(9);
  kv.recover_node(group[1]);
  EXPECT_EQ(kv.storage(group[1]).get(9), std::nullopt);
  EXPECT_TRUE(kv.replicas_converged(9));
}

TEST(KvClusterHints, StaleHintDoesNotRegressNewerData) {
  KvCluster kv(hinted_options());
  const auto group = kv.partitioner().replica_group(5);
  kv.fail_node(group[2]);
  kv.put(5, "v1");  // hint for group[2] at version 1
  kv.recover_node(group[2]);
  kv.put(5, "v2");  // all replicas now at v2
  // Write a second hint cycle: fail + write + recover must not bring back
  // v1 semantics; versions protect against replay disorder.
  EXPECT_EQ(kv.storage(group[2]).get(5), "v2");
  EXPECT_TRUE(kv.replicas_converged(5));
}

TEST(KvClusterHints, WipedHolderLosesItsHints) {
  KvCluster kv(hinted_options());
  const auto group = kv.partitioner().replica_group(3);
  kv.fail_node(group[2]);
  kv.put(3, "value");
  const NodeId holder = group[0];
  ASSERT_EQ(kv.hints_held_by(holder), 1u);
  kv.wipe_node(holder);  // disk loss: the hint is gone
  EXPECT_EQ(kv.hints_held_by(holder), 0u);
  kv.recover_node(group[2]);
  EXPECT_EQ(kv.stats().hints_replayed, 0u);
  // Convergence now needs read-repair or anti-entropy — and anti-entropy
  // still fixes everything.
  kv.anti_entropy();
  EXPECT_TRUE(kv.replicas_converged(3));
}

TEST(KvClusterHints, ManyKeysManyFailuresConvergeWithoutAntiEntropy) {
  KvCluster kv(hinted_options());
  const NodeId victim = 4;
  kv.fail_node(victim);
  for (KeyId key = 0; key < 200; ++key) {
    kv.put(key, "x" + std::to_string(key));
  }
  kv.recover_node(victim);
  for (KeyId key = 0; key < 200; ++key) {
    EXPECT_TRUE(kv.replicas_converged(key)) << "key " << key;
  }
  EXPECT_GT(kv.stats().hints_replayed, 0u);
}

TEST(KvClusterHints, DisabledByDefault) {
  KvCluster kv(small_options());
  const auto group = kv.partitioner().replica_group(7);
  kv.fail_node(group[2]);
  kv.put(7, "value");
  EXPECT_EQ(kv.stats().hints_stored, 0u);
}

TEST(KvCluster, RejectsBadQuorums) {
  KvClusterOptions options = small_options();
  options.write_quorum = 4;  // > d
  EXPECT_DEATH(KvCluster{options}, "quorum");
  options = small_options();
  options.read_quorum = 0;
  EXPECT_DEATH(KvCluster{options}, "quorum");
}

}  // namespace
}  // namespace scp
