#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "workload/stream.h"
#include "workload/trace.h"

namespace scp {
namespace {

TEST(QueryStream, TimesAreStrictlyIncreasing) {
  const auto d = QueryDistribution::uniform(100);
  QueryStream stream(d, 1000.0, 1);
  double last = -1.0;
  for (int i = 0; i < 1000; ++i) {
    const Query q = stream.next();
    EXPECT_GT(q.time, last);
    last = q.time;
    EXPECT_LT(q.key, 100u);
  }
}

TEST(QueryStream, RateMatchesExpectation) {
  const auto d = QueryDistribution::uniform(10);
  QueryStream stream(d, 5000.0, 2);
  const auto queries = stream.generate(2.0);
  // Poisson(rate·T): mean 10000, sd 100 → ±5 sd band.
  EXPECT_NEAR(static_cast<double>(queries.size()), 10000.0, 500.0);
  for (const Query& q : queries) {
    EXPECT_LT(q.time, 2.0);
  }
}

TEST(QueryStream, SameSeedSameStream) {
  const auto d = QueryDistribution::zipf(50, 1.1);
  QueryStream a(d, 100.0, 7);
  QueryStream b(d, 100.0, 7);
  for (int i = 0; i < 100; ++i) {
    const Query qa = a.next();
    const Query qb = b.next();
    EXPECT_DOUBLE_EQ(qa.time, qb.time);
    EXPECT_EQ(qa.key, qb.key);
  }
}

TEST(QueryStream, KeysFollowDistribution) {
  const auto d = QueryDistribution::uniform_over(4, 100);
  QueryStream stream(d, 1e6, 3);
  const auto queries = stream.generate(0.1);
  std::vector<int> counts(4, 0);
  for (const Query& q : queries) {
    ASSERT_LT(q.key, 4u);
    ++counts[q.key];
  }
  const double total = static_cast<double>(queries.size());
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / total, 0.25, 0.02);
  }
}

TEST(SampleKeyCounts, TotalsAndSupport) {
  const auto d = QueryDistribution::uniform_over(5, 50);
  const auto counts = sample_key_counts(d, 10000, 4);
  ASSERT_EQ(counts.size(), 50u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (i >= 5) {
      EXPECT_EQ(counts[i], 0u) << "key outside support was sampled";
    }
  }
  EXPECT_EQ(total, 10000u);
}

TEST(SampleKeyCounts, ZipfSkewShowsInCounts) {
  const auto d = QueryDistribution::zipf(1000, 1.2);
  const auto counts = sample_key_counts(d, 50000, 5);
  EXPECT_GT(counts[0], counts[100]);
  EXPECT_GT(counts[0], 1000u);
}

TEST(Trace, RoundTripsQueries) {
  const auto d = QueryDistribution::uniform(20);
  QueryStream stream(d, 1000.0, 6);
  const auto queries = stream.generate(0.5);
  const std::string path = ::testing::TempDir() + "/scp_trace_test.bin";
  ASSERT_TRUE(write_trace(path, queries));
  std::vector<Query> loaded;
  ASSERT_TRUE(read_trace(path, loaded));
  ASSERT_EQ(loaded.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].time, queries[i].time);
    EXPECT_EQ(loaded[i].key, queries[i].key);
  }
  std::remove(path.c_str());
}

TEST(Trace, EmptyTraceRoundTrips) {
  const std::string path = ::testing::TempDir() + "/scp_trace_empty.bin";
  ASSERT_TRUE(write_trace(path, {}));
  std::vector<Query> loaded = {{1.0, 2}};
  ASSERT_TRUE(read_trace(path, loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(Trace, MissingFileFails) {
  std::vector<Query> loaded;
  EXPECT_FALSE(read_trace("/nonexistent/dir/file.bin", loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST(Trace, CorruptMagicFails) {
  const std::string path = ::testing::TempDir() + "/scp_trace_bad.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[32] = "not a trace file at all";
  std::fwrite(garbage, 1, sizeof garbage, f);
  std::fclose(f);
  std::vector<Query> loaded;
  EXPECT_FALSE(read_trace(path, loaded));
  std::remove(path.c_str());
}

TEST(Trace, TruncatedFileFails) {
  const auto d = QueryDistribution::uniform(5);
  QueryStream stream(d, 1000.0, 8);
  const auto queries = stream.generate(0.1);
  const std::string path = ::testing::TempDir() + "/scp_trace_trunc.bin";
  ASSERT_TRUE(write_trace(path, queries));
  // Truncate the file to cut the last record in half.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 7), 0);
  std::vector<Query> loaded;
  EXPECT_FALSE(read_trace(path, loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace scp
