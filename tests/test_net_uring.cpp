// UringLoop-specific paths that the reactor-parameterized suites cannot
// force: provided-buffer-ring exhaustion (ENOBUFS → recycle → re-arm) and
// the accept re-arm path taken when a multishot accept terminates. Both use
// UringOptions test hooks, so they go through make_uring_loop() directly
// rather than make_reactor(). The whole file skips (visibly) on hosts
// without usable io_uring.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/sync_client.h"
#include "net/uring_loop.h"
#include "net/wire.h"

namespace scp::net {
namespace {

class UringSpecific : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string reason;
    if (!uring_runtime_available(&reason)) {
      GTEST_SKIP() << "SKIPPED: no io_uring (" << reason << ")";
    }
  }
};

/// An echo server on `loop`: every decoded message is sent straight back.
void make_echo(Reactor& loop) {
  Reactor::Callbacks callbacks;
  callbacks.on_message = [&loop](ConnId conn, Message&& message) {
    loop.send(conn, message);
  };
  loop.set_callbacks(std::move(callbacks));
}

TEST_F(UringSpecific, BufferRingExhaustionRecyclesAndRearms) {
  // Two 256-byte provided buffers against a multi-kilobyte blast: the
  // kernel must hit ENOBUFS (terminating the multishot recv), and the loop
  // must recycle + re-arm without losing a byte of the stream.
  UringOptions options;
  options.buf_count = 2;
  options.buf_size = 256;
  auto loop = make_uring_loop(options);
  ASSERT_NE(loop, nullptr);
  make_echo(*loop);
  ASSERT_TRUE(loop->listen("127.0.0.1", 0));
  ASSERT_TRUE(loop->start());

  // Raw socket so we can write the whole blast back-to-back instead of the
  // one-frame-at-a-time cadence a sync call() would produce.
  Socket sock = connect_tcp("127.0.0.1", loop->port(), /*timeout_s=*/2.0);
  ASSERT_TRUE(sock.valid());

  constexpr int kFrames = 200;
  std::vector<std::uint8_t> blast;
  for (int i = 0; i < kFrames; ++i) {
    Message message;
    message.type = MsgType::kValue;
    message.key = static_cast<std::uint64_t>(i);
    message.payload.assign(512, static_cast<char>('a' + (i % 26)));
    const std::vector<std::uint8_t> frame = encode(message);
    blast.insert(blast.end(), frame.begin(), frame.end());
  }
  std::size_t sent = 0;
  while (sent < blast.size()) {
    const ssize_t n =
        ::send(sock.fd(), blast.data() + sent, blast.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }

  FrameReader reader;
  std::vector<Message> replies;
  std::uint8_t chunk[4096];
  while (replies.size() < kFrames) {
    const ssize_t n = ::recv(sock.fd(), chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "peer closed after " << replies.size() << " replies";
    reader.append({chunk, static_cast<std::size_t>(n)});
    while (auto frame = reader.next_frame()) {
      auto reply = decode_payload(*frame);
      ASSERT_TRUE(reply.has_value());
      replies.push_back(std::move(*reply));
    }
  }

  // Stream-exact echo: every frame back, in order, payloads intact.
  ASSERT_EQ(replies.size(), kFrames);
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(replies[i].key, static_cast<std::uint64_t>(i));
    EXPECT_EQ(replies[i].payload.size(), 512u);
    EXPECT_EQ(replies[i].payload[0], static_cast<char>('a' + (i % 26)));
  }
  EXPECT_EQ(loop->counters().frames_in.load(), kFrames);
  EXPECT_EQ(loop->counters().frames_out.load(), kFrames);
  // The point of the test: the tiny ring really starved at least once.
  EXPECT_GT(loop->counters().buf_starved.load(), 0u);
  EXPECT_EQ(loop->counters().protocol_errors.load(), 0u);

  sock.reset();
  loop->stop(0.5);
}

TEST_F(UringSpecific, AcceptRearmsAfterTerminalCqe) {
  // single_shot_accept arms accept WITHOUT the multishot flag, so every
  // connection delivers a terminal CQE (no IORING_CQE_F_MORE) and exercises
  // the re-arm path a kernel-side multishot termination would take. N
  // sequential clients must all get served.
  UringOptions options;
  options.single_shot_accept = true;
  auto loop = make_uring_loop(options);
  ASSERT_NE(loop, nullptr);
  make_echo(*loop);
  ASSERT_TRUE(loop->listen("127.0.0.1", 0));
  ASSERT_TRUE(loop->start());

  constexpr int kClients = 8;
  for (int i = 0; i < kClients; ++i) {
    SyncClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", loop->port(), 2.0))
        << "client " << i << " could not connect (accept not re-armed?)";
    // kGet, not kPing: the wire format only carries `key` for key-bearing
    // message types, and the echoed key is how we tell replies apart.
    Message request;
    request.type = MsgType::kGet;
    request.key = static_cast<std::uint64_t>(i);
    const auto reply = client.call(request, 2.0);
    ASSERT_TRUE(reply.has_value()) << "client " << i;
    EXPECT_EQ(reply->type, MsgType::kGet);
    EXPECT_EQ(reply->key, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(loop->counters().accepted.load(), kClients);
  loop->stop(0.5);
}

}  // namespace
}  // namespace scp::net
