#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "cluster/node.h"

namespace scp {
namespace {

TEST(BackendNode, StartsIdle) {
  BackendNode node(3, 100.0);
  EXPECT_EQ(node.id(), 3u);
  EXPECT_DOUBLE_EQ(node.capacity_qps(), 100.0);
  EXPECT_TRUE(node.has_capacity_limit());
  EXPECT_DOUBLE_EQ(node.offered_rate(), 0.0);
  EXPECT_FALSE(node.saturated());
}

TEST(BackendNode, UnlimitedCapacityNeverSaturates) {
  BackendNode node(0);
  EXPECT_FALSE(node.has_capacity_limit());
  node.add_offered_rate(1e9);
  EXPECT_FALSE(node.saturated());
}

TEST(BackendNode, SaturatesAboveCapacity) {
  BackendNode node(0, 10.0);
  node.add_offered_rate(9.0);
  EXPECT_FALSE(node.saturated());
  node.add_offered_rate(2.0);
  EXPECT_TRUE(node.saturated());
}

TEST(BackendNode, EventCountersAccumulate) {
  BackendNode node(0, 10.0);
  node.record_arrival();
  node.record_arrival();
  node.record_served(1);
  node.record_dropped(1);
  node.set_queue_depth(5);
  EXPECT_EQ(node.arrivals(), 2u);
  EXPECT_EQ(node.served(), 1u);
  EXPECT_EQ(node.dropped(), 1u);
  EXPECT_EQ(node.queue_depth(), 5u);
}

TEST(BackendNode, ResetClearsAllAccounting) {
  BackendNode node(0, 10.0);
  node.add_offered_rate(99.0);
  node.record_arrival();
  node.record_dropped(3);
  node.reset();
  EXPECT_DOUBLE_EQ(node.offered_rate(), 0.0);
  EXPECT_EQ(node.arrivals(), 0u);
  EXPECT_EQ(node.dropped(), 0u);
  EXPECT_FALSE(node.saturated());
}

TEST(Cluster, BuildsNodesFromPartitioner) {
  Cluster cluster(make_partitioner("hash", 16, 2, 1), 50.0);
  EXPECT_EQ(cluster.node_count(), 16u);
  EXPECT_EQ(cluster.replication(), 2u);
  EXPECT_EQ(cluster.nodes().size(), 16u);
  for (NodeId id = 0; id < 16; ++id) {
    EXPECT_EQ(cluster.node(id).id(), id);
    EXPECT_DOUBLE_EQ(cluster.node(id).capacity_qps(), 50.0);
  }
}

TEST(Cluster, ReplicaGroupDelegatesToPartitioner) {
  Cluster cluster(make_partitioner("hash", 16, 3, 7));
  std::vector<NodeId> via_cluster(3);
  cluster.replica_group(42, std::span<NodeId>(via_cluster));
  EXPECT_EQ(via_cluster, cluster.partitioner().replica_group(42));
}

TEST(Cluster, OfferedRatesAndMax) {
  Cluster cluster(make_partitioner("hash", 4, 1, 1));
  cluster.node(0).add_offered_rate(5.0);
  cluster.node(2).add_offered_rate(9.0);
  const std::vector<double> rates = cluster.offered_rates();
  ASSERT_EQ(rates.size(), 4u);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
  EXPECT_DOUBLE_EQ(rates[2], 9.0);
  EXPECT_DOUBLE_EQ(cluster.max_offered_rate(), 9.0);
}

TEST(Cluster, SaturatedNodeCount) {
  Cluster cluster(make_partitioner("hash", 4, 1, 1), 10.0);
  EXPECT_EQ(cluster.saturated_node_count(), 0u);
  cluster.node(1).add_offered_rate(11.0);
  cluster.node(3).add_offered_rate(25.0);
  EXPECT_EQ(cluster.saturated_node_count(), 2u);
}

TEST(Cluster, ResetAccountingClearsEveryNode) {
  Cluster cluster(make_partitioner("hash", 4, 1, 1), 10.0);
  cluster.node(0).add_offered_rate(99.0);
  cluster.node(1).record_arrival();
  cluster.reset_accounting();
  EXPECT_DOUBLE_EQ(cluster.max_offered_rate(), 0.0);
  EXPECT_EQ(cluster.node(1).arrivals(), 0u);
}

}  // namespace
}  // namespace scp
