// Failure injection: bounded disruption and survival of the guarantee.
#include <gtest/gtest.h>

#include "sim/failure.h"

namespace scp {
namespace {

FailureExperimentConfig base_config() {
  FailureExperimentConfig config;
  config.nodes = 100;
  config.replication = 3;
  config.items = 10000;
  config.cache_size = 300;  // above c*(100, 3) with margin
  config.query_rate = 10000.0;
  return config;
}

TEST(FailureExperiment, ZeroFailuresIsAIdentity) {
  const auto workload = QueryDistribution::uniform(10000);
  const FailureExperimentResult r =
      run_failure_experiment(base_config(), 0, workload, 1);
  EXPECT_EQ(r.failed_nodes, 0u);
  EXPECT_EQ(r.alive_nodes, 100u);
  EXPECT_DOUBLE_EQ(r.disruption_fraction, 0.0);
  EXPECT_GT(r.gain_before, 0.9);
  EXPECT_LT(r.gain_before, 1.3);
}

TEST(FailureExperiment, DisruptionScalesWithFailures) {
  const auto workload = QueryDistribution::uniform(10000);
  const FailureExperimentResult one =
      run_failure_experiment(base_config(), 1, workload, 2);
  const FailureExperimentResult ten =
      run_failure_experiment(base_config(), 10, workload, 2);
  EXPECT_GT(one.disruption_fraction, 0.0);
  // Expected disruption for f failures ≈ f·d/n; one failure ≈ 3%, and never
  // a full reshuffle.
  EXPECT_LT(one.disruption_fraction, 0.15);
  EXPECT_GT(ten.disruption_fraction, one.disruption_fraction);
  EXPECT_LT(ten.disruption_fraction, 0.6);
}

TEST(FailureExperiment, GuaranteeSurvivesModerateFailures) {
  // c was provisioned for n = 100; with f = 10 failures the effective
  // threshold c*(90) is *smaller*, so the adversarial best response should
  // still be ineffective relative to the post-failure baseline R/(n−f).
  const auto attack = QueryDistribution::uniform(10000);  // Case-2 best (x=m)
  const FailureExperimentResult r =
      run_failure_experiment(base_config(), 10, attack, 3);
  EXPECT_LT(r.gain_after, 1.15);
}

TEST(FailureExperiment, FocusedAttackStillBlockedAfterFailures) {
  FailureExperimentConfig config = base_config();
  const auto attack =
      QueryDistribution::uniform_over(config.cache_size + 1, config.items);
  const FailureExperimentResult r =
      run_failure_experiment(config, 10, attack, 4);
  // One uncached key, least-loaded within its (surviving) group:
  // gain ≈ (n−f)/(c+1) < 1 for c = 300.
  EXPECT_LT(r.gain_after, 1.0);
}

TEST(FailureExperiment, UnderprovisionedStaysBroken) {
  FailureExperimentConfig config = base_config();
  config.cache_size = 20;
  const auto attack = QueryDistribution::uniform_over(21, config.items);
  const FailureExperimentResult r =
      run_failure_experiment(config, 5, attack, 5);
  EXPECT_GT(r.gain_before, 1.0);
  EXPECT_GT(r.gain_after, 1.0);
}

TEST(FailureExperiment, DeterministicGivenSeed) {
  const auto workload = QueryDistribution::zipf(10000, 1.01);
  const FailureExperimentResult a =
      run_failure_experiment(base_config(), 7, workload, 9);
  const FailureExperimentResult b =
      run_failure_experiment(base_config(), 7, workload, 9);
  EXPECT_DOUBLE_EQ(a.gain_before, b.gain_before);
  EXPECT_DOUBLE_EQ(a.gain_after, b.gain_after);
  EXPECT_DOUBLE_EQ(a.disruption_fraction, b.disruption_fraction);
}

TEST(FailureExperiment, RejectsFailingBelowReplication) {
  const auto workload = QueryDistribution::uniform(10000);
  EXPECT_DEATH(run_failure_experiment(base_config(), 98, workload, 1),
               "replication");
}

TEST(FailureExperiment, RejectsMismatchedWorkload) {
  const auto workload = QueryDistribution::uniform(123);
  EXPECT_DEATH(run_failure_experiment(base_config(), 1, workload, 1),
               "match");
}

}  // namespace
}  // namespace scp
