// src/detect unit tests: the SpaceSaving sketch's classic guarantees, the
// HotKeyDetector report/age cycle, and the HotKeyAggregator's cross-node
// classification (threshold, hysteresis, stale-gossip handling).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "detect/hot_key.h"
#include "detect/space_saving.h"

namespace scp::detect {
namespace {

TEST(SpaceSaving, ExactWhileNotFull) {
  SpaceSaving sketch(8);
  for (int i = 0; i < 5; ++i) sketch.observe(1);
  for (int i = 0; i < 3; ++i) sketch.observe(2);
  sketch.observe(3);

  EXPECT_EQ(sketch.size(), 3u);
  EXPECT_EQ(sketch.total(), 9u);
  EXPECT_EQ(sketch.estimate(1), 5u);
  EXPECT_EQ(sketch.estimate(2), 3u);
  EXPECT_EQ(sketch.estimate(3), 1u);
  // Free slots left: an absent key would start fresh, so its estimate is 0.
  EXPECT_EQ(sketch.estimate(99), 0u);

  const auto top = sketch.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, 2u);
}

TEST(SpaceSaving, TakeoverInheritsMinAsError) {
  SpaceSaving sketch(2);
  sketch.observe(1, 10);
  sketch.observe(2, 4);
  // Full; key 3 evicts the minimum (key 2, count 4) and inherits its count.
  sketch.observe(3);
  EXPECT_FALSE(sketch.monitored(2));
  ASSERT_TRUE(sketch.monitored(3));
  EXPECT_EQ(sketch.estimate(3), 5u);  // 4 inherited + 1 observed
  const auto top = sketch.top(2);
  const auto it = std::find_if(top.begin(), top.end(),
                               [](const auto& e) { return e.key == 3; });
  ASSERT_NE(it, top.end());
  EXPECT_EQ(it->error, 4u);
  // Absent keys are bounded by the minimum monitored count when full.
  EXPECT_EQ(sketch.estimate(42), 5u);
}

TEST(SpaceSaving, NeverUnderestimatesAndHeavyKeysAreMonitored) {
  // Adversarial-ish stream: heavy keys buried in uniform noise.
  constexpr std::size_t kCapacity = 32;
  SpaceSaving sketch(kCapacity);
  Rng rng(7);
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    // ~30% of the stream on 4 heavy keys, the rest uniform over 4096.
    const std::uint64_t key = (i % 10 < 3)
                                  ? 1000 + static_cast<std::uint64_t>(i % 4)
                                  : rng.uniform_u64(4096);
    truth[key]++;
    sketch.observe(key);
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.estimate(key), count) << "key " << key;
  }
  // Any key with true frequency > total/capacity is guaranteed monitored;
  // each heavy key carries ~7.5% >> 1/32.
  for (std::uint64_t key = 1000; key < 1004; ++key) {
    EXPECT_TRUE(sketch.monitored(key)) << "key " << key;
    EXPECT_LE(sketch.estimate(key) - truth[key],
              sketch.total() / kCapacity);
  }
}

TEST(SpaceSaving, HalveAgesAndEvictsZeros) {
  SpaceSaving sketch(4);
  sketch.observe(1, 8);
  sketch.observe(2, 1);
  sketch.halve();
  EXPECT_EQ(sketch.estimate(1), 4u);
  EXPECT_FALSE(sketch.monitored(2));  // 1/2 == 0 → evicted
  EXPECT_EQ(sketch.size(), 1u);
  EXPECT_EQ(sketch.total(), 4u);
  // Aged sketch keeps absorbing new keys correctly.
  sketch.observe(3, 2);
  EXPECT_EQ(sketch.estimate(3), 2u);
  EXPECT_EQ(sketch.total(), 6u);
}

TEST(Detector, ReportCarriesTopKWithMonotonicSeq) {
  HotKeyDetector detector(/*sketch_capacity=*/16, /*report_k=*/2);
  for (int i = 0; i < 9; ++i) detector.observe(5);
  for (int i = 0; i < 4; ++i) detector.observe(6);
  detector.observe(7);

  HotKeyReport first = detector.report(/*node=*/3);
  EXPECT_EQ(first.node, 3u);
  EXPECT_EQ(first.total, 14u);
  ASSERT_EQ(first.entries.size(), 2u);
  EXPECT_EQ(first.entries[0].key, 5u);
  EXPECT_EQ(first.entries[0].count, 9u);
  EXPECT_EQ(first.entries[1].key, 6u);

  detector.age();
  HotKeyReport second = detector.report(3);
  EXPECT_GT(second.seq, first.seq);
  EXPECT_EQ(second.total, 7u);  // halved
}

HotKeyReport make_report(NodeId node, std::uint64_t seq, std::uint64_t total,
                         std::vector<HotKeyEntry> entries) {
  HotKeyReport report;
  report.node = node;
  report.seq = seq;
  report.total = total;
  report.entries = std::move(entries);
  return report;
}

TEST(Aggregator, ClusterViewSumsReplicasAndDilutesLocalSkew) {
  // Three nodes, 1000 requests each. Attack key 7 (d=2) splits its flood
  // between its two replicas, 35 observations each: the cluster view sums
  // them (70/3000 ≈ 2.3% ≥ 2% → hot). Key 8 looks warm on node 2 alone
  // (25/1000 = 2.5%) but the cluster-wide stream dilutes it to 0.83%,
  // below the 1% exit bound → correctly unflagged once every node has
  // reported. This is what gossiping buys over each node's local view.
  HotKeyAggregator agg(
      {.hot_fraction = 0.02, .drop_ratio = 0.5, .min_samples = 100});
  agg.update(make_report(2, 1, 1000, {{8, 25}}));
  EXPECT_EQ(agg.hot().count(8), 1u);  // local view: no dilution yet
  agg.update(make_report(0, 1, 1000, {{7, 35}}));
  agg.update(make_report(1, 1, 1000, {{7, 35}}));
  EXPECT_EQ(agg.hot().count(7), 1u);
  EXPECT_EQ(agg.hot().count(8), 0u);
  EXPECT_EQ(agg.aggregated_total(), 3000u);
  EXPECT_EQ(agg.reporting_nodes(), 3u);
}

TEST(Aggregator, DilutionUnflagsWithHysteresis) {
  HotKeyAggregator agg(
      {.hot_fraction = 0.02, .drop_ratio = 0.5, .min_samples = 100});
  agg.update(make_report(0, 1, 1000, {{7, 40}}));  // 4% → hot
  EXPECT_EQ(agg.hot().count(7), 1u);
  // Same count against a much larger stream: 40/2600 ≈ 1.5% — between the
  // exit bound (1%) and the entry bound (2%): hysteresis keeps it flagged.
  agg.update(make_report(1, 1, 1600, {}));
  EXPECT_EQ(agg.hot().count(7), 1u);
  // Further dilution pushes it below hot_fraction × drop_ratio: unflagged.
  agg.update(make_report(2, 1, 3000, {}));
  EXPECT_EQ(agg.hot().count(7), 0u);
}

TEST(Aggregator, StaleAndDuplicateGossipIgnored) {
  HotKeyAggregator agg(
      {.hot_fraction = 0.02, .drop_ratio = 0.5, .min_samples = 100});
  agg.update(make_report(0, 5, 1000, {{7, 100}}));
  EXPECT_EQ(agg.hot().count(7), 1u);
  // A re-gossiped older report from the same node must not roll state back.
  agg.update(make_report(0, 4, 10, {}));
  agg.update(make_report(0, 5, 10, {}));
  EXPECT_EQ(agg.aggregated_total(), 1000u);
  EXPECT_EQ(agg.hot().count(7), 1u);
  // A genuinely newer one replaces it.
  agg.update(make_report(0, 6, 1000, {}));
  EXPECT_EQ(agg.hot().count(7), 0u);
}

TEST(Aggregator, MinSamplesGuardsColdStart) {
  HotKeyAggregator agg(
      {.hot_fraction = 0.02, .drop_ratio = 0.5, .min_samples = 256});
  // 100% share, but only 3 samples: no classification yet.
  const auto newly = agg.update(make_report(0, 1, 3, {{7, 3}}));
  EXPECT_TRUE(newly.empty());
  EXPECT_TRUE(agg.hot().empty());
  // Once the floor is met the same shape flags immediately.
  agg.update(make_report(1, 1, 400, {{7, 40}}));
  EXPECT_EQ(agg.hot().count(7), 1u);
}

TEST(Aggregator, NewlyHotReportedExactlyOnce) {
  HotKeyAggregator agg(
      {.hot_fraction = 0.02, .drop_ratio = 0.5, .min_samples = 100});
  auto newly = agg.update(make_report(0, 1, 1000, {{7, 100}}));
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0], 7u);
  // Still hot on the next report: not "newly" anymore.
  newly = agg.update(make_report(0, 2, 1000, {{7, 100}}));
  EXPECT_TRUE(newly.empty());
}

}  // namespace
}  // namespace scp::detect
