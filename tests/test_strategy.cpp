#include "adversary/strategy.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace scp {
namespace {

SystemParams make_params(std::uint64_t cache_size) {
  SystemParams p;
  p.nodes = 1000;
  p.replication = 3;
  p.items = 100000;
  p.cache_size = cache_size;
  p.query_rate = 1e5;
  return p;
}

TEST(PlanAttack, SmallCachePlansXEqualsCPlusOne) {
  const AttackPlan plan = plan_attack(make_params(200), 1.2);
  EXPECT_EQ(plan.regime, AttackRegime::kEffective);
  EXPECT_EQ(plan.queried_keys, 201u);
  EXPECT_GT(plan.predicted_gain_bound, 1.0);
}

TEST(PlanAttack, LargeCachePlansFullKeySpace) {
  const AttackPlan plan = plan_attack(make_params(2000), 1.2);
  EXPECT_EQ(plan.regime, AttackRegime::kIneffective);
  EXPECT_EQ(plan.queried_keys, 100000u);
  EXPECT_LT(plan.predicted_gain_bound, 1.0);
}

TEST(PlanAttack, NoCacheDegenerateSingleKey) {
  const AttackPlan plan = plan_attack(make_params(0), 1.2);
  EXPECT_EQ(plan.queried_keys, 1u);
  // Gain bound for a point-mass attack: n/d.
  EXPECT_NEAR(plan.predicted_gain_bound, 1000.0 / 3.0, 1e-9);
}

TEST(AttackPlanToDistribution, UniformOverQueriedKeys) {
  const AttackPlan plan = plan_attack(make_params(200), 1.2);
  const QueryDistribution d = plan.to_distribution(100000);
  EXPECT_EQ(d.support_size(), 201u);
  EXPECT_NEAR(d.probability(0), 1.0 / 201.0, 1e-12);
  EXPECT_NEAR(d.probability(200), 1.0 / 201.0, 1e-12);
  EXPECT_TRUE(d.is_valid());
}

TEST(CandidateQueriedKeys, AlwaysIncludesEndpoints) {
  const SystemParams p = make_params(500);
  const auto xs = candidate_queried_keys(p, 0);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs.front(), 501u);
  EXPECT_EQ(xs.back(), p.items);
}

TEST(CandidateQueriedKeys, GridPointsAreSortedUniqueInRange) {
  const SystemParams p = make_params(500);
  const auto xs = candidate_queried_keys(p, 8);
  EXPECT_GE(xs.size(), 2u);
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
  EXPECT_EQ(std::adjacent_find(xs.begin(), xs.end()), xs.end());
  for (const std::uint64_t x : xs) {
    EXPECT_GT(x, p.cache_size);
    EXPECT_LE(x, p.items);
  }
}

TEST(CandidateQueriedKeys, DegenerateWhenCachePlusOneIsM) {
  SystemParams p = make_params(99999);
  const auto xs = candidate_queried_keys(p, 5);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_EQ(xs[0], 100000u);
}

TEST(BestResponseSearch, FindsTheEvaluatorsArgmax) {
  const SystemParams p = make_params(100);
  // Synthetic evaluator peaking at x = c+1 (Case 1 behaviour).
  const auto evaluate = [&](std::uint64_t x) {
    return 1000.0 / static_cast<double>(x);
  };
  const BestResponse best = best_response_search(p, evaluate, 6);
  EXPECT_EQ(best.queried_keys, 101u);
  EXPECT_NEAR(best.gain, 1000.0 / 101.0, 1e-12);
}

TEST(BestResponseSearch, FindsFullSweepArgmaxWhenIncreasing) {
  const SystemParams p = make_params(100);
  // Case 2 behaviour: increasing in x.
  const auto evaluate = [&](std::uint64_t x) {
    return static_cast<double>(x) / 1e6;
  };
  const BestResponse best = best_response_search(p, evaluate, 6);
  EXPECT_EQ(best.queried_keys, p.items);
}

TEST(BestResponseSearch, EvaluatesEveryCandidateExactlyOnce) {
  const SystemParams p = make_params(100);
  std::vector<std::uint64_t> seen;
  const auto evaluate = [&](std::uint64_t x) {
    seen.push_back(x);
    return 0.5;
  };
  best_response_search(p, evaluate, 4);
  const auto expected = candidate_queried_keys(p, 4);
  EXPECT_EQ(seen, expected);
}

}  // namespace
}  // namespace scp
