// Loopback integration tests for the live serving tier: real TCP servers on
// kernel-assigned ports, driven by the blocking SyncClient. Labeled slow —
// each case spins up servers and sleeps on real sockets.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/partitioner.h"
#include "net/backend_server.h"
#include "net/frontend_server.h"
#include "net/sync_client.h"
#include "obs/metrics.h"

namespace scp::net {
namespace {

constexpr std::uint64_t kPartitionSeed = 77;

/// Reactor backend under test: set per-case by the fixture from the test
/// parameter, read by the config helpers so every server in a case (fleet
/// and frontend alike) runs the same loop implementation.
ReactorKind g_reactor = ReactorKind::kEpoll;

class ReactorSuite : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(parse_reactor_kind(GetParam(), g_reactor));
    if (g_reactor == ReactorKind::kUring) {
      std::string reason;
      if (!uring_available(&reason)) {
        GTEST_SKIP() << "SKIPPED: no io_uring (" << reason << ")";
      }
    }
  }
  void TearDown() override { g_reactor = ReactorKind::kEpoll; }
};

static std::string reactor_name(
    const ::testing::TestParamInfo<const char*>& info) {
  return info.param;
}

class BackendLoopback : public ReactorSuite {};
class FrontendLoopback : public ReactorSuite {};
INSTANTIATE_TEST_SUITE_P(Reactors, BackendLoopback,
                         ::testing::Values("epoll", "uring"), reactor_name);
INSTANTIATE_TEST_SUITE_P(Reactors, FrontendLoopback,
                         ::testing::Values("epoll", "uring"), reactor_name);

BackendConfig backend_config(std::uint32_t node_id, std::uint32_t nodes,
                             std::uint32_t replication, std::uint64_t items) {
  BackendConfig config;
  config.node_id = node_id;
  config.nodes = nodes;
  config.replication = replication;
  config.partition_seed = kPartitionSeed;
  config.items = items;
  config.reactor = g_reactor;
  return config;
}

/// A running backend fleet + the endpoint list a frontend needs.
struct Fleet {
  std::vector<std::unique_ptr<BackendServer>> backends;
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
};

Fleet start_fleet(std::uint32_t nodes, std::uint32_t replication,
                  std::uint64_t items) {
  Fleet fleet;
  for (std::uint32_t node = 0; node < nodes; ++node) {
    auto backend = std::make_unique<BackendServer>(
        backend_config(node, nodes, replication, items));
    EXPECT_TRUE(backend->start());
    EXPECT_NE(backend->port(), 0) << "port 0 must become kernel-assigned";
    fleet.endpoints.emplace_back("127.0.0.1", backend->port());
    fleet.backends.push_back(std::move(backend));
  }
  return fleet;
}

FrontendConfig frontend_config(const Fleet& fleet, std::uint32_t nodes,
                               std::uint32_t replication, std::uint64_t items,
                               std::size_t cache_capacity) {
  FrontendConfig config;
  config.nodes = nodes;
  config.replication = replication;
  config.partition_seed = kPartitionSeed;
  config.backends = fleet.endpoints;
  config.cache_policy = "perfect";
  config.cache_capacity = cache_capacity;
  config.items = items;
  config.reactor = g_reactor;
  return config;
}

TEST_P(BackendLoopback, ServesOwnedKeysAndRedirectsOthers) {
  constexpr std::uint32_t kNodes = 4;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 64;
  BackendServer server(backend_config(0, kNodes, kReplication, kItems));
  ASSERT_TRUE(server.start());

  auto partitioner =
      make_partitioner("hash", kNodes, kReplication, kPartitionSeed);
  std::vector<NodeId> group(kReplication);

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  std::uint64_t owned = 0;
  std::uint64_t redirected = 0;
  for (std::uint64_t key = 0; key < kItems; ++key) {
    partitioner->replica_group(key, group);
    const bool owner = std::find(group.begin(), group.end(), NodeId{0}) !=
                       group.end();
    const auto reply = client.get(key);
    ASSERT_TRUE(reply.has_value()) << "key " << key;
    if (owner) {
      EXPECT_EQ(reply->type, MsgType::kValue);
      EXPECT_EQ(reply->payload, make_value(key, 64));
      ++owned;
    } else {
      ASSERT_EQ(reply->type, MsgType::kRedirect);
      EXPECT_EQ(reply->node, group[0]);
      ++redirected;
    }
  }
  EXPECT_GT(owned, 0u);
  EXPECT_GT(redirected, 0u);

  // Absent key on an owning node: MISS, not redirect. Find one we own.
  for (std::uint64_t key = kItems; key < kItems + 64; ++key) {
    partitioner->replica_group(key, group);
    if (std::find(group.begin(), group.end(), NodeId{0}) != group.end()) {
      const auto reply = client.get(key);
      ASSERT_TRUE(reply.has_value());
      EXPECT_EQ(reply->type, MsgType::kMiss);
      break;
    }
  }

  Message stats_request;
  stats_request.type = MsgType::kStats;
  const auto stats = client.call(stats_request);
  ASSERT_TRUE(stats.has_value());
  ASSERT_EQ(stats->type, MsgType::kStatsReply);
  EXPECT_EQ(stats->stats.requests, owned + redirected + 1);
  EXPECT_EQ(stats->stats.hits, owned);
  EXPECT_EQ(stats->stats.redirects, redirected);

  Message ping;
  ping.type = MsgType::kPing;
  const auto pong = client.call(ping);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, MsgType::kPong);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_P(FrontendLoopback, ServesHitsLocallyAndForwardsMisses) {
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 128;
  constexpr std::size_t kCache = 16;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendServer frontend(
      frontend_config(fleet, kNodes, kReplication, kItems, kCache));
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));

  // Every stored key resolves to its canonical value, cached or not.
  for (std::uint64_t key = 0; key < kItems; ++key) {
    const auto reply = client.get(key, 2.0);
    ASSERT_TRUE(reply.has_value()) << "key " << key;
    ASSERT_EQ(reply->type, MsgType::kValue) << "key " << key;
    EXPECT_EQ(reply->payload, make_value(key, 64));
  }
  // A key beyond the store is a clean MISS end to end.
  const auto miss = client.get(kItems + 5, 2.0);
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(miss->type, MsgType::kMiss);

  const ServerStats stats = frontend.stats();
  EXPECT_EQ(stats.requests, kItems + 1);
  EXPECT_EQ(stats.hits, kCache);  // the perfect cache serves exactly its head
  EXPECT_EQ(stats.misses, kItems + 1 - kCache);
  EXPECT_EQ(stats.forwarded, stats.misses);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.redirects, 0u);  // matching seeds: no bouncing
  // Healthy path: every forward is answered on the first wire send, and the
  // sequential client never has two fetches of one key in flight.
  EXPECT_EQ(stats.attempts, stats.forwarded);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.requests, stats.hits + stats.forwarded + stats.coalesced +
                                stats.failures);

  // Backend request counters account for every wire send.
  std::uint64_t backend_requests = 0;
  for (const auto& backend : fleet.backends) {
    backend_requests += backend->stats().requests;
  }
  EXPECT_EQ(backend_requests, stats.attempts);

  frontend.stop();
  for (auto& backend : fleet.backends) backend->stop();
}

TEST_P(FrontendLoopback, FailsOverWhenAReplicaDies) {
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 64;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendConfig config =
      frontend_config(fleet, kNodes, kReplication, kItems, /*cache=*/0);
  config.retry.timeout_s = 0.2;  // keep the dead-replica detour quick
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  // Kill node 0; every key still resolves through the surviving replica.
  fleet.backends[0]->stop(0.0);

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
  auto partitioner =
      make_partitioner("hash", kNodes, kReplication, kPartitionSeed);
  std::vector<NodeId> group(kReplication);
  std::uint64_t through_survivor = 0;
  for (std::uint64_t key = 0; key < kItems; ++key) {
    partitioner->replica_group(key, group);
    const auto reply = client.get(key, 3.0);
    ASSERT_TRUE(reply.has_value()) << "key " << key;
    ASSERT_EQ(reply->type, MsgType::kValue) << "key " << key;
    EXPECT_EQ(reply->payload, make_value(key, 64));
    if (std::find(group.begin(), group.end(), NodeId{0}) != group.end()) {
      ++through_survivor;
    }
  }
  EXPECT_GT(through_survivor, 0u)
      << "partition should give node 0 some keys for the test to mean much";
  EXPECT_EQ(frontend.stats().failures, 0u);

  frontend.stop();
  for (auto& backend : fleet.backends) backend->stop();
}

TEST_P(FrontendLoopback, ReportsErrorWhenEveryReplicaIsDead) {
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 16;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendConfig config =
      frontend_config(fleet, kNodes, kReplication, kItems, /*cache=*/4);
  config.retry.max_retries = 1;
  config.retry.timeout_s = 0.2;
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  for (auto& backend : fleet.backends) backend->stop(0.0);

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
  // Cached keys still serve from the front end with the whole fleet down.
  const auto cached = client.get(0, 2.0);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->type, MsgType::kValue);
  // Uncached keys exhaust the retry budget and fail loudly, not silently.
  const auto reply = client.get(10, 5.0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::kError);
  EXPECT_GE(frontend.stats().failures, 1u);

  frontend.stop();
}

TEST_P(FrontendLoopback, AdmitEvictsInSyncWithTier) {
  // Regression: a GET whose backend fetch comes back empty (kMiss) must
  // release the tier slot the lookup admitted. Before the fix the slot
  // stayed resident value-less: it consumed cache capacity, evicted real
  // entries, and its "hits" carried no bytes — silently turning cache hits
  // into forwards.
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 8;
  constexpr std::size_t kCache = 4;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendConfig config =
      frontend_config(fleet, kNodes, kReplication, kItems, kCache);
  config.cache_policy = "lru";  // deterministic eviction order
  config.frontends = 1;
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));

  // Fill the cache: keys 0..3 (LRU order: 0 oldest).
  for (std::uint64_t key = 0; key < 4; ++key) {
    const auto reply = client.get(key, 2.0);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MsgType::kValue);
  }
  // An absent key: the lookup admits a tier slot (evicting key 0), the
  // backend answers kMiss — the fix releases that slot.
  const auto miss = client.get(100, 2.0);
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(miss->type, MsgType::kMiss);
  // A new real key must fill the released slot WITHOUT evicting key 1.
  const auto fresh = client.get(4, 2.0);
  ASSERT_TRUE(fresh.has_value());
  ASSERT_EQ(fresh->type, MsgType::kValue);
  // Key 1 is still resident with its bytes: this must be a cache hit.
  const auto hit = client.get(1, 2.0);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->type, MsgType::kValue);
  EXPECT_EQ(hit->payload, make_value(1, 64));

  const ServerStats stats = frontend.stats();
  EXPECT_EQ(stats.requests, 7u);
  EXPECT_EQ(stats.hits, 1u)
      << "the kMiss-admitted slot leaked and evicted a resident entry";
  EXPECT_EQ(stats.misses, 6u);
  EXPECT_EQ(stats.requests, stats.hits + stats.forwarded + stats.coalesced +
                                stats.failures);

  frontend.stop();
  for (auto& backend : fleet.backends) backend->stop();
}

TEST_P(FrontendLoopback, CounterInvariantsUnderFailover) {
  // requests == hits + forwarded + coalesced + failures must hold through
  // replica death: orphaned in-flight requests are retried (attempts grows,
  // retries counts the re-sends) but each client GET is accounted exactly
  // once.
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 64;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendConfig config =
      frontend_config(fleet, kNodes, kReplication, kItems, /*cache=*/0);
  config.retry.timeout_s = 0.2;
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
  for (std::uint64_t key = 0; key < 16; ++key) {
    const auto reply = client.get(key, 3.0);
    ASSERT_TRUE(reply.has_value());
  }
  // Kill a replica mid-workload and keep querying: some keys detour.
  fleet.backends[0]->stop(0.0);
  for (std::uint64_t key = 16; key < kItems; ++key) {
    const auto reply = client.get(key, 3.0);
    ASSERT_TRUE(reply.has_value()) << "key " << key;
  }

  const ServerStats stats = frontend.stats();
  EXPECT_EQ(stats.requests, kItems);
  EXPECT_EQ(stats.requests, stats.hits + stats.forwarded + stats.coalesced +
                                stats.failures)
      << "every GET must resolve to exactly one of "
         "hit/forwarded/coalesced/failure";
  EXPECT_GE(stats.attempts, stats.forwarded)
      << "attempts counts wire sends; answered requests can't exceed them";
  EXPECT_LE(stats.retries, stats.attempts);
  EXPECT_EQ(stats.failures, 0u) << "d=2 keeps every key available";

  // After the workload drains, no request may be stuck pending: a pinned
  // pending_total_ would burn stop()'s whole drain budget (the stop-drain
  // regression this PR fixes).
  const obs::MetricsSnapshot snap = frontend.metrics_snapshot();
  EXPECT_EQ(snap.gauges.at("frontend.pending_requests"), 0);

  const auto stop_started = std::chrono::steady_clock::now();
  frontend.stop(5.0);
  const double stop_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    stop_started)
          .count();
  EXPECT_LT(stop_s, 4.0) << "stop() must not burn the full drain budget";
  for (auto& backend : fleet.backends) backend->stop();
}

TEST_P(FrontendLoopback, CoalescedWaitersFailOverWithTheLead) {
  // Replica-death failover under single-flight coalescing: clients parked
  // on an in-flight forward must ride the *lead's* retries — one forward
  // fails over, not one per waiter — and settle with exactly one coalesced
  // ledger entry each, no double-counted RTT samples.
  //
  // Deterministic setup: the whole cluster is down when the GETs arrive, so
  // the lead parks on the no-live-replica backoff timer and every later GET
  // for the key parks as a waiter. The backends then come back on their old
  // ports; the lead's next retry forwards once and the reply fans out.
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 32;
  constexpr std::uint64_t kKey = 5;
  constexpr std::size_t kClients = 4;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  std::vector<std::uint16_t> ports;
  for (const auto& backend : fleet.backends) ports.push_back(backend->port());
  for (auto& backend : fleet.backends) backend->stop(0.0);

  FrontendConfig config =
      frontend_config(fleet, kNodes, kReplication, kItems, /*cache=*/0);
  // The lead must keep retrying across the reconnect window (backoff cap
  // 1 s) without exhausting its attempt budget.
  config.retry.max_retries = 30;
  config.retry.backoff_base_s = 0.050;
  config.retry.backoff_cap_s = 0.200;
  config.retry.timeout_s = 8.0;
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());

  std::atomic<std::uint64_t> values{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&frontend, &values] {
      SyncClient client;
      if (!client.connect("127.0.0.1", frontend.port(), 3.0)) return;
      const auto reply = client.get(kKey, 10.0);
      if (reply.has_value() && reply->type == MsgType::kValue &&
          reply->payload == make_value(kKey, 64)) {
        values.fetch_add(1);
      }
    });
  }
  // Wait until all four GETs are inside the front end (one lead in backoff,
  // three parked waiters) before reviving the cluster.
  const auto arrived = [&frontend] {
    return frontend.stats().requests >= kClients;
  };
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!arrived() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(arrived());
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    BackendConfig restarted =
        backend_config(node, kNodes, kReplication, kItems);
    restarted.port = ports[node];
    fleet.backends[node] = std::make_unique<BackendServer>(restarted);
    ASSERT_TRUE(fleet.backends[node]->start());
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(values.load(), kClients) << "every parked client must get the "
                                        "value after the cluster returns";

  const ServerStats stats = frontend.stats();
  EXPECT_EQ(stats.requests, kClients);
  EXPECT_EQ(stats.forwarded, 1u)
      << "one lead forward serves the key; waiters must not fail over "
         "individually";
  EXPECT_EQ(stats.coalesced, kClients - 1);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.requests, stats.hits + stats.forwarded + stats.coalesced +
                                stats.failures);

  // No double counting: the one answered forward contributes exactly one
  // RTT/attempt sample; the waiters only tick the end-to-end request timer.
  const obs::MetricsSnapshot snap = frontend.metrics_snapshot();
  EXPECT_EQ(snap.timers.at("frontend.forward_rtt_us").count(), 1u);
  EXPECT_EQ(snap.timers.at("frontend.attempts").count(), 1u);
  EXPECT_EQ(snap.timers.at("frontend.request_us").count(), stats.requests);
  EXPECT_EQ(snap.gauges.at("frontend.pending_requests"), 0);

  frontend.stop();
  for (auto& backend : fleet.backends) backend->stop();
}

TEST_P(FrontendLoopback, ReconnectAfterFlappingBackend) {
  // A backend that dies and returns on the same port must be re-adopted:
  // wait_backends_up succeeds again after each flap, requests flow, and the
  // conn -> node map does not leak stale entries.
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 32;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  const std::uint16_t flapping_port = fleet.backends[0]->port();
  FrontendConfig config =
      frontend_config(fleet, kNodes, kReplication, kItems, /*cache=*/0);
  config.retry.timeout_s = 0.2;
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));

  for (int flap = 0; flap < 3; ++flap) {
    fleet.backends[0]->stop(0.0);
    // Give the front end a moment to notice the close and begin its backoff
    // (a failed connect attempt must not wedge the reconnect loop).
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    BackendConfig restarted =
        backend_config(0, kNodes, kReplication, kItems);
    restarted.port = flapping_port;
    fleet.backends[0] = std::make_unique<BackendServer>(restarted);
    ASSERT_TRUE(fleet.backends[0]->start()) << "flap " << flap;
    ASSERT_TRUE(frontend.wait_backends_up(10.0))
        << "flap " << flap
        << ": reconnect backoff must reset after a successful connect";

    for (std::uint64_t key = 0; key < kItems; ++key) {
      const auto reply = client.get(key, 3.0);
      ASSERT_TRUE(reply.has_value()) << "flap " << flap << " key " << key;
      ASSERT_EQ(reply->type, MsgType::kValue);
    }
  }

  // One live connection per backend — flapping must not leak stale
  // conn -> node entries. (Read after the loop settles; the map only
  // changes on connect/close events, none of which are in flight now.)
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(frontend.backend_conn_entries(), kNodes);
  EXPECT_EQ(frontend.stats().failures, 0u);

  frontend.stop();
  for (auto& backend : fleet.backends) backend->stop();
}

TEST_P(FrontendLoopback, ServesMetricsSnapshotOverTheWire) {
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 64;
  constexpr std::size_t kCache = 8;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendServer frontend(
      frontend_config(fleet, kNodes, kReplication, kItems, kCache));
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
  for (std::uint64_t key = 0; key < kItems; ++key) {
    const auto reply = client.get(key, 2.0);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MsgType::kValue);
  }

  Message request;
  request.type = MsgType::kMetricsRequest;
  const auto reply = client.call(request, 2.0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kMetricsReply);
  const obs::MetricsSnapshot& m = reply->metrics;

  // Counters mirror ServerStats.
  const ServerStats stats = frontend.stats();
  EXPECT_EQ(m.counters.at("frontend.requests"), stats.requests);
  EXPECT_EQ(m.counters.at("frontend.hits"), stats.hits);
  EXPECT_EQ(m.counters.at("frontend.forwarded"), stats.forwarded);
  EXPECT_EQ(m.gauges.at("frontend.backends_up"),
            static_cast<std::int64_t>(kNodes));

  // Histograms: one request_us sample per answered GET, one forward RTT per
  // backend-served miss, and the attempts distribution (all 1 here).
  ASSERT_EQ(m.timers.count("frontend.request_us"), 1u);
  EXPECT_EQ(m.timers.at("frontend.request_us").count(), stats.requests);
  ASSERT_EQ(m.timers.count("frontend.forward_rtt_us"), 1u);
  EXPECT_EQ(m.timers.at("frontend.forward_rtt_us").count(), stats.forwarded);
  ASSERT_EQ(m.timers.count("frontend.attempts"), 1u);
  EXPECT_EQ(m.timers.at("frontend.attempts").value_at_quantile(1.0), 1u);

  // Backends answer the same protocol message.
  SyncClient backend_client;
  ASSERT_TRUE(
      backend_client.connect("127.0.0.1", fleet.backends[0]->port()));
  const auto be_reply = backend_client.call(request, 2.0);
  ASSERT_TRUE(be_reply.has_value());
  ASSERT_EQ(be_reply->type, MsgType::kMetricsReply);
  EXPECT_EQ(be_reply->metrics.counters.at("backend.requests"),
            fleet.backends[0]->stats().requests);
  EXPECT_EQ(be_reply->metrics.timers.at("backend.service_us").count(),
            fleet.backends[0]->stats().requests);

  frontend.stop();
  for (auto& backend : fleet.backends) backend->stop();
}

TEST_P(FrontendLoopback, GracefulStopAnswersInFlightRequests) {
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 256;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendServer frontend(
      frontend_config(fleet, kNodes, kReplication, kItems, /*cache=*/0));
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));
  for (std::uint64_t key = 0; key < 32; ++key) {
    const auto reply = client.get(key, 2.0);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MsgType::kValue);
  }
  frontend.stop(2.0);
  EXPECT_FALSE(frontend.running());
  for (auto& backend : fleet.backends) backend->stop();
}

}  // namespace
}  // namespace scp::net
