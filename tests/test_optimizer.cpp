// Attack optimizer: an unconstrained search over distributions must not
// beat Theorem 1's closed-form optimum (and must find its neighbourhood).
#include <gtest/gtest.h>

#include "adversary/optimizer.h"
#include "adversary/strategy.h"
#include "sim/scenario.h"

namespace scp {
namespace {

ScenarioConfig small_scenario(std::uint64_t cache_size) {
  ScenarioConfig config;
  config.params.nodes = 50;
  config.params.replication = 3;
  config.params.items = 2000;
  config.params.cache_size = cache_size;
  config.params.query_rate = 5000.0;
  return config;
}

// Deterministic evaluator: mean gain over fixed trial seeds.
GainEvaluator make_evaluator(const ScenarioConfig& config,
                             std::uint32_t trials = 3) {
  return [config, trials](const QueryDistribution& d) {
    double total = 0.0;
    for (std::uint32_t t = 0; t < trials; ++t) {
      total += gain_trial(config, d, 1000 + t);
    }
    return total / trials;
  };
}

OptimizerOptions fast_options() {
  OptimizerOptions options;
  options.iterations = 60;
  options.restarts = 3;
  options.seed = 99;
  return options;
}

TEST(Optimizer, RunsAndReportsBookkeeping) {
  const ScenarioConfig config = small_scenario(20);
  const OptimizerResult result = optimize_attack(
      config.params.items, config.params.cache_size, make_evaluator(config),
      fast_options());
  EXPECT_GT(result.best_gain, 0.0);
  EXPECT_GE(result.evaluations, 3u);  // at least the starting points
  EXPECT_TRUE(result.best.is_valid());
  EXPECT_FALSE(result.gain_trace.empty());
  // Trace is the best-so-far sequence: non-decreasing.
  for (std::size_t i = 1; i < result.gain_trace.size(); ++i) {
    EXPECT_GE(result.gain_trace[i], result.gain_trace[i - 1]);
  }
}

TEST(Optimizer, DeterministicGivenSeed) {
  const ScenarioConfig config = small_scenario(20);
  const OptimizerResult a = optimize_attack(
      config.params.items, config.params.cache_size, make_evaluator(config),
      fast_options());
  const OptimizerResult b = optimize_attack(
      config.params.items, config.params.cache_size, make_evaluator(config),
      fast_options());
  EXPECT_DOUBLE_EQ(a.best_gain, b.best_gain);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Optimizer, DoesNotBeatTheoremOneOptimum) {
  // The core validation: free-form search over the simplex must not exceed
  // the best uniform-over-x strategy by more than evaluation noise.
  const ScenarioConfig config = small_scenario(20);
  const GainEvaluator evaluate = make_evaluator(config);

  const auto eval_x = [&](std::uint64_t x) {
    return evaluate(QueryDistribution::uniform_over(x, config.params.items));
  };
  const BestResponse analytic =
      best_response_search(config.params, eval_x, /*grid_points=*/8);

  OptimizerOptions options = fast_options();
  options.iterations = 120;
  const OptimizerResult searched = optimize_attack(
      config.params.items, config.params.cache_size, evaluate, options);

  EXPECT_LE(searched.best_gain, analytic.gain * 1.05)
      << "free-form search beat Theorem 1's optimum — theorem violated?";
}

TEST(Optimizer, ReachesAtLeastTheFocusedAttack) {
  // It starts from uniform-over-(c+1), so it can never end below that.
  const ScenarioConfig config = small_scenario(20);
  const GainEvaluator evaluate = make_evaluator(config);
  const double focused =
      evaluate(QueryDistribution::uniform_over(21, config.params.items));
  const OptimizerResult result = optimize_attack(
      config.params.items, config.params.cache_size, evaluate, fast_options());
  EXPECT_GE(result.best_gain, focused - 1e-9);
}

TEST(Optimizer, LargeCacheSearchStaysBelowOne) {
  // Above the threshold no distribution should be found effective.
  const ScenarioConfig config = small_scenario(200);  // > c*(50, 3)
  OptimizerOptions options = fast_options();
  options.iterations = 80;
  const OptimizerResult result = optimize_attack(
      config.params.items, config.params.cache_size, make_evaluator(config),
      options);
  EXPECT_LE(result.best_gain, 1.0 + 0.05);
}

TEST(Optimizer, RejectsBadArguments) {
  const ScenarioConfig config = small_scenario(20);
  EXPECT_DEATH(
      optimize_attack(100, 100, make_evaluator(config), fast_options()),
      "smaller");
  EXPECT_DEATH(optimize_attack(100, 10, GainEvaluator{}, fast_options()),
               "callable");
}

}  // namespace
}  // namespace scp
