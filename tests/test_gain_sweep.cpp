#include "sim/scenario.h"

#include <vector>

#include <gtest/gtest.h>

#include "workload/distribution.h"

namespace scp {
namespace {

ScenarioConfig small_config(std::uint64_t cache_size,
                            const char* partitioner = "hash",
                            const char* selector = "least-loaded") {
  ScenarioConfig config;
  config.params.nodes = 40;
  config.params.replication = 3;
  config.params.items = 2000;
  config.params.cache_size = cache_size;
  config.params.query_rate = 5000.0;
  config.partitioner = partitioner;
  config.selector = selector;
  return config;
}

TEST(GainSweep, RunOneReproducesMeasureGainBitForBit) {
  const auto d = QueryDistribution::uniform_over(300, 2000);
  for (const char* partitioner : {"hash", "ring", "rendezvous"}) {
    for (const char* selector : {"least-loaded", "random", "round-robin"}) {
      const ScenarioConfig config = small_config(100, partitioner, selector);
      const GainStatistics reference = measure_gain(config, d, 8, 12345);
      const GainSweep sweep(config, 8, 12345);
      const GainStatistics got = sweep.run_one(d, 100);
      ASSERT_EQ(got.max_gain, reference.max_gain)
          << partitioner << "/" << selector;
      ASSERT_EQ(got.summary.mean, reference.summary.mean)
          << partitioner << "/" << selector;
      ASSERT_EQ(got.summary.stddev, reference.summary.stddev);
      ASSERT_EQ(got.summary.min, reference.summary.min);
      ASSERT_EQ(got.summary.max, reference.summary.max);
    }
  }
}

TEST(GainSweep, PointResultsIndependentOfBatching) {
  // Evaluating a point alongside others must give the same statistics as
  // evaluating it alone — sweep points share partitions but not state.
  const auto a = QueryDistribution::uniform_over(101, 2000);
  const auto b = QueryDistribution::uniform_over(500, 2000);
  const auto c = QueryDistribution::zipf(2000, 1.05);
  const GainSweep sweep(small_config(100), 6, 777);
  const std::vector<GainSweep::Point> batch = {
      {&a, 100}, {&b, 100}, {&c, 100}, {&b, 50}};
  const std::vector<GainStatistics> batched = sweep.run(batch);
  ASSERT_EQ(batched.size(), 4u);
  const GainStatistics alone_b = sweep.run_one(b, 100);
  EXPECT_EQ(batched[1].max_gain, alone_b.max_gain);
  EXPECT_EQ(batched[1].summary.mean, alone_b.summary.mean);
  const GainStatistics alone_b50 = sweep.run_one(b, 50);
  EXPECT_EQ(batched[3].max_gain, alone_b50.max_gain);
}

TEST(GainSweep, UnmaterializedBudgetBitIdentical) {
  const auto d = QueryDistribution::uniform_over(300, 2000);
  const ScenarioConfig config = small_config(100, "ring");
  const GainSweep fast(config, 6, 99);
  GainSweep::Options no_table;
  no_table.index_memory_budget = 0;  // force the on-the-fly fallback
  const GainSweep fallback(config, 6, 99, no_table);
  const GainStatistics x = fast.run_one(d, 100);
  const GainStatistics y = fallback.run_one(d, 100);
  EXPECT_EQ(x.max_gain, y.max_gain);
  EXPECT_EQ(x.summary.mean, y.summary.mean);
}

TEST(GainSweep, ParallelBitIdenticalToSerial) {
  const auto a = QueryDistribution::uniform_over(101, 2000);
  const auto b = QueryDistribution::zipf(2000, 1.05);
  const std::vector<GainSweep::Point> points = {{&a, 100}, {&b, 100}};
  const ScenarioConfig config = small_config(100);
  GainSweep::Options serial;
  serial.threads = 1;
  GainSweep::Options parallel;
  parallel.threads = 8;
  const std::vector<GainStatistics> s =
      GainSweep(config, 16, 2024, serial).run(points);
  const std::vector<GainStatistics> p =
      GainSweep(config, 16, 2024, parallel).run(points);
  ASSERT_EQ(s.size(), p.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].max_gain, p[i].max_gain) << i;
    EXPECT_EQ(s[i].summary.mean, p[i].summary.mean) << i;
    EXPECT_EQ(s[i].summary.stddev, p[i].summary.stddev) << i;
  }
}

TEST(GainSweep, AdversarialSweepMatchesMeasureAdversarialGain) {
  const ScenarioConfig config = small_config(100);
  const std::uint64_t x = 101;
  const GainStatistics reference =
      measure_adversarial_gain(config, x, 8, 31337);
  const auto d = QueryDistribution::uniform_over(x, config.params.items);
  const GainSweep sweep(config, 8, 31337);
  const GainStatistics got = sweep.run_one(d, 100);
  EXPECT_EQ(got.max_gain, reference.max_gain);
  EXPECT_EQ(got.summary.mean, reference.summary.mean);
}

}  // namespace
}  // namespace scp
