#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/provisioner.h"
#include "core/report.h"

namespace scp {
namespace {

SystemParams small_system(std::uint64_t cache_size) {
  SystemParams p;
  p.nodes = 100;
  p.replication = 3;
  p.items = 10000;
  p.cache_size = cache_size;
  p.query_rate = 10000.0;
  return p;
}

AnalyzerOptions fast_options() {
  AnalyzerOptions options;
  options.trials = 4;
  return options;
}

TEST(AttackAnalyzer, FlagsEffectiveAttackOnSmallCache) {
  const AttackAnalyzer analyzer(fast_options());
  const AttackAssessment a = analyzer.assess_adversarial(small_system(50), 51);
  EXPECT_TRUE(a.effective);
  EXPECT_GT(a.worst_gain, 1.0);
  ASSERT_TRUE(a.gain_bound.has_value());
  EXPECT_GT(*a.gain_bound, 1.0);
  // The bound must actually bound the measurement.
  EXPECT_LE(a.worst_gain, *a.gain_bound * 1.05);
}

TEST(AttackAnalyzer, ClearsProvisionedSystem) {
  const AttackAnalyzer analyzer(fast_options());
  const AttackAssessment a =
      analyzer.assess_adversarial(small_system(400), 10000);
  EXPECT_FALSE(a.effective);
  EXPECT_LT(a.worst_gain, 1.0);
}

TEST(AttackAnalyzer, UniformWorkloadIsBenign) {
  const AttackAnalyzer analyzer(fast_options());
  const AttackAssessment a = analyzer.assess(
      small_system(400), QueryDistribution::uniform(10000));
  EXPECT_LT(a.worst_gain, 1.1);
}

TEST(AttackAnalyzer, ZipfWorkloadHasNoEq10Bound) {
  // The Eq. 10 bound applies to the canonical uniform-over-x shape only.
  const AttackAnalyzer analyzer(fast_options());
  const AttackAssessment a =
      analyzer.assess(small_system(100), QueryDistribution::zipf(10000, 1.01));
  EXPECT_FALSE(a.gain_bound.has_value());
}

TEST(AttackAnalyzer, GainSummaryIsConsistent) {
  const AttackAnalyzer analyzer(fast_options());
  const AttackAssessment a = analyzer.assess_adversarial(small_system(50), 51);
  EXPECT_EQ(a.gain.count, 4u);
  EXPECT_DOUBLE_EQ(a.worst_gain, a.gain.max);
}

TEST(AttackAnalyzer, ToStringMentionsVerdict) {
  const AttackAnalyzer analyzer(fast_options());
  const AttackAssessment a = analyzer.assess_adversarial(small_system(50), 51);
  EXPECT_NE(a.to_string().find("EFFECTIVE"), std::string::npos);
}

TEST(AttackAnalyzer, DegradedAssessmentWithZeroFailuresMatchesHealthy) {
  const AttackAnalyzer analyzer(fast_options());
  const SystemParams params = small_system(400);
  const auto attack = QueryDistribution::uniform_over(401, 10000);
  const AttackAssessment healthy = analyzer.assess(params, attack);
  const AttackAssessment degraded = analyzer.assess_degraded(params, attack, 0);
  // f = 0 is the same Monte Carlo (same seeds, trivial fault view):
  // identical gains, identical bound.
  EXPECT_EQ(degraded.worst_gain, healthy.worst_gain);
  EXPECT_EQ(degraded.gain.mean, healthy.gain.mean);
  EXPECT_EQ(degraded.failed_nodes, 0u);
  EXPECT_EQ(degraded.surviving_nodes, 100u);
  ASSERT_TRUE(degraded.gain_bound.has_value());
  EXPECT_DOUBLE_EQ(*degraded.gain_bound, *healthy.gain_bound);
}

TEST(AttackAnalyzer, DegradedAssessmentSurvivesProvisionedCache) {
  // The degraded guarantee in action: with c >= c*(n-f), the attack stays
  // ineffective against the surviving even spread R/(n-f).
  const AttackAnalyzer analyzer(fast_options());
  const SystemParams params = small_system(400);
  const AttackAssessment a = analyzer.assess_degraded(
      params, QueryDistribution::uniform_over(401, 10000), 10);
  EXPECT_EQ(a.failed_nodes, 10u);
  EXPECT_EQ(a.surviving_nodes, 90u);
  EXPECT_FALSE(a.effective);
  ASSERT_TRUE(a.gain_bound.has_value());
  // The bound is recomputed over the survivors and still bounds the gain.
  EXPECT_LE(a.worst_gain, *a.gain_bound * 1.05);
}

TEST(AttackAnalyzer, DegradedAssessmentIsDeterministic) {
  const AttackAnalyzer analyzer(fast_options());
  const SystemParams params = small_system(50);
  const auto attack = QueryDistribution::uniform_over(51, 10000);
  const AttackAssessment a = analyzer.assess_degraded(params, attack, 20);
  const AttackAssessment b = analyzer.assess_degraded(params, attack, 20);
  EXPECT_EQ(a.worst_gain, b.worst_gain);
  EXPECT_EQ(a.gain.mean, b.gain.mean);
}

TEST(AttackAnalyzer, DegradedToStringMentionsSurvivors) {
  const AttackAnalyzer analyzer(fast_options());
  const AttackAssessment a = analyzer.assess_degraded(
      small_system(50), QueryDistribution::uniform_over(51, 10000), 5);
  EXPECT_NE(a.to_string().find("degraded[f=5 alive=95]"), std::string::npos);
}

TEST(AttackAnalyzer, DegradedAssessmentRejectsTooManyFailures) {
  const AttackAnalyzer analyzer(fast_options());
  EXPECT_DEATH(
      analyzer.assess_degraded(small_system(50),
                               QueryDistribution::uniform_over(51, 10000), 98),
      "surviv");
}

TEST(RenderReport, ProvisionPlanMentionsKeyNumbers) {
  ProvisionOptions options;
  options.validate = false;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec;
  spec.nodes = 100;
  spec.replication = 3;
  spec.items = 10000;
  spec.attack_rate_qps = 10000.0;
  const std::string report = render_report(provisioner.plan(spec));
  EXPECT_NE(report.find("n=100"), std::string::npos);
  EXPECT_NE(report.find("threshold"), std::string::npos);
  EXPECT_NE(report.find("recommend"), std::string::npos);
}

TEST(RenderReport, ValidatedPlanShowsVerdict) {
  ProvisionOptions options;
  options.validation_trials = 2;
  options.validation_grid_points = 0;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec;
  spec.nodes = 100;
  spec.replication = 3;
  spec.items = 10000;
  spec.attack_rate_qps = 10000.0;
  const std::string report = render_report(provisioner.plan(spec));
  EXPECT_NE(report.find("PREVENTION HOLDS"), std::string::npos);
}

TEST(RenderReport, UnreplicatedPlanExplainsImpossibility) {
  ProvisionOptions options;
  options.validate = false;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec;
  spec.nodes = 100;
  spec.replication = 1;
  spec.items = 10000;
  spec.attack_rate_qps = 10000.0;
  const std::string report = render_report(provisioner.plan(spec));
  EXPECT_NE(report.find("PREVENTION IMPOSSIBLE"), std::string::npos);
  EXPECT_NE(report.find("d >= 2"), std::string::npos);
}

TEST(RenderReport, CapacityVerdictAppearsWhenKnown) {
  ProvisionOptions options;
  options.validate = false;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec;
  spec.nodes = 100;
  spec.replication = 3;
  spec.items = 10000;
  spec.attack_rate_qps = 10000.0;
  spec.node_capacity_qps = 1000.0;
  const std::string report = render_report(provisioner.plan(spec));
  EXPECT_NE(report.find("SUFFICIENT"), std::string::npos);
}

TEST(RenderReport, PlanShowsDegradedSectionWhenRequested) {
  ProvisionOptions options;
  options.validate = false;
  options.degraded_failures = 10;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec;
  spec.nodes = 100;
  spec.replication = 3;
  spec.items = 10000;
  spec.attack_rate_qps = 10000.0;
  spec.node_capacity_qps = 1000.0;
  const std::string report = render_report(provisioner.plan(spec));
  EXPECT_NE(report.find("degraded:"), std::string::npos);
  EXPECT_NE(report.find("f=10"), std::string::npos);
  EXPECT_NE(report.find("90 survivors"), std::string::npos);
  EXPECT_NE(report.find("cache still covers"), std::string::npos);
}

TEST(RenderReport, DegradedAssessmentShowsCrashLine) {
  const AttackAnalyzer analyzer(fast_options());
  const AttackAssessment a = analyzer.assess_degraded(
      small_system(400), QueryDistribution::uniform_over(401, 10000), 10);
  const std::string report = render_report(a);
  EXPECT_NE(report.find("10 nodes crashed"), std::string::npos);
  EXPECT_NE(report.find("90 survivors"), std::string::npos);
}

TEST(RenderReport, AssessmentShowsBoundWhenPresent) {
  const AttackAnalyzer analyzer(fast_options());
  const AttackAssessment a = analyzer.assess_adversarial(small_system(50), 51);
  const std::string report = render_report(a);
  EXPECT_NE(report.find("Eq. 10"), std::string::npos);
  EXPECT_NE(report.find("EFFECTIVE"), std::string::npos);
}

}  // namespace
}  // namespace scp
