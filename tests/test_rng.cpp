#include "common/rng.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"

namespace scp {
namespace {

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference outputs for state 0 from the public-domain SplitMix64
  // (Vigna's test vectors).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64(state), 0x06C45D188009454FULL);
}

TEST(DeriveSeed, DistinctStreamsGiveDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seen.insert(derive_seed(42, stream));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(DeriveSeed, IsDeterministic) {
  EXPECT_EQ(derive_seed(7, 3), derive_seed(7, 3));
  EXPECT_NE(derive_seed(7, 3), derive_seed(8, 3));
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a() == b()) ? 1 : 0;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_u64(bound), bound);
    }
  }
}

TEST(Rng, UniformU64IsUnbiasedChiSquared) {
  Rng rng(2024);
  constexpr std::uint64_t kBuckets = 10;
  constexpr std::uint64_t kDraws = 100000;
  std::vector<std::uint64_t> counts(kBuckets, 0);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform_u64(kBuckets)];
  }
  const std::vector<double> expected(kBuckets,
                                     static_cast<double>(kDraws) / kBuckets);
  // 9 d.o.f.: chi2 < 27.9 at p = 0.001.
  EXPECT_LT(chi_squared_statistic(counts, expected), 27.9);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanNearHalf) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.uniform_double());
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.005);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(10);
  RunningStats stats;
  const double rate = 4.0;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.exponential(rate));
  }
  EXPECT_NEAR(stats.mean(), 1.0 / rate, 0.01);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_FALSE(std::equal(values.begin(), values.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ShuffleUniformFirstPosition) {
  // Each of 5 values should land in position 0 about 1/5 of the time.
  Rng rng(12);
  std::array<int, 5> counts{};
  constexpr int kTrials = 50000;
  for (int t = 0; t < kTrials; ++t) {
    std::array<int, 5> v = {0, 1, 2, 3, 4};
    rng.shuffle(std::span<int>(v));
    ++counts[static_cast<std::size_t>(v[0])];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.2, 0.02);
  }
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(13);
  const auto sample = rng.sample_without_replacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (const std::uint64_t v : sample) {
    EXPECT_LT(v, 1000u);
  }
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(14);
  const auto sample = rng.sample_without_replacement(50, 50);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(Rng, SampleWithoutReplacementEmpty) {
  Rng rng(15);
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
}

TEST(Rng, LongJumpChangesState) {
  Rng a(16);
  Rng b(16);
  b.long_jump();
  EXPECT_NE(a(), b());
}

}  // namespace
}  // namespace scp
