// Loopback tests for the quorum-replicated write path: real TCP backends
// wired into a replica mesh on kernel-assigned ports, driven by the
// blocking SyncClient. Proves the acceptance property over real sockets:
// with R+W>N (N=3, R=W=2) a write acked by any coordinator is readable
// through any coordinator with one replica crashed, and read-repair
// converges a restarted replica. Parameterized over both reactor backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/partitioner.h"
#include "net/backend_server.h"
#include "net/frontend_server.h"
#include "net/sync_client.h"

namespace scp::net {
namespace {

constexpr std::uint64_t kPartitionSeed = 77;

ReactorKind g_reactor = ReactorKind::kEpoll;

class QuorumSuite : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(parse_reactor_kind(GetParam(), g_reactor));
    if (g_reactor == ReactorKind::kUring) {
      std::string reason;
      if (!uring_available(&reason)) {
        GTEST_SKIP() << "SKIPPED: no io_uring (" << reason << ")";
      }
    }
  }
  void TearDown() override { g_reactor = ReactorKind::kEpoll; }
};

static std::string reactor_name(
    const ::testing::TestParamInfo<const char*>& info) {
  return info.param;
}

INSTANTIATE_TEST_SUITE_P(Reactors, QuorumSuite,
                         ::testing::Values("epoll", "uring"), reactor_name);

BackendConfig quorum_config(std::uint32_t node_id, std::uint32_t nodes,
                            std::uint32_t replication, std::uint64_t items) {
  BackendConfig config;
  config.node_id = node_id;
  config.nodes = nodes;
  config.replication = replication;
  config.partition_seed = kPartitionSeed;
  config.items = items;
  config.reactor = g_reactor;
  config.write_quorum = 2;
  config.read_quorum = 2;
  config.op_timeout_s = 2.0;
  return config;
}

/// A meshed backend fleet: every node started on port 0, then every node
/// handed the full endpoint list — exactly how the bench wires a cluster.
struct Mesh {
  std::vector<std::unique_ptr<BackendServer>> backends;
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;

  void rewire() {
    for (auto& backend : backends) {
      if (backend != nullptr && backend->running()) {
        backend->set_peers(endpoints);
      }
    }
  }
};

Mesh start_mesh(std::uint32_t nodes, std::uint32_t replication,
                std::uint64_t items) {
  Mesh mesh;
  for (std::uint32_t node = 0; node < nodes; ++node) {
    auto backend = std::make_unique<BackendServer>(
        quorum_config(node, nodes, replication, items));
    EXPECT_TRUE(backend->start());
    mesh.endpoints.emplace_back("127.0.0.1", backend->port());
    mesh.backends.push_back(std::move(backend));
  }
  mesh.rewire();
  for (auto& backend : mesh.backends) {
    EXPECT_TRUE(backend->wait_peers_up(5.0));
  }
  return mesh;
}

Message make_put(std::uint64_t key, std::string value) {
  Message request;
  request.type = MsgType::kPut;
  request.key = key;
  request.payload = std::move(value);
  return request;
}

Message make_req(MsgType type, std::uint64_t key) {
  Message request;
  request.type = type;
  request.key = key;
  return request;
}

/// Polls a replica's storage until `pred` holds or the deadline passes.
template <typename Pred>
bool eventually(const Pred& pred, double timeout_s = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

TEST_P(QuorumSuite, WriteThroughOneCoordinatorReadsThroughEveryOther) {
  // N=3, d=3: every node replicates every key, so every node coordinates
  // for every key and every storage engine must converge.
  Mesh mesh = start_mesh(3, 3, /*items=*/0);

  SyncClient writer;
  ASSERT_TRUE(writer.connect("127.0.0.1", mesh.backends[0]->port()));
  const auto ack = writer.call(make_put(7, "quorum value"), 2.0);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, MsgType::kWriteReply) << ack->payload;
  EXPECT_EQ(ack->key, 7u);
  // A minted version always exceeds the preload version (1).
  EXPECT_GT(ack->version, 1u);

  for (int node = 0; node < 3; ++node) {
    SyncClient reader;
    ASSERT_TRUE(reader.connect("127.0.0.1", mesh.backends[node]->port()));
    const auto reply = reader.call(make_req(MsgType::kQuorumGet, 7), 2.0);
    ASSERT_TRUE(reply.has_value()) << "coordinator " << node;
    ASSERT_EQ(reply->type, MsgType::kValue) << "coordinator " << node;
    EXPECT_EQ(reply->payload, "quorum value");
  }

  // W=2 acked synchronously; the third replica converges asynchronously.
  for (int node = 0; node < 3; ++node) {
    EXPECT_TRUE(eventually([&] {
      const auto entry = mesh.backends[node]->storage_entry(7);
      return entry.has_value() && entry->value == "quorum value" &&
             !entry->tombstone && entry->version == ack->version;
    })) << "replica " << node;
  }

  for (auto& backend : mesh.backends) backend->stop(0.5);
}

TEST_P(QuorumSuite, DeleteTombstonesAcrossTheQuorum) {
  Mesh mesh = start_mesh(3, 3, /*items=*/0);

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", mesh.backends[1]->port()));
  const auto put = client.call(make_put(9, "doomed"), 2.0);
  ASSERT_TRUE(put.has_value());
  ASSERT_EQ(put->type, MsgType::kWriteReply);

  const auto del = client.call(make_req(MsgType::kDelete, 9), 2.0);
  ASSERT_TRUE(del.has_value());
  ASSERT_EQ(del->type, MsgType::kWriteReply);
  EXPECT_GT(del->version, put->version) << "delete must supersede the put";

  // A quorum read through a different coordinator observes the tombstone.
  SyncClient reader;
  ASSERT_TRUE(reader.connect("127.0.0.1", mesh.backends[2]->port()));
  const auto reply = reader.call(make_req(MsgType::kQuorumGet, 9), 2.0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::kMiss);

  for (auto& backend : mesh.backends) backend->stop(0.5);
}

TEST_P(QuorumSuite, QuorumSurvivesOneReplicaCrash) {
  Mesh mesh = start_mesh(3, 3, /*items=*/0);

  // Write while all three are up, then crash one replica.
  SyncClient writer;
  ASSERT_TRUE(writer.connect("127.0.0.1", mesh.backends[0]->port()));
  const auto ack = writer.call(make_put(11, "survives"), 2.0);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, MsgType::kWriteReply);

  mesh.backends[2]->stop(0.0);
  mesh.backends[2].reset();

  // R=2 over the two survivors: both remaining coordinators still answer.
  for (int node = 0; node < 2; ++node) {
    SyncClient reader;
    ASSERT_TRUE(reader.connect("127.0.0.1", mesh.backends[node]->port()));
    const auto reply = reader.call(make_req(MsgType::kQuorumGet, 11), 3.0);
    ASSERT_TRUE(reply.has_value()) << "coordinator " << node;
    ASSERT_EQ(reply->type, MsgType::kValue) << "coordinator " << node;
    EXPECT_EQ(reply->payload, "survives");
  }

  // W=2 still reachable: a fresh write through a survivor commits too.
  const auto ack2 = writer.call(make_put(12, "post-crash"), 3.0);
  ASSERT_TRUE(ack2.has_value());
  ASSERT_EQ(ack2->type, MsgType::kWriteReply) << ack2->payload;

  for (auto& backend : mesh.backends) {
    if (backend != nullptr) backend->stop(0.5);
  }
}

TEST_P(QuorumSuite, ReadRepairConvergesARestartedReplica) {
  Mesh mesh = start_mesh(3, 3, /*items=*/0);

  // Crash replica 2, then commit a write it never sees.
  mesh.backends[2]->stop(0.0);
  mesh.backends[2].reset();

  SyncClient writer;
  ASSERT_TRUE(writer.connect("127.0.0.1", mesh.backends[0]->port()));
  const auto ack = writer.call(make_put(21, "repaired value"), 3.0);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, MsgType::kWriteReply) << ack->payload;

  // Restart node 2 empty on a fresh port and re-wire the whole mesh.
  mesh.backends[2] =
      std::make_unique<BackendServer>(quorum_config(2, 3, 3, 0));
  ASSERT_TRUE(mesh.backends[2]->start());
  mesh.endpoints[2] = {"127.0.0.1", mesh.backends[2]->port()};
  mesh.rewire();
  for (auto& backend : mesh.backends) {
    ASSERT_TRUE(backend->wait_peers_up(5.0));
  }
  ASSERT_FALSE(mesh.backends[2]->storage_entry(21).has_value());

  // A quorum read coordinated by the stale node itself sees its own miss
  // lose LWW to a survivor's copy and read-repairs the local store.
  SyncClient reader;
  ASSERT_TRUE(reader.connect("127.0.0.1", mesh.backends[2]->port()));
  const auto reply = reader.call(make_req(MsgType::kQuorumGet, 21), 3.0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kValue) << reply->payload;
  EXPECT_EQ(reply->payload, "repaired value");

  EXPECT_TRUE(eventually([&] {
    const auto entry = mesh.backends[2]->storage_entry(21);
    return entry.has_value() && entry->value == "repaired value" &&
           entry->version == ack->version;
  })) << "read-repair never converged the restarted replica";

  for (auto& backend : mesh.backends) backend->stop(0.5);
}

TEST_P(QuorumSuite, JoinRebalancesKeysOntoTheNewNode) {
  // Ring partitioner so membership changes actually move keys. Three nodes
  // preloaded with their owned slice of 64 keys; node 3 joins empty.
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 64;

  Mesh mesh;
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    BackendConfig config = quorum_config(node, kNodes, kReplication, kItems);
    config.partitioner = "ring";
    auto backend = std::make_unique<BackendServer>(config);
    ASSERT_TRUE(backend->start());
    mesh.endpoints.emplace_back("127.0.0.1", backend->port());
    mesh.backends.push_back(std::move(backend));
  }
  mesh.rewire();
  for (auto& backend : mesh.backends) ASSERT_TRUE(backend->wait_peers_up(5.0));

  // The joiner's own ring must equal the others' post-join ring: same seed,
  // nodes 0..3. It holds nothing until handoff streams arrive.
  BackendConfig joiner_config =
      quorum_config(kNodes, kNodes + 1, kReplication, /*items=*/0);
  joiner_config.partitioner = "ring";
  auto joiner = std::make_unique<BackendServer>(joiner_config);
  ASSERT_TRUE(joiner->start());
  const std::string joiner_endpoint =
      "127.0.0.1:" + std::to_string(joiner->port());

  // Announce the join to every existing member; each re-plans ownership and
  // the elected streamers push handoff to the new node.
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    SyncClient admin;
    ASSERT_TRUE(admin.connect("127.0.0.1", mesh.backends[node]->port()));
    Message join;
    join.type = MsgType::kJoin;
    join.node = kNodes;
    join.payload = joiner_endpoint;
    const auto reply = admin.call(join, 3.0);
    ASSERT_TRUE(reply.has_value()) << "member " << node;
    ASSERT_EQ(reply->type, MsgType::kWriteReply) << reply->payload;
    EXPECT_GT(reply->version, 0u) << "membership epoch must have advanced";
  }

  // Every key the post-join ring assigns to node 3 must land there, at the
  // version the old holders stored (preload version 1).
  ConsistentHashRing ring(kNodes + 1, kReplication, 64, kPartitionSeed);
  std::vector<KeyId> moved;
  std::vector<NodeId> group(kReplication);
  for (KeyId key = 0; key < kItems; ++key) {
    ring.replica_group(key, group);
    if (std::find(group.begin(), group.end(), NodeId{kNodes}) != group.end()) {
      moved.push_back(key);
    }
  }
  ASSERT_FALSE(moved.empty()) << "join moved nothing; enlarge the key set";
  for (const KeyId key : moved) {
    EXPECT_TRUE(eventually([&] {
      return joiner->storage_entry(key).has_value();
    })) << "key " << key << " never streamed to the joiner";
  }

  joiner->stop(0.5);
  for (auto& backend : mesh.backends) backend->stop(0.5);
}

TEST_P(QuorumSuite, LeaveStreamsDepartingKeysToSurvivors) {
  // Four ring nodes, d=2; node 0 leaves gracefully. Keys whose old group
  // contained node 0 gain a replacement member, and the surviving old
  // holder streams them over.
  constexpr std::uint32_t kNodes = 4;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 64;

  Mesh mesh;
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    BackendConfig config = quorum_config(node, kNodes, kReplication, kItems);
    config.partitioner = "ring";
    auto backend = std::make_unique<BackendServer>(config);
    ASSERT_TRUE(backend->start());
    mesh.endpoints.emplace_back("127.0.0.1", backend->port());
    mesh.backends.push_back(std::move(backend));
  }
  mesh.rewire();
  for (auto& backend : mesh.backends) ASSERT_TRUE(backend->wait_peers_up(5.0));

  // Old and new rings, for deriving which (key, target) pairs must move.
  ConsistentHashRing old_ring(kNodes, kReplication, 64, kPartitionSeed);
  ConsistentHashRing new_ring(kNodes, kReplication, 64, kPartitionSeed);
  new_ring.remove_node(0);

  // kLeave carries the leaver in `node`. Announce to the leaver itself
  // first (a graceful leave streams its own keys out), then the survivors.
  Message leave;
  leave.type = MsgType::kLeave;
  leave.node = 0;
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    SyncClient admin;
    ASSERT_TRUE(admin.connect("127.0.0.1", mesh.backends[node]->port()));
    const auto ack = admin.call(leave, 3.0);
    ASSERT_TRUE(ack.has_value()) << "member " << node;
    ASSERT_EQ(ack->type, MsgType::kWriteReply) << ack->payload;
  }

  std::vector<NodeId> old_group(kReplication);
  std::vector<NodeId> new_group(kReplication);
  std::uint64_t checked = 0;
  for (KeyId key = 0; key < kItems; ++key) {
    old_ring.replica_group(key, old_group);
    new_ring.replica_group(key, new_group);
    for (const NodeId target : new_group) {
      if (std::find(old_group.begin(), old_group.end(), target) !=
          old_group.end()) {
        continue;  // already held before the leave
      }
      ++checked;
      EXPECT_TRUE(eventually([&] {
        return mesh.backends[target]->storage_entry(key).has_value();
      })) << "key " << key << " never reached replacement node " << target;
    }
  }
  EXPECT_GT(checked, 0u) << "leave moved nothing; enlarge the key set";

  for (auto& backend : mesh.backends) backend->stop(0.5);
}

TEST_P(QuorumSuite, FrontendWriteInvalidatesItsCacheAndRefetches) {
  // The FE serves cached reads from the perfect oracle; a PUT through the
  // FE must stop the oracle from synthesizing the stale value until the
  // backend confirms the refetched bytes.
  constexpr std::uint64_t kItems = 32;
  Mesh mesh = start_mesh(3, 3, kItems);

  FrontendConfig fe_config;
  fe_config.nodes = 3;
  fe_config.replication = 3;
  fe_config.partition_seed = kPartitionSeed;
  fe_config.backends = mesh.endpoints;
  fe_config.cache_policy = "perfect";
  fe_config.cache_capacity = kItems;  // every key cached
  fe_config.items = kItems;
  fe_config.reactor = g_reactor;
  FrontendServer frontend(fe_config);
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port()));

  // Cached read first: served by the oracle without touching a backend.
  const std::uint64_t key = 3;
  const auto cached = client.get(key, 2.0);
  ASSERT_TRUE(cached.has_value());
  ASSERT_EQ(cached->type, MsgType::kValue);
  EXPECT_EQ(cached->payload, make_value(key, fe_config.value_bytes));

  // Write through the FE: the quorum commits on the backends and the FE
  // marks the key dirty so the oracle stops answering for it.
  const auto ack =
      client.call(make_put(key, make_value(key, fe_config.value_bytes)), 3.0);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, MsgType::kWriteReply) << ack->payload;
  EXPECT_GE(frontend.stats().invalidations, 1u);

  // The next GET is forwarded (dirty), returns the backend's copy, and the
  // matching bytes re-clean the cache.
  const auto refetched = client.get(key, 3.0);
  ASSERT_TRUE(refetched.has_value());
  ASSERT_EQ(refetched->type, MsgType::kValue);
  EXPECT_EQ(refetched->payload, make_value(key, fe_config.value_bytes));

  const ServerStats after_refetch = frontend.stats();
  EXPECT_GE(after_refetch.forwarded, 1u);

  // Cache serves again: no new forward for the same key.
  const auto again = client.get(key, 2.0);
  ASSERT_TRUE(again.has_value());
  ASSERT_EQ(again->type, MsgType::kValue);
  EXPECT_EQ(frontend.stats().forwarded, after_refetch.forwarded)
      << "a cleaned key must be served from the cache again";

  frontend.stop(0.5);
  for (auto& backend : mesh.backends) backend->stop(0.5);
}

}  // namespace
}  // namespace scp::net
