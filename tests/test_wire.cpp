// Wire-protocol unit tests: encode/decode round trips for every message
// type, strict rejection of malformed frames, and incremental FrameReader
// extraction from fragmented streams.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "common/histogram.h"

namespace scp::net {
namespace {

using namespace std::string_literals;

std::vector<Message> every_message_type() {
  std::vector<Message> messages;

  Message get;
  get.type = MsgType::kGet;
  get.key = 0xdeadbeefcafe1234ULL;
  messages.push_back(get);

  Message value;
  value.type = MsgType::kValue;
  value.key = 7;
  value.payload = "the value bytes, including \0 inside"s;
  messages.push_back(value);

  Message miss;
  miss.type = MsgType::kMiss;
  miss.key = 42;
  messages.push_back(miss);

  Message redirect;
  redirect.type = MsgType::kRedirect;
  redirect.key = 99;
  redirect.node = 1234;
  messages.push_back(redirect);

  Message stats;
  stats.type = MsgType::kStats;
  messages.push_back(stats);

  Message stats_reply;
  stats_reply.type = MsgType::kStatsReply;
  stats_reply.stats = ServerStats{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
  messages.push_back(stats_reply);

  Message metrics_request;
  metrics_request.type = MsgType::kMetricsRequest;
  messages.push_back(metrics_request);

  Message metrics_reply;
  metrics_reply.type = MsgType::kMetricsReply;
  metrics_reply.metrics.counters["frontend.requests"] = 12345;
  metrics_reply.metrics.counters["frontend.hits"] = 0;
  metrics_reply.metrics.gauges["frontend.backends_up"] = -3;
  {
    LogHistogram rtt(5);
    rtt.record(1);
    rtt.record(120);
    rtt.record_n(70000, 40);
    metrics_reply.metrics.timers.emplace("frontend.forward_rtt_us",
                                         std::move(rtt));
    LogHistogram empty(7);
    metrics_reply.metrics.timers.emplace("loop.tick_us", std::move(empty));
  }
  messages.push_back(metrics_reply);

  Message ping;
  ping.type = MsgType::kPing;
  messages.push_back(ping);

  Message pong;
  pong.type = MsgType::kPong;
  messages.push_back(pong);

  Message error;
  error.type = MsgType::kError;
  error.key = 8;
  error.payload = "no live replica";
  messages.push_back(error);

  Message put;
  put.type = MsgType::kPut;
  put.key = 0x1122334455667788ULL;
  put.payload = "new value bytes\0with a null"s;
  messages.push_back(put);

  Message del;
  del.type = MsgType::kDelete;
  del.key = 314159;
  messages.push_back(del);

  Message write_reply;
  write_reply.type = MsgType::kWriteReply;
  write_reply.key = 271828;
  write_reply.version = (42ULL << 10) | 7;  // counter 42 minted by node 7
  messages.push_back(write_reply);

  Message quorum_get;
  quorum_get.type = MsgType::kQuorumGet;
  quorum_get.key = 0xfeedfacefeedfaceULL;
  messages.push_back(quorum_get);

  Message ver_read;
  ver_read.type = MsgType::kVerRead;
  ver_read.key = 161803;
  messages.push_back(ver_read);

  Message ver_value_found;
  ver_value_found.type = MsgType::kVerValue;
  ver_value_found.key = 161803;
  ver_value_found.version = (9ULL << 10) | 3;
  ver_value_found.flags = kFlagFound;
  ver_value_found.payload = "versioned bytes";
  messages.push_back(ver_value_found);

  Message ver_value_tombstone;
  ver_value_tombstone.type = MsgType::kVerValue;
  ver_value_tombstone.key = 161803;
  ver_value_tombstone.version = (10ULL << 10) | 3;
  ver_value_tombstone.flags = kFlagFound | kFlagTombstone;
  messages.push_back(ver_value_tombstone);

  Message ver_value_miss;
  ver_value_miss.type = MsgType::kVerValue;
  ver_value_miss.key = 161803;
  messages.push_back(ver_value_miss);  // flags=0: not found, version 0

  Message replicate;
  replicate.type = MsgType::kReplicate;
  replicate.key = 577215;
  replicate.version = (100ULL << 10) | 1;
  replicate.payload = "replicated value";
  messages.push_back(replicate);

  Message replicate_tombstone;
  replicate_tombstone.type = MsgType::kReplicate;
  replicate_tombstone.key = 577215;
  replicate_tombstone.version = (101ULL << 10) | 2;
  replicate_tombstone.flags = kFlagTombstone;
  messages.push_back(replicate_tombstone);

  Message rep_ack;
  rep_ack.type = MsgType::kRepAck;
  rep_ack.key = 577215;
  rep_ack.version = (100ULL << 10) | 1;
  rep_ack.flags = kFlagApplied;
  messages.push_back(rep_ack);

  Message join;
  join.type = MsgType::kJoin;
  join.node = 5;
  join.payload = "127.0.0.1:43121";
  messages.push_back(join);

  Message leave;
  leave.type = MsgType::kLeave;
  leave.node = 5;
  messages.push_back(leave);

  Message hot_report;
  hot_report.type = MsgType::kHotKeyReport;
  hot_report.hot.node = 3;
  hot_report.hot.seq = 41;
  hot_report.hot.total = 100000;
  hot_report.hot.entries = {{0xdeadbeefULL, 5000}, {7, 4999}, {~0ULL, 1}};
  messages.push_back(hot_report);

  Message hot_report_empty;
  hot_report_empty.type = MsgType::kHotKeyReport;
  hot_report_empty.hot.node = 0;
  hot_report_empty.hot.seq = 1;
  messages.push_back(hot_report_empty);  // cold sketch: no entries yet

  Message hot_subscribe;
  hot_subscribe.type = MsgType::kHotKeySubscribe;
  messages.push_back(hot_subscribe);

  Message batch_get;
  batch_get.type = MsgType::kBatchGet;
  batch_get.batch_keys = {0xdeadbeefcafe1234ULL, 7, 7, 0, ~0ULL};
  messages.push_back(batch_get);

  Message batch_get_empty;
  batch_get_empty.type = MsgType::kBatchGet;
  messages.push_back(batch_get_empty);  // count 0: legal, answers nothing

  Message batch_reply;
  batch_reply.type = MsgType::kBatchReply;
  batch_reply.batch.push_back(
      {MsgType::kValue, 7, 0, "batched value bytes\0with a null"s});
  batch_reply.batch.push_back({MsgType::kMiss, 42, 0, ""});
  batch_reply.batch.push_back({MsgType::kRedirect, 99, 1234, ""});
  batch_reply.batch.push_back({MsgType::kError, 8, 0, "no live replica"});
  messages.push_back(batch_reply);

  Message batch_reply_empty;
  batch_reply_empty.type = MsgType::kBatchReply;
  messages.push_back(batch_reply_empty);

  return messages;
}

TEST(Wire, RoundTripEveryMessageType) {
  for (const Message& message : every_message_type()) {
    const std::vector<std::uint8_t> frame = encode(message);
    ASSERT_GE(frame.size(), kLengthPrefixBytes);
    const std::span<const std::uint8_t> payload{
        frame.data() + kLengthPrefixBytes, frame.size() - kLengthPrefixBytes};
    const auto decoded = decode_payload(payload);
    ASSERT_TRUE(decoded.has_value())
        << "type=" << static_cast<int>(message.type);
    EXPECT_EQ(*decoded, message) << "type=" << static_cast<int>(message.type);
  }
}

TEST(Wire, EncodeIntoIsByteIdenticalToEncode) {
  // The reactors' zero-allocation hot path must never diverge from encode():
  // the --shards 1 equivalence guard depends on identical bytes on the wire.
  std::vector<std::uint8_t> scratch;
  for (const Message& message : every_message_type()) {
    const std::vector<std::uint8_t> fresh = encode(message);
    encode_into(message, scratch);
    EXPECT_EQ(scratch, fresh) << "type=" << static_cast<int>(message.type);
  }
}

TEST(Wire, EncodeIntoReusesCapacityAcrossFrames) {
  Message big;
  big.type = MsgType::kValue;
  big.key = 1;
  big.payload.assign(4096, 'x');
  std::vector<std::uint8_t> scratch;
  encode_into(big, scratch);
  const std::size_t grown = scratch.capacity();
  const std::uint8_t* data = scratch.data();

  // A smaller frame re-encoded into the same scratch must not shrink or
  // reallocate it — that stability is what makes the per-frame cost zero.
  Message small;
  small.type = MsgType::kGet;
  small.key = 2;
  encode_into(small, scratch);
  EXPECT_EQ(scratch.capacity(), grown);
  EXPECT_EQ(scratch.data(), data);
  EXPECT_EQ(scratch, encode(small));
}

TEST(Wire, LengthPrefixMatchesPayload) {
  Message message;
  message.type = MsgType::kValue;
  message.key = 1;
  message.payload = "abc";
  const std::vector<std::uint8_t> frame = encode(message);
  const std::uint32_t declared = (static_cast<std::uint32_t>(frame[0]) << 24) |
                                 (static_cast<std::uint32_t>(frame[1]) << 16) |
                                 (static_cast<std::uint32_t>(frame[2]) << 8) |
                                 static_cast<std::uint32_t>(frame[3]);
  EXPECT_EQ(declared, frame.size() - kLengthPrefixBytes);
}

TEST(Wire, RejectsEmptyPayload) {
  EXPECT_FALSE(decode_payload({}).has_value());
}

TEST(Wire, RejectsUnknownType) {
  const std::uint8_t payload[] = {0x7f};
  EXPECT_FALSE(decode_payload(payload).has_value());
  const std::uint8_t zero[] = {0x00};
  EXPECT_FALSE(decode_payload(zero).has_value());
}

TEST(Wire, RejectsTruncatedFields) {
  // Every prefix of a valid payload except the full length must fail.
  for (const Message& message : every_message_type()) {
    const std::vector<std::uint8_t> frame = encode(message);
    const std::span<const std::uint8_t> payload{
        frame.data() + kLengthPrefixBytes, frame.size() - kLengthPrefixBytes};
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      EXPECT_FALSE(decode_payload(payload.subspan(0, cut)).has_value())
          << "type=" << static_cast<int>(message.type) << " cut=" << cut;
    }
  }
}

TEST(Wire, RejectsTrailingGarbage) {
  for (const Message& message : every_message_type()) {
    std::vector<std::uint8_t> frame = encode(message);
    frame.push_back(0xee);
    const std::span<const std::uint8_t> payload{
        frame.data() + kLengthPrefixBytes, frame.size() - kLengthPrefixBytes};
    EXPECT_FALSE(decode_payload(payload).has_value())
        << "type=" << static_cast<int>(message.type);
  }
}

TEST(Wire, RejectsEmbeddedLengthOverrun) {
  // kValue whose inner byte-length claims more than the payload holds.
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(MsgType::kValue));
  for (int i = 0; i < 8; ++i) payload.push_back(0);  // key
  payload.insert(payload.end(), {0x00, 0x00, 0x00, 0x10});  // len 16...
  payload.push_back('a');                                   // ...1 byte
  EXPECT_FALSE(decode_payload(payload).has_value());
}

TEST(FrameReaderTest, ExtractsFramesAcrossArbitraryChunks) {
  const std::vector<Message> messages = every_message_type();
  std::vector<std::uint8_t> stream;
  for (const Message& message : messages) {
    const std::vector<std::uint8_t> frame = encode(message);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  for (std::size_t chunk = 1; chunk <= 7; ++chunk) {
    FrameReader reader;
    std::vector<Message> decoded;
    for (std::size_t offset = 0; offset < stream.size(); offset += chunk) {
      const std::size_t len = std::min(chunk, stream.size() - offset);
      reader.append({stream.data() + offset, len});
      while (auto payload = reader.next_payload()) {
        auto message = decode_payload(*payload);
        ASSERT_TRUE(message.has_value());
        decoded.push_back(*message);
      }
    }
    ASSERT_FALSE(reader.corrupted());
    EXPECT_EQ(reader.buffered_bytes(), 0u);
    ASSERT_EQ(decoded.size(), messages.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < messages.size(); ++i) {
      EXPECT_EQ(decoded[i], messages[i]) << "chunk=" << chunk << " i=" << i;
    }
  }
}

TEST(FrameReaderTest, OversizedDeclaredLengthPoisonsTheStream) {
  FrameReader reader;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  const std::uint8_t prefix[] = {
      static_cast<std::uint8_t>(huge >> 24), static_cast<std::uint8_t>(huge >> 16),
      static_cast<std::uint8_t>(huge >> 8), static_cast<std::uint8_t>(huge)};
  reader.append(prefix);
  EXPECT_FALSE(reader.next_payload().has_value());
  EXPECT_TRUE(reader.corrupted());
  // A poisoned reader never yields frames again, even valid ones.
  const std::vector<std::uint8_t> valid = encode(Message{});
  reader.append(valid);
  EXPECT_FALSE(reader.next_payload().has_value());
  EXPECT_TRUE(reader.corrupted());
}

TEST(FrameReaderTest, MaxSizedFrameIsAccepted) {
  Message message;
  message.type = MsgType::kValue;
  message.key = 1;
  // Inner layout: type(1) + key(8) + len(4) + bytes — fill to the cap.
  message.payload.assign(kMaxFrameBytes - 13, 'x');
  const std::vector<std::uint8_t> frame = encode(message);
  FrameReader reader;
  reader.append(frame);
  auto payload = reader.next_payload();
  ASSERT_TRUE(payload.has_value());
  EXPECT_FALSE(reader.corrupted());
  auto decoded = decode_payload(*payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload.size(), message.payload.size());
}

TEST(FrameReaderTest, NextFrameYieldsSameBytesAsNextPayload) {
  const std::vector<Message> messages = every_message_type();
  std::vector<std::uint8_t> stream;
  for (const Message& message : messages) {
    const std::vector<std::uint8_t> frame = encode(message);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  for (std::size_t chunk = 1; chunk <= 7; ++chunk) {
    FrameReader reader;
    std::vector<Message> decoded;
    for (std::size_t offset = 0; offset < stream.size(); offset += chunk) {
      const std::size_t len = std::min(chunk, stream.size() - offset);
      reader.append({stream.data() + offset, len});
      // The zero-copy view is valid until the next reader call; decode
      // immediately, exactly as the reactor's read path does.
      while (auto view = reader.next_frame()) {
        auto message = decode_payload(*view);
        ASSERT_TRUE(message.has_value()) << "chunk=" << chunk;
        decoded.push_back(std::move(*message));
      }
    }
    ASSERT_FALSE(reader.corrupted());
    EXPECT_EQ(reader.buffered_bytes(), 0u);
    ASSERT_EQ(decoded.size(), messages.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < messages.size(); ++i) {
      EXPECT_EQ(decoded[i], messages[i]) << "chunk=" << chunk << " i=" << i;
    }
  }
}

TEST(FrameReaderTest, NextFrameRespectsCorruption) {
  FrameReader reader;
  const std::uint32_t huge = kMaxFrameBytes + 1;
  const std::uint8_t prefix[] = {
      static_cast<std::uint8_t>(huge >> 24), static_cast<std::uint8_t>(huge >> 16),
      static_cast<std::uint8_t>(huge >> 8), static_cast<std::uint8_t>(huge)};
  reader.append(prefix);
  EXPECT_FALSE(reader.next_frame().has_value());
  EXPECT_TRUE(reader.corrupted());
}

TEST(FrameReaderTest, StorageRecyclingKeepsCapacityAndDropsContents) {
  Message message;
  message.type = MsgType::kValue;
  message.key = 9;
  message.payload.assign(2048, 'y');
  const std::vector<std::uint8_t> frame = encode(message);

  FrameReader first;
  first.append(frame);
  ASSERT_TRUE(first.next_frame().has_value());

  // Retire the first reader and hand its storage to a new connection's
  // reader, as FrameLoop does through the per-loop buffer pool.
  std::vector<std::uint8_t> storage = first.release_storage();
  const std::size_t recycled_capacity = storage.capacity();
  EXPECT_GE(recycled_capacity, frame.size());

  FrameReader second;
  second.adopt_storage(std::move(storage));
  EXPECT_EQ(second.buffered_bytes(), 0u);  // capacity only, no stale bytes
  second.append(frame);
  auto view = second.next_frame();
  ASSERT_TRUE(view.has_value());
  const auto decoded = decode_payload(*view);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

TEST(FrameReaderTest, PartialFrameStaysBuffered) {
  Message message;
  message.type = MsgType::kGet;
  message.key = 5;
  const std::vector<std::uint8_t> frame = encode(message);
  FrameReader reader;
  reader.append({frame.data(), frame.size() - 1});
  EXPECT_FALSE(reader.next_payload().has_value());
  EXPECT_FALSE(reader.corrupted());
  EXPECT_EQ(reader.buffered_bytes(), frame.size() - 1);
  reader.append({frame.data() + frame.size() - 1, 1});
  EXPECT_TRUE(reader.next_payload().has_value());
}

TEST(Wire, MetricsReplyPreservesHistogramQuantiles) {
  Message message;
  message.type = MsgType::kMetricsReply;
  LogHistogram h(5);
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  message.metrics.timers.emplace("backend.service_us", h);

  const std::vector<std::uint8_t> frame = encode(message);
  const std::span<const std::uint8_t> payload{
      frame.data() + kLengthPrefixBytes, frame.size() - kLengthPrefixBytes};
  const auto decoded = decode_payload(payload);
  ASSERT_TRUE(decoded.has_value());
  const auto it = decoded->metrics.timers.find("backend.service_us");
  ASSERT_NE(it, decoded->metrics.timers.end());
  EXPECT_EQ(it->second, h);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(it->second.value_at_quantile(q), h.value_at_quantile(q))
        << "q=" << q;
  }
}

namespace {

/// Hand-built kMetricsReply payload with zero counters/gauges and one timer
/// whose header fields are caller-controlled.
std::vector<std::uint8_t> metrics_payload_with_timer(
    std::uint8_t precision,
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& buckets) {
  std::vector<std::uint8_t> payload;
  const auto u32 = [&payload](std::uint32_t v) {
    payload.push_back(static_cast<std::uint8_t>(v >> 24));
    payload.push_back(static_cast<std::uint8_t>(v >> 16));
    payload.push_back(static_cast<std::uint8_t>(v >> 8));
    payload.push_back(static_cast<std::uint8_t>(v));
  };
  const auto u64 = [&u32](std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  };
  payload.push_back(static_cast<std::uint8_t>(MsgType::kMetricsReply));
  u32(0);  // counters
  u32(0);  // gauges
  u32(1);  // timers
  u32(1);  // name length
  payload.push_back('t');
  payload.push_back(precision);
  std::uint64_t total = 0;
  for (const auto& [index, count] : buckets) total += count;
  u64(total > 0 ? 1 : 0);                     // min
  u64(total > 0 ? 2 : 0);                     // max
  u64(std::bit_cast<std::uint64_t>(0.0));     // sum
  u32(static_cast<std::uint32_t>(buckets.size()));
  for (const auto& [index, count] : buckets) {
    u32(index);
    u64(count);
  }
  return payload;
}

}  // namespace

TEST(Wire, RejectsMetricsTimerWithBadPrecision) {
  EXPECT_FALSE(
      decode_payload(metrics_payload_with_timer(0, {{0, 1}})).has_value());
  EXPECT_FALSE(
      decode_payload(metrics_payload_with_timer(11, {{0, 1}})).has_value());
  EXPECT_TRUE(
      decode_payload(metrics_payload_with_timer(5, {{1, 1}})).has_value());
}

TEST(Wire, RejectsMetricsTimerWithMalformedBuckets) {
  // Non-ascending bucket indices.
  EXPECT_FALSE(
      decode_payload(metrics_payload_with_timer(5, {{7, 1}, {3, 1}}))
          .has_value());
  // Zero-count buckets.
  EXPECT_FALSE(
      decode_payload(metrics_payload_with_timer(5, {{3, 0}})).has_value());
  // Bucket index beyond the precision's bucket range.
  EXPECT_FALSE(
      decode_payload(metrics_payload_with_timer(1, {{0xffffff, 1}}))
          .has_value());
}

TEST(Wire, WriteFramesPreserveVersionAndFlagsExtremes) {
  // The LWW tie-break depends on every version bit surviving the wire.
  Message message;
  message.type = MsgType::kReplicate;
  message.key = ~0ULL;
  message.version = ~0ULL;
  message.flags = 0xff;
  message.payload = "x";
  const std::vector<std::uint8_t> frame = encode(message);
  const auto decoded = decode_payload(
      {frame.data() + kLengthPrefixBytes, frame.size() - kLengthPrefixBytes});
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->version, ~0ULL);
  EXPECT_EQ(decoded->flags, 0xff);
  EXPECT_EQ(*decoded, message);
}

TEST(Wire, RejectsPutWithEmbeddedLengthOverrun) {
  // kPut whose inner byte-length claims more than the payload holds.
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(MsgType::kPut));
  for (int i = 0; i < 8; ++i) payload.push_back(0);         // key
  payload.insert(payload.end(), {0x00, 0x00, 0x00, 0x20});  // len 32...
  payload.push_back('a');                                   // ...1 byte
  EXPECT_FALSE(decode_payload(payload).has_value());
}

TEST(Wire, RejectsJoinWithEmbeddedLengthOverrun) {
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(MsgType::kJoin));
  for (int i = 0; i < 4; ++i) payload.push_back(0);         // node
  payload.insert(payload.end(), {0x00, 0x00, 0x01, 0x00});  // len 256...
  payload.push_back('1');                                   // ...1 byte
  EXPECT_FALSE(decode_payload(payload).has_value());
}

TEST(Wire, RejectsHotKeyReportBeyondEntryCap) {
  // A declared entry count above the sanity cap is rejected before any
  // entry bytes are read — a hostile peer cannot make the decoder loop.
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(MsgType::kHotKeyReport));
  for (int i = 0; i < 4; ++i) payload.push_back(0);   // node
  for (int i = 0; i < 16; ++i) payload.push_back(0);  // seq + total
  const std::uint32_t n = detect::kMaxHotKeyEntries + 1;
  payload.push_back(static_cast<std::uint8_t>(n >> 24));
  payload.push_back(static_cast<std::uint8_t>(n >> 16));
  payload.push_back(static_cast<std::uint8_t>(n >> 8));
  payload.push_back(static_cast<std::uint8_t>(n));
  EXPECT_FALSE(decode_payload(payload).has_value());

  // At the cap (with the entries actually present) it round-trips.
  Message message;
  message.type = MsgType::kHotKeyReport;
  message.hot.node = 1;
  message.hot.seq = 2;
  for (std::uint32_t i = 0; i < detect::kMaxHotKeyEntries; ++i) {
    message.hot.entries.push_back({i, i + 1});
    message.hot.total += i + 1;
  }
  const std::vector<std::uint8_t> frame = encode(message);
  const auto decoded = decode_payload(
      {frame.data() + kLengthPrefixBytes, frame.size() - kLengthPrefixBytes});
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

TEST(Wire, RejectsBatchFramesBeyondEntryCap) {
  // A declared batch count above kMaxBatchEntries is rejected before any
  // entry bytes are read — a hostile peer cannot make the decoder loop or
  // reserve unbounded memory.
  const std::uint32_t n = kMaxBatchEntries + 1;
  for (const MsgType type : {MsgType::kBatchGet, MsgType::kBatchReply}) {
    std::vector<std::uint8_t> payload;
    payload.push_back(static_cast<std::uint8_t>(type));
    payload.push_back(static_cast<std::uint8_t>(n >> 24));
    payload.push_back(static_cast<std::uint8_t>(n >> 16));
    payload.push_back(static_cast<std::uint8_t>(n >> 8));
    payload.push_back(static_cast<std::uint8_t>(n));
    EXPECT_FALSE(decode_payload(payload).has_value())
        << "type=" << static_cast<int>(type);
  }

  // At the cap (with the keys actually present) a kBatchGet round-trips.
  Message message;
  message.type = MsgType::kBatchGet;
  for (std::uint32_t i = 0; i < kMaxBatchEntries; ++i) {
    message.batch_keys.push_back(i * 2654435761ULL);
  }
  const std::vector<std::uint8_t> frame = encode(message);
  const auto decoded = decode_payload(
      {frame.data() + kLengthPrefixBytes, frame.size() - kLengthPrefixBytes});
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, message);
}

TEST(Wire, RejectsBatchGetCountOverrun) {
  // Declared count claims more keys than the payload holds.
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(MsgType::kBatchGet));
  payload.insert(payload.end(), {0x00, 0x00, 0x00, 0x03});  // 3 keys...
  for (int i = 0; i < 8; ++i) payload.push_back(0);         // ...1 present
  EXPECT_FALSE(decode_payload(payload).has_value());
}

TEST(Wire, RejectsBatchReplyWithNonReplyItemSubtype) {
  // An item may only be a per-key reply shape (kValue/kMiss/kRedirect/
  // kError); a request subtype smuggled inside a reply batch is rejected.
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(MsgType::kBatchReply));
  payload.insert(payload.end(), {0x00, 0x00, 0x00, 0x01});  // 1 item
  payload.push_back(static_cast<std::uint8_t>(MsgType::kGet));
  for (int i = 0; i < 8; ++i) payload.push_back(0);  // key
  EXPECT_FALSE(decode_payload(payload).has_value());
}

TEST(Wire, RejectsBatchReplyItemWithEmbeddedLengthOverrun) {
  // kValue item whose inner byte-length claims more than the payload holds.
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(MsgType::kBatchReply));
  payload.insert(payload.end(), {0x00, 0x00, 0x00, 0x01});  // 1 item
  payload.push_back(static_cast<std::uint8_t>(MsgType::kValue));
  for (int i = 0; i < 8; ++i) payload.push_back(0);         // key
  payload.insert(payload.end(), {0x00, 0x00, 0x00, 0x10});  // len 16...
  payload.push_back('a');                                   // ...1 byte
  EXPECT_FALSE(decode_payload(payload).has_value());
}

TEST(Wire, MakeValueIsDeterministicAndSized) {
  EXPECT_EQ(make_value(17, 64), make_value(17, 64));
  EXPECT_NE(make_value(17, 64), make_value(18, 64));
  EXPECT_EQ(make_value(3, 64).size(), 64u);
  EXPECT_EQ(make_value(3, 16).substr(0, 3), "v3:");
  // Long key ids may exceed a tiny requested size; content wins over size.
  EXPECT_EQ(make_value(123456789, 4).substr(0, 1), "v");
}

}  // namespace
}  // namespace scp::net
