// JSON writer and result serialization.
#include <gtest/gtest.h>

#include "common/json.h"
#include "core/serialize.h"

namespace scp {
namespace {

TEST(JsonWriter, EmptyObject) {
  JsonWriter json;
  json.begin_object().end();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(json.str(), "{}");
}

TEST(JsonWriter, EmptyArray) {
  JsonWriter json;
  json.begin_array().end();
  EXPECT_EQ(json.str(), "[]");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter json;
  json.begin_object()
      .field("name", "scp")
      .field("nodes", std::uint64_t{1000})
      .field("rate", 1.5)
      .field("ok", true)
      .end();
  EXPECT_EQ(json.str(),
            "{\"name\":\"scp\",\"nodes\":1000,\"rate\":1.5,\"ok\":true}");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter json;
  json.begin_object();
  json.key("list").begin_array();
  json.value(std::int64_t{1});
  json.value(std::int64_t{2});
  json.begin_object().field("x", false).end();
  json.end();
  json.key("none").null();
  json.end();
  EXPECT_EQ(json.str(), "{\"list\":[1,2,{\"x\":false}],\"none\":null}");
}

TEST(JsonWriter, EscapesSpecialCharacters) {
  JsonWriter json;
  json.begin_object().field("s", "a\"b\\c\nd\te").end();
  EXPECT_EQ(json.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, EscapesControlCharacters) {
  JsonWriter json;
  std::string s = "x";
  s += '\x01';
  json.begin_object().field("s", s).end();
  EXPECT_EQ(json.str(), "{\"s\":\"x\\u0001\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.begin_object()
      .field("inf", std::numeric_limits<double>::infinity())
      .field("nan", std::numeric_limits<double>::quiet_NaN())
      .end();
  EXPECT_EQ(json.str(), "{\"inf\":null,\"nan\":null}");
}

TEST(JsonWriter, RootScalar) {
  JsonWriter json;
  json.value(42.0);
  EXPECT_EQ(json.str(), "42");
}

TEST(JsonWriter, MisuseDies) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_DEATH(json.value(1.0), "key");
  }
  {
    JsonWriter json;
    json.begin_object().key("a");
    EXPECT_DEATH(json.key("b"), "two keys");
  }
  {
    JsonWriter json;
    EXPECT_DEATH(json.end(), "no open scope");
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_DEATH(json.str(), "complete");
  }
}

TEST(SerializePlan, ContainsTheoryAndValidation) {
  ProvisionOptions options;
  options.validation_trials = 2;
  options.validation_grid_points = 0;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec;
  spec.nodes = 100;
  spec.replication = 3;
  spec.items = 10000;
  spec.attack_rate_qps = 1e4;
  const std::string json = to_json(provisioner.plan(spec));
  EXPECT_NE(json.find("\"nodes\":100"), std::string::npos);
  EXPECT_NE(json.find("\"threshold_c_star\":"), std::string::npos);
  EXPECT_NE(json.find("\"prevention_holds\":true"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(SerializePlan, UnreplicatedPlanSerializesRemedy) {
  ProvisionOptions options;
  options.validate = false;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec;
  spec.nodes = 100;
  spec.replication = 1;
  spec.items = 10000;
  spec.attack_rate_qps = 1e4;
  const std::string json = to_json(provisioner.plan(spec));
  EXPECT_NE(json.find("\"prevention_possible\":false"), std::string::npos);
  EXPECT_NE(json.find("\"remedy\""), std::string::npos);
  EXPECT_EQ(json.find("\"theory\""), std::string::npos);
}

TEST(SerializeAssessment, RoundTripFields) {
  AnalyzerOptions options;
  options.trials = 3;
  const AttackAnalyzer analyzer(options);
  SystemParams params;
  params.nodes = 100;
  params.replication = 3;
  params.items = 10000;
  params.cache_size = 50;
  params.query_rate = 1e4;
  const std::string json = to_json(analyzer.assess_adversarial(params, 51));
  EXPECT_NE(json.find("\"effective\":true"), std::string::npos);
  EXPECT_NE(json.find("\"eq10_bound\":"), std::string::npos);
  EXPECT_NE(json.find("\"trials\":3"), std::string::npos);
}

TEST(SerializeAssessment, MissingBoundSerializesNull) {
  AnalyzerOptions options;
  options.trials = 2;
  const AttackAnalyzer analyzer(options);
  SystemParams params;
  params.nodes = 100;
  params.replication = 3;
  params.items = 10000;
  params.cache_size = 50;
  params.query_rate = 1e4;
  const std::string json =
      to_json(analyzer.assess(params, QueryDistribution::zipf(10000, 1.01)));
  EXPECT_NE(json.find("\"eq10_bound\":null"), std::string::npos);
}

}  // namespace
}  // namespace scp
