#include "core/provisioner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "adversary/bounds.h"

namespace scp {
namespace {

ClusterSpec small_spec() {
  ClusterSpec spec;
  spec.nodes = 100;
  spec.replication = 3;
  spec.items = 10000;
  spec.attack_rate_qps = 10000.0;
  return spec;
}

ProvisionOptions fast_options() {
  ProvisionOptions options;
  options.validation_trials = 3;
  options.validation_grid_points = 2;
  return options;
}

TEST(CacheProvisioner, ThresholdMatchesBoundsModule) {
  const CacheProvisioner provisioner(fast_options());
  EXPECT_DOUBLE_EQ(
      provisioner.threshold(1000, 3),
      cache_size_threshold(1000, 3, provisioner.options().k_prime));
}

TEST(CacheProvisioner, PlanComputesTheoryFields) {
  ProvisionOptions options = fast_options();
  options.validate = false;
  const CacheProvisioner provisioner(options);
  const ProvisionPlan plan = provisioner.plan(small_spec());
  EXPECT_TRUE(plan.prevention_possible);
  EXPECT_NEAR(plan.k, gap_k(100, 3, options.k_prime), 1e-12);
  EXPECT_NEAR(plan.threshold, 100.0 * plan.k + 1.0, 1e-9);
  EXPECT_EQ(plan.recommended_cache_size,
            static_cast<std::uint64_t>(
                std::ceil(plan.threshold * options.safety_factor)));
  EXPECT_DOUBLE_EQ(plan.even_load_qps, 100.0);
  EXPECT_FALSE(plan.validated);
}

TEST(CacheProvisioner, RecommendationIsOrderN) {
  ProvisionOptions options = fast_options();
  options.validate = false;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec = small_spec();
  spec.nodes = 1000;
  spec.items = 1000000;
  const ProvisionPlan plan = provisioner.plan(spec);
  // < n · (2 + k') · safety for d = 3, per the paper's headline.
  EXPECT_LT(static_cast<double>(plan.recommended_cache_size),
            1000.0 * (2.0 + options.k_prime) * options.safety_factor + 2.0);
}

TEST(CacheProvisioner, ValidationConfirmsPrevention) {
  const CacheProvisioner provisioner(fast_options());
  const ProvisionPlan plan = provisioner.plan(small_spec());
  ASSERT_TRUE(plan.validated);
  EXPECT_TRUE(plan.prevention_holds);
  EXPECT_LE(plan.observed_worst_gain, 1.0);
  EXPECT_GT(plan.observed_worst_x, plan.recommended_cache_size);
}

TEST(CacheProvisioner, WorstCaseBoundNearEvenLoad) {
  // In Case 2 the Eq. 8 bound at x = m approaches R/n from below as m grows.
  ProvisionOptions options = fast_options();
  options.validate = false;
  const CacheProvisioner provisioner(options);
  const ProvisionPlan plan = provisioner.plan(small_spec());
  EXPECT_LT(plan.worst_case_load_bound_qps, plan.even_load_qps);
  EXPECT_GT(plan.worst_case_load_bound_qps, plan.even_load_qps * 0.8);
}

TEST(CacheProvisioner, CapacityCheckBothWays) {
  ProvisionOptions options = fast_options();
  options.validate = false;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec = small_spec();
  spec.node_capacity_qps = 1000.0;  // 10× the even load
  EXPECT_TRUE(provisioner.plan(spec).capacity_sufficient);
  spec.node_capacity_qps = 50.0;  // below the even load
  EXPECT_FALSE(provisioner.plan(spec).capacity_sufficient);
}

TEST(CacheProvisioner, UnreplicatedClusterHasNoPreventionPlan) {
  ProvisionOptions options = fast_options();
  options.validate = false;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec = small_spec();
  spec.replication = 1;
  const ProvisionPlan plan = provisioner.plan(spec);
  EXPECT_FALSE(plan.prevention_possible);
  EXPECT_EQ(plan.recommended_cache_size, 0u);
}

TEST(CacheProvisioner, HigherReplicationNeedsSmallerCache) {
  ProvisionOptions options = fast_options();
  options.validate = false;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec = small_spec();
  spec.replication = 2;
  const auto plan_d2 = provisioner.plan(spec);
  spec.replication = 5;
  const auto plan_d5 = provisioner.plan(spec);
  EXPECT_GT(plan_d2.recommended_cache_size, plan_d5.recommended_cache_size);
}

TEST(CacheProvisioner, RejectsKeySpaceSmallerThanThreshold) {
  ProvisionOptions options = fast_options();
  options.validate = false;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec = small_spec();
  spec.items = 10;  // far below c*
  EXPECT_DEATH(provisioner.plan(spec), "cache everything");
}

TEST(CacheProvisioner, RejectsDegenerateSpecs) {
  const CacheProvisioner provisioner(fast_options());
  ClusterSpec spec = small_spec();
  spec.nodes = 2;
  EXPECT_DEATH(provisioner.plan(spec), "three nodes");
  spec = small_spec();
  spec.attack_rate_qps = 0.0;
  EXPECT_DEATH(provisioner.plan(spec), "rate");
}

TEST(CacheProvisioner, DegradedGuaranteeRecomputesBoundsForSurvivors) {
  ProvisionOptions options = fast_options();
  options.validate = false;
  const CacheProvisioner provisioner(options);
  const ClusterSpec spec = small_spec();
  const DegradedGuarantee dg = provisioner.degraded_guarantee(spec, 400, 10);
  EXPECT_EQ(dg.failures, 10u);
  EXPECT_EQ(dg.surviving_nodes, 90u);
  EXPECT_NEAR(dg.k, gap_k(90, 3, options.k_prime), 1e-12);
  EXPECT_NEAR(dg.threshold, cache_size_threshold(90, 3, options.k_prime),
              1e-9);
  // c*(n) grows with n: a cache covering c*(100) still covers c*(90).
  EXPECT_LT(dg.threshold, provisioner.threshold(100, 3));
  EXPECT_TRUE(dg.cache_covers_threshold);
  EXPECT_DOUBLE_EQ(dg.even_load_qps, 10000.0 / 90.0);
  // The survivors' even spread (and worst case) exceed the healthy ones.
  const ProvisionPlan plan = provisioner.plan(spec);
  EXPECT_GT(dg.even_load_qps, plan.even_load_qps);
  EXPECT_GT(dg.worst_case_load_bound_qps, 0.0);
}

TEST(CacheProvisioner, DegradedGuaranteeFlagsTooSmallCache) {
  ProvisionOptions options = fast_options();
  options.validate = false;
  const CacheProvisioner provisioner(options);
  const DegradedGuarantee dg =
      provisioner.degraded_guarantee(small_spec(), 50, 10);
  EXPECT_FALSE(dg.cache_covers_threshold);
}

TEST(CacheProvisioner, DegradedCapacityCheckUsesSurvivingBaseline) {
  ProvisionOptions options = fast_options();
  options.validate = false;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec = small_spec();
  // Healthy worst case is just under R/n = 100; half the cluster gone
  // roughly doubles it. Pick a capacity between the two regimes.
  spec.node_capacity_qps = 120.0;
  EXPECT_TRUE(provisioner.plan(spec).capacity_sufficient);
  const DegradedGuarantee dg =
      provisioner.degraded_guarantee(spec, 400, 50);
  EXPECT_FALSE(dg.capacity_sufficient);
}

TEST(CacheProvisioner, PlanEmbedsDegradedGuaranteeWhenRequested) {
  ProvisionOptions options = fast_options();
  options.validate = false;
  const ProvisionPlan healthy = CacheProvisioner(options).plan(small_spec());
  EXPECT_FALSE(healthy.degraded.has_value());

  options.degraded_failures = 10;
  const CacheProvisioner provisioner(options);
  const ProvisionPlan plan = provisioner.plan(small_spec());
  ASSERT_TRUE(plan.degraded.has_value());
  EXPECT_EQ(plan.degraded->failures, 10u);
  // The embedded guarantee is evaluated at the recommended size, which
  // covers the (smaller) degraded threshold by construction.
  EXPECT_TRUE(plan.degraded->cache_covers_threshold);
}

TEST(CacheProvisioner, DegradedGuaranteeRejectsTooManyFailures) {
  ProvisionOptions options = fast_options();
  options.validate = false;
  const CacheProvisioner provisioner(options);
  EXPECT_DEATH(provisioner.degraded_guarantee(small_spec(), 400, 98),
               "surviv");
}

TEST(CacheProvisioner, RejectsBadOptions) {
  ProvisionOptions options;
  options.safety_factor = 0.5;
  EXPECT_DEATH(CacheProvisioner{options}, "safety");
}

}  // namespace
}  // namespace scp
