#include "sim/fault.h"

#include <gtest/gtest.h>

#include "cluster/routing.h"

namespace scp {
namespace {

TEST(FaultView, HealthyByConstruction) {
  const FaultView view(8);
  EXPECT_EQ(view.nodes(), 8u);
  EXPECT_EQ(view.alive_count, 8u);
  EXPECT_FALSE(view.any_faults());
  for (std::uint32_t n = 0; n < 8; ++n) {
    EXPECT_EQ(view.alive[n], 1);
    EXPECT_DOUBLE_EQ(view.slow[n], 1.0);
    EXPECT_DOUBLE_EQ(view.drop[n], 0.0);
  }
}

TEST(FaultView, AnyFaultsDetectsEachKind) {
  FaultView crashed(4);
  crashed.alive[2] = 0;
  --crashed.alive_count;
  EXPECT_TRUE(crashed.any_faults());

  FaultView slowed(4);
  slowed.slow[0] = 2.0;
  EXPECT_TRUE(slowed.any_faults());

  FaultView lossy(4);
  lossy.drop[3] = 0.1;
  EXPECT_TRUE(lossy.any_faults());
}

TEST(FaultSchedule, ViewAtReflectsActiveWindows) {
  FaultSchedule schedule(4);
  schedule.add_crash(0, 1.0, 2.0);
  schedule.add_slow(1, 0.0, 3.0, 4.0);
  schedule.add_network_drop(2, 0.5, 1.5, 0.3);

  const FaultView before = schedule.view_at(0.0);
  EXPECT_EQ(before.alive_count, 4u);
  EXPECT_DOUBLE_EQ(before.slow[1], 4.0);
  EXPECT_DOUBLE_EQ(before.drop[2], 0.0);

  const FaultView during = schedule.view_at(1.0);
  EXPECT_EQ(during.alive[0], 0);
  EXPECT_EQ(during.alive_count, 3u);
  EXPECT_DOUBLE_EQ(during.slow[1], 4.0);
  EXPECT_DOUBLE_EQ(during.drop[2], 0.3);

  // Events are active on [start, end): at end the fault is over.
  const FaultView recovered = schedule.view_at(2.0);
  EXPECT_EQ(recovered.alive[0], 1);
  EXPECT_EQ(recovered.alive_count, 4u);

  const FaultView after = schedule.view_at(3.0);
  EXPECT_FALSE(after.any_faults());
}

TEST(FaultSchedule, CrashWithoutRecoveryLastsForever) {
  FaultSchedule schedule(2);
  schedule.add_crash(1, 0.5);
  EXPECT_EQ(schedule.view_at(1e12).alive[1], 0);
}

TEST(FaultSchedule, OverlappingFaultsCombinePessimistically) {
  FaultSchedule schedule(2);
  schedule.add_slow(0, 0.0, 2.0, 2.0);
  schedule.add_slow(0, 1.0, 3.0, 8.0);
  schedule.add_network_drop(0, 0.0, 2.0, 0.1);
  schedule.add_network_drop(0, 0.0, 2.0, 0.4);
  const FaultView view = schedule.view_at(1.5);
  EXPECT_DOUBLE_EQ(view.slow[0], 8.0);
  EXPECT_DOUBLE_EQ(view.drop[0], 0.4);
}

TEST(FaultSchedule, TransitionTimesSortedUniqueFiniteOnly) {
  FaultSchedule schedule(4);
  schedule.add_crash(0, 2.0);  // never recovers: no end transition
  schedule.add_slow(1, 0.5, 2.0, 3.0);
  schedule.add_network_drop(2, 0.5, 1.0, 0.2);
  const std::vector<double> times = schedule.transition_times();
  EXPECT_EQ(times, (std::vector<double>{0.5, 1.0, 2.0}));
}

TEST(FaultSchedule, WorstViewPicksMinimumAliveSnapshot) {
  FaultSchedule schedule(6);
  schedule.add_crash(0, 0.0, 1.0);
  schedule.add_crash(1, 0.5, 2.0);
  schedule.add_crash(2, 0.5, 2.0);
  const FaultView worst = schedule.worst_view();
  EXPECT_EQ(worst.alive_count, 3u);  // t in [0.5, 1): nodes 0, 1, 2 all down
  EXPECT_EQ(worst.alive[0], 0);
  EXPECT_EQ(worst.alive[1], 0);
  EXPECT_EQ(worst.alive[2], 0);

  const FaultSchedule healthy(6);
  EXPECT_FALSE(healthy.worst_view().any_faults());
}

TEST(FaultSchedule, RandomIsDeterministicGivenSeed) {
  RandomFaultConfig config;
  config.nodes = 50;
  config.horizon_s = 2.0;
  config.onset_window_s = 1.0;
  config.crash_fraction = 0.2;
  config.recovery_s = 0.5;
  config.slow_fraction = 0.1;
  config.drop_fraction = 0.1;
  const FaultSchedule a = FaultSchedule::random(config, 42);
  const FaultSchedule b = FaultSchedule::random(config, 42);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
    EXPECT_DOUBLE_EQ(a.events()[i].start_s, b.events()[i].start_s);
    EXPECT_DOUBLE_EQ(a.events()[i].end_s, b.events()[i].end_s);
    EXPECT_DOUBLE_EQ(a.events()[i].severity, b.events()[i].severity);
  }
}

TEST(FaultSchedule, RandomRespectsFractionsAndRecovery) {
  RandomFaultConfig config;
  config.nodes = 100;
  config.horizon_s = 1.0;
  config.crash_fraction = 0.2;
  config.recovery_s = 0.0;  // crashed nodes never come back
  const FaultSchedule schedule = FaultSchedule::random(config, 7);
  ASSERT_EQ(schedule.events().size(), 20u);
  for (const FaultEvent& event : schedule.events()) {
    EXPECT_EQ(event.kind, FaultKind::kCrash);
    EXPECT_LT(event.node, 100u);
    EXPECT_DOUBLE_EQ(event.start_s, 0.0);  // onset window 0: all at t = 0
    EXPECT_EQ(event.end_s, FaultSchedule::kNeverRecovers);
  }
  EXPECT_EQ(schedule.worst_view().alive_count, 80u);
}

TEST(RetryPolicy, BackoffIsCappedExponential) {
  RetryPolicy policy;
  policy.backoff_base_s = 0.001;
  policy.backoff_cap_s = 0.003;
  EXPECT_DOUBLE_EQ(policy.backoff_s(0), 0.001);
  EXPECT_DOUBLE_EQ(policy.backoff_s(1), 0.002);
  EXPECT_DOUBLE_EQ(policy.backoff_s(2), 0.003);  // capped, not 0.004
  EXPECT_DOUBLE_EQ(policy.backoff_s(10), 0.003);
}

TEST(RetryPolicy, MaxAttemptsBoundedByRetriesAndTimeout) {
  RetryPolicy generous;
  generous.max_retries = 3;
  EXPECT_EQ(generous.max_attempts(), 4u);  // default timeout is ample

  RetryPolicy tight;
  tight.max_retries = 10;
  tight.backoff_base_s = 0.1;
  tight.backoff_cap_s = 1.0;
  tight.timeout_s = 0.35;  // 0.1 + 0.2 fits, + 0.4 does not
  EXPECT_EQ(tight.max_attempts(), 3u);

  RetryPolicy none;
  none.max_retries = 0;
  EXPECT_EQ(none.max_attempts(), 1u);
}

TEST(Routing, AliveMembersFiltersDeadReplicas) {
  const std::vector<NodeId> group = {3, 7, 1};
  std::vector<std::uint8_t> alive(10, 1);
  std::vector<NodeId> out(group.size());

  EXPECT_EQ(alive_members(group, alive, out), 3u);
  EXPECT_EQ(out, (std::vector<NodeId>{3, 7, 1}));  // order preserved

  alive[7] = 0;
  EXPECT_EQ(alive_members(group, alive, out), 2u);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[1], 1u);

  alive[3] = alive[1] = 0;
  EXPECT_EQ(alive_members(group, alive, out), 0u);
}

}  // namespace
}  // namespace scp
