#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scp {
namespace {

TEST(RunningStats, EmptyIsZeroCount) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double v : values) {
    stats.add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double(-5, 5);
    all.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, SortedInterpolation) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.125), 1.5);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> values = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 3.0);
}

TEST(Percentile, SingleValue) {
  const std::vector<double> values = {7.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.99), 7.0);
}

TEST(Summarize, ProducesConsistentFields) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) {
    values.push_back(static_cast<double>(i));
  }
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
}

TEST(BootstrapCi, CoversTrueMeanOfUniformSample) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.uniform_double());
  }
  Rng boot_rng(3);
  const ConfidenceInterval ci =
      bootstrap_mean_ci(values, 0.95, 2000, boot_rng);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
  EXPECT_LT(ci.hi - ci.lo, 0.2);
}

TEST(JainFairness, PerfectlyEvenIsOne) {
  const std::vector<double> loads(10, 3.0);
  EXPECT_DOUBLE_EQ(jain_fairness(loads), 1.0);
}

TEST(JainFairness, SingleHotspotIsOneOverN) {
  std::vector<double> loads(10, 0.0);
  loads[3] = 7.0;
  EXPECT_NEAR(jain_fairness(loads), 0.1, 1e-12);
}

TEST(JainFairness, AllZeroIsTriviallyFair) {
  const std::vector<double> loads(5, 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness(loads), 1.0);
}

TEST(CoefficientOfVariation, ZeroForConstant) {
  const std::vector<double> values(8, 4.2);
  EXPECT_DOUBLE_EQ(coefficient_of_variation(values), 0.0);
}

TEST(CoefficientOfVariation, MatchesClosedForm) {
  const std::vector<double> values = {1.0, 3.0};
  // mean 2, sample sd sqrt(2) → cov = sqrt(2)/2.
  EXPECT_NEAR(coefficient_of_variation(values), std::sqrt(2.0) / 2.0, 1e-12);
}

TEST(ChiSquared, ZeroWhenObservedMatchesExpected) {
  const std::vector<std::uint64_t> observed = {10, 20, 30};
  const std::vector<double> expected = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(chi_squared_statistic(observed, expected), 0.0);
}

TEST(ChiSquared, SimpleHandComputation) {
  const std::vector<std::uint64_t> observed = {12, 8};
  const std::vector<double> expected = {10.0, 10.0};
  EXPECT_DOUBLE_EQ(chi_squared_statistic(observed, expected), 0.8);
}

}  // namespace
}  // namespace scp
