// The paper's formulas (Eqs. 8 and 10, the case analysis, the threshold)
// as executable checks, including the algebraic identities between them.
#include <cmath>

#include <gtest/gtest.h>

#include "adversary/bounds.h"

namespace scp {
namespace {

SystemParams paper_params() {
  // The paper's simulation setting (Section IV): n=1000, d=3, c varies.
  SystemParams p;
  p.nodes = 1000;
  p.replication = 3;
  p.items = 1000000;
  p.cache_size = 200;
  p.query_rate = 100000.0;
  return p;
}

TEST(SystemParams, CheckAcceptsPaperSetting) {
  paper_params().check();  // must not abort
}

TEST(SystemParams, CheckRejectsBadValues) {
  SystemParams p = paper_params();
  p.replication = 0;
  EXPECT_DEATH(p.check(), "replication");
  p = paper_params();
  p.replication = p.nodes + 1;
  EXPECT_DEATH(p.check(), "replication");
  p = paper_params();
  p.cache_size = p.items;
  EXPECT_DEATH(p.check(), "cache");
  p = paper_params();
  p.query_rate = 0.0;
  EXPECT_DEATH(p.check(), "rate");
}

TEST(SystemParams, ToStringMentionsEveryField) {
  const std::string s = paper_params().to_string();
  EXPECT_NE(s.find("n=1000"), std::string::npos);
  EXPECT_NE(s.find("d=3"), std::string::npos);
  EXPECT_NE(s.find("m=1000000"), std::string::npos);
  EXPECT_NE(s.find("c=200"), std::string::npos);
}

TEST(EvenLoad, IsRateOverNodes) {
  EXPECT_DOUBLE_EQ(even_load(paper_params()), 100.0);
}

TEST(GapK, MatchesLnLnOverLnPlusConstant) {
  const double raw = std::log(std::log(1000.0)) / std::log(3.0);
  EXPECT_NEAR(gap_k(1000, 3, 0.0), raw, 1e-12);
  EXPECT_NEAR(gap_k(1000, 3, 0.5), raw + 0.5, 1e-12);
}

TEST(MaxLoadBound, MatchesHandComputation) {
  // Eq. 8 with n=1000, c=200, R=1e5, k=1.2, x=1200:
  // [(1200-200)/1000 + 1.2] · 1e5/1199 = 2.2 · 83.40 ≈ 183.49.
  SystemParams p = paper_params();
  const double bound = max_load_bound(p, 1200, 1.2);
  EXPECT_NEAR(bound, 2.2 * 100000.0 / 1199.0, 1e-9);
}

TEST(AttackGainBound, EqualsNormalizedMaxLoadBound) {
  // Eq. 10 is Eq. 8 divided by R/n — check the identity numerically.
  const SystemParams p = paper_params();
  const double k = 1.2;
  for (std::uint64_t x : {201ULL, 500ULL, 1201ULL, 100000ULL}) {
    EXPECT_NEAR(attack_gain_bound(p, x, k),
                max_load_bound(p, x, k) / even_load(p), 1e-9)
        << "x=" << x;
  }
}

TEST(AttackGainBound, ClosedForm) {
  // 1 + (1 - c + n·k)/(x - 1).
  const SystemParams p = paper_params();
  const double k = 1.2;
  const std::uint64_t x = 1201;
  const double expected =
      1.0 + (1.0 - 200.0 + 1000.0 * 1.2) / static_cast<double>(x - 1);
  EXPECT_NEAR(attack_gain_bound(p, x, k), expected, 1e-9);
}

TEST(AttackGainBound, Case1DecreasesInX) {
  // Small cache (c < n·k + 1): the bound decreases as the adversary spreads
  // over more keys — best x is c+1 (Fig. 3a's trend).
  const SystemParams p = paper_params();  // c=200 < 1201
  const double k = 1.2;
  double last = attack_gain_bound(p, p.cache_size + 1, k);
  for (std::uint64_t x = 300; x <= 10000; x += 500) {
    const double bound = attack_gain_bound(p, x, k);
    EXPECT_LT(bound, last);
    last = bound;
  }
  EXPECT_GT(attack_gain_bound(p, p.cache_size + 1, k), 1.0);
}

TEST(AttackGainBound, Case2IncreasesInXTowardOne) {
  // Large cache (c > n·k + 1): the bound increases with x but stays < 1 —
  // best x is m and the attack is still ineffective (Fig. 3b's trend).
  SystemParams p = paper_params();
  p.cache_size = 2000;  // > 1201
  const double k = 1.2;
  double last = attack_gain_bound(p, p.cache_size + 1, k);
  for (std::uint64_t x = 3000; x <= 500000; x *= 2) {
    const double bound = attack_gain_bound(p, x, k);
    EXPECT_GT(bound, last);
    EXPECT_LT(bound, 1.0);
    last = bound;
  }
}

TEST(AttackGain, DefinitionOne) {
  const SystemParams p = paper_params();
  EXPECT_DOUBLE_EQ(attack_gain(250.0, p), 2.5);
  EXPECT_DOUBLE_EQ(attack_gain(100.0, p), 1.0);
}

TEST(IsEffective, DefinitionTwo) {
  EXPECT_TRUE(is_effective(1.0001));
  EXPECT_FALSE(is_effective(1.0));
  EXPECT_FALSE(is_effective(0.5));
}

TEST(CacheSizeThreshold, MatchesNkPlusOne) {
  const double k = gap_k(1000, 3, 0.5);
  EXPECT_NEAR(cache_size_threshold(1000, 3, 0.5), 1000.0 * k + 1.0, 1e-9);
}

TEST(CacheSizeThreshold, IsOrderNForRealClusters) {
  // The O(n) headline. The paper's "< 2" is slightly optimistic at its own
  // n < 1e5 boundary (lnln(1e5)/ln 3 = 2.22), so assert < 2 where it holds
  // and a 2.25 ceiling at the boundary.
  for (std::uint32_t n : {100u, 1000u, 8000u}) {
    EXPECT_LT(cache_size_threshold(n, 3, 0.0) / n, 2.0) << "n=" << n;
  }
  EXPECT_LT(cache_size_threshold(99999, 3, 0.0) / 99999, 2.25);
}

TEST(CacheSizeThreshold, ShrinksWithReplication) {
  EXPECT_GT(cache_size_threshold(1000, 2, 0.5),
            cache_size_threshold(1000, 3, 0.5));
  EXPECT_GT(cache_size_threshold(1000, 3, 0.5),
            cache_size_threshold(1000, 5, 0.5));
}

TEST(ClassifyRegime, SmallCacheIsEffective) {
  SystemParams p = paper_params();
  p.cache_size = 200;
  EXPECT_EQ(classify_regime(p, 1.2), AttackRegime::kEffective);
}

TEST(ClassifyRegime, LargeCacheIsIneffective) {
  SystemParams p = paper_params();
  p.cache_size = 2000;
  EXPECT_EQ(classify_regime(p, 1.2), AttackRegime::kIneffective);
}

TEST(ClassifyRegime, BoundaryIsExactlyNkPlusOne) {
  SystemParams p = paper_params();
  const double k = 1.2;  // threshold = 1201
  p.cache_size = 1200;
  EXPECT_EQ(classify_regime(p, k), AttackRegime::kEffective);
  p.cache_size = 1201;
  EXPECT_EQ(classify_regime(p, k), AttackRegime::kIneffective);
}

TEST(OptimalQueriedKeys, FollowsTheCaseAnalysis) {
  SystemParams p = paper_params();
  p.cache_size = 200;
  EXPECT_EQ(optimal_queried_keys(p, 1.2), 201u);
  p.cache_size = 2000;
  EXPECT_EQ(optimal_queried_keys(p, 1.2), p.items);
}

TEST(ToString, RegimeNamesAreDistinct) {
  EXPECT_NE(to_string(AttackRegime::kEffective),
            to_string(AttackRegime::kIneffective));
}

TEST(MaxLoadBound, RejectsXOutsideRange) {
  const SystemParams p = paper_params();
  EXPECT_DEATH(max_load_bound(p, p.cache_size, 1.2), "x");
  EXPECT_DEATH(max_load_bound(p, p.items + 1, 1.2), "x");
}

}  // namespace
}  // namespace scp
