// End-to-end shape tests: scaled-down versions of the paper's figures must
// show the same qualitative structure (the trends, crossovers and winner
// orderings the evaluation section reports).
#include <vector>

#include <gtest/gtest.h>

#include "adversary/strategy.h"
#include "core/scp.h"

namespace scp {
namespace {

ScenarioConfig scenario(std::uint32_t n, std::uint64_t c, std::uint64_t m,
                        double rate = 1e4) {
  ScenarioConfig config;
  config.params.nodes = n;
  config.params.replication = 3;
  config.params.items = m;
  config.params.cache_size = c;
  config.params.query_rate = rate;
  return config;
}

double max_gain(const ScenarioConfig& config, std::uint64_t x,
                std::uint32_t trials = 5) {
  return measure_adversarial_gain(config, x, trials, /*base_seed=*/99).max_gain;
}

TEST(Fig3Shape, SmallCacheGainDecreasesInXAndExceedsOne) {
  // Fig. 3(a): c below the threshold; normalized max load is a decreasing
  // function of x, and the adversary wins near x = c+1.
  const ScenarioConfig config = scenario(100, 20, 5000);
  const double g_small = max_gain(config, 21);
  const double g_mid = max_gain(config, 200);
  const double g_large = max_gain(config, 5000);
  EXPECT_GT(g_small, g_mid);
  EXPECT_GT(g_mid, g_large);
  EXPECT_GT(g_small, 1.0);
}

TEST(Fig3Shape, LargeCacheGainStaysBelowOne) {
  // Fig. 3(b): c above the threshold; no x gives an effective attack.
  const ScenarioConfig config = scenario(100, 400, 5000);
  for (const std::uint64_t x : {401ULL, 1000ULL, 2500ULL, 5000ULL}) {
    EXPECT_LT(max_gain(config, x), 1.0) << "x=" << x;
  }
}

TEST(Fig3Shape, BoundDominatesSimulation) {
  // Eq. 10 must upper-bound the simulated gain wherever it applies (x > c,
  // d >= 2). The Θ(1) constant k′ in k = lnln n / ln d + k′ is what the
  // paper tunes empirically (it uses k = 1.2 at n = 1000); at this test's
  // small n = 100 a conservative k′ = 2 safely covers the balls-into-bins
  // constant.
  const ScenarioConfig config = scenario(100, 20, 5000);
  const double k = gap_k(100, 3, /*k_prime=*/2.0);
  for (const std::uint64_t x : {21ULL, 100ULL, 1000ULL, 5000ULL}) {
    const double simulated = max_gain(config, x);
    const double bound = attack_gain_bound(config.params, x, k);
    EXPECT_LE(simulated, bound * 1.05) << "x=" << x;
  }
}

TEST(Fig4Shape, AccessPatternOrdering) {
  // Fig. 4: with a fixed small cache, Zipf(1.01) ends up easiest on the
  // back-ends (its head is cached), uniform is benign, and the adversarial
  // pattern loads the system hardest as n grows.
  const std::uint64_t m = 5000;
  const std::uint64_t c = 100;  // the paper's Fig. 4 cache size
  const ScenarioConfig config = scenario(300, c, m);

  const double adversarial = max_gain(config, c + 1);
  const double uniform =
      measure_gain(config, QueryDistribution::uniform(m), 5, 99).max_gain;
  const double zipf =
      measure_gain(config, QueryDistribution::zipf(m, 1.01), 5, 99).max_gain;

  EXPECT_GT(adversarial, uniform * 2)
      << "adversarial pattern should dominate uniform";
  // Zipf normalized against the full rate R: the cached head removes most
  // mass, so its back-end max load normalized by R/n is far below 1.
  EXPECT_LT(zipf, 1.0);
}

TEST(Fig5Shape, CriticalCacheSizeNearTheoreticalThreshold) {
  // Fig. 5(a): sweeping c, the best achievable gain crosses 1.0 near
  // c* = n·k + 1. For n = 100, d = 3: raw lnln/ln gap ≈ 1.4 → c* ≈ 150±.
  const std::uint32_t n = 100;
  const std::uint64_t m = 20000;

  auto best_gain = [&](std::uint64_t c) {
    const ScenarioConfig config = scenario(n, c, m);
    const auto evaluate = [&](std::uint64_t x) {
      return measure_adversarial_gain(config, x, 5, 7).max_gain;
    };
    return best_response_search(config.params, evaluate, 0).gain;
  };

  EXPECT_GT(best_gain(40), 1.0);   // far below any plausible threshold
  EXPECT_LT(best_gain(500), 1.0);  // far above it
}

TEST(Fig5Shape, BestResponseXFollowsRegime) {
  // Fig. 5(b): below the critical point the adversary queries c+1 keys;
  // above it, the whole key space.
  const std::uint32_t n = 100;
  const std::uint64_t m = 20000;
  {
    const ScenarioConfig config = scenario(n, 40, m);
    const auto evaluate = [&](std::uint64_t x) {
      return measure_adversarial_gain(config, x, 5, 7).max_gain;
    };
    EXPECT_EQ(best_response_search(config.params, evaluate, 0).queried_keys,
              41u);
  }
  {
    const ScenarioConfig config = scenario(n, 500, m);
    const auto evaluate = [&](std::uint64_t x) {
      return measure_adversarial_gain(config, x, 5, 7).max_gain;
    };
    EXPECT_EQ(best_response_search(config.params, evaluate, 0).queried_keys,
              m);
  }
}

TEST(FanBaseline, UnreplicatedClusterRemainsAttackableWithLargeCache) {
  // The d = 1 contrast (Fan et al.): even a cache that protects the d = 3
  // system leaves the unreplicated system attackable, because the
  // single-choice gap grows with the number of balls.
  const std::uint64_t m = 20000;
  const std::uint64_t c = 500;  // protects d=3 per Fig5Shape above

  ScenarioConfig replicated = scenario(100, c, m);
  ScenarioConfig unreplicated = scenario(100, c, m);
  unreplicated.params.replication = 1;

  const auto evaluate_d1 = [&](std::uint64_t x) {
    return measure_adversarial_gain(unreplicated, x, 5, 13).max_gain;
  };
  const BestResponse d1_best =
      best_response_search(unreplicated.params, evaluate_d1, 8);
  EXPECT_GT(d1_best.gain, 1.0) << "d=1 should remain attackable";

  const auto evaluate_d3 = [&](std::uint64_t x) {
    return measure_adversarial_gain(replicated, x, 5, 13).max_gain;
  };
  const BestResponse d3_best =
      best_response_search(replicated.params, evaluate_d3, 8);
  EXPECT_LT(d3_best.gain, 1.0) << "d=3 should be protected";
}

TEST(EndToEnd, ProvisionerPlanSurvivesIndependentAnalyzer) {
  // Provision with one module, attack with another: the plan must hold.
  ProvisionOptions options;
  options.validate = false;
  const CacheProvisioner provisioner(options);
  ClusterSpec spec;
  spec.nodes = 100;
  spec.replication = 3;
  spec.items = 20000;
  spec.attack_rate_qps = 1e4;
  const ProvisionPlan plan = provisioner.plan(spec);

  SystemParams params;
  params.nodes = spec.nodes;
  params.replication = spec.replication;
  params.items = spec.items;
  params.cache_size = plan.recommended_cache_size;
  params.query_rate = spec.attack_rate_qps;

  AnalyzerOptions analyzer_options;
  analyzer_options.trials = 5;
  const AttackAnalyzer analyzer(analyzer_options);
  for (const std::uint64_t x :
       {plan.recommended_cache_size + 1, spec.items / 2, spec.items}) {
    const AttackAssessment a = analyzer.assess_adversarial(params, x);
    EXPECT_FALSE(a.effective) << "x=" << x;
  }
}

}  // namespace
}  // namespace scp
