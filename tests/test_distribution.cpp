#include "workload/distribution.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace scp {
namespace {

TEST(QueryDistribution, UniformHasEqualProbabilities) {
  const auto d = QueryDistribution::uniform(100);
  EXPECT_EQ(d.size(), 100u);
  EXPECT_EQ(d.support_size(), 100u);
  for (KeyId i = 0; i < 100; ++i) {
    EXPECT_NEAR(d.probability(i), 0.01, 1e-12);
  }
  EXPECT_TRUE(d.is_valid());
}

TEST(QueryDistribution, UniformOverPrefix) {
  const auto d = QueryDistribution::uniform_over(10, 100);
  EXPECT_EQ(d.size(), 100u);
  EXPECT_EQ(d.support_size(), 10u);
  EXPECT_NEAR(d.probability(9), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(d.probability(10), 0.0);
  EXPECT_TRUE(d.is_valid());
}

TEST(QueryDistribution, UniformOverSingleKey) {
  const auto d = QueryDistribution::uniform_over(1, 5);
  EXPECT_DOUBLE_EQ(d.probability(0), 1.0);
  EXPECT_EQ(d.support_size(), 1u);
}

TEST(QueryDistribution, ZipfIsSortedAndValid) {
  const auto d = QueryDistribution::zipf(1000, 1.01);
  EXPECT_TRUE(d.is_valid());
  EXPECT_EQ(d.support_size(), 1000u);
  for (KeyId i = 1; i < 1000; ++i) {
    EXPECT_LE(d.probability(i), d.probability(i - 1));
  }
}

TEST(QueryDistribution, ZipfHeadIsHeavy) {
  // Zipf(1.01): the top 20% of 1000 keys should carry well over half the
  // mass (the "80/20" skew the paper cites).
  const auto d = QueryDistribution::zipf(1000, 1.01);
  EXPECT_GT(d.head_mass(200), 0.6);
}

TEST(QueryDistribution, HeadMassMatchesPrefixSums) {
  const auto d = QueryDistribution::uniform_over(4, 10);
  EXPECT_DOUBLE_EQ(d.head_mass(0), 0.0);
  EXPECT_NEAR(d.head_mass(2), 0.5, 1e-12);
  EXPECT_NEAR(d.head_mass(4), 1.0, 1e-12);
  EXPECT_NEAR(d.head_mass(10), 1.0, 1e-12);
  EXPECT_NEAR(d.head_mass(999), 1.0, 1e-12);  // clamped past the end
}

TEST(QueryDistribution, FromWeightsNormalizes) {
  const auto d = QueryDistribution::from_weights({4.0, 2.0, 2.0});
  EXPECT_NEAR(d.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(d.probability(1), 0.25, 1e-12);
  EXPECT_TRUE(d.is_valid());
}

TEST(QueryDistribution, FromWeightsRejectsIncreasing) {
  EXPECT_DEATH(QueryDistribution::from_weights({1.0, 2.0}), "non-increasing");
}

TEST(QueryDistribution, FromWeightsRejectsNegative) {
  EXPECT_DEATH(QueryDistribution::from_weights({1.0, -0.5}), "non-negative");
}

TEST(QueryDistribution, MixtureIsValidAndSorted) {
  const auto a = QueryDistribution::uniform_over(5, 20);
  const auto b = QueryDistribution::zipf(20, 1.2);
  const auto mix = QueryDistribution::mixture(0.3, a, b);
  EXPECT_TRUE(mix.is_valid());
  EXPECT_EQ(mix.size(), 20u);
}

TEST(QueryDistribution, MixtureEndpointsReproduceInputs) {
  const auto a = QueryDistribution::uniform_over(5, 20);
  const auto b = QueryDistribution::zipf(20, 1.2);
  const auto all_a = QueryDistribution::mixture(1.0, a, b);
  for (KeyId i = 0; i < 20; ++i) {
    EXPECT_NEAR(all_a.probability(i), a.probability(i), 1e-12);
  }
}

TEST(QueryDistribution, EntropyOfUniformIsLogM) {
  const auto d = QueryDistribution::uniform(1024);
  EXPECT_NEAR(d.entropy(), 10.0, 1e-9);
}

TEST(QueryDistribution, EntropyOfPointMassIsZero) {
  const auto d = QueryDistribution::uniform_over(1, 10);
  EXPECT_NEAR(d.entropy(), 0.0, 1e-12);
}

TEST(QueryDistribution, ZipfEntropyBelowUniform) {
  const auto zipf = QueryDistribution::zipf(1024, 1.01);
  const auto uniform = QueryDistribution::uniform(1024);
  EXPECT_LT(zipf.entropy(), uniform.entropy());
}

TEST(QueryDistribution, SamplerMatchesProbabilities) {
  const auto d = QueryDistribution::uniform_over(3, 10);
  const AliasSampler sampler = d.make_sampler();
  EXPECT_EQ(sampler.size(), 3u);  // only the support
  Rng rng(1);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[sampler.sample(rng)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 30000.0, 1.0 / 3.0, 0.02);
  }
}

// Parameterized sweep: uniform_over(x, m) is valid for every x.
class UniformOverSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(UniformOverSweep, ValidAndMassOne) {
  const auto [x, m] = GetParam();
  const auto d = QueryDistribution::uniform_over(x, m);
  EXPECT_TRUE(d.is_valid());
  EXPECT_EQ(d.support_size(), x);
  EXPECT_NEAR(d.head_mass(m), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UniformOverSweep,
    ::testing::Values(std::make_tuple(1ULL, 1ULL), std::make_tuple(1ULL, 100ULL),
                      std::make_tuple(50ULL, 100ULL),
                      std::make_tuple(100ULL, 100ULL),
                      std::make_tuple(999ULL, 10000ULL)));

}  // namespace
}  // namespace scp
