#include "sim/rate_sim.h"

#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "cache/perfect_cache.h"
#include "cluster/cluster.h"
#include "common/rng.h"

namespace scp {
namespace {

RateSimConfig config_with(double rate, std::uint64_t seed = 1) {
  RateSimConfig c;
  c.query_rate = rate;
  c.seed = seed;
  return c;
}

TEST(RateSim, ConservesRate) {
  // cache_rate + sum(node loads) == R, for any cache size and selector.
  const auto d = QueryDistribution::zipf(1000, 1.01);
  for (const char* selector_kind : {"least-loaded", "random", "round-robin"}) {
    Cluster cluster(make_partitioner("hash", 50, 3, 7));
    const PerfectCache cache(20, d);
    auto selector = make_selector(selector_kind);
    const RateSimResult r =
        simulate_rates(cluster, cache, d, *selector, config_with(1000.0));
    const double node_total =
        std::accumulate(r.node_loads.begin(), r.node_loads.end(), 0.0);
    EXPECT_NEAR(r.cache_rate + node_total, 1000.0, 1e-6) << selector_kind;
    EXPECT_NEAR(r.backend_rate, node_total, 1e-6);
  }
}

TEST(RateSim, CacheAbsorbsHeadMass) {
  const auto d = QueryDistribution::zipf(1000, 1.01);
  Cluster cluster(make_partitioner("hash", 50, 3, 7));
  const PerfectCache cache(100, d);
  auto selector = make_selector("least-loaded");
  const RateSimResult r =
      simulate_rates(cluster, cache, d, *selector, config_with(1000.0));
  EXPECT_NEAR(r.cache_hit_ratio, d.head_mass(100), 1e-9);
}

TEST(RateSim, NoCacheSendsEverythingToBackends) {
  const auto d = QueryDistribution::uniform(500);
  Cluster cluster(make_partitioner("hash", 20, 2, 3));
  const PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  const RateSimResult r =
      simulate_rates(cluster, cache, d, *selector, config_with(100.0));
  EXPECT_DOUBLE_EQ(r.cache_rate, 0.0);
  EXPECT_NEAR(r.backend_rate, 100.0, 1e-9);
}

TEST(RateSim, FullyCachedWorkloadIdlesBackends) {
  const auto d = QueryDistribution::uniform_over(10, 100);
  Cluster cluster(make_partitioner("hash", 20, 2, 3));
  const PerfectCache cache(10, d);  // covers the whole support
  auto selector = make_selector("least-loaded");
  const RateSimResult r =
      simulate_rates(cluster, cache, d, *selector, config_with(100.0));
  EXPECT_NEAR(r.cache_hit_ratio, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.metrics.max, 0.0);
  EXPECT_DOUBLE_EQ(r.normalized_max_load, 0.0);
}

TEST(RateSim, SplitSelectorsDivideKeyRateAcrossReplicas) {
  // One uncached key, random selector → each replica gets rate/d exactly.
  const auto d = QueryDistribution::uniform_over(1, 10);
  Cluster cluster(make_partitioner("hash", 10, 2, 5));
  const PerfectCache cache(0, d);
  auto selector = make_selector("random");
  const RateSimResult r =
      simulate_rates(cluster, cache, d, *selector, config_with(100.0));
  int loaded_nodes = 0;
  for (const double load : r.node_loads) {
    if (load > 0.0) {
      EXPECT_NEAR(load, 50.0, 1e-9);
      ++loaded_nodes;
    }
  }
  EXPECT_EQ(loaded_nodes, 2);
}

TEST(RateSim, LeastLoadedConcentratesKeyOnOneReplica) {
  const auto d = QueryDistribution::uniform_over(1, 10);
  Cluster cluster(make_partitioner("hash", 10, 2, 5));
  const PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  const RateSimResult r =
      simulate_rates(cluster, cache, d, *selector, config_with(100.0));
  int loaded_nodes = 0;
  for (const double load : r.node_loads) {
    if (load > 0.0) {
      EXPECT_NEAR(load, 100.0, 1e-9);
      ++loaded_nodes;
    }
  }
  EXPECT_EQ(loaded_nodes, 1);
}

TEST(RateSim, UniformAllKeysGivesNearEvenLoad) {
  // Querying the whole key space uniformly with least-loaded placement is
  // the best case: normalized max load barely above 1.
  const auto d = QueryDistribution::uniform(100000);
  Cluster cluster(make_partitioner("hash", 100, 3, 11));
  const PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  const RateSimResult r =
      simulate_rates(cluster, cache, d, *selector, config_with(10000.0));
  EXPECT_GT(r.normalized_max_load, 0.99);
  EXPECT_LT(r.normalized_max_load, 1.05);
  EXPECT_GT(r.metrics.jain_fairness, 0.99);
}

TEST(RateSim, LeastLoadedBeatsRandomOnMaxLoad) {
  const auto d = QueryDistribution::uniform(2000);
  double random_max = 0.0;
  double ll_max = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Cluster cluster(make_partitioner("hash", 100, 3, seed));
    const PerfectCache cache(0, d);
    auto random_sel = make_selector("random");
    auto ll_sel = make_selector("least-loaded");
    random_max += simulate_rates(cluster, cache, d, *random_sel,
                                 config_with(10000.0, seed))
                      .metrics.max;
    ll_max += simulate_rates(cluster, cache, d, *ll_sel,
                             config_with(10000.0, seed))
                  .metrics.max;
  }
  EXPECT_LT(ll_max, random_max);
}

TEST(RateSim, DeterministicGivenSeed) {
  const auto d = QueryDistribution::zipf(500, 1.1);
  Cluster a(make_partitioner("hash", 30, 3, 9));
  Cluster b(make_partitioner("hash", 30, 3, 9));
  const PerfectCache cache(10, d);
  auto sa = make_selector("least-loaded");
  auto sb = make_selector("least-loaded");
  const RateSimResult ra =
      simulate_rates(a, cache, d, *sa, config_with(1000.0, 123));
  const RateSimResult rb =
      simulate_rates(b, cache, d, *sb, config_with(1000.0, 123));
  EXPECT_EQ(ra.node_loads, rb.node_loads);
}

TEST(RateSim, WritesOfferedRatesToCluster) {
  const auto d = QueryDistribution::uniform(100);
  Cluster cluster(make_partitioner("hash", 10, 2, 5), /*capacity=*/5.0);
  const PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  const RateSimResult r =
      simulate_rates(cluster, cache, d, *selector, config_with(1000.0));
  EXPECT_DOUBLE_EQ(cluster.max_offered_rate(), r.metrics.max);
  // 1000 qps over 10 nodes with 5 qps capacity: everything saturates.
  EXPECT_EQ(r.saturated_nodes, 10u);
}

TEST(RateSim, SaturationCountRespectsCapacity) {
  const auto d = QueryDistribution::uniform(100);
  Cluster cluster(make_partitioner("hash", 10, 2, 5), /*capacity=*/1e9);
  const PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  const RateSimResult r =
      simulate_rates(cluster, cache, d, *selector, config_with(1000.0));
  EXPECT_EQ(r.saturated_nodes, 0u);
}

}  // namespace
}  // namespace scp
