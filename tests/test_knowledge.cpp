// Partial-knowledge adversary: Assumption 1 stress tests.
#include <algorithm>

#include <gtest/gtest.h>

#include "adversary/knowledge.h"
#include "sim/scenario.h"

namespace scp {
namespace {

ScenarioConfig scenario(std::uint64_t cache_size) {
  ScenarioConfig config;
  config.params.nodes = 100;
  config.params.replication = 3;
  config.params.items = 20000;
  config.params.cache_size = cache_size;
  config.params.query_rate = 10000.0;
  // Per-query random replica selection: the defender's strongest routing
  // against a targeted attack (splits each key's load d ways).
  config.selector = "random";
  return config;
}

TEST(KnowledgePlan, ZeroKnowledgeFallsBackToOblivious) {
  const auto partitioner = make_partitioner("hash", 100, 3, 1);
  const KnowledgePlan plan =
      plan_knowledge_attack(*partitioner, 20000, 50, 0.0, 2);
  EXPECT_EQ(plan.known_keys, 0u);
  EXPECT_EQ(plan.queried_keys.size(), 51u);
}

TEST(KnowledgePlan, AllQueriedKeysContainTarget) {
  const auto partitioner = make_partitioner("hash", 100, 3, 1);
  const KnowledgePlan plan =
      plan_knowledge_attack(*partitioner, 20000, 50, 0.5, 2);
  EXPECT_GT(plan.queried_keys.size(), 0u);
  for (const KeyId key : plan.queried_keys) {
    const auto group = partitioner->replica_group(key);
    EXPECT_NE(std::find(group.begin(), group.end(), plan.target), group.end())
        << "key " << key << " does not map to the target node";
  }
}

TEST(KnowledgePlan, TargetedSetSizeMatchesExpectation) {
  // E[|S_t|] ≈ φ·m·d/n; the argmax node is above average but same order.
  const auto partitioner = make_partitioner("hash", 100, 3, 1);
  const KnowledgePlan plan =
      plan_knowledge_attack(*partitioner, 20000, 50, 0.5, 3);
  const double expected = 0.5 * 20000 * 3 / 100;  // 300
  EXPECT_GT(plan.queried_keys.size(), expected * 0.8);
  EXPECT_LT(plan.queried_keys.size(), expected * 1.5);
}

TEST(KnowledgePlan, DeterministicGivenSeed) {
  const auto partitioner = make_partitioner("hash", 100, 3, 1);
  const KnowledgePlan a =
      plan_knowledge_attack(*partitioner, 20000, 50, 0.3, 7);
  const KnowledgePlan b =
      plan_knowledge_attack(*partitioner, 20000, 50, 0.3, 7);
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.queried_keys, b.queried_keys);
}

TEST(KnowledgeThreshold, MatchesClosedForm) {
  // φ* = c·n/(m·d), clamped to 1.
  EXPECT_NEAR(knowledge_threshold(100, 3, 20000, 300),
              300.0 * 100.0 / (20000.0 * 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(knowledge_threshold(1000, 2, 100, 1000), 1.0);
}

TEST(KnowledgeTrial, ZeroKnowledgeMatchesObliviousGainScale) {
  const ScenarioConfig config = scenario(300);  // provisioned above c*
  const TargetedAttackResult result = knowledge_attack_trial(config, 0.0, 5);
  // Oblivious x = c+1 against a provisioned cache with random routing:
  // one uncached key split over d nodes → gain ≈ n/((c+1)·d) < 1.
  EXPECT_LT(result.max_gain, 1.0);
  EXPECT_EQ(result.queried_keys, 301u);
}

TEST(KnowledgeTrial, FullKnowledgeBreaksProvisionedCache) {
  // With the full mapping leaked, the targeted set (~ m·d/n keys on one
  // node) dwarfs the cache and the attack succeeds despite c >= c*.
  const ScenarioConfig config = scenario(300);
  const TargetedAttackResult result = knowledge_attack_trial(config, 1.0, 5);
  EXPECT_GT(result.target_gain, 1.0)
      << "Assumption 1 violated should break prevention";
  EXPECT_GE(result.max_gain, result.target_gain - 1e-9);
}

TEST(KnowledgeTrial, GainGrowsWithKnowledge) {
  const ScenarioConfig config = scenario(300);
  const double g_small = knowledge_attack_trial(config, 0.2, 5).target_gain;
  const double g_large = knowledge_attack_trial(config, 0.9, 5).target_gain;
  EXPECT_GT(g_large, g_small);
}

TEST(KnowledgeTrial, BelowThresholdCacheStillAbsorbs) {
  // φ well below φ* = c·n/(m·d): the targeted set fits into the cache, so
  // the cache eats it entirely and the adversary gets nothing.
  const ScenarioConfig config = scenario(600);
  const double phi_star =
      knowledge_threshold(100, 3, 20000, 600);  // = 1.0 → pick c bigger...
  const double phi = phi_star * 0.4;
  const TargetedAttackResult result =
      knowledge_attack_trial(config, phi, 11);
  EXPECT_LT(result.target_gain, 1.0);
}

}  // namespace
}  // namespace scp
