// Distributed front-end fleet: fleet hashing, the cache partition law
// (aggregate footprint exactly c, single-copy ownership, REDIRECT from
// non-owners), the power-of-two-choices FleetRouter, and the edge router
// end to end (clients never see a fleet REDIRECT). Labeled slow + net +
// fleet — the serving cases spin up real TCP fleets.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cache/partition.h"
#include "common/hash.h"
#include "common/rng.h"
#include "net/backend_server.h"
#include "net/fleet.h"
#include "net/frontend_server.h"
#include "net/router_server.h"
#include "net/sync_client.h"
#include "obs/metrics.h"

namespace scp::net {
namespace {

constexpr std::uint64_t kPartitionSeed = 77;
constexpr std::uint64_t kFleetSeed = 4242;

// ---------------------------------------------------------------------------
// Unit: slice_capacity and the fleet hashes (no sockets).

TEST(SliceCapacity, PartitionsSumExactlyToTotal) {
  // The fleet split and the nested shard split must conserve the paper's c
  // exactly — a lost or duplicated slot changes the provisioning bound.
  for (std::size_t total : {0u, 1u, 7u, 64u, 1000u, 1001u}) {
    for (std::size_t parts : {1u, 2u, 3u, 5u, 8u}) {
      std::size_t sum = 0;
      for (std::size_t index = 0; index < parts; ++index) {
        sum += slice_capacity(total, parts, index);
      }
      EXPECT_EQ(sum, total) << "total=" << total << " parts=" << parts;
      // Slices differ by at most one entry (even split).
      EXPECT_LE(slice_capacity(total, parts, 0) -
                    slice_capacity(total, parts, parts - 1),
                1u);
    }
  }
}

TEST(SliceCapacity, NestedFleetThenShardSplitConservesC) {
  // Exactly the nesting FrontendServer::start() performs: c across the
  // fleet, then each member's slice across its reactor shards.
  constexpr std::size_t kC = 103;
  constexpr std::size_t kFleet = 3;
  constexpr std::size_t kShards = 4;
  std::size_t sum = 0;
  for (std::size_t member = 0; member < kFleet; ++member) {
    const std::size_t member_capacity = slice_capacity(kC, kFleet, member);
    for (std::size_t shard = 0; shard < kShards; ++shard) {
      sum += slice_capacity(member_capacity, kShards, shard);
    }
  }
  EXPECT_EQ(sum, kC);
}

TEST(FleetHash, OwnerDeterministicInRangeAndSeedSensitive) {
  for (std::uint64_t key = 0; key < 512; ++key) {
    const std::uint32_t owner = fleet_owner(key, kFleetSeed, 5);
    EXPECT_LT(owner, 5u);
    EXPECT_EQ(owner, fleet_owner(key, kFleetSeed, 5)) << "must be pure";
  }
  // A different fleet seed reshuffles the mapping.
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < 512; ++key) {
    if (fleet_owner(key, kFleetSeed, 5) != fleet_owner(key, kFleetSeed + 1, 5)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 256u);
  // Degenerate fleets: everything belongs to member 0.
  EXPECT_EQ(fleet_owner(123, kFleetSeed, 1), 0u);
  EXPECT_EQ(fleet_owner(123, kFleetSeed, 0), 0u);
}

TEST(FleetHash, IndependentOfShardAndBackendMappings) {
  // DistCache's requirement: the fleet partition must be independent of the
  // other layers' partitions, or the layers correlate and hot keys pile up.
  // Check against the intra-process shard split (unkeyed mix64) and a
  // same-seed backend-style hash: each (fleet member, other-layer bucket)
  // cell must be populated — a dependent mapping leaves cells empty.
  constexpr std::uint32_t kFleet = 3;
  constexpr std::uint32_t kOther = 3;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> shard_cells;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> hash_cells;
  const SipKey backend_style = sip_key_from_seed(kFleetSeed);
  for (std::uint64_t key = 0; key < 4096; ++key) {
    const std::uint32_t member = fleet_owner(key, kFleetSeed, kFleet);
    shard_cells[{member, static_cast<std::uint32_t>(mix64(key) % kOther)}]++;
    hash_cells[{member, static_cast<std::uint32_t>(siphash24(backend_style,
                                                             key) %
                                                   kOther)}]++;
  }
  EXPECT_EQ(shard_cells.size(), kFleet * kOther);
  EXPECT_EQ(hash_cells.size(), kFleet * kOther);
  for (const auto& [cell, count] : shard_cells) {
    EXPECT_GT(count, 4096u / (kFleet * kOther) / 4) << "sparse cell";
  }
}

TEST(FleetHash, CandidatesDistinctAndCoverTheFleet) {
  constexpr std::uint32_t kFleet = 4;
  std::set<std::uint32_t> alternates_seen;
  for (std::uint64_t key = 0; key < 1024; ++key) {
    const FleetCandidates candidates =
        fleet_candidates(key, kFleetSeed, kFleet);
    EXPECT_LT(candidates.owner, kFleet);
    EXPECT_LT(candidates.alternate, kFleet);
    EXPECT_NE(candidates.owner, candidates.alternate)
        << "power-of-two needs two distinct choices (key " << key << ")";
    alternates_seen.insert(candidates.alternate);
  }
  EXPECT_EQ(alternates_seen.size(), kFleet) << "alternates must cover fleet";
  // Single-member fleet: the pair collapses.
  const FleetCandidates solo = fleet_candidates(9, kFleetSeed, 1);
  EXPECT_EQ(solo.owner, solo.alternate);
}

TEST(FleetRouterUnit, PicksLessLoadedLiveCandidate) {
  FleetRouter router(4, kFleetSeed);
  Rng rng(1);
  const std::uint64_t key = 11;
  const FleetCandidates candidates = router.candidates_of(key);

  // Loaded owner loses to the idle alternate, and vice versa.
  router.set_scraped_load(candidates.owner, 100);
  router.set_scraped_load(candidates.alternate, 3);
  EXPECT_EQ(router.pick(key, rng), candidates.alternate);
  router.set_scraped_load(candidates.owner, 1);
  EXPECT_EQ(router.pick(key, rng), candidates.owner);

  // Local outstanding counts on top of the scrape base...
  router.on_dispatch(candidates.owner);
  router.on_dispatch(candidates.owner);
  router.on_dispatch(candidates.owner);
  EXPECT_EQ(router.pick(key, rng), candidates.alternate);
  // ...and a fresh scrape resets the delta.
  router.set_scraped_load(candidates.owner, 1);
  EXPECT_EQ(router.pick(key, rng), candidates.owner);

  // Completions drain the delta but never below the scrape base.
  router.on_dispatch(candidates.alternate);
  router.on_complete(candidates.alternate);
  router.on_complete(candidates.alternate);
  EXPECT_EQ(router.load(candidates.alternate), 3.0);
}

TEST(FleetRouterUnit, RoutesAroundDownMembers) {
  FleetRouter router(3, kFleetSeed);
  Rng rng(1);
  const std::uint64_t key = 5;
  const FleetCandidates candidates = router.candidates_of(key);
  router.set_scraped_load(candidates.owner, 1000);  // loaded but alive

  router.set_up(candidates.alternate, false);
  EXPECT_EQ(router.pick(key, rng), candidates.owner)
      << "a loaded live member beats a dead idle one";
  router.set_up(candidates.owner, false);
  EXPECT_EQ(router.pick(key, rng), kNoFleetMember);
  router.set_up(candidates.alternate, true);
  EXPECT_EQ(router.pick(key, rng), candidates.alternate);
}

// ---------------------------------------------------------------------------
// Serving tier: the cache partition law across a real fleet.

struct Backends {
  std::vector<std::unique_ptr<BackendServer>> servers;
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
};

Backends start_backends(std::uint32_t nodes, std::uint32_t replication,
                        std::uint64_t items) {
  Backends backends;
  for (std::uint32_t node = 0; node < nodes; ++node) {
    BackendConfig config;
    config.node_id = node;
    config.nodes = nodes;
    config.replication = replication;
    config.partition_seed = kPartitionSeed;
    config.items = items;
    auto backend = std::make_unique<BackendServer>(config);
    EXPECT_TRUE(backend->start());
    backends.endpoints.emplace_back("127.0.0.1", backend->port());
    backends.servers.push_back(std::move(backend));
  }
  return backends;
}

FrontendConfig member_config(const Backends& backends, std::uint32_t nodes,
                             std::uint32_t replication, std::uint64_t items,
                             std::size_t cache_capacity, std::uint32_t fleet,
                             std::uint32_t fleet_index) {
  FrontendConfig config;
  config.nodes = nodes;
  config.replication = replication;
  config.partition_seed = kPartitionSeed;
  config.backends = backends.endpoints;
  config.cache_policy = "perfect";
  config.cache_capacity = cache_capacity;
  config.items = items;
  config.fleet_size = fleet;
  config.fleet_index = fleet_index;
  config.fleet_seed = kFleetSeed;
  config.seed = 1 + fleet_index;
  return config;
}

struct FeFleet {
  std::vector<std::unique_ptr<FrontendServer>> members;
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
};

FeFleet start_fe_fleet(const Backends& backends, std::uint32_t nodes,
                       std::uint32_t replication, std::uint64_t items,
                       std::size_t cache_capacity, std::uint32_t fleet,
                       const std::string& policy = "perfect") {
  FeFleet fe;
  for (std::uint32_t member = 0; member < fleet; ++member) {
    FrontendConfig config = member_config(backends, nodes, replication, items,
                                          cache_capacity, fleet, member);
    config.cache_policy = policy;
    auto frontend = std::make_unique<FrontendServer>(config);
    EXPECT_TRUE(frontend->start());
    EXPECT_TRUE(frontend->wait_backends_up(5.0));
    fe.endpoints.emplace_back("127.0.0.1", frontend->port());
    fe.members.push_back(std::move(frontend));
  }
  return fe;
}

TEST(FleetPartition, AggregateFootprintIsExactlyCSingleCopy) {
  // The partition law: across the whole fleet the cached set is exactly the
  // c-entry prefix with a single copy each — the owner hits, every other
  // member answers kRedirect naming the owner, and a full sweep of all
  // members over all keys yields exactly c hits fleet-wide.
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 96;
  constexpr std::size_t kCache = 24;
  constexpr std::uint32_t kFleet = 3;

  Backends backends = start_backends(kNodes, kReplication, kItems);
  FeFleet fe = start_fe_fleet(backends, kNodes, kReplication, kItems, kCache,
                              kFleet);

  for (std::uint32_t member = 0; member < kFleet; ++member) {
    SyncClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", fe.endpoints[member].second, 3.0));
    for (std::uint64_t key = 0; key < kItems; ++key) {
      const std::uint32_t owner = fleet_owner(key, kFleetSeed, kFleet);
      const auto reply = client.get(key, 5.0);
      ASSERT_TRUE(reply.has_value()) << "member " << member << " key " << key;
      if (key < kCache && member != owner) {
        ASSERT_EQ(reply->type, MsgType::kRedirect)
            << "non-owner must bounce cached key " << key << " to its owner";
        EXPECT_EQ(reply->node, owner) << "redirect must name the fleet owner";
      } else {
        ASSERT_EQ(reply->type, MsgType::kValue)
            << "member " << member << " key " << key;
        EXPECT_EQ(reply->payload, make_value(key, 64));
      }
    }
  }

  // Fleet-wide accounting over the sweep: every member saw every key once;
  // hits total exactly c (single copy), redirects 2 per cached key, and the
  // fleet-mode invariant holds per member.
  std::uint64_t total_hits = 0;
  std::uint64_t total_fleet_redirects = 0;
  for (std::uint32_t member = 0; member < kFleet; ++member) {
    const ServerStats stats = fe.members[member]->stats();
    EXPECT_EQ(stats.requests, kItems);
    const obs::MetricsSnapshot snap = fe.members[member]->metrics_snapshot();
    const std::uint64_t fleet_redirects =
        snap.counters.at("frontend.fleet_redirects");
    EXPECT_EQ(stats.requests, stats.hits + stats.forwarded + stats.coalesced +
                                  stats.failures + fleet_redirects)
        << "fleet-mode counter invariant, member " << member;
    EXPECT_EQ(stats.failures, 0u);
    EXPECT_EQ(snap.gauges.at("frontend.fleet_index"),
              static_cast<std::int64_t>(member));
    EXPECT_EQ(snap.gauges.at("frontend.fleet_size"),
              static_cast<std::int64_t>(kFleet));
    total_hits += stats.hits;
    total_fleet_redirects += fleet_redirects;
  }
  EXPECT_EQ(total_hits, kCache)
      << "aggregate cache footprint must be exactly c, single copy";
  EXPECT_EQ(total_fleet_redirects, (kFleet - 1) * kCache);

  for (auto& member : fe.members) member->stop();
  for (auto& backend : backends.servers) backend->stop();
}

TEST(FleetPartition, PolicyCacheNonOwnerRedirectsInsteadOfCaching) {
  // Policy tiers (here LRU) can't inspect a sibling's contents, so a
  // non-owner redirects *every* non-owned key — and repeated access must
  // never warm a duplicate copy into the non-owner.
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 64;
  constexpr std::size_t kCache = 32;
  constexpr std::uint32_t kFleet = 2;

  Backends backends = start_backends(kNodes, kReplication, kItems);
  FeFleet fe = start_fe_fleet(backends, kNodes, kReplication, kItems, kCache,
                              kFleet, "lru");

  // A key owned by member 1, queried repeatedly at member 0.
  std::uint64_t foreign = kItems;
  for (std::uint64_t key = 0; key < kItems; ++key) {
    if (fleet_owner(key, kFleetSeed, kFleet) == 1) {
      foreign = key;
      break;
    }
  }
  ASSERT_LT(foreign, kItems);

  SyncClient non_owner;
  ASSERT_TRUE(non_owner.connect("127.0.0.1", fe.endpoints[0].second, 3.0));
  for (int round = 0; round < 3; ++round) {
    const auto reply = non_owner.get(foreign, 5.0);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MsgType::kRedirect)
        << "round " << round << ": repeat access must keep redirecting, "
        << "never warm a duplicate copy";
    EXPECT_EQ(reply->node, 1u);
  }
  EXPECT_EQ(fe.members[0]->stats().hits, 0u);

  // The owner serves and warms it: second access is a local hit.
  SyncClient owner;
  ASSERT_TRUE(owner.connect("127.0.0.1", fe.endpoints[1].second, 3.0));
  for (int round = 0; round < 2; ++round) {
    const auto reply = owner.get(foreign, 5.0);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MsgType::kValue);
    EXPECT_EQ(reply->payload, make_value(foreign, 64));
  }
  EXPECT_EQ(fe.members[1]->stats().hits, 1u)
      << "owner warms on miss, hits on repeat";

  for (auto& member : fe.members) member->stop();
  for (auto& backend : backends.servers) backend->stop();
}

TEST(FleetPartition, SingleMemberFleetMatchesPlainFrontendByteForByte) {
  // --fleet 1 must be the plain front end: same replies byte-for-byte and
  // the same counters on the same key sequence (the fleet gate is compiled
  // out of the hot path at N == 1).
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 128;
  constexpr std::size_t kCache = 16;

  Backends backends = start_backends(kNodes, kReplication, kItems);

  FrontendConfig plain_config = member_config(backends, kNodes, kReplication,
                                              kItems, kCache, /*fleet=*/1,
                                              /*fleet_index=*/0);
  plain_config.fleet_size = 1;  // explicit: the classic configuration
  FrontendConfig fleet_config = plain_config;
  fleet_config.fleet_size = 1;
  fleet_config.fleet_seed = kFleetSeed;

  std::vector<Message> plain_replies;
  std::vector<Message> fleet_replies;
  ServerStats plain_stats;
  ServerStats fleet_stats;
  for (int which = 0; which < 2; ++which) {
    FrontendServer frontend(which == 0 ? plain_config : fleet_config);
    ASSERT_TRUE(frontend.start());
    ASSERT_TRUE(frontend.wait_backends_up(5.0));
    SyncClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", frontend.port(), 3.0));
    std::vector<Message>& replies =
        which == 0 ? plain_replies : fleet_replies;
    // Mixed sweep: every key once, cached prefix twice (hit path) — same
    // deterministic order both runs.
    for (std::uint64_t key = 0; key < kItems; ++key) {
      const auto reply = client.get(key, 5.0);
      ASSERT_TRUE(reply.has_value());
      replies.push_back(*reply);
      if (key < kCache) {
        const auto again = client.get(key, 5.0);
        ASSERT_TRUE(again.has_value());
        replies.push_back(*again);
      }
    }
    (which == 0 ? plain_stats : fleet_stats) = frontend.stats();
    frontend.stop();
  }

  ASSERT_EQ(plain_replies.size(), fleet_replies.size());
  for (std::size_t i = 0; i < plain_replies.size(); ++i) {
    EXPECT_EQ(plain_replies[i].type, fleet_replies[i].type) << "reply " << i;
    EXPECT_EQ(plain_replies[i].key, fleet_replies[i].key) << "reply " << i;
    EXPECT_EQ(plain_replies[i].payload, fleet_replies[i].payload)
        << "reply " << i;
  }
  EXPECT_EQ(plain_stats.requests, fleet_stats.requests);
  EXPECT_EQ(plain_stats.hits, fleet_stats.hits);
  EXPECT_EQ(plain_stats.misses, fleet_stats.misses);
  EXPECT_EQ(plain_stats.forwarded, fleet_stats.forwarded);
  EXPECT_EQ(plain_stats.retries, fleet_stats.retries);
  EXPECT_EQ(plain_stats.failures, fleet_stats.failures);
  EXPECT_EQ(plain_stats.attempts, fleet_stats.attempts);

  for (auto& backend : backends.servers) backend->stop();
}

// ---------------------------------------------------------------------------
// Edge router end to end.

TEST(FleetRouterE2E, ClientsNeverSeeRedirectsAndLoadSpreads) {
  // Full stack: backends <- fleet of 3 front ends <- RouterServer <- client.
  // The router must absorb every fleet REDIRECT (following it to the owner)
  // and hand clients only kValue, while spreading uncached traffic across
  // the members by power-of-two-choices.
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 96;
  constexpr std::size_t kCache = 24;
  constexpr std::uint32_t kFleet = 3;
  constexpr int kSweeps = 3;

  Backends backends = start_backends(kNodes, kReplication, kItems);
  FeFleet fe = start_fe_fleet(backends, kNodes, kReplication, kItems, kCache,
                              kFleet);

  RouterConfig router_config;
  router_config.frontends = fe.endpoints;
  router_config.fleet_seed = kFleetSeed;
  router_config.seed = 9;
  RouterServer router(router_config);
  ASSERT_TRUE(router.start());
  ASSERT_TRUE(router.wait_frontends_up(5.0));

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", router.port(), 3.0));
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    for (std::uint64_t key = 0; key < kItems; ++key) {
      const auto reply = client.get(key, 5.0);
      ASSERT_TRUE(reply.has_value()) << "key " << key;
      ASSERT_EQ(reply->type, MsgType::kValue)
          << "key " << key << ": the router must hide fleet redirects";
      EXPECT_EQ(reply->key, key);
      EXPECT_EQ(reply->payload, make_value(key, 64));
    }
  }

  const ServerStats router_stats = router.stats();
  EXPECT_EQ(router_stats.requests, kSweeps * kItems);
  EXPECT_EQ(router_stats.failures, 0u);
  EXPECT_EQ(router_stats.forwarded, router_stats.requests)
      << "every GET relayed exactly one terminal reply";
  // attempts = first dispatches + followed redirect hops.
  EXPECT_EQ(router_stats.attempts,
            router_stats.requests + router_stats.redirects);

  // Power-of-two-choices must give every member traffic, and each member's
  // fleet-mode invariant must hold.
  std::uint64_t member_requests_total = 0;
  for (std::uint32_t member = 0; member < kFleet; ++member) {
    const ServerStats stats = fe.members[member]->stats();
    EXPECT_GT(stats.requests, 0u) << "member " << member << " starved";
    const obs::MetricsSnapshot snap = fe.members[member]->metrics_snapshot();
    EXPECT_EQ(stats.requests,
              stats.hits + stats.forwarded + stats.coalesced +
                  stats.failures +
                  snap.counters.at("frontend.fleet_redirects"))
        << "member " << member;
    member_requests_total += stats.requests;
  }
  // Conservation across the tier: the fleet saw every router dispatch.
  EXPECT_EQ(member_requests_total, router_stats.attempts);

  router.stop();
  for (auto& member : fe.members) member->stop();
  for (auto& backend : backends.servers) backend->stop();
}

TEST(FleetRouterE2E, RouterMetricsExposeDispatchSpread) {
  // The router's own observability: per-member dispatch counters and the
  // frontends_up gauge, scraped in-process the same way scp_stats would.
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 48;
  constexpr std::uint32_t kFleet = 2;

  Backends backends = start_backends(kNodes, kReplication, kItems);
  FeFleet fe = start_fe_fleet(backends, kNodes, kReplication, kItems,
                              /*cache=*/0, kFleet, "none");

  RouterConfig router_config;
  router_config.frontends = fe.endpoints;
  router_config.fleet_seed = kFleetSeed;
  RouterServer router(router_config);
  ASSERT_TRUE(router.start());
  ASSERT_TRUE(router.wait_frontends_up(5.0));

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", router.port(), 3.0));
  for (std::uint64_t key = 0; key < kItems; ++key) {
    const auto reply = client.get(key, 5.0);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MsgType::kValue);
  }

  const obs::MetricsSnapshot snap = router.metrics_snapshot();
  EXPECT_EQ(snap.counters.at("router.requests"), kItems);
  EXPECT_EQ(snap.counters.at("router.failures"), 0u);
  EXPECT_EQ(snap.gauges.at("router.frontends_up"),
            static_cast<std::int64_t>(kFleet));
  EXPECT_EQ(snap.gauges.at("router.fleet_size"),
            static_cast<std::int64_t>(kFleet));
  std::uint64_t dispatches = 0;
  for (std::uint32_t member = 0; member < kFleet; ++member) {
    dispatches +=
        snap.counters.at("router.dispatches.fe" + std::to_string(member));
  }
  EXPECT_EQ(dispatches, snap.counters.at("router.attempts_total"));

  router.stop();
  for (auto& member : fe.members) member->stop();
  for (auto& backend : backends.servers) backend->stop();
}

}  // namespace
}  // namespace scp::net
