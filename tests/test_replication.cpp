// Unit tests for the replication layer's pure state machines: version
// clocks, live membership, the ping failure detector (synthetic time),
// quorum accounting, and rebalance handoff planning. No sockets, no
// threads — the loopback suite (test_net_quorum) proves the same invariants
// over real connections.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <set>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/partitioner.h"
#include "replication/failure_detector.h"
#include "replication/membership.h"
#include "replication/quorum.h"
#include "replication/rebalance.h"
#include "replication/version.h"

namespace scp::replication {
namespace {

// --- VersionClock ---------------------------------------------------------

TEST(VersionClock, MintsStrictlyIncreasingVersionsTaggedWithNode) {
  VersionClock clock(7);
  std::uint64_t previous = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = clock.next();
    EXPECT_GT(v, previous);
    EXPECT_EQ(VersionClock::node_of(v), 7u);
    previous = v;
  }
  EXPECT_EQ(VersionClock::logical_of(previous), 100u);
}

TEST(VersionClock, PreloadVersionLosesToAnyMintedVersion) {
  // Backends preload owned keys at version 1 (logical 0, node 1); the first
  // version any coordinator mints must supersede it under LWW.
  const std::uint64_t preload = 1;
  for (NodeId node = 0; node <= VersionClock::kMaxNode; node += 341) {
    VersionClock clock(node);
    EXPECT_GT(clock.next(), preload) << "node=" << node;
  }
}

TEST(VersionClock, ObserveIsFetchMax) {
  VersionClock clock(2);
  clock.observe((50ULL << VersionClock::kNodeBits) | 9);
  // Next mint orders strictly after the observed logical counter.
  EXPECT_EQ(VersionClock::logical_of(clock.next()), 51u);
  // Observing something older must not move the clock backwards.
  clock.observe((10ULL << VersionClock::kNodeBits) | 9);
  EXPECT_EQ(VersionClock::logical_of(clock.next()), 52u);
}

TEST(VersionClock, EqualLogicalCountersTieBreakOnNodeId) {
  VersionClock a(1);
  VersionClock b(2);
  const std::uint64_t va = a.next();
  const std::uint64_t vb = b.next();
  EXPECT_EQ(VersionClock::logical_of(va), VersionClock::logical_of(vb));
  EXPECT_NE(va, vb);
  EXPECT_LT(va, vb);  // total order: same counter, higher node wins
}

TEST(VersionClock, ConcurrentMintsNeverCollide) {
  VersionClock clock(3);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<std::uint64_t>> minted(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock, &minted, t] {
      minted[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) minted[t].push_back(clock.next());
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::set<std::uint64_t> unique;
  for (const auto& batch : minted) unique.insert(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

// --- Membership -----------------------------------------------------------

TEST(Membership, UnknownNodesAreLeftAndDead) {
  Membership membership;
  EXPECT_EQ(membership.state(9), NodeState::kLeft);
  EXPECT_FALSE(membership.alive(9));
  EXPECT_EQ(membership.alive_count(), 0u);
  EXPECT_EQ(membership.epoch(), 0u);
}

TEST(Membership, AddSetStateRemoveDriveAlivenessAndEpoch) {
  Membership membership;
  membership.add_node(1);
  membership.add_node(2);
  const std::uint64_t after_add = membership.epoch();
  EXPECT_GT(after_add, 0u);
  EXPECT_TRUE(membership.alive(1));
  EXPECT_TRUE(membership.alive(2));
  EXPECT_EQ(membership.alive_count(), 2u);

  // Suspect still counts toward sloppy quorums.
  EXPECT_TRUE(membership.set_state(1, NodeState::kSuspect));
  EXPECT_TRUE(membership.alive(1));
  EXPECT_EQ(membership.alive_count(), 2u);
  // A repeated transition to the same state is a no-op.
  EXPECT_FALSE(membership.set_state(1, NodeState::kSuspect));

  EXPECT_TRUE(membership.set_state(1, NodeState::kDown));
  EXPECT_FALSE(membership.alive(1));
  EXPECT_EQ(membership.alive_count(), 1u);

  membership.remove_node(2);
  EXPECT_EQ(membership.state(2), NodeState::kLeft);
  EXPECT_FALSE(membership.alive(2));
  EXPECT_EQ(membership.alive_count(), 0u);
  EXPECT_GT(membership.epoch(), after_add);
}

TEST(Membership, ReAddRevivesDownAndLeftNodes) {
  Membership membership;
  membership.add_node(5);
  membership.set_state(5, NodeState::kDown);
  membership.add_node(5);
  EXPECT_EQ(membership.state(5), NodeState::kUp);

  membership.remove_node(5);
  membership.add_node(5);
  EXPECT_EQ(membership.state(5), NodeState::kUp);
  EXPECT_EQ(membership.snapshot().size(), 1u);  // revived, not duplicated
}

// --- PingFailureDetector --------------------------------------------------

TEST(FailureDetector, FreshNodeGetsGracePeriodAndPings) {
  PingFailureDetector detector(
      {.interval_s = 0.1, .suspect_after_s = 0.25, .timeout_s = 0.5});
  detector.add_node(1, /*now_s=*/100.0);
  EXPECT_TRUE(detector.tracks(1));
  EXPECT_FALSE(detector.suspect(1));
  EXPECT_FALSE(detector.down(1));

  // First tick pings immediately; a tick inside the interval does not.
  std::vector<NodeId> to_ping;
  EXPECT_TRUE(detector.tick(100.0, &to_ping).empty());
  EXPECT_EQ(to_ping, std::vector<NodeId>{1});
  to_ping.clear();
  detector.tick(100.05, &to_ping);
  EXPECT_TRUE(to_ping.empty());
  detector.tick(100.11, &to_ping);
  EXPECT_EQ(to_ping, std::vector<NodeId>{1});
}

TEST(FailureDetector, SilenceEscalatesSuspectThenDown) {
  PingFailureDetector detector(
      {.interval_s = 0.1, .suspect_after_s = 0.25, .timeout_s = 0.5});
  detector.add_node(1, 0.0);

  auto events = detector.tick(0.2, nullptr);
  EXPECT_TRUE(events.empty());

  events = detector.tick(0.3, nullptr);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0],
            (PingFailureDetector::Event{
                1, PingFailureDetector::Transition::kSuspect}));
  EXPECT_TRUE(detector.suspect(1));
  EXPECT_FALSE(detector.down(1));
  // The transition fires once, not on every tick.
  EXPECT_TRUE(detector.tick(0.35, nullptr).empty());

  events = detector.tick(0.6, nullptr);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], (PingFailureDetector::Event{
                           1, PingFailureDetector::Transition::kDown}));
  EXPECT_TRUE(detector.down(1));
  EXPECT_TRUE(detector.tick(0.7, nullptr).empty());
}

TEST(FailureDetector, PongKeepsNodeUpAndRevivesTheDead) {
  PingFailureDetector detector(
      {.interval_s = 0.1, .suspect_after_s = 0.25, .timeout_s = 0.5});
  detector.add_node(1, 0.0);

  // Regular pongs: never suspect.
  for (double now = 0.1; now < 2.0; now += 0.1) {
    EXPECT_EQ(detector.record_pong(1, now),
              PingFailureDetector::Transition::kNone);
    EXPECT_TRUE(detector.tick(now, nullptr).empty());
  }
  EXPECT_FALSE(detector.suspect(1));

  // Silence until down, then a late pong revives.
  detector.tick(3.0, nullptr);
  ASSERT_TRUE(detector.down(1));
  EXPECT_EQ(detector.record_pong(1, 3.1),
            PingFailureDetector::Transition::kRecovered);
  EXPECT_FALSE(detector.down(1));
  EXPECT_FALSE(detector.suspect(1));
  EXPECT_TRUE(detector.tick(3.15, nullptr).empty());
}

TEST(FailureDetector, RemoveNodeStopsTracking) {
  PingFailureDetector detector;
  detector.add_node(1, 0.0);
  detector.add_node(2, 0.0);
  detector.remove_node(1);
  EXPECT_FALSE(detector.tracks(1));
  EXPECT_TRUE(detector.tracks(2));
  // A removed node never produces transitions or pings.
  std::vector<NodeId> to_ping;
  auto events = detector.tick(100.0, &to_ping);
  for (const auto& event : events) EXPECT_NE(event.node, 1u);
  EXPECT_EQ(std::count(to_ping.begin(), to_ping.end(), 1u), 0);
  EXPECT_EQ(detector.record_pong(1, 100.0),
            PingFailureDetector::Transition::kNone);
}

// --- WriteQuorum ----------------------------------------------------------

TEST(WriteQuorum, CommitsAtNeedAcks) {
  WriteQuorum quorum(/*need=*/2, /*outstanding=*/3);
  EXPECT_EQ(quorum.state(), QuorumState::kPending);
  EXPECT_EQ(quorum.on_ack(), QuorumState::kPending);
  EXPECT_EQ(quorum.on_ack(), QuorumState::kDone);
  EXPECT_EQ(quorum.acks(), 2u);
  // Late events after resolution are ignored.
  EXPECT_EQ(quorum.on_ack(), QuorumState::kDone);
  EXPECT_EQ(quorum.on_lost(), QuorumState::kDone);
  EXPECT_EQ(quorum.acks(), 2u);
}

TEST(WriteQuorum, FailsFastWhenQuorumUnreachable) {
  // W=2 over 3 replicas: one ack plus two losses can never reach W.
  WriteQuorum quorum(2, 3);
  EXPECT_EQ(quorum.on_ack(), QuorumState::kPending);
  EXPECT_EQ(quorum.on_lost(), QuorumState::kPending);  // 1 ack, 1 outstanding
  EXPECT_EQ(quorum.on_lost(), QuorumState::kFailed);
  EXPECT_EQ(quorum.on_ack(), QuorumState::kFailed);  // terminal
}

TEST(WriteQuorum, ImpossibleQuorumFailsImmediately) {
  WriteQuorum quorum(/*need=*/3, /*outstanding=*/2);
  EXPECT_EQ(quorum.state(), QuorumState::kFailed);
}

TEST(WriteQuorum, LocalOnlyWriteCommitsOnFirstAck) {
  // Single-node deployments: W=1, only the coordinator's local apply.
  WriteQuorum quorum(1, 1);
  EXPECT_EQ(quorum.on_ack(), QuorumState::kDone);
}

// --- ReadQuorum -----------------------------------------------------------

TEST(ReadQuorum, ResolvesAtNeedWithLastWriterWinsWinner) {
  ReadQuorum quorum(/*need=*/2, /*outstanding=*/3);
  EXPECT_EQ(quorum.on_response({.node = 1,
                                .found = true,
                                .tombstone = false,
                                .version = 100,
                                .value = "old"}),
            QuorumState::kPending);
  EXPECT_EQ(quorum.on_response({.node = 2,
                                .found = true,
                                .tombstone = false,
                                .version = 200,
                                .value = "new"}),
            QuorumState::kDone);
  const ReadResponse* winner = quorum.newest();
  ASSERT_NE(winner, nullptr);
  EXPECT_EQ(winner->version, 200u);
  EXPECT_EQ(winner->value, "new");
  EXPECT_EQ(quorum.stale_nodes(), std::vector<NodeId>{1});
}

TEST(ReadQuorum, TombstoneWithHigherVersionWins) {
  ReadQuorum quorum(2, 2);
  quorum.on_response(
      {.node = 1, .found = true, .tombstone = false, .version = 300});
  quorum.on_response(
      {.node = 2, .found = true, .tombstone = true, .version = 400});
  const ReadResponse* winner = quorum.newest();
  ASSERT_NE(winner, nullptr);
  EXPECT_TRUE(winner->tombstone);
  EXPECT_EQ(winner->version, 400u);
}

TEST(ReadQuorum, NotFoundRespondersAreStaleWhenAWinnerExists) {
  ReadQuorum quorum(3, 3);
  quorum.on_response({.node = 5, .found = false});
  quorum.on_response(
      {.node = 6, .found = true, .tombstone = false, .version = 42});
  quorum.on_response({.node = 7, .found = false});
  ASSERT_EQ(quorum.state(), QuorumState::kDone);
  std::vector<NodeId> stale = quorum.stale_nodes();
  std::sort(stale.begin(), stale.end());
  EXPECT_EQ(stale, (std::vector<NodeId>{5, 7}));
}

TEST(ReadQuorum, AllMissesResolveWithNoWinnerAndNoRepair) {
  ReadQuorum quorum(2, 2);
  quorum.on_response({.node = 1, .found = false});
  quorum.on_response({.node = 2, .found = false});
  EXPECT_EQ(quorum.state(), QuorumState::kDone);
  EXPECT_EQ(quorum.newest(), nullptr);
  EXPECT_TRUE(quorum.stale_nodes().empty());
}

TEST(ReadQuorum, FailsFastWhenQuorumUnreachable) {
  ReadQuorum quorum(2, 3);
  EXPECT_EQ(quorum.on_lost(), QuorumState::kPending);
  EXPECT_EQ(quorum.on_lost(), QuorumState::kFailed);
  EXPECT_EQ(quorum.on_response({.node = 1, .found = true, .version = 1}),
            QuorumState::kFailed);
}

// --- plan_handoff ---------------------------------------------------------

/// Shared fixture for ring-change plans: n nodes 0..n-1, d=2, snapshot the
/// old groups, mutate, and plan from every node's perspective.
struct RingChange {
  RingChange(std::uint32_t nodes, std::uint32_t d) : ring(nodes, d, 16, 99) {}

  /// Captures the current ring as the "old" mapping for the key set.
  void snapshot(std::span<const KeyId> keys) {
    old_groups.clear();
    for (const KeyId key : keys) old_groups[key] = ring.replica_group(key);
  }

  std::function<void(KeyId, std::span<NodeId>)> old_group_of() {
    return [this](KeyId key, std::span<NodeId> out) {
      const std::vector<NodeId>& group = old_groups.at(key);
      std::copy(group.begin(), group.end(), out.begin());
    };
  }

  ConsistentHashRing ring;
  std::unordered_map<KeyId, std::vector<NodeId>> old_groups;
};

TEST(PlanHandoff, JoinStreamsEachMovedKeyExactlyOnceToTheNewNode) {
  constexpr std::uint32_t kNodes = 4;
  constexpr std::uint32_t kReplication = 2;
  std::vector<KeyId> keys(512);
  for (KeyId k = 0; k < keys.size(); ++k) keys[k] = k;

  RingChange change(kNodes, kReplication);
  change.snapshot(keys);
  change.ring.add_node(kNodes);  // node 4 joins

  const auto everyone_alive = [](NodeId) { return true; };
  std::vector<HandoffItem> combined;
  for (NodeId self = 0; self < kNodes; ++self) {
    const auto plan = plan_handoff(change.old_group_of(), change.ring, self,
                                   everyone_alive, keys);
    for (const HandoffItem& item : plan) {
      EXPECT_EQ(item.target, kNodes) << "join only moves keys to the joiner";
      combined.push_back(item);
    }
  }
  // The joining node streams nothing: it held nothing before the change.
  EXPECT_TRUE(plan_handoff(change.old_group_of(), change.ring, kNodes,
                           everyone_alive, keys)
                  .empty());

  // Exactly the keys whose new group contains node 4, each streamed once.
  std::set<KeyId> streamed;
  for (const HandoffItem& item : combined) {
    EXPECT_TRUE(streamed.insert(item.key).second)
        << "key " << item.key << " streamed by two nodes";
  }
  std::set<KeyId> expected;
  for (const KeyId key : keys) {
    const auto group = change.ring.replica_group(key);
    if (std::find(group.begin(), group.end(), kNodes) != group.end()) {
      expected.insert(key);
    }
  }
  EXPECT_EQ(streamed, expected);
  EXPECT_FALSE(expected.empty());  // the change must actually move keys
}

TEST(PlanHandoff, LeaveCoversEveryReplacementMember) {
  constexpr std::uint32_t kNodes = 5;
  constexpr std::uint32_t kReplication = 2;
  constexpr NodeId kLeaver = 2;
  std::vector<KeyId> keys(512);
  for (KeyId k = 0; k < keys.size(); ++k) keys[k] = k;

  RingChange change(kNodes, kReplication);
  change.snapshot(keys);
  change.ring.remove_node(kLeaver);

  // The leaver is gone but still "alive" for streamer election (a graceful
  // leave streams its own keys out before disconnecting).
  const auto everyone_alive = [](NodeId) { return true; };
  std::set<std::pair<KeyId, NodeId>> streamed;
  for (NodeId self = 0; self < kNodes; ++self) {
    for (const HandoffItem& item : plan_handoff(
             change.old_group_of(), change.ring, self, everyone_alive, keys)) {
      EXPECT_TRUE(streamed.insert({item.key, item.target}).second);
    }
  }
  // Every (key, new member) pair absent from the old group is covered.
  std::set<std::pair<KeyId, NodeId>> expected;
  for (const KeyId key : keys) {
    const std::vector<NodeId>& old_group = change.old_groups.at(key);
    for (const NodeId target : change.ring.replica_group(key)) {
      if (std::find(old_group.begin(), old_group.end(), target) ==
          old_group.end()) {
        expected.insert({key, target});
      }
    }
  }
  EXPECT_EQ(streamed, expected);
  EXPECT_FALSE(expected.empty());
}

TEST(PlanHandoff, DeadStreamerFallsBackToNextAliveOldHolder) {
  constexpr std::uint32_t kNodes = 4;
  constexpr std::uint32_t kReplication = 3;
  std::vector<KeyId> keys(256);
  for (KeyId k = 0; k < keys.size(); ++k) keys[k] = k;

  RingChange change(kNodes, kReplication);
  change.snapshot(keys);
  change.ring.add_node(kNodes);

  // Find a key whose old group's first member differs from its second so the
  // fallback is observable.
  for (const KeyId key : keys) {
    const std::vector<NodeId>& old_group = change.old_groups.at(key);
    const auto new_group = change.ring.replica_group(key);
    if (std::find(new_group.begin(), new_group.end(), kNodes) ==
        new_group.end()) {
      continue;  // key did not move
    }
    const NodeId first = old_group[0];
    const NodeId second = old_group[1];
    ASSERT_NE(first, second);

    const std::vector<KeyId> single{key};
    const auto first_dead = [first](NodeId node) { return node != first; };
    // With the elected streamer dead, it plans nothing...
    EXPECT_TRUE(plan_handoff(change.old_group_of(), change.ring, first,
                             first_dead, single)
                    .empty());
    // ...and the next alive old holder takes over.
    const auto plan = plan_handoff(change.old_group_of(), change.ring, second,
                                   first_dead, single);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0], (HandoffItem{key, kNodes}));
    return;
  }
  FAIL() << "no key moved to the joining node; enlarge the key set";
}

TEST(PlanHandoff, NoAliveOldHolderMeansNobodyStreams) {
  constexpr std::uint32_t kNodes = 3;
  std::vector<KeyId> keys(64);
  for (KeyId k = 0; k < keys.size(); ++k) keys[k] = k;

  RingChange change(kNodes, 2);
  change.snapshot(keys);
  change.ring.add_node(kNodes);

  const auto nobody_alive = [](NodeId) { return false; };
  for (NodeId self = 0; self <= kNodes; ++self) {
    EXPECT_TRUE(plan_handoff(change.old_group_of(), change.ring, self,
                             nobody_alive, keys)
                    .empty());
  }
}

}  // namespace
}  // namespace scp::replication
