// Loopback tests for the multi-reactor (sharded) serving tier: SO_REUSEPORT
// accept sharding, the single-acceptor fallback, per-shard metrics merging,
// cache partitioning, and graceful drain across shards. Labeled slow — each
// case spins up real TCP servers and many blocking clients.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "net/backend_server.h"
#include "net/frontend_server.h"
#include "net/sync_client.h"
#include "obs/metrics.h"

namespace scp::net {
namespace {

constexpr std::uint64_t kPartitionSeed = 77;

/// Reactor backend under test: set per-case by the fixture from the test
/// parameter, read by the config helpers so every server in a case (fleet
/// and frontend alike) runs the same loop implementation.
ReactorKind g_reactor = ReactorKind::kEpoll;

class ReactorSuite : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(parse_reactor_kind(GetParam(), g_reactor));
    if (g_reactor == ReactorKind::kUring) {
      std::string reason;
      if (!uring_available(&reason)) {
        GTEST_SKIP() << "SKIPPED: no io_uring (" << reason << ")";
      }
    }
  }
  void TearDown() override { g_reactor = ReactorKind::kEpoll; }
};

static std::string reactor_name(
    const ::testing::TestParamInfo<const char*>& info) {
  return info.param;
}

class ShardedFrontend : public ReactorSuite {};
class ShardedBackend : public ReactorSuite {};
INSTANTIATE_TEST_SUITE_P(Reactors, ShardedFrontend,
                         ::testing::Values("epoll", "uring"), reactor_name);
INSTANTIATE_TEST_SUITE_P(Reactors, ShardedBackend,
                         ::testing::Values("epoll", "uring"), reactor_name);

BackendConfig backend_config(std::uint32_t node_id, std::uint32_t nodes,
                             std::uint32_t replication, std::uint64_t items) {
  BackendConfig config;
  config.node_id = node_id;
  config.nodes = nodes;
  config.replication = replication;
  config.partition_seed = kPartitionSeed;
  config.items = items;
  config.reactor = g_reactor;
  return config;
}

struct Fleet {
  std::vector<std::unique_ptr<BackendServer>> backends;
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
};

Fleet start_fleet(std::uint32_t nodes, std::uint32_t replication,
                  std::uint64_t items) {
  Fleet fleet;
  for (std::uint32_t node = 0; node < nodes; ++node) {
    auto backend = std::make_unique<BackendServer>(
        backend_config(node, nodes, replication, items));
    EXPECT_TRUE(backend->start());
    fleet.endpoints.emplace_back("127.0.0.1", backend->port());
    fleet.backends.push_back(std::move(backend));
  }
  return fleet;
}

FrontendConfig frontend_config(const Fleet& fleet, std::uint32_t nodes,
                               std::uint32_t replication, std::uint64_t items,
                               std::size_t cache_capacity,
                               std::uint32_t shards) {
  FrontendConfig config;
  config.nodes = nodes;
  config.replication = replication;
  config.partition_seed = kPartitionSeed;
  config.backends = fleet.endpoints;
  config.cache_policy = "perfect";
  config.cache_capacity = cache_capacity;
  config.items = items;
  config.shards = shards;
  config.reactor = g_reactor;
  return config;
}

void stop_fleet(Fleet& fleet) {
  for (auto& backend : fleet.backends) backend->stop();
}

TEST_P(ShardedFrontend, StressManyClientsCounterConsistency) {
  // Many concurrent SyncClients (one per thread, as the class requires)
  // spread across the shards by the kernel's SO_REUSEPORT placement,
  // interleaving GET and STATS. Every GET must resolve to the canonical
  // value and the aggregated ServerStats must stay exact:
  // requests == hits + forwarded + coalesced + failures (concurrent misses
  // for one key on one shard single-flight onto the same forward).
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 256;
  constexpr std::size_t kCache = 64;
  constexpr std::uint32_t kShards = 4;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kOpsPerThread = 150;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendServer frontend(frontend_config(fleet, kNodes, kReplication, kItems,
                                          kCache, kShards));
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));
  const std::uint16_t port = frontend.port();

  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, port, &gets, &wrong] {
      SyncClient client;
      if (!client.connect("127.0.0.1", port, 3.0)) {
        wrong.fetch_add(1);
        return;
      }
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t key = (t * 7919 + i * 31) % kItems;
        const auto reply = client.get(key, 5.0);
        if (!reply.has_value() || reply->type != MsgType::kValue ||
            reply->payload != make_value(key, 64)) {
          wrong.fetch_add(1);
          return;
        }
        gets.fetch_add(1);
        if (i % 16 == 0) {  // interleave STATS on the same connection
          Message request;
          request.type = MsgType::kStats;
          const auto stats = client.call(request, 5.0);
          if (!stats.has_value() || stats->type != MsgType::kStatsReply) {
            wrong.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(gets.load(), kThreads * kOpsPerThread);

  const ServerStats stats = frontend.stats();
  EXPECT_EQ(stats.requests, kThreads * kOpsPerThread);
  EXPECT_EQ(stats.requests, stats.hits + stats.forwarded + stats.coalesced +
                                stats.failures)
      << "every GET must resolve to exactly one of "
         "hit/forwarded/coalesced/failure";
  EXPECT_EQ(stats.failures, 0u);
  // Sharded cache still hits: the kernel spreads connections over shards,
  // and a shard hits for the cached-prefix keys it owns.
  EXPECT_GT(stats.hits, 0u);

  // Backend request counters account for every forward attempt.
  std::uint64_t backend_requests = 0;
  for (const auto& backend : fleet.backends) {
    backend_requests += backend->stats().requests;
  }
  EXPECT_EQ(backend_requests, stats.attempts);

  frontend.stop();
  stop_fleet(fleet);
}

TEST_P(ShardedFrontend, PerShardMetricsSumToAggregate) {
  // Acceptance criterion: in a live scrape the aggregated series must equal
  // the sum of the per-shard series — counters exactly, histogram by count.
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 128;
  constexpr std::uint32_t kShards = 4;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendConfig config = frontend_config(fleet, kNodes, kReplication, kItems,
                                          /*cache=*/32, kShards);
  // Deterministic shard spread: the fallback acceptor round-robins
  // connections, so 4 clients land on 4 distinct shards.
  config.force_fallback_accept = true;
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  constexpr std::size_t kClients = 4;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([t, port = frontend.port()] {
      SyncClient client;
      ASSERT_TRUE(client.connect("127.0.0.1", port, 3.0));
      for (std::uint64_t key = 0; key < kItems; ++key) {
        const auto reply = client.get((key + t) % kItems, 5.0);
        ASSERT_TRUE(reply.has_value());
        ASSERT_EQ(reply->type, MsgType::kValue);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const obs::MetricsSnapshot snap = frontend.metrics_snapshot();
  const ServerStats stats = frontend.stats();
  ASSERT_EQ(snap.counters.at("frontend.requests"), stats.requests);

  std::uint64_t shard_requests = 0;
  std::uint64_t shard_request_us = 0;
  std::uint64_t shards_with_traffic = 0;
  for (std::uint32_t k = 0; k < kShards; ++k) {
    const std::string tag = "frontend.shard" + std::to_string(k) + ".";
    const auto requests = snap.counters.find(tag + "requests");
    ASSERT_NE(requests, snap.counters.end()) << "missing " << tag;
    shard_requests += requests->second;
    if (requests->second > 0) ++shards_with_traffic;
    const auto request_us = snap.timers.find(tag + "request_us");
    ASSERT_NE(request_us, snap.timers.end()) << "missing " << tag;
    shard_request_us += request_us->second.count();
  }
  EXPECT_EQ(shard_requests, snap.counters.at("frontend.requests"))
      << "aggregate counter must equal the sum of the shard counters";
  EXPECT_EQ(shard_request_us, snap.timers.at("frontend.request_us").count())
      << "aggregate histogram count must equal the sum of shard counts";
  EXPECT_EQ(shards_with_traffic, kShards)
      << "round-robin fallback accept must spread 4 clients over 4 shards";

  frontend.stop();
  stop_fleet(fleet);
}

TEST_P(ShardedFrontend, FallbackAcceptPartitionsCacheByKeyHash) {
  // Documented c/N semantics: a shard only serves cache hits for keys it
  // owns (mix64(key) % N); the cached prefix {key < c} is partitioned, not
  // duplicated. One client on the fallback acceptor lands on shard 0, so
  // its hits are exactly the shard-0-owned cached keys.
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 128;
  constexpr std::size_t kCache = 64;
  constexpr std::uint32_t kShards = 4;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendConfig config = frontend_config(fleet, kNodes, kReplication, kItems,
                                          kCache, kShards);
  config.force_fallback_accept = true;
  FrontendServer frontend(config);
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  SyncClient client;  // first accepted connection -> shard 0
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port(), 3.0));
  for (std::uint64_t key = 0; key < kItems; ++key) {
    const auto reply = client.get(key, 5.0);
    ASSERT_TRUE(reply.has_value()) << "key " << key;
    ASSERT_EQ(reply->type, MsgType::kValue) << "key " << key;
    EXPECT_EQ(reply->payload, make_value(key, 64));
  }

  std::uint64_t owned_cached = 0;
  for (std::uint64_t key = 0; key < kCache; ++key) {
    if (mix64(key) % kShards == 0) ++owned_cached;
  }
  const ServerStats stats = frontend.stats();
  EXPECT_EQ(stats.requests, kItems);
  EXPECT_EQ(stats.hits, owned_cached)
      << "shard 0 must hit exactly the cached keys it owns";
  EXPECT_EQ(stats.requests, stats.hits + stats.forwarded + stats.coalesced +
                                stats.failures);

  frontend.stop();
  stop_fleet(fleet);
}

TEST_P(ShardedFrontend, GracefulStopDrainsAllShards) {
  // SIGTERM maps to stop(): after it returns, no shard may keep accepting —
  // every listener (all N SO_REUSEPORT sockets) must be closed, in-flight
  // requests answered first.
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 64;
  constexpr std::uint32_t kShards = 4;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendServer frontend(frontend_config(fleet, kNodes, kReplication, kItems,
                                          /*cache=*/0, kShards));
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));
  const std::uint16_t port = frontend.port();

  // Load on several connections so multiple shards have live conns to drain.
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([port] {
      SyncClient client;
      ASSERT_TRUE(client.connect("127.0.0.1", port, 3.0));
      for (std::uint64_t key = 0; key < kItems; ++key) {
        const auto reply = client.get(key, 5.0);
        ASSERT_TRUE(reply.has_value());
        ASSERT_EQ(reply->type, MsgType::kValue);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  frontend.stop(2.0);
  EXPECT_FALSE(frontend.running());
  // With SO_REUSEPORT the kernel picks a listener per connection; probe
  // repeatedly so a single leaked shard listener cannot hide.
  for (int probe = 0; probe < 2 * static_cast<int>(kShards); ++probe) {
    SyncClient late;
    EXPECT_FALSE(late.connect("127.0.0.1", port, 0.5))
        << "probe " << probe << ": a shard is still accepting after stop()";
  }
  stop_fleet(fleet);
}

TEST_P(ShardedBackend, ServesAcrossShardsAndMergesMetrics) {
  // Sharded backend: shared storage behind N reactors. Replies must be
  // identical from every shard, the service-time histogram must merge
  // (aggregate count == sum of shard counts == requests), and the
  // backend.keys gauge must report the key count once, not shards x keys.
  constexpr std::uint32_t kNodes = 2;
  constexpr std::uint32_t kReplication = 2;  // d = n: node 0 owns every key
  constexpr std::uint64_t kItems = 96;
  constexpr std::uint32_t kShards = 4;

  BackendConfig config = backend_config(0, kNodes, kReplication, kItems);
  config.shards = kShards;
  config.force_fallback_accept = true;  // deterministic shard spread
  BackendServer server(config);
  ASSERT_TRUE(server.start());

  constexpr std::size_t kClients = 4;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([port = server.port()] {
      SyncClient client;
      ASSERT_TRUE(client.connect("127.0.0.1", port, 3.0));
      for (std::uint64_t key = 0; key < kItems; ++key) {
        const auto reply = client.get(key, 5.0);
        ASSERT_TRUE(reply.has_value()) << "key " << key;
        ASSERT_EQ(reply->type, MsgType::kValue);
        EXPECT_EQ(reply->payload, make_value(key, 64));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, kClients * kItems);
  EXPECT_EQ(stats.hits, stats.requests);

  const obs::MetricsSnapshot snap = server.metrics_snapshot();
  EXPECT_EQ(snap.counters.at("backend.requests"), stats.requests);
  ASSERT_EQ(snap.timers.count("backend.service_us"), 1u);
  EXPECT_EQ(snap.timers.at("backend.service_us").count(), stats.requests);
  std::uint64_t shard_service = 0;
  for (std::uint32_t k = 0; k < kShards; ++k) {
    const std::string name =
        "backend.shard" + std::to_string(k) + ".service_us";
    const auto it = snap.timers.find(name);
    ASSERT_NE(it, snap.timers.end()) << "missing " << name;
    EXPECT_GT(it->second.count(), 0u)
        << name << ": round-robin accept must give every shard traffic";
    shard_service += it->second.count();
  }
  EXPECT_EQ(shard_service, snap.timers.at("backend.service_us").count());
  // Storage is shared; the gauge must not multiply by the shard count.
  EXPECT_EQ(snap.gauges.at("backend.keys"),
            static_cast<std::int64_t>(server.storage().live_count()));

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_P(ShardedFrontend, SingleShardMatchesUnshardedCounters) {
  // Equivalence guard: --shards 1 runs the same code path the unsharded
  // server did — same counter totals on the canonical hit/forward workload
  // (the full byte-level guard is the unmodified test_net_loopback suite).
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kReplication = 2;
  constexpr std::uint64_t kItems = 128;
  constexpr std::size_t kCache = 16;

  Fleet fleet = start_fleet(kNodes, kReplication, kItems);
  FrontendServer frontend(frontend_config(fleet, kNodes, kReplication, kItems,
                                          kCache, /*shards=*/1));
  ASSERT_TRUE(frontend.start());
  ASSERT_TRUE(frontend.wait_backends_up(5.0));

  SyncClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", frontend.port(), 3.0));
  for (std::uint64_t key = 0; key < kItems; ++key) {
    const auto reply = client.get(key, 5.0);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MsgType::kValue);
  }

  const ServerStats stats = frontend.stats();
  EXPECT_EQ(stats.requests, kItems);
  EXPECT_EQ(stats.hits, kCache);  // every cached-prefix key hits at 1 shard
  EXPECT_EQ(stats.forwarded, kItems - kCache);
  EXPECT_EQ(stats.failures, 0u);

  // No shardK series may leak into the 1-shard snapshot (scrapers and
  // scp_stats depend on the unsharded naming).
  const obs::MetricsSnapshot snap = frontend.metrics_snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(name.find(".shard"), std::string::npos) << name;
  }
  for (const auto& [name, histogram] : snap.timers) {
    EXPECT_EQ(name.find(".shard"), std::string::npos) << name;
  }

  frontend.stop();
  stop_fleet(fleet);
}

}  // namespace
}  // namespace scp::net
