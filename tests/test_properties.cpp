// Cross-module property sweeps: invariants that must hold over wide
// parameter ranges, run as parameterized suites.
#include <tuple>

#include <gtest/gtest.h>

#include "adversary/bounds.h"
#include "adversary/strategy.h"
#include "sim/scenario.h"
#include "workload/distribution.h"
#include "workload/stream.h"

namespace scp {
namespace {

// --- bound algebra over (n, d) -------------------------------------------

class BoundSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(BoundSweep, Eq10IsEq8Normalized) {
  const auto [n, d] = GetParam();
  SystemParams params;
  params.nodes = n;
  params.replication = d;
  params.items = 100000;
  params.cache_size = n / 2;
  params.query_rate = 12345.0;
  const double k = gap_k(n, d, 0.7);
  for (const std::uint64_t x :
       {params.cache_size + 1, params.items / 7, params.items}) {
    ASSERT_NEAR(attack_gain_bound(params, x, k),
                max_load_bound(params, x, k) / even_load(params), 1e-9)
        << "n=" << n << " d=" << d << " x=" << x;
  }
}

TEST_P(BoundSweep, ThresholdSeparatesTheCases) {
  // For any (n, d): the bound at the optimal x exceeds 1 exactly below the
  // threshold.
  const auto [n, d] = GetParam();
  const double k = gap_k(n, d, 0.7);
  const double threshold = static_cast<double>(n) * k + 1.0;
  SystemParams params;
  params.nodes = n;
  params.replication = d;
  params.items = 1000000;
  params.query_rate = 1.0;

  params.cache_size = static_cast<std::uint64_t>(threshold) - 1;
  ASSERT_EQ(classify_regime(params, k), AttackRegime::kEffective);
  ASSERT_GT(attack_gain_bound(params, params.cache_size + 1, k), 1.0);

  params.cache_size = static_cast<std::uint64_t>(threshold) + 1;
  ASSERT_EQ(classify_regime(params, k), AttackRegime::kIneffective);
  for (const std::uint64_t x :
       {params.cache_size + 1, params.items / 3, params.items}) {
    ASSERT_LE(attack_gain_bound(params, x, k), 1.0)
        << "n=" << n << " d=" << d << " x=" << x;
  }
}

TEST_P(BoundSweep, BoundIsMonotoneTowardOne) {
  // In both regimes the bound approaches 1 monotonically as x grows.
  const auto [n, d] = GetParam();
  const double k = gap_k(n, d, 0.7);
  SystemParams params;
  params.nodes = n;
  params.replication = d;
  params.items = 1000000;
  params.query_rate = 1.0;
  for (const std::uint64_t c : {std::uint64_t{10}, std::uint64_t{5 * n}}) {
    params.cache_size = c;
    double last_distance =
        std::abs(attack_gain_bound(params, c + 1, k) - 1.0);
    for (std::uint64_t x = c + 1000; x <= params.items; x *= 4) {
      const double distance = std::abs(attack_gain_bound(params, x, k) - 1.0);
      ASSERT_LE(distance, last_distance + 1e-12)
          << "n=" << n << " d=" << d << " c=" << c << " x=" << x;
      last_distance = distance;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Clusters, BoundSweep,
    ::testing::Combine(::testing::Values(16u, 100u, 1000u, 20000u),
                       ::testing::Values(2u, 3u, 5u)));

// --- simulation invariants over cache size --------------------------------

class GainMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GainMonotonicity, MoreCacheNeverHelpsTheAdversary) {
  // For the adversary's best response, a strictly larger cache never yields
  // a strictly larger best gain (weak monotonicity, averaged over trials).
  const std::uint64_t c = GetParam();
  ScenarioConfig config;
  config.params.nodes = 100;
  config.params.replication = 3;
  config.params.items = 10000;
  config.params.query_rate = 1e4;

  auto best_gain = [&](std::uint64_t cache) {
    config.params.cache_size = cache;
    const auto evaluate = [&](std::uint64_t x) {
      return measure_adversarial_gain(config, x, 5, 77).summary.mean;
    };
    return best_response_search(config.params, evaluate, 0).gain;
  };
  EXPECT_GE(best_gain(c) + 0.05, best_gain(2 * c))
      << "doubling the cache increased the adversary's best gain";
}

INSTANTIATE_TEST_SUITE_P(CacheSizes, GainMonotonicity,
                         ::testing::Values(25ULL, 50ULL, 100ULL, 200ULL,
                                           400ULL));

// --- rate-sim linearity -----------------------------------------------------

TEST(RateSimProperties, LoadsScaleLinearlyInR) {
  ScenarioConfig config;
  config.params.nodes = 50;
  config.params.replication = 3;
  config.params.items = 5000;
  config.params.cache_size = 100;

  config.params.query_rate = 1000.0;
  const double gain_1k = adversarial_gain_trial(config, 101, 5);
  config.params.query_rate = 123456.0;
  const double gain_big = adversarial_gain_trial(config, 101, 5);
  // Normalized gain is R-invariant (loads and baseline both scale).
  EXPECT_NEAR(gain_1k, gain_big, 1e-9);
}

// --- estimate_distribution ---------------------------------------------------

TEST(EstimateDistribution, RecoversSampledShape) {
  const auto truth = QueryDistribution::zipf(1000, 1.2);
  const auto counts = sample_key_counts(truth, 200000, 3);
  const auto estimated =
      estimate_distribution(std::span<const std::uint64_t>(counts));
  EXPECT_TRUE(estimated.is_valid());
  // Head mass of the estimate matches the truth within sampling noise.
  EXPECT_NEAR(estimated.head_mass(10), truth.head_mass(10), 0.02);
  EXPECT_NEAR(estimated.head_mass(100), truth.head_mass(100), 0.02);
}

TEST(EstimateDistribution, SmoothingCoversUnseenKeys) {
  const std::vector<std::uint64_t> counts = {100, 0, 0, 0};
  const auto raw =
      estimate_distribution(std::span<const std::uint64_t>(counts));
  EXPECT_EQ(raw.support_size(), 1u);
  const auto smoothed =
      estimate_distribution(std::span<const std::uint64_t>(counts), 1.0);
  EXPECT_EQ(smoothed.support_size(), 4u);
  EXPECT_NEAR(smoothed.probability(3), 1.0 / 104.0, 1e-12);
}

TEST(EstimateDistribution, SortsUnorderedCounts) {
  const std::vector<std::uint64_t> counts = {5, 50, 1, 20};
  const auto d = estimate_distribution(std::span<const std::uint64_t>(counts));
  EXPECT_NEAR(d.probability(0), 50.0 / 76.0, 1e-12);
  EXPECT_NEAR(d.probability(3), 1.0 / 76.0, 1e-12);
  EXPECT_TRUE(d.is_valid());
}

TEST(EstimateDistribution, RejectsDegenerateInput) {
  EXPECT_DEATH(
      estimate_distribution(std::span<const std::uint64_t>()), "at least one");
  const std::vector<std::uint64_t> zeros = {0, 0};
  EXPECT_DEATH(estimate_distribution(std::span<const std::uint64_t>(zeros)),
               "smoothing");
}

TEST(EstimateDistribution, MeasureThenPlanPipeline) {
  // End-to-end: sample a workload, estimate it, and check the estimated
  // distribution's cache hit ratio predicts the true one.
  const auto truth = QueryDistribution::zipf(5000, 1.01);
  const auto counts = sample_key_counts(truth, 100000, 9);
  const auto estimated =
      estimate_distribution(std::span<const std::uint64_t>(counts), 0.1);
  for (const std::uint64_t c : {50ULL, 200ULL, 1000ULL}) {
    EXPECT_NEAR(estimated.head_mass(c), truth.head_mass(c), 0.03)
        << "cache size " << c;
  }
}

}  // namespace
}  // namespace scp
