// Multi-front-end cache tier: routing, coherence, and the head-duplication
// effect that dictates per-front-end provisioning.
#include <gtest/gtest.h>

#include "cache/frontend_tier.h"
#include "workload/distribution.h"
#include "workload/stream.h"

namespace scp {
namespace {

TEST(FrontEndTier, CapacityAndNameReflectShape) {
  FrontEndTier tier(4, 100, "lru", 1);
  EXPECT_EQ(tier.frontend_count(), 4u);
  EXPECT_EQ(tier.capacity(), 400u);
  EXPECT_EQ(tier.name(), "tier(4xlru)");
  EXPECT_EQ(tier.size(), 0u);
}

TEST(FrontEndTier, SingleFrontEndBehavesLikeOneCache) {
  FrontEndTier tier(1, 4, "lru", 2);
  EXPECT_FALSE(tier.access(1));
  EXPECT_TRUE(tier.access(1));
  EXPECT_TRUE(tier.contains(1));
}

TEST(FrontEndTier, AccessesSpreadAcrossFrontEnds) {
  // After many accesses to one key, every front-end should have seen it.
  FrontEndTier tier(4, 8, "lru", 3);
  for (int i = 0; i < 200; ++i) {
    tier.access(42);
  }
  EXPECT_EQ(tier.replication_of(42), 4u)
      << "hot key should be duplicated on every front-end";
}

TEST(FrontEndTier, HotHeadDuplicatesEverywhere) {
  // The provisioning-relevant effect: all front-ends independently converge
  // to the same hot head, so tier capacity k·c covers only ~c distinct keys.
  const auto d = QueryDistribution::zipf(1000, 1.2);
  QueryStream stream(d, 1000.0, 4);
  FrontEndTier tier(4, 32, "lru", 5);
  for (int i = 0; i < 40000; ++i) {
    tier.access(stream.next().key);
  }
  // The very head (top ~8 ranks) should sit on every front-end.
  std::uint32_t fully_replicated = 0;
  for (KeyId key = 0; key < 8; ++key) {
    fully_replicated += tier.replication_of(key) == 4 ? 1 : 0;
  }
  EXPECT_GE(fully_replicated, 4u);  // LRU churn can momentarily evict a couple
}

TEST(FrontEndTier, HitRatioBelowSingleCacheOfSameTotalCapacity) {
  // Fixed total memory, split k ways: the duplicated head wastes slots, so
  // the tier hits less often than one big cache.
  const auto d = QueryDistribution::zipf(5000, 1.01);
  const std::uint64_t total_capacity = 256;

  auto run = [&](FrontEndCache& cache) {
    QueryStream stream(d, 1000.0, 6);
    std::uint64_t hits = 0;
    for (int i = 0; i < 60000; ++i) {
      hits += cache.access(stream.next().key) ? 1 : 0;
    }
    return hits;
  };

  FrontEndTier split(8, total_capacity / 8, "lru", 7);
  const auto single = make_cache("lru", total_capacity);
  const std::uint64_t split_hits = run(split);
  const std::uint64_t single_hits = run(*single);
  EXPECT_LT(split_hits, single_hits);
}

TEST(FrontEndTier, InvalidatePurgesEveryFrontEnd) {
  FrontEndTier tier(4, 8, "lru", 8);
  for (int i = 0; i < 100; ++i) {
    tier.access(7);
  }
  ASSERT_EQ(tier.replication_of(7), 4u);
  EXPECT_TRUE(tier.invalidate(7));
  EXPECT_EQ(tier.replication_of(7), 0u);
  EXPECT_FALSE(tier.contains(7));
  EXPECT_FALSE(tier.invalidate(7));  // already gone
}

TEST(FrontEndTier, ClearEmptiesEverything) {
  FrontEndTier tier(3, 8, "lfu", 9);
  for (KeyId key = 0; key < 20; ++key) {
    tier.access(key);
  }
  tier.clear();
  EXPECT_EQ(tier.size(), 0u);
}

TEST(FrontEndTier, WorksWithEveryPolicy) {
  for (const char* policy : {"lru", "lfu", "slru", "tinylfu"}) {
    FrontEndTier tier(2, 16, policy, 10);
    for (int round = 0; round < 50; ++round) {
      tier.access(round % 8);
    }
    EXPECT_GT(tier.size(), 0u) << policy;
    EXPECT_TRUE(tier.contains(0) || tier.contains(1)) << policy;
  }
}

TEST(FrontEndTier, RejectsZeroFrontEnds) {
  EXPECT_DEATH(FrontEndTier(0, 8, "lru", 1), "at least one");
}

}  // namespace
}  // namespace scp
