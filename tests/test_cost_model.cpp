// Cost models (Assumption 4 relaxation) and heterogeneous capacities.
#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "cache/perfect_cache.h"
#include "cluster/capacity.h"
#include "cluster/cluster.h"
#include "sim/rate_sim.h"
#include "workload/cost_model.h"

namespace scp {
namespace {

// --- CostModel ---------------------------------------------------------

TEST(CostModel, UniformIsAllOnes) {
  const CostModel model = CostModel::uniform(100);
  EXPECT_EQ(model.size(), 100u);
  EXPECT_TRUE(model.is_uniform());
  EXPECT_DOUBLE_EQ(model.cost(0), 1.0);
  EXPECT_DOUBLE_EQ(model.mean_cost(), 1.0);
}

TEST(CostModel, TwoClassFractionRoughlyRespected) {
  const CostModel model = CostModel::two_class(10000, 1.0, 5.0, 0.2, 7);
  std::uint64_t expensive = 0;
  for (KeyId key = 0; key < model.size(); ++key) {
    if (model.cost(key) == 5.0) {
      ++expensive;
    } else {
      EXPECT_DOUBLE_EQ(model.cost(key), 1.0);
    }
  }
  EXPECT_NEAR(static_cast<double>(expensive) / 10000.0, 0.2, 0.02);
  EXPECT_DOUBLE_EQ(model.min_cost(), 1.0);
  EXPECT_DOUBLE_EQ(model.max_cost(), 5.0);
  EXPECT_FALSE(model.is_uniform());
}

TEST(CostModel, TwoClassIsDeterministicPerSeed) {
  const CostModel a = CostModel::two_class(1000, 1.0, 3.0, 0.5, 1);
  const CostModel b = CostModel::two_class(1000, 1.0, 3.0, 0.5, 1);
  const CostModel c = CostModel::two_class(1000, 1.0, 3.0, 0.5, 2);
  std::uint64_t same_ab = 0;
  std::uint64_t same_ac = 0;
  for (KeyId key = 0; key < 1000; ++key) {
    same_ab += a.cost(key) == b.cost(key) ? 1 : 0;
    same_ac += a.cost(key) == c.cost(key) ? 1 : 0;
  }
  EXPECT_EQ(same_ab, 1000u);
  EXPECT_LT(same_ac, 1000u);
}

TEST(CostModel, ExtremeFractions) {
  const CostModel none = CostModel::two_class(100, 1.0, 9.0, 0.0, 3);
  EXPECT_DOUBLE_EQ(none.max_cost(), 1.0);
  const CostModel all = CostModel::two_class(100, 1.0, 9.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(all.min_cost(), 9.0);
}

TEST(CostModel, FromCostsValidates) {
  const CostModel model = CostModel::from_costs({2.0, 1.0, 4.0});
  EXPECT_DOUBLE_EQ(model.cost(2), 4.0);
  EXPECT_DOUBLE_EQ(model.mean_cost(), 7.0 / 3.0);
  EXPECT_DEATH(CostModel::from_costs({1.0, 0.0}), "positive");
  EXPECT_DEATH(CostModel::from_costs({}), "at least one");
}

// --- weighted rate simulation -------------------------------------------

TEST(WeightedRateSim, UniformCostMatchesUnweighted) {
  const auto d = QueryDistribution::zipf(500, 1.1);
  const CostModel costs = CostModel::uniform(500);
  Cluster a(make_partitioner("hash", 20, 3, 5));
  Cluster b(make_partitioner("hash", 20, 3, 5));
  const PerfectCache cache(50, d);
  auto sel_a = make_selector("least-loaded");
  auto sel_b = make_selector("least-loaded");
  RateSimConfig plain;
  plain.query_rate = 1000.0;
  plain.seed = 9;
  RateSimConfig weighted = plain;
  weighted.cost_model = &costs;
  const RateSimResult ra = simulate_rates(a, cache, d, *sel_a, plain);
  const RateSimResult rb = simulate_rates(b, cache, d, *sel_b, weighted);
  EXPECT_EQ(ra.node_loads, rb.node_loads);
  EXPECT_DOUBLE_EQ(ra.normalized_max_load, rb.normalized_max_load);
}

TEST(WeightedRateSim, ConservesEffectiveDemand) {
  const auto d = QueryDistribution::uniform(1000);
  const CostModel costs = CostModel::two_class(1000, 1.0, 4.0, 0.3, 11);
  Cluster cluster(make_partitioner("hash", 20, 3, 5));
  const PerfectCache cache(100, d);
  auto selector = make_selector("least-loaded");
  RateSimConfig config;
  config.query_rate = 1000.0;
  config.seed = 2;
  config.cost_model = &costs;
  const RateSimResult r = simulate_rates(cluster, cache, d, *selector, config);
  // Effective demand = R·E[cost]; cache + backends must account for all.
  double expected_demand = 0.0;
  for (KeyId key = 0; key < 1000; ++key) {
    expected_demand += d.probability(key) * 1000.0 * costs.cost(key);
  }
  const double node_total =
      std::accumulate(r.node_loads.begin(), r.node_loads.end(), 0.0);
  EXPECT_NEAR(r.cache_rate + node_total, expected_demand, 1e-6);
}

TEST(WeightedRateSim, ExpensiveKeysDominateLoad) {
  // Two keys, equal popularity, one 10x as costly, no cache: the nodes
  // serving the costly key carry 10x the load.
  const auto d = QueryDistribution::uniform_over(2, 10);
  const CostModel costs = CostModel::from_costs(
      {10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  Cluster cluster(make_partitioner("hash", 10, 1, 5));
  const PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  RateSimConfig config;
  config.query_rate = 100.0;
  config.seed = 3;
  config.cost_model = &costs;
  const RateSimResult r = simulate_rates(cluster, cache, d, *selector, config);
  // Effective: key0 = 50*10 = 500, key1 = 50.
  EXPECT_DOUBLE_EQ(r.metrics.max, 500.0);
}

TEST(WeightedRateSim, MismatchedCostModelDies) {
  const auto d = QueryDistribution::uniform(100);
  const CostModel costs = CostModel::uniform(99);
  Cluster cluster(make_partitioner("hash", 5, 1, 1));
  const PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  RateSimConfig config;
  config.cost_model = &costs;
  EXPECT_DEATH(simulate_rates(cluster, cache, d, *selector, config), "match");
}

// --- heterogeneous capacities -------------------------------------------

TEST(Capacities, UniformHelper) {
  const auto caps = uniform_capacities(5, 100.0);
  ASSERT_EQ(caps.size(), 5u);
  for (const double c : caps) {
    EXPECT_DOUBLE_EQ(c, 100.0);
  }
}

TEST(Capacities, TwoTierFractionAndValues) {
  const auto caps = two_tier_capacities(10000, 100.0, 0.5, 0.25, 13);
  std::uint64_t slow = 0;
  for (const double c : caps) {
    if (c == 50.0) {
      ++slow;
    } else {
      EXPECT_DOUBLE_EQ(c, 100.0);
    }
  }
  EXPECT_NEAR(static_cast<double>(slow) / 10000.0, 0.25, 0.02);
}

TEST(Capacities, ClusterAcceptsHeterogeneousVector) {
  const std::vector<double> caps = {100.0, 50.0, 0.0, 200.0};
  Cluster cluster(make_partitioner("hash", 4, 2, 1),
                  std::span<const double>(caps));
  EXPECT_DOUBLE_EQ(cluster.node(0).capacity_qps(), 100.0);
  EXPECT_DOUBLE_EQ(cluster.node(1).capacity_qps(), 50.0);
  EXPECT_FALSE(cluster.node(2).has_capacity_limit());
  EXPECT_DOUBLE_EQ(cluster.min_capacity_qps(), 50.0);
}

TEST(Capacities, MinCapacityZeroWhenAllUnlimited) {
  Cluster cluster(make_partitioner("hash", 3, 1, 1));
  EXPECT_DOUBLE_EQ(cluster.min_capacity_qps(), 0.0);
}

TEST(Capacities, ClusterRejectsWrongVectorSize) {
  const std::vector<double> caps = {1.0, 2.0};
  EXPECT_DEATH(Cluster(make_partitioner("hash", 3, 1, 1),
                       std::span<const double>(caps)),
               "one entry per node");
}

TEST(Capacities, MaxUtilizationTracksSlowestNode) {
  // Same offered load everywhere, but node 1 has half the capacity: the
  // utilization peak must be on node 1 even if it is not the load peak.
  const auto d = QueryDistribution::uniform(10000);
  std::vector<double> caps(20, 200.0);
  caps[1] = 50.0;
  Cluster cluster(make_partitioner("hash", 20, 3, 5),
                  std::span<const double>(caps));
  const PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  RateSimConfig config;
  config.query_rate = 2000.0;  // ~100 qps per node
  config.seed = 4;
  const RateSimResult r = simulate_rates(cluster, cache, d, *selector, config);
  EXPECT_GT(r.max_utilization,
            cluster.node(1).offered_rate() / 50.0 - 1e-9);
  EXPECT_GT(r.max_utilization, 1.5);  // ~100/50
  EXPECT_EQ(r.saturated_nodes, 1u);   // only the slow node is over capacity
}

}  // namespace
}  // namespace scp
