// obs layer unit tests: registry handles, snapshot/merge semantics, the
// Prometheus / JSON expositions, and the scrape HTTP endpoint (exercised
// over a real loopback socket).
#include "obs/metrics.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"

namespace scp::obs {
namespace {

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter& a = registry.counter("frontend.requests");
  Counter& b = registry.counter("frontend.requests");
  EXPECT_EQ(&a, &b) << "same name must return the same counter";
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), 5u);

  Gauge& g = registry.gauge("frontend.backends_up");
  g.set(3);
  g.add(-1);
  EXPECT_EQ(g.value(), 2);

  Timer& t = registry.timer("frontend.request_us");
  EXPECT_EQ(&t, &registry.timer("frontend.request_us"));
  t.record(100);
  t.record(200);
  EXPECT_EQ(t.snapshot().count(), 2u);
}

TEST(MetricsRegistry, SnapshotReflectsEveryMetric) {
  MetricsRegistry registry;
  registry.counter("a.count").inc(7);
  registry.gauge("b.depth").set(-5);
  registry.timer("c.lat_us").record(42);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.count("a.count"), 1u);
  EXPECT_EQ(snap.counters.at("a.count"), 7u);
  ASSERT_EQ(snap.gauges.count("b.depth"), 1u);
  EXPECT_EQ(snap.gauges.at("b.depth"), -5);
  ASSERT_EQ(snap.timers.count("c.lat_us"), 1u);
  EXPECT_EQ(snap.timers.at("c.lat_us").count(), 1u);
  EXPECT_EQ(snap.timers.at("c.lat_us").value_at_quantile(0.5), 42u);

  // The snapshot is a copy: later records don't retroactively change it.
  registry.counter("a.count").inc();
  EXPECT_EQ(snap.counters.at("a.count"), 7u);
}

TEST(MetricsSnapshot, MergeSumsAndCombines) {
  MetricsRegistry r1;
  MetricsRegistry r2;
  r1.counter("requests").inc(10);
  r2.counter("requests").inc(32);
  r2.counter("only_in_two").inc();
  r1.gauge("depth").set(4);
  r2.gauge("depth").set(6);
  r1.timer("lat_us").record(100);
  r2.timer("lat_us").record(300);
  r2.timer("other_us").record(1);

  MetricsSnapshot merged = r1.snapshot();
  merged.merge(r2.snapshot());
  EXPECT_EQ(merged.counters.at("requests"), 42u);
  EXPECT_EQ(merged.counters.at("only_in_two"), 1u);
  EXPECT_EQ(merged.gauges.at("depth"), 10);
  EXPECT_EQ(merged.timers.at("lat_us").count(), 2u);
  EXPECT_EQ(merged.timers.at("lat_us").min(), 100u);
  EXPECT_EQ(merged.timers.at("lat_us").max(), 300u);
  EXPECT_EQ(merged.timers.at("other_us").count(), 1u);
}

TEST(MetricsSnapshot, MergeHandlesMismatchedTimerPrecision) {
  MetricsSnapshot a;
  MetricsSnapshot b;
  LogHistogram coarse(2);
  coarse.record(1000);
  LogHistogram fine(8);
  fine.record(2000);
  a.timers.emplace("lat_us", coarse);
  b.timers.emplace("lat_us", fine);
  a.merge(b);
  EXPECT_EQ(a.timers.at("lat_us").count(), 2u);
  EXPECT_EQ(a.timers.at("lat_us").min(), 1000u);
  EXPECT_EQ(a.timers.at("lat_us").max(), 2000u);
}

TEST(Exposition, PrometheusNameRewriting) {
  EXPECT_EQ(prometheus_name("frontend.request_us"),
            "scp_frontend_request_us");
  EXPECT_EQ(prometheus_name("loop.tick_us"), "scp_loop_tick_us");
  EXPECT_EQ(prometheus_name("weird name!"), "scp_weird_name_");
  EXPECT_EQ(prometheus_name("a:b"), "scp_a:b");
}

TEST(Exposition, PrometheusTextHasTypedFamilies) {
  MetricsRegistry registry;
  registry.counter("backend.requests").inc(9);
  registry.gauge("backend.keys").set(256);
  Timer& t = registry.timer("backend.service_us");
  for (std::uint64_t v = 1; v <= 100; ++v) t.record(v);

  const std::string text = to_prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("# TYPE scp_backend_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("scp_backend_requests 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE scp_backend_keys gauge"), std::string::npos);
  EXPECT_NE(text.find("scp_backend_keys 256"), std::string::npos);
  EXPECT_NE(text.find("# TYPE scp_backend_service_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("scp_backend_service_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("scp_backend_service_us_count 100"), std::string::npos);
  EXPECT_NE(text.find("scp_backend_service_us_sum"), std::string::npos);
  // Exposition format: every line ends with \n, including the last.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(Exposition, JsonIsWellFormedAndComplete) {
  MetricsRegistry registry;
  registry.counter("requests").inc(3);
  registry.gauge("depth").set(-2);
  registry.timer("lat_us").record(50);
  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"requests\":3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

namespace {

/// One-shot HTTP/1.0 GET against 127.0.0.1:`port`; returns the raw response
/// (headers + body), or "" on any socket error.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace

TEST(MetricsHttpServer, ServesScrapesOverLoopback) {
  MetricsRegistry registry;
  registry.counter("backend.requests").inc(5);
  registry.timer("backend.service_us").record(77);

  MetricsHttpServer server([&registry] { return registry.snapshot(); });
  ASSERT_TRUE(server.start(0));
  ASSERT_NE(server.port(), 0);

  const std::string text = http_get(server.port(), "/metrics");
  EXPECT_NE(text.find("200 OK"), std::string::npos);
  EXPECT_NE(text.find("scp_backend_requests 5"), std::string::npos);
  EXPECT_NE(text.find("scp_backend_service_us_count 1"), std::string::npos);

  // Scrapes observe live updates, not a start-time copy.
  registry.counter("backend.requests").inc(2);
  const std::string text2 = http_get(server.port(), "/metrics");
  EXPECT_NE(text2.find("scp_backend_requests 7"), std::string::npos);

  const std::string json = http_get(server.port(), "/metrics.json");
  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_NE(json.find("\"backend.requests\":7"), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.stop();
}

TEST(MetricsHttpServer, StopIsIdempotentAndReleasesThePort) {
  MetricsRegistry registry;
  auto server = std::make_unique<MetricsHttpServer>(
      [&registry] { return registry.snapshot(); });
  ASSERT_TRUE(server->start(0));
  const std::uint16_t port = server->port();
  server->stop();
  server->stop();
  server.reset();

  // The port is free again: a new server can bind it.
  MetricsHttpServer second([&registry] { return registry.snapshot(); });
  EXPECT_TRUE(second.start(port));
  second.stop();
}

TEST(ObsHelpers, RecordElapsedIsNullSafe) {
  record_elapsed(nullptr, now_ns());  // must not crash
  Timer t;
  const std::uint64_t start = now_ns();
  record_elapsed(&t, start, 1'000);
  EXPECT_EQ(t.snapshot().count(), 1u);
}

}  // namespace
}  // namespace scp::obs
