// Rotating hot-set workload: shape preservation within a phase, hot-set
// movement across phases, interaction with real cache policies.
#include <vector>

#include <gtest/gtest.h>

#include "cache/lfu_cache.h"
#include "cache/lru_cache.h"
#include "workload/rotating.h"

namespace scp {
namespace {

TEST(RotatingWorkload, KeysStayInRange) {
  RotatingWorkload workload(QueryDistribution::zipf(100, 1.1), 50, 25);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(workload.next(rng), 100u);
  }
}

TEST(RotatingWorkload, PhaseAdvancesWithQueries) {
  RotatingWorkload workload(QueryDistribution::uniform(10), 5, 1);
  Rng rng(2);
  EXPECT_EQ(workload.current_phase(), 0u);
  for (int i = 0; i < 5; ++i) {
    workload.next(rng);
  }
  EXPECT_EQ(workload.current_phase(), 1u);
  workload.reset();
  EXPECT_EQ(workload.current_phase(), 0u);
}

TEST(RotatingWorkload, RankMappingShiftsByStride) {
  RotatingWorkload workload(QueryDistribution::uniform_over(4, 100), 10, 7);
  EXPECT_EQ(workload.key_for_rank(0, 0), 0u);
  EXPECT_EQ(workload.key_for_rank(3, 0), 3u);
  EXPECT_EQ(workload.key_for_rank(0, 1), 7u);
  EXPECT_EQ(workload.key_for_rank(0, 2), 14u);
  EXPECT_EQ(workload.key_for_rank(2, 14), (2 + 14 * 7) % 100);
}

TEST(RotatingWorkload, WithinPhaseDistributionMatchesBase) {
  const auto base = QueryDistribution::uniform_over(5, 1000);
  RotatingWorkload workload(base, 1000000, 500);  // single long phase
  Rng rng(3);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) {
    const KeyId key = workload.next(rng);
    ASSERT_LT(key, 5u);
    ++counts[key];
  }
  for (const int count : counts) {
    EXPECT_NEAR(static_cast<double>(count) / 50000.0, 0.2, 0.02);
  }
}

TEST(RotatingWorkload, DisjointHotSetsWithLargeStride) {
  const auto base = QueryDistribution::uniform_over(10, 1000);
  RotatingWorkload workload(base, 100, 10);  // stride == support
  for (std::uint64_t rank = 0; rank < 10; ++rank) {
    EXPECT_NE(workload.key_for_rank(rank, 0), workload.key_for_rank(rank, 1));
    // Phase 0 keys are 0..9, phase 1 keys are 10..19 — fully disjoint.
    EXPECT_LT(workload.key_for_rank(rank, 0), 10u);
    EXPECT_GE(workload.key_for_rank(rank, 1), 10u);
  }
}

TEST(RotatingWorkload, PhaseProbabilitiesSumToOne) {
  const auto base = QueryDistribution::zipf(100, 1.2);
  RotatingWorkload workload(base, 10, 37);
  for (std::uint64_t phase : {0ULL, 1ULL, 5ULL, 123ULL}) {
    const std::vector<double> p = workload.phase_probabilities(phase);
    double total = 0.0;
    for (const double v : p) {
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "phase " << phase;
  }
}

TEST(RotatingWorkload, WrapsAroundKeySpace) {
  RotatingWorkload workload(QueryDistribution::uniform_over(3, 10), 5, 4);
  // Phase 3: offset 12 mod 10 = 2.
  EXPECT_EQ(workload.key_for_rank(0, 3), 2u);
  EXPECT_EQ(workload.key_for_rank(2, 3), 4u);
}

TEST(RotatingWorkload, LruTracksRotationLfuGetsStuck) {
  // The classic churn result, reproduced end to end: after the hot set
  // moves, LRU recovers its hit ratio within one working set, while plain
  // LFU keeps the stale phase-0 head pinned (its frequencies never decay)
  // and misses the new head.
  const std::uint64_t support = 32;
  const auto base = QueryDistribution::uniform_over(support, 10000);
  const std::uint64_t phase_length = 20000;

  auto measure_second_phase_hits = [&](FrontEndCache& cache) {
    RotatingWorkload workload(base, phase_length, support);
    Rng rng(11);
    std::uint64_t second_phase_hits = 0;
    for (std::uint64_t q = 0; q < 2 * phase_length; ++q) {
      const bool hit = cache.access(workload.next(rng));
      if (q >= phase_length + phase_length / 2) {
        second_phase_hits += hit ? 1 : 0;  // after warmup in phase 1
      }
    }
    return second_phase_hits;
  };

  LruCache lru(support);
  LfuCache lfu(support);
  const std::uint64_t lru_hits = measure_second_phase_hits(lru);
  const std::uint64_t lfu_hits = measure_second_phase_hits(lfu);
  EXPECT_GT(lru_hits, lfu_hits * 2)
      << "LFU should be stuck on the stale phase-0 head";
}

TEST(RotatingWorkload, RejectsDegenerateParameters) {
  const auto base = QueryDistribution::uniform(10);
  EXPECT_DEATH(RotatingWorkload(base, 0, 1), "phase length");
  EXPECT_DEATH(RotatingWorkload(base, 1, 0), "stride");
}

}  // namespace
}  // namespace scp
