// Bloom filter and Count-Min sketch property tests.
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "cache/bloom.h"
#include "cache/count_min.h"
#include "common/rng.h"

namespace scp {
namespace {

// --- BloomFilter ---------------------------------------------------------

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bloom(1000, 0.01, 1);
  for (KeyId k = 0; k < 1000; ++k) {
    bloom.add(k * 7919);
  }
  for (KeyId k = 0; k < 1000; ++k) {
    EXPECT_TRUE(bloom.maybe_contains(k * 7919)) << "false negative at " << k;
  }
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  constexpr double kTarget = 0.01;
  BloomFilter bloom(10000, kTarget, 2);
  for (KeyId k = 0; k < 10000; ++k) {
    bloom.add(k);
  }
  int false_positives = 0;
  constexpr int kProbes = 100000;
  for (int i = 0; i < kProbes; ++i) {
    false_positives +=
        bloom.maybe_contains(1000000 + static_cast<KeyId>(i)) ? 1 : 0;
  }
  const double fpp = static_cast<double>(false_positives) / kProbes;
  EXPECT_LT(fpp, kTarget * 3);
  EXPECT_NEAR(bloom.estimated_fpp(), fpp, 0.01);
}

TEST(BloomFilter, AddReportsPriorPresence) {
  BloomFilter bloom(100, 0.001, 3);
  EXPECT_FALSE(bloom.add(42));
  EXPECT_TRUE(bloom.add(42));
}

TEST(BloomFilter, ClearRemovesEverything) {
  BloomFilter bloom(100, 0.01, 4);
  bloom.add(1);
  bloom.add(2);
  bloom.clear();
  EXPECT_FALSE(bloom.maybe_contains(1));
  EXPECT_EQ(bloom.inserted_count(), 0u);
  EXPECT_DOUBLE_EQ(bloom.estimated_fpp(), 0.0);
}

TEST(BloomFilter, SizingGrowsWithItemsAndShrinkingFpp) {
  BloomFilter small(100, 0.01, 5);
  BloomFilter more_items(1000, 0.01, 5);
  BloomFilter tighter(100, 0.0001, 5);
  EXPECT_GT(more_items.bit_count(), small.bit_count());
  EXPECT_GT(tighter.bit_count(), small.bit_count());
  EXPECT_GT(tighter.hash_count(), small.hash_count());
}

TEST(BloomFilter, DifferentSeedsDifferentBits) {
  BloomFilter a(100, 0.01, 6);
  BloomFilter b(100, 0.01, 7);
  a.add(123);
  // With a different seed, key 123's probes land elsewhere w.h.p.
  EXPECT_FALSE(b.maybe_contains(123));
}

// --- CountMinSketch --------------------------------------------------------

TEST(CountMinSketch, NeverUnderestimates) {
  CountMinSketch sketch(512, 4, 1);
  Rng rng(1);
  std::unordered_map<KeyId, std::uint32_t> truth;
  for (int i = 0; i < 20000; ++i) {
    const KeyId key = rng.uniform_u64(5000);
    sketch.add(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.estimate(key), count) << "key " << key;
  }
}

TEST(CountMinSketch, ErrorWithinEpsilonN) {
  // ε = e/width; overestimation above ε·N should be rare (prob ≤ e^-depth
  // per key); assert none of a sample exceeds 3·ε·N.
  constexpr std::size_t kWidth = 1024;
  CountMinSketch sketch(kWidth, 5, 2);
  Rng rng(2);
  std::unordered_map<KeyId, std::uint32_t> truth;
  constexpr int kAdds = 50000;
  for (int i = 0; i < kAdds; ++i) {
    const KeyId key = rng.uniform_u64(20000);
    sketch.add(key);
    ++truth[key];
  }
  const double epsilon_n = (2.71828 / kWidth) * kAdds;
  int violations = 0;
  for (const auto& [key, count] : truth) {
    if (sketch.estimate(key) > count + 3 * epsilon_n) {
      ++violations;
    }
  }
  EXPECT_EQ(violations, 0);
}

TEST(CountMinSketch, ExactForDistinctKeysInSparseSketch) {
  CountMinSketch sketch(4096, 4, 3);
  for (KeyId k = 0; k < 10; ++k) {
    sketch.add(k, static_cast<std::uint32_t>(k + 1));
  }
  for (KeyId k = 0; k < 10; ++k) {
    EXPECT_EQ(sketch.estimate(k), k + 1);
  }
  EXPECT_EQ(sketch.estimate(999), 0u);
}

TEST(CountMinSketch, HalveAgesCounters) {
  CountMinSketch sketch(256, 4, 4);
  sketch.add(7, 100);
  EXPECT_EQ(sketch.estimate(7), 100u);
  sketch.halve();
  EXPECT_EQ(sketch.estimate(7), 50u);
  EXPECT_EQ(sketch.total_added(), 50u);
}

TEST(CountMinSketch, ClearZeroesEverything) {
  CountMinSketch sketch(64, 2, 5);
  sketch.add(1, 10);
  sketch.clear();
  EXPECT_EQ(sketch.estimate(1), 0u);
  EXPECT_EQ(sketch.total_added(), 0u);
}

TEST(CountMinSketch, ConservativeUpdateTightensEstimates) {
  // Conservative update never raises a counter above min+count, so a heavy
  // colliding key does not inflate a light key as much as plain CMS would.
  CountMinSketch sketch(8, 2, 6);  // tiny: collisions guaranteed
  for (int i = 0; i < 1000; ++i) {
    sketch.add(1);
  }
  sketch.add(2);
  // Key 2's estimate is bounded by key 1's counter only if they collide in
  // every row; with conservative update it is typically far below 1000.
  EXPECT_LE(sketch.estimate(2), 1001u);
  EXPECT_GE(sketch.estimate(2), 1u);
}

TEST(CountMinSketch, ForErrorSizesCorrectly) {
  const CountMinSketch sketch = CountMinSketch::for_error(0.001, 0.01, 7);
  EXPECT_GE(sketch.width(), 2718u);
  EXPECT_GE(sketch.depth(), 5u);
}

TEST(CountMinSketch, AddZeroIsNoOp) {
  CountMinSketch sketch(64, 2, 8);
  sketch.add(1, 0);
  EXPECT_EQ(sketch.estimate(1), 0u);
  EXPECT_EQ(sketch.total_added(), 0u);
}

TEST(CountMinSketch, SaturatesAtUint32Max) {
  CountMinSketch sketch(64, 2, 9);
  sketch.add(1, 0xffffffffu);
  sketch.add(1, 100);
  EXPECT_EQ(sketch.estimate(1), 0xffffffffu);
}

}  // namespace
}  // namespace scp
