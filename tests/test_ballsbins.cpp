// Balls-into-bins: empirical behaviour must match the theory the paper's
// bound is built on.
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "ballsbins/balls_bins.h"
#include "common/rng.h"
#include "common/stats.h"

namespace scp {
namespace {

TEST(ThrowBalls, OccupancySumsToBallCount) {
  Rng rng(1);
  const auto occupancy = throw_balls(10000, 64, 2, rng);
  ASSERT_EQ(occupancy.size(), 64u);
  const std::uint64_t total =
      std::accumulate(occupancy.begin(), occupancy.end(), 0ULL);
  EXPECT_EQ(total, 10000u);
}

TEST(ThrowBalls, ZeroBalls) {
  Rng rng(2);
  const auto occupancy = throw_balls(0, 8, 2, rng);
  for (const auto count : occupancy) {
    EXPECT_EQ(count, 0u);
  }
}

TEST(ThrowBalls, SingleBin) {
  Rng rng(3);
  EXPECT_EQ(max_occupancy(100, 1, 1, rng), 100u);
}

TEST(ThrowBalls, DChoicesBeatsSingleChoice) {
  // The heart of the power of two choices: at M = N the max load drops from
  // Θ(ln n / lnln n) to lnln n. Compare medians over repeated throws.
  constexpr std::uint32_t kBins = 1000;
  constexpr std::uint64_t kBalls = 1000;
  Rng rng(4);
  RunningStats one_choice;
  RunningStats two_choice;
  for (int t = 0; t < 30; ++t) {
    one_choice.add(static_cast<double>(max_occupancy(kBalls, kBins, 1, rng)));
    two_choice.add(static_cast<double>(max_occupancy(kBalls, kBins, 2, rng)));
  }
  EXPECT_GT(one_choice.mean(), two_choice.mean() + 1.0);
}

TEST(ThrowBalls, HeavilyLoadedGapIsSmallForTwoChoices) {
  // Berenbrink et al.: with M >> N, max - M/N stays O(lnln N), independent
  // of M. At M = 100N the average is 100; the gap should be a handful.
  constexpr std::uint32_t kBins = 500;
  constexpr std::uint64_t kBalls = 50000;
  Rng rng(5);
  for (int t = 0; t < 5; ++t) {
    const std::uint64_t max = max_occupancy(kBalls, kBins, 2, rng);
    const double gap = static_cast<double>(max) - 100.0;
    EXPECT_GE(gap, 0.0);
    EXPECT_LE(gap, 10.0) << "two-choice gap blew up";
  }
}

TEST(ThrowBalls, OneChoiceGapGrowsWithM) {
  // Contrast (Fan et al.'s d=1 world): the single-choice gap scales with
  // sqrt(M), so quadrupling M roughly doubles it.
  constexpr std::uint32_t kBins = 500;
  Rng rng(6);
  RunningStats small_gap;
  RunningStats large_gap;
  for (int t = 0; t < 20; ++t) {
    small_gap.add(
        static_cast<double>(max_occupancy(10000, kBins, 1, rng)) - 20.0);
    large_gap.add(
        static_cast<double>(max_occupancy(40000, kBins, 1, rng)) - 80.0);
  }
  EXPECT_GT(large_gap.mean(), small_gap.mean() * 1.4);
}

TEST(ThrowBalls, TwoChoiceGapInsensitiveToM) {
  constexpr std::uint32_t kBins = 500;
  Rng rng(7);
  RunningStats small_gap;
  RunningStats large_gap;
  for (int t = 0; t < 20; ++t) {
    small_gap.add(
        static_cast<double>(max_occupancy(10000, kBins, 2, rng)) - 20.0);
    large_gap.add(
        static_cast<double>(max_occupancy(80000, kBins, 2, rng)) - 160.0);
  }
  // Gap may wiggle but must not scale like sqrt(M) (which would triple it).
  EXPECT_LT(large_gap.mean(), small_gap.mean() + 2.0);
}

TEST(ThrowBalls, EmpiricalMaxWithinTheoreticalPrediction) {
  constexpr std::uint32_t kBins = 1000;
  constexpr std::uint64_t kBalls = 100000;
  Rng rng(8);
  for (std::uint32_t d : {2u, 3u, 4u}) {
    const double predicted =
        predicted_max_load_d_choices(kBalls, kBins, d, /*gap_constant=*/2.0);
    for (int t = 0; t < 3; ++t) {
      const std::uint64_t observed = max_occupancy(kBalls, kBins, d, rng);
      EXPECT_LE(static_cast<double>(observed), predicted)
          << "d=" << d << " trial " << t;
    }
  }
}

TEST(ThrowBalls, OneChoicePredictionHolds) {
  constexpr std::uint32_t kBins = 200;
  constexpr std::uint64_t kBalls = 20000;
  Rng rng(9);
  const double predicted = predicted_max_load_one_choice(kBalls, kBins);
  for (int t = 0; t < 5; ++t) {
    EXPECT_LE(static_cast<double>(max_occupancy(kBalls, kBins, 1, rng)),
              predicted * 1.1);
  }
}

TEST(TwoChoiceGap, FormulaValues) {
  // lnln(1000)/ln(3) ≈ 1.7588 — the k (sans constant) of the paper's Eq. 8
  // at its simulated n = 1000, d = 3.
  EXPECT_NEAR(two_choice_gap(1000, 3), 1.7588, 1e-3);
  EXPECT_NEAR(two_choice_gap(1000, 2), std::log(std::log(1000.0)) /
                                           std::log(2.0), 1e-12);
}

TEST(TwoChoiceGap, DecreasesWithMoreChoices) {
  EXPECT_GT(two_choice_gap(10000, 2), two_choice_gap(10000, 3));
  EXPECT_GT(two_choice_gap(10000, 3), two_choice_gap(10000, 5));
}

TEST(TwoChoiceGap, PaperClaimGapUnderTwoForRealClusters) {
  // "lnln n / ln d < 2 holds for almost all current clusters (n < 1e5,
  //  d >= 3)" — the paper's O(n) headline. Taken literally with natural
  // logs the claim only holds up to n ≈ 8100 (at n = 1e5 the gap is 2.22);
  // we assert the strict form where it is true and the mild overshoot at
  // the paper's stated boundary.
  for (std::uint32_t n : {100u, 1000u, 8000u}) {
    EXPECT_LT(two_choice_gap(n, 3), 2.0) << "n=" << n;
  }
  EXPECT_LT(two_choice_gap(99999, 3), 2.25);
}

TEST(TwoChoiceGap, RejectsDegenerateInputs) {
  EXPECT_DEATH(two_choice_gap(2, 2), "n >= 3");
  EXPECT_DEATH(two_choice_gap(1000, 1), "d >= 2");
}

TEST(ThrowBalls, RejectsMoreChoicesThanBins) {
  Rng rng(10);
  EXPECT_DEATH(throw_balls(10, 4, 5, rng), "choices");
}

}  // namespace
}  // namespace scp
