#include "common/histogram.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scp {
namespace {

TEST(LogHistogram, EmptyHistogram) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.value_at_quantile(0.5), 0u);
}

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h(5);  // linear region covers [0, 64)
  for (std::uint64_t v = 0; v < 60; ++v) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 60u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 59u);
  EXPECT_EQ(h.value_at_quantile(0.0), 0u);
  EXPECT_EQ(h.value_at_quantile(1.0), 59u);
}

TEST(LogHistogram, MeanIsExact) {
  LogHistogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LogHistogram, RecordNWeightsCorrectly) {
  LogHistogram h;
  h.record_n(5, 100);
  h.record_n(10, 0);  // no-op
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(LogHistogram, QuantileWithinRelativeError) {
  LogHistogram h(7);  // 2^-7 < 1% relative error
  Rng rng(1);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t v = 1 + rng.uniform_u64(1000000);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const std::uint64_t approx = h.value_at_quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.03 * static_cast<double>(exact))
        << "q=" << q;
  }
}

TEST(LogHistogram, QuantileNeverExceedsMax) {
  LogHistogram h(3);
  h.record(1000000);
  h.record(3);
  EXPECT_LE(h.value_at_quantile(1.0), 1000000u);
  EXPECT_EQ(h.max(), 1000000u);
}

TEST(LogHistogram, MergeCombinesCounts) {
  LogHistogram a(5);
  LogHistogram b(5);
  a.record(10);
  a.record(100);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(LogHistogram, MergeIntoEmpty) {
  LogHistogram a(5);
  LogHistogram b(5);
  b.record(7);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7u);
}

TEST(LogHistogram, LargeValuesDoNotCrash) {
  LogHistogram h(5);
  h.record(~0ULL);
  h.record(1ULL << 63);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ULL);
}

TEST(LogHistogram, SummaryMentionsCount) {
  LogHistogram h;
  h.record(42);
  EXPECT_NE(h.summary().find("count=1"), std::string::npos);
}

class HistogramPrecisionTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(HistogramPrecisionTest, RelativeErrorBoundHolds) {
  const unsigned precision = GetParam();
  LogHistogram h(precision);
  // Record one value and read back the p100 quantile; the bucket's upper
  // bound must be within 2^-precision relative error.
  const std::uint64_t value = 123456789;
  h.record(value);
  const std::uint64_t readback = h.value_at_quantile(1.0);
  const double rel_err =
      std::abs(static_cast<double>(readback) - static_cast<double>(value)) /
      static_cast<double>(value);
  EXPECT_LE(rel_err, 1.0 / static_cast<double>(1u << precision));
}

INSTANTIATE_TEST_SUITE_P(Precisions, HistogramPrecisionTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace scp
