#include "common/histogram.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scp {
namespace {

TEST(LogHistogram, EmptyHistogram) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.value_at_quantile(0.5), 0u);
}

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h(5);  // linear region covers [0, 64)
  for (std::uint64_t v = 0; v < 60; ++v) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 60u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 59u);
  EXPECT_EQ(h.value_at_quantile(0.0), 0u);
  EXPECT_EQ(h.value_at_quantile(1.0), 59u);
}

TEST(LogHistogram, MeanIsExact) {
  LogHistogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LogHistogram, RecordNWeightsCorrectly) {
  LogHistogram h;
  h.record_n(5, 100);
  h.record_n(10, 0);  // no-op
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(LogHistogram, QuantileWithinRelativeError) {
  LogHistogram h(7);  // 2^-7 < 1% relative error
  Rng rng(1);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t v = 1 + rng.uniform_u64(1000000);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const std::uint64_t approx = h.value_at_quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                0.03 * static_cast<double>(exact))
        << "q=" << q;
  }
}

TEST(LogHistogram, QuantileNeverExceedsMax) {
  LogHistogram h(3);
  h.record(1000000);
  h.record(3);
  EXPECT_LE(h.value_at_quantile(1.0), 1000000u);
  EXPECT_EQ(h.max(), 1000000u);
}

TEST(LogHistogram, MergeCombinesCounts) {
  LogHistogram a(5);
  LogHistogram b(5);
  a.record(10);
  a.record(100);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(LogHistogram, MergeIntoEmpty) {
  LogHistogram a(5);
  LogHistogram b(5);
  b.record(7);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7u);
}

TEST(LogHistogram, MergeMismatchedPrecisionRescales) {
  // Coarse histogram absorbs a fine one: every sample must survive with at
  // most the coarse histogram's relative error, and exact aggregates (count,
  // min, max, mean) must be preserved exactly.
  LogHistogram coarse(2);
  LogHistogram fine(8);
  Rng rng(42);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = 1 + rng.uniform_u64(1000000);
    values.push_back(v);
    fine.record(v);
  }
  coarse.record(500);
  values.push_back(500);
  coarse.merge(fine);

  EXPECT_EQ(coarse.count(), values.size());
  std::sort(values.begin(), values.end());
  EXPECT_EQ(coarse.min(), values.front());
  EXPECT_EQ(coarse.max(), values.back());
  double sum = 0.0;
  for (const std::uint64_t v : values) sum += static_cast<double>(v);
  EXPECT_DOUBLE_EQ(coarse.mean(), sum / static_cast<double>(values.size()));
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    EXPECT_NEAR(static_cast<double>(coarse.value_at_quantile(q)),
                static_cast<double>(exact),
                0.30 * static_cast<double>(exact))  // precision 2: 25% buckets
        << "q=" << q;
  }
}

TEST(LogHistogram, MergeFineAbsorbsCoarseWithinCoarseError) {
  LogHistogram fine(8);
  LogHistogram coarse(2);
  coarse.record(1000);
  fine.merge(coarse);
  EXPECT_EQ(fine.count(), 1u);
  EXPECT_EQ(fine.min(), 1000u);
  EXPECT_EQ(fine.max(), 1000u);
  // The single sample sits in a coarse bucket whose representative value is
  // within the coarse precision's relative error.
  EXPECT_NEAR(static_cast<double>(fine.value_at_quantile(0.5)), 1000.0,
              0.30 * 1000.0);
}

TEST(LogHistogram, MergeMismatchedIsMassPreservingBothWays) {
  for (const auto& [pa, pb] : {std::pair<unsigned, unsigned>{3u, 6u},
                              std::pair<unsigned, unsigned>{6u, 3u}}) {
    LogHistogram a(pa);
    LogHistogram b(pb);
    Rng rng(7);
    for (int i = 0; i < 500; ++i) a.record(1 + rng.uniform_u64(10000));
    for (int i = 0; i < 700; ++i) b.record(1 + rng.uniform_u64(10000));
    const std::uint64_t expect_min = std::min(a.min(), b.min());
    const std::uint64_t expect_max = std::max(a.max(), b.max());
    a.merge(b);
    EXPECT_EQ(a.count(), 1200u);
    EXPECT_EQ(a.min(), expect_min);
    EXPECT_EQ(a.max(), expect_max);
  }
}

TEST(LogHistogram, QuantileEdgeCases) {
  // Empty: every quantile is 0.
  LogHistogram empty(5);
  EXPECT_EQ(empty.value_at_quantile(0.0), 0u);
  EXPECT_EQ(empty.value_at_quantile(1.0), 0u);

  // Single sample: every quantile returns that sample (it is exact in the
  // linear region).
  LogHistogram single(5);
  single.record(37);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(single.value_at_quantile(q), 37u) << "q=" << q;
  }

  // Single bucket, many samples: quantiles never leave the bucket.
  LogHistogram repeated(5);
  repeated.record_n(1000, 12345);
  const std::uint64_t q0 = repeated.value_at_quantile(0.0);
  const std::uint64_t q1 = repeated.value_at_quantile(1.0);
  EXPECT_EQ(q0, q1);
  EXPECT_NEAR(static_cast<double>(q0), 1000.0, 1000.0 / 32.0);

  // q=0 vs q=1 bracket the recorded range.
  LogHistogram spread(5);
  spread.record(10);
  spread.record(1000000);
  EXPECT_LE(spread.value_at_quantile(0.0), spread.value_at_quantile(1.0));
  EXPECT_LE(spread.value_at_quantile(1.0), spread.max());
}

TEST(LogHistogram, FromBucketsRoundTrips) {
  LogHistogram h(6);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) h.record(1 + rng.uniform_u64(1u << 20));
  const auto buckets = h.nonzero_buckets();
  const auto rebuilt =
      LogHistogram::from_buckets(6, buckets, h.min(), h.max(), h.sum());
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(*rebuilt, h);
  EXPECT_EQ(rebuilt->count(), h.count());
  EXPECT_EQ(rebuilt->value_at_quantile(0.99), h.value_at_quantile(0.99));
}

TEST(LogHistogram, FromBucketsRejectsMalformedInput) {
  using Buckets = std::vector<std::pair<std::uint32_t, std::uint64_t>>;
  const Buckets one = {{3, 5}};
  // Invalid precision.
  EXPECT_FALSE(LogHistogram::from_buckets(0, one, 1, 2, 3.0).has_value());
  EXPECT_FALSE(LogHistogram::from_buckets(11, one, 1, 2, 3.0).has_value());
  // Non-ascending indices.
  const Buckets unsorted = {{5, 1}, {2, 1}};
  EXPECT_FALSE(LogHistogram::from_buckets(5, unsorted, 1, 2, 3.0).has_value());
  // Zero-count bucket.
  const Buckets zero = {{3, 0}};
  EXPECT_FALSE(LogHistogram::from_buckets(5, zero, 1, 2, 3.0).has_value());
  // min > max.
  EXPECT_FALSE(LogHistogram::from_buckets(5, one, 9, 2, 3.0).has_value());
  // Non-finite sum.
  EXPECT_FALSE(LogHistogram::from_buckets(
                   5, one, 1, 2, std::numeric_limits<double>::infinity())
                   .has_value());
  // Empty histogram must have zeroed aggregates.
  const Buckets none;
  EXPECT_TRUE(LogHistogram::from_buckets(5, none, 0, 0, 0.0).has_value());
  EXPECT_FALSE(LogHistogram::from_buckets(5, none, 1, 2, 3.0).has_value());
}

TEST(LogHistogram, LargeValuesDoNotCrash) {
  LogHistogram h(5);
  h.record(~0ULL);
  h.record(1ULL << 63);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ULL);
}

TEST(LogHistogram, SummaryMentionsCount) {
  LogHistogram h;
  h.record(42);
  EXPECT_NE(h.summary().find("count=1"), std::string::npos);
}

class HistogramPrecisionTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(HistogramPrecisionTest, RelativeErrorBoundHolds) {
  const unsigned precision = GetParam();
  LogHistogram h(precision);
  // Record one value and read back the p100 quantile; the bucket's upper
  // bound must be within 2^-precision relative error.
  const std::uint64_t value = 123456789;
  h.record(value);
  const std::uint64_t readback = h.value_at_quantile(1.0);
  const double rel_err =
      std::abs(static_cast<double>(readback) - static_cast<double>(value)) /
      static_cast<double>(value);
  EXPECT_LE(rel_err, 1.0 / static_cast<double>(1u << precision));
}

INSTANTIATE_TEST_SUITE_P(Precisions, HistogramPrecisionTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace scp
