#include <gtest/gtest.h>

#include "sim/runner.h"
#include "sim/scenario.h"

namespace scp {
namespace {

ScenarioConfig small_scenario(std::uint64_t cache_size) {
  ScenarioConfig config;
  config.params.nodes = 100;
  config.params.replication = 3;
  config.params.items = 10000;
  config.params.cache_size = cache_size;
  config.params.query_rate = 10000.0;
  return config;
}

TEST(Scenario, GainTrialIsDeterministic) {
  const ScenarioConfig config = small_scenario(50);
  const auto d = QueryDistribution::uniform_over(51, 10000);
  EXPECT_DOUBLE_EQ(gain_trial(config, d, 42), gain_trial(config, d, 42));
  // Cross-seed difference: use a continuous-valued workload (Zipf). The
  // x = c+1 attack gain is quantized to multiples of n/x, so distinct seeds
  // can collide on it legitimately.
  const auto zipf = QueryDistribution::zipf(10000, 1.01);
  EXPECT_NE(gain_trial(config, zipf, 42), gain_trial(config, zipf, 43));
}

TEST(Scenario, AdversarialTrialMatchesExplicitDistribution) {
  const ScenarioConfig config = small_scenario(50);
  const auto d = QueryDistribution::uniform_over(51, 10000);
  EXPECT_DOUBLE_EQ(adversarial_gain_trial(config, 51, 9),
                   gain_trial(config, d, 9));
}

TEST(Scenario, SmallCacheAttackIsEffective) {
  // x = c+1 against c far below c*: one uncached key carries R/(c+1), far
  // above the even-spread load.
  const ScenarioConfig config = small_scenario(50);
  const double gain = adversarial_gain_trial(config, 51, 1);
  EXPECT_GT(gain, 1.5);
}

TEST(Scenario, LargeCacheFullSweepIsIneffective) {
  // c above c* ≈ n·(lnln n/ln d + k')+1 ≈ 230 for n=100, d=3: querying the
  // whole key space cannot push any node above the even-spread load.
  const ScenarioConfig config = small_scenario(400);
  const double gain = adversarial_gain_trial(config, 10000, 1);
  EXPECT_LT(gain, 1.0);
}

TEST(Scenario, MeasureGainAggregatesTrials) {
  const ScenarioConfig config = small_scenario(50);
  const GainStatistics stats = measure_adversarial_gain(config, 51, 8, 4);
  EXPECT_EQ(stats.summary.count, 8u);
  EXPECT_DOUBLE_EQ(stats.max_gain, stats.summary.max);
  EXPECT_GE(stats.summary.max, stats.summary.mean);
  EXPECT_GE(stats.summary.mean, stats.summary.min);
}

TEST(Scenario, MismatchedDistributionSizeDies) {
  const ScenarioConfig config = small_scenario(50);
  const auto wrong = QueryDistribution::uniform(999);
  EXPECT_DEATH(gain_trial(config, wrong, 1), "match");
}

TEST(Scenario, WorksWithEveryPartitioner) {
  for (const char* kind : {"hash", "ring", "rendezvous"}) {
    ScenarioConfig config = small_scenario(50);
    config.partitioner = kind;
    const double gain = adversarial_gain_trial(config, 51, 2);
    EXPECT_GT(gain, 1.0) << kind;
  }
}

TEST(ExperimentRunner, RunsRequestedTrials) {
  const ExperimentRunner runner(7, 5);
  int calls = 0;
  const auto values = runner.run([&](std::uint64_t) {
    ++calls;
    return 1.0;
  });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(values.size(), 5u);
}

TEST(ExperimentRunner, TrialSeedsAreDistinctAndStable) {
  const ExperimentRunner runner(7, 10);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(runner.trial_seed(i), ExperimentRunner(7, 10).trial_seed(i));
    for (std::uint32_t j = i + 1; j < 10; ++j) {
      EXPECT_NE(runner.trial_seed(i), runner.trial_seed(j));
    }
  }
}

TEST(ExperimentRunner, SummaryMatchesRawValues) {
  const ExperimentRunner runner(3, 4);
  const Summary s = runner.run_summary(
      [](std::uint64_t seed) { return static_cast<double>(seed % 7); });
  EXPECT_EQ(s.count, 4u);
  EXPECT_GE(s.max, s.mean);
}

TEST(ExperimentRunner, SeedsDifferAcrossBaseSeeds) {
  EXPECT_NE(ExperimentRunner(1, 2).trial_seed(0),
            ExperimentRunner(2, 2).trial_seed(0));
}

TEST(ExperimentRunner, ParallelMatchesSerialBitForBit) {
  const ScenarioConfig config = small_scenario(50);
  const auto zipf = QueryDistribution::zipf(10000, 1.01);
  const auto trial = [&](std::uint64_t seed) {
    return gain_trial(config, zipf, seed);
  };
  const auto serial = ExperimentRunner(5, 12, {}, 1).run(trial);
  const auto parallel = ExperimentRunner(5, 12, {}, 4).run(trial);
  EXPECT_EQ(serial, parallel);
}

TEST(ExperimentRunner, ParallelEightThreadsMatchesSerialBitForBit) {
  const ScenarioConfig config = small_scenario(50);
  const auto zipf = QueryDistribution::zipf(10000, 1.01);
  const auto trial = [&](std::uint64_t seed) {
    return gain_trial(config, zipf, seed);
  };
  const auto serial = ExperimentRunner(5, 16, {}, 1).run(trial);
  const auto parallel = ExperimentRunner(5, 16, {}, 8).run(trial);
  EXPECT_EQ(serial, parallel);
}

TEST(ExperimentRunner, RunIndexedPassesIndexAndSeed) {
  const ExperimentRunner runner(9, 6);
  std::vector<std::uint32_t> indices;
  const auto values =
      runner.run_indexed([&](std::uint32_t index, std::uint64_t seed) {
        indices.push_back(index);
        EXPECT_EQ(seed, runner.trial_seed(index));
        return static_cast<double>(index);
      });
  EXPECT_EQ(indices, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(values[i], static_cast<double>(i));
  }
}

TEST(ExperimentRunner, RunIndexedParallelWritesByTrialIndex) {
  const ExperimentRunner runner(9, 32, {}, 8);
  const auto values = runner.run_indexed(
      [](std::uint32_t index, std::uint64_t) {
        return static_cast<double>(index) * 2.0;
      });
  ASSERT_EQ(values.size(), 32u);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(values[i], static_cast<double>(i) * 2.0) << i;
  }
}

TEST(ExperimentRunner, ParallelRunEmitsFinalSummaryLine) {
  const ExperimentRunner runner(9, 8, "sweep", 4);
  testing::internal::CaptureStderr();
  runner.run([](std::uint64_t) { return 0.0; });
  const std::string log = testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("sweep: 8/8 trials (parallel, 4 threads)"),
            std::string::npos)
      << log;
}

TEST(ExperimentRunner, SerialRunReportsFinalTrial) {
  // trials not divisible by the 25% cadence still log the last trial.
  const ExperimentRunner runner(9, 7, "sweep");
  testing::internal::CaptureStderr();
  runner.run([](std::uint64_t) { return 0.0; });
  const std::string log = testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("sweep: 7/7 trials"), std::string::npos) << log;
}

TEST(ExperimentRunner, MoreThreadsThanTrialsIsFine) {
  const ExperimentRunner runner(3, 2, {}, 16);
  const auto values =
      runner.run([](std::uint64_t seed) { return static_cast<double>(seed); });
  EXPECT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], static_cast<double>(runner.trial_seed(0)));
  EXPECT_DOUBLE_EQ(values[1], static_cast<double>(runner.trial_seed(1)));
}

TEST(ExperimentRunner, RejectsZeroThreads) {
  EXPECT_DEATH(ExperimentRunner(1, 1, {}, 0), "thread");
}

}  // namespace
}  // namespace scp
