#include "sim/event_sim.h"

#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "cache/lru_cache.h"
#include "cache/perfect_cache.h"
#include "cluster/cluster.h"
#include "sim/obs_export.h"

namespace scp {
namespace {

EventSimConfig config_with(double rate, double duration,
                           std::uint64_t queue_capacity = 1000,
                           std::uint64_t seed = 1) {
  EventSimConfig c;
  c.query_rate = rate;
  c.duration_s = duration;
  c.queue_capacity = queue_capacity;
  c.seed = seed;
  return c;
}

TEST(EventSim, ConservesQueries) {
  const auto d = QueryDistribution::zipf(1000, 1.01);
  Cluster cluster(make_partitioner("hash", 20, 3, 7), /*capacity=*/100.0);
  PerfectCache cache(50, d);
  auto selector = make_selector("least-loaded");
  const EventSimResult r = simulate_events(cluster, cache, d, *selector,
                                           config_with(5000.0, 1.0));
  EXPECT_EQ(r.total_queries, r.cache_hits + r.backend_arrivals);
  const std::uint64_t node_total = std::accumulate(
      r.node_arrivals.begin(), r.node_arrivals.end(), std::uint64_t{0});
  EXPECT_EQ(node_total, r.backend_arrivals);
}

TEST(EventSim, CacheHitRatioTracksHeadMass) {
  const auto d = QueryDistribution::zipf(1000, 1.01);
  Cluster cluster(make_partitioner("hash", 20, 3, 7), 1000.0);
  PerfectCache cache(100, d);
  auto selector = make_selector("least-loaded");
  const EventSimResult r = simulate_events(cluster, cache, d, *selector,
                                           config_with(20000.0, 1.0));
  EXPECT_NEAR(r.cache_hit_ratio, d.head_mass(100), 0.02);
}

TEST(EventSim, ExportsLiveTierMetricNames) {
  // The obs export must speak the live servers' vocabulary so a simulated
  // run diffs directly against a scraped one.
  const auto d = QueryDistribution::zipf(1000, 1.01);
  Cluster cluster(make_partitioner("hash", 20, 3, 7), 100.0);
  PerfectCache cache(50, d);
  auto selector = make_selector("least-loaded");
  const EventSimResult r = simulate_events(cluster, cache, d, *selector,
                                           config_with(5000.0, 1.0));
  const obs::MetricsSnapshot snap = event_sim_metrics(r);
  EXPECT_EQ(snap.counters.at("frontend.requests"), r.total_queries);
  EXPECT_EQ(snap.counters.at("frontend.hits"), r.cache_hits);
  EXPECT_EQ(snap.counters.at("frontend.misses"),
            r.total_queries - r.cache_hits);
  EXPECT_EQ(snap.counters.at("backend.requests"), r.backend_arrivals);
  EXPECT_EQ(snap.counters.at("frontend.failures"), r.dropped + r.unserved);
  EXPECT_EQ(snap.gauges.at("frontend.backends_up"),
            static_cast<std::int64_t>(r.min_alive_nodes));
  ASSERT_EQ(snap.timers.count("frontend.request_us"), 1u);
  EXPECT_EQ(snap.timers.at("frontend.request_us").count(), r.wait_us.count());
  // Accounting identity carried over: requests == hits + forwarded +
  // failures, the same invariant the live front end's counters satisfy.
  EXPECT_EQ(snap.counters.at("frontend.requests"),
            snap.counters.at("frontend.hits") +
                snap.counters.at("frontend.forwarded") +
                snap.counters.at("frontend.failures"));
}

TEST(EventSim, NoDropsWhenUnderloaded) {
  const auto d = QueryDistribution::uniform(1000);
  // 2000 qps over 20 nodes = 100 avg; capacity 400 → comfortable.
  Cluster cluster(make_partitioner("hash", 20, 3, 3), 400.0);
  PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  const EventSimResult r = simulate_events(cluster, cache, d, *selector,
                                           config_with(2000.0, 2.0, 100));
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_DOUBLE_EQ(r.drop_ratio, 0.0);
}

TEST(EventSim, DropsWhenOverloaded) {
  // Aggregate rate far above aggregate capacity with small queues: drops
  // are inevitable.
  const auto d = QueryDistribution::uniform(1000);
  Cluster cluster(make_partitioner("hash", 10, 2, 3), 50.0);
  PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  const EventSimResult r = simulate_events(cluster, cache, d, *selector,
                                           config_with(5000.0, 1.0, 20));
  EXPECT_GT(r.dropped, 0u);
  EXPECT_GT(r.drop_ratio, 0.5);
}

TEST(EventSim, HotspotAttackDropsOnlyWithSmallCache) {
  // The paper's story at the request level: adversarial pattern with c+1
  // keys saturates one replica unless the cache absorbs the head.
  const std::uint64_t m = 10000;
  const std::uint64_t c = 50;
  const auto attack = QueryDistribution::uniform_over(c + 1, m);
  auto selector = make_selector("least-loaded");

  Cluster victim(make_partitioner("hash", 50, 3, 5), 100.0);
  PerfectCache no_cache(0, attack);
  const EventSimResult hit = simulate_events(
      victim, no_cache, attack, *selector, config_with(10000.0, 1.0, 50));

  Cluster protected_cluster(make_partitioner("hash", 50, 3, 5), 100.0);
  PerfectCache cache(c, attack);
  const EventSimResult safe =
      simulate_events(protected_cluster, cache, attack, *selector,
                      config_with(10000.0, 1.0, 50));

  // Offered 2x aggregate capacity: after queues (50 nodes x 50 slots)
  // absorb the transient, roughly a quarter of the 1 s horizon's queries
  // must drop.
  EXPECT_GT(hit.drop_ratio, 0.2);
  EXPECT_LT(safe.drop_ratio, hit.drop_ratio / 2);
}

TEST(EventSim, WaitGrowsWithUtilization) {
  const auto d = QueryDistribution::uniform(1000);
  auto selector = make_selector("least-loaded");

  Cluster light(make_partitioner("hash", 10, 2, 9), 1000.0);
  PerfectCache cache(0, d);
  const EventSimResult low = simulate_events(light, cache, d, *selector,
                                             config_with(2000.0, 1.0));

  Cluster heavy(make_partitioner("hash", 10, 2, 9), 1000.0);
  const EventSimResult high = simulate_events(heavy, cache, d, *selector,
                                              config_with(9000.0, 1.0));
  EXPECT_GT(high.wait_us.mean(), low.wait_us.mean());
}

TEST(EventSim, DeterministicGivenSeed) {
  const auto d = QueryDistribution::zipf(500, 1.1);
  auto run = [&] {
    Cluster cluster(make_partitioner("hash", 10, 2, 4), 500.0);
    PerfectCache cache(20, d);
    auto selector = make_selector("least-loaded");
    return simulate_events(cluster, cache, d, *selector,
                           config_with(3000.0, 1.0, 100, 77));
  };
  const EventSimResult a = run();
  const EventSimResult b = run();
  EXPECT_EQ(a.total_queries, b.total_queries);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.node_arrivals, b.node_arrivals);
}

TEST(EventSim, WorksWithRealEvictionPolicies) {
  const auto d = QueryDistribution::zipf(2000, 1.01);
  Cluster cluster(make_partitioner("hash", 10, 2, 8), 2000.0);
  LruCache cache(100);
  auto selector = make_selector("random");
  const EventSimResult r = simulate_events(cluster, cache, d, *selector,
                                           config_with(10000.0, 1.0));
  EXPECT_GT(r.cache_hit_ratio, 0.1);  // LRU catches a decent head fraction
  EXPECT_EQ(r.total_queries, r.cache_hits + r.backend_arrivals);
}

TEST(EventSim, UnlimitedCapacityNodesNeverQueue) {
  const auto d = QueryDistribution::uniform(100);
  Cluster cluster(make_partitioner("hash", 5, 2, 2));  // no capacity limit
  PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  const EventSimResult r = simulate_events(cluster, cache, d, *selector,
                                           config_with(10000.0, 0.5));
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.wait_us.max(), 0u);
}

TEST(EventSim, IndexedFastPathBitIdenticalToLegacy) {
  const auto d = QueryDistribution::zipf(2000, 1.05);
  const auto partitioner = make_partitioner("ring", 20, 3, 6);
  const PlacementIndex index(*partitioner, 2000);
  EventSimScratch scratch;
  for (const char* selector_kind : {"least-loaded", "random", "pinned"}) {
    Cluster legacy_cluster(make_partitioner("ring", 20, 3, 6), 500.0);
    Cluster fast_cluster(make_partitioner("ring", 20, 3, 6), 500.0);
    PerfectCache cache(100, d);
    auto legacy_selector = make_selector(selector_kind);
    auto fast_selector = make_selector(selector_kind);
    const EventSimConfig config = config_with(5000.0, 1.0, 50, 9);
    const EventSimResult legacy = simulate_events(
        legacy_cluster, cache, d, *legacy_selector, config);
    const EventSimResult fast = simulate_events(
        fast_cluster, cache, d, *fast_selector, config, &index, &scratch);
    EXPECT_EQ(fast.node_arrivals, legacy.node_arrivals) << selector_kind;
    EXPECT_EQ(fast.total_queries, legacy.total_queries) << selector_kind;
    EXPECT_EQ(fast.cache_hits, legacy.cache_hits) << selector_kind;
    EXPECT_EQ(fast.dropped, legacy.dropped) << selector_kind;
    EXPECT_EQ(fast.normalized_max_arrivals, legacy.normalized_max_arrivals)
        << selector_kind;
  }
}

TEST(EventSim, ArrivalImbalanceReflectsAttack) {
  // Single uncached hot key → only its replica group (3 of 20 nodes) gets
  // traffic. With idle queues, least-loaded tie-breaks spread it evenly over
  // the group, so max/mean ≈ n/d.
  const auto d = QueryDistribution::uniform_over(1, 100);
  Cluster cluster(make_partitioner("hash", 20, 3, 6), 1e6);
  PerfectCache cache(0, d);
  auto selector = make_selector("least-loaded");
  const EventSimResult r = simulate_events(cluster, cache, d, *selector,
                                           config_with(5000.0, 1.0));
  std::uint32_t loaded_nodes = 0;
  for (const std::uint64_t arrivals : r.node_arrivals) {
    loaded_nodes += arrivals > 0 ? 1 : 0;
  }
  EXPECT_EQ(loaded_nodes, 3u);
  EXPECT_NEAR(r.arrival_metrics.max_over_mean, 20.0 / 3.0, 0.7);
  EXPECT_NEAR(r.normalized_max_arrivals, 20.0 / 3.0, 0.7);
}

}  // namespace
}  // namespace scp
