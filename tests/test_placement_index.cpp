#include "cluster/placement_index.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cache/perfect_cache.h"
#include "cluster/cluster.h"
#include "sim/rate_sim.h"
#include "workload/distribution.h"

namespace scp {
namespace {

TEST(PlacementIndex, MatchesPartitionerForEveryKind) {
  for (const char* kind : {"hash", "ring", "rendezvous"}) {
    const auto partitioner = make_partitioner(kind, 50, 3, 42);
    const PlacementIndex index(*partitioner, 2000);
    ASSERT_TRUE(index.materialized()) << kind;
    EXPECT_EQ(index.keys(), 2000u);
    EXPECT_EQ(index.replication(), 3u);
    EXPECT_EQ(index.node_count(), 50u);
    std::vector<NodeId> expected(3);
    std::vector<NodeId> got(3);
    for (KeyId key = 0; key < 2000; ++key) {
      partitioner->replica_group(key, std::span<NodeId>(expected));
      index.fill_group(key, std::span<NodeId>(got));
      ASSERT_EQ(got, expected) << kind << " key " << key;
      const NodeId* row = index.group(key);
      for (std::size_t r = 0; r < 3; ++r) {
        ASSERT_EQ(row[r], expected[r]) << kind << " key " << key;
      }
    }
  }
}

TEST(PlacementIndex, OverBudgetFallsBackToPartitioner) {
  const auto partitioner = make_partitioner("hash", 50, 3, 42);
  const std::uint64_t keys = 2000;
  // One byte short of the table: must stay unmaterialized but still answer.
  const PlacementIndex index(*partitioner, keys,
                             PlacementIndex::table_bytes(keys, 3) - 1);
  EXPECT_FALSE(index.materialized());
  EXPECT_EQ(index.memory_bytes(), 0u);
  std::vector<NodeId> expected(3);
  std::vector<NodeId> got(3);
  for (KeyId key = 0; key < keys; key += 97) {
    partitioner->replica_group(key, std::span<NodeId>(expected));
    index.fill_group(key, std::span<NodeId>(got));
    ASSERT_EQ(got, expected) << key;
  }
}

TEST(PlacementIndex, TableBytesIsExact) {
  EXPECT_EQ(PlacementIndex::table_bytes(1000, 3), 1000u * 3 * sizeof(NodeId));
  const auto partitioner = make_partitioner("hash", 10, 2, 1);
  const PlacementIndex index(*partitioner, 100);
  EXPECT_EQ(index.memory_bytes(), PlacementIndex::table_bytes(100, 2));
}

// --- fast path ≡ legacy path ---------------------------------------------

struct FastPathCase {
  const char* partitioner;
  const char* selector;
};

RateSimResult legacy_run(const char* partitioner_kind,
                         const char* selector_kind,
                         const QueryDistribution& d, std::uint64_t cache_size,
                         std::uint64_t seed) {
  Cluster cluster(make_partitioner(partitioner_kind, 40, 3, 7));
  const PerfectCache cache(cache_size, d);
  auto selector = make_selector(selector_kind);
  RateSimConfig config;
  config.query_rate = 5000.0;
  config.seed = seed;
  return simulate_rates(cluster, cache, d, *selector, config);
}

RateSimResult fast_run(const char* partitioner_kind, const char* selector_kind,
                       const QueryDistribution& d, std::uint64_t cache_size,
                       std::uint64_t seed, const PlacementIndex* index,
                       RateSimScratch* scratch) {
  Cluster cluster(make_partitioner(partitioner_kind, 40, 3, 7));
  const PerfectCache cache(cache_size, d);
  auto selector = make_selector(selector_kind);
  RateSimConfig config;
  config.query_rate = 5000.0;
  config.seed = seed;
  return simulate_rates(cluster, cache, d, *selector, config, index, scratch);
}

TEST(RateSimFastPath, BitIdenticalToLegacyAcrossPartitionersAndSelectors) {
  const auto d = QueryDistribution::zipf(3000, 1.05);
  for (const char* partitioner_kind : {"hash", "ring", "rendezvous"}) {
    const auto partitioner = make_partitioner(partitioner_kind, 40, 3, 7);
    const PlacementIndex index(*partitioner, 3000);
    RateSimScratch scratch;
    for (const char* selector_kind :
         {"least-loaded", "random", "round-robin", "pinned"}) {
      for (std::uint64_t seed : {1ull, 99ull, 424242ull}) {
        const RateSimResult legacy =
            legacy_run(partitioner_kind, selector_kind, d, 100, seed);
        const RateSimResult fast = fast_run(partitioner_kind, selector_kind, d,
                                            100, seed, &index, &scratch);
        ASSERT_EQ(fast.node_loads, legacy.node_loads)
            << partitioner_kind << "/" << selector_kind << " seed " << seed;
        ASSERT_EQ(fast.normalized_max_load, legacy.normalized_max_load)
            << partitioner_kind << "/" << selector_kind << " seed " << seed;
        ASSERT_EQ(fast.cache_rate, legacy.cache_rate);
        ASSERT_EQ(fast.backend_rate, legacy.backend_rate);
        ASSERT_EQ(fast.metrics.max, legacy.metrics.max);
      }
    }
  }
}

TEST(RateSimFastPath, UnmaterializedIndexStillBitIdentical) {
  const auto d = QueryDistribution::uniform_over(500, 3000);
  const auto partitioner = make_partitioner("ring", 40, 3, 7);
  const PlacementIndex index(*partitioner, 3000, /*memory_budget_bytes=*/0);
  ASSERT_FALSE(index.materialized());
  RateSimScratch scratch;
  const RateSimResult legacy = legacy_run("ring", "least-loaded", d, 100, 5);
  const RateSimResult fast =
      fast_run("ring", "least-loaded", d, 100, 5, &index, &scratch);
  EXPECT_EQ(fast.node_loads, legacy.node_loads);
  EXPECT_EQ(fast.normalized_max_load, legacy.normalized_max_load);
}

TEST(RateSimFastPath, NullIndexAndScratchMatchLegacy) {
  const auto d = QueryDistribution::zipf(1000, 1.1);
  const RateSimResult legacy = legacy_run("hash", "least-loaded", d, 50, 3);
  const RateSimResult fast =
      fast_run("hash", "least-loaded", d, 50, 3, nullptr, nullptr);
  EXPECT_EQ(fast.node_loads, legacy.node_loads);
}

TEST(RateSimFastPath, ScratchReuseAcrossConfigsStaysCorrect) {
  // Same scratch across different supports, seeds and cache sizes — the
  // memoized shuffle must never leak one run's order into another.
  RateSimScratch scratch;
  const auto partitioner = make_partitioner("hash", 40, 3, 7);
  const PlacementIndex index(*partitioner, 3000);
  const auto a = QueryDistribution::uniform_over(101, 3000);
  const auto b = QueryDistribution::uniform_over(2500, 3000);
  const std::uint64_t seeds[] = {1, 2, 1, 3, 1};
  for (const std::uint64_t seed : seeds) {
    for (const auto* d : {&a, &b}) {
      for (const std::uint64_t c : {0ull, 100ull}) {
        const RateSimResult legacy =
            legacy_run("hash", "least-loaded", *d, c, seed);
        const RateSimResult fast = fast_run("hash", "least-loaded", *d, c,
                                            seed, &index, &scratch);
        ASSERT_EQ(fast.node_loads, legacy.node_loads)
            << "support " << d->size() << " seed " << seed << " c " << c;
      }
    }
  }
}

TEST(RateSimFastPath, MemoizedShuffleHitIsBitIdentical) {
  // Second call with the same (seed, support) takes the memoized-order path;
  // it must reproduce the fresh-shuffle run exactly (RNG state restored).
  RateSimScratch scratch;
  const auto partitioner = make_partitioner("hash", 40, 3, 7);
  const PlacementIndex index(*partitioner, 3000);
  const auto d = QueryDistribution::uniform_over(700, 3000);
  const RateSimResult first =
      fast_run("hash", "least-loaded", d, 100, 11, &index, &scratch);
  ASSERT_TRUE(scratch.has_order);
  const RateSimResult second =
      fast_run("hash", "least-loaded", d, 100, 11, &index, &scratch);
  EXPECT_EQ(first.node_loads, second.node_loads);
  // And both match a scratch-free legacy run.
  const RateSimResult legacy = legacy_run("hash", "least-loaded", d, 100, 11);
  EXPECT_EQ(second.node_loads, legacy.node_loads);
}

// --- PerfectCache prefix contract ----------------------------------------

TEST(PerfectCachePrefix, PrefixMatchesContains) {
  const auto d = QueryDistribution::zipf(500, 1.01);
  const PerfectCache cache(60, d);
  const auto prefix = cache.cached_prefix();
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(*prefix, 60u);
  for (KeyId key = 0; key < 500; ++key) {
    EXPECT_EQ(cache.contains(key), key < *prefix) << key;
  }
}

TEST(PerfectCachePrefix, EmptyCacheHasZeroPrefix) {
  const auto d = QueryDistribution::uniform(100);
  const PerfectCache cache(0, d);
  const auto prefix = cache.cached_prefix();
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(*prefix, 0u);
}

TEST(PerfectCachePrefix, SpanConstructorDetectsRankCanonicalPrefix) {
  const std::vector<KeyId> keys = {0, 1, 2, 3};
  const std::vector<double> probs = {0.4, 0.3, 0.2, 0.1};
  const PerfectCache cache(2, std::span<const KeyId>(keys),
                           std::span<const double>(probs));
  const auto prefix = cache.cached_prefix();
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(*prefix, 2u);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(PerfectCachePrefix, NonPrefixCachedSetReportsNoPrefix) {
  // Keys listed in rank order but with ids out of 0…c-1: the cached set is
  // {5, 9}, not a prefix, so the fast path must not use the compare.
  const std::vector<KeyId> keys = {5, 9, 0, 1};
  const std::vector<double> probs = {0.4, 0.3, 0.2, 0.1};
  const PerfectCache cache(2, std::span<const KeyId>(keys),
                           std::span<const double>(probs));
  EXPECT_FALSE(cache.cached_prefix().has_value());
  EXPECT_TRUE(cache.contains(5));
  EXPECT_TRUE(cache.contains(9));
  EXPECT_FALSE(cache.contains(0));
}

}  // namespace
}  // namespace scp
