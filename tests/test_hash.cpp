#include "common/hash.h"

#include <bit>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace scp {
namespace {

TEST(Mix64, IsDeterministicAndBijectiveSpotCheck) {
  EXPECT_EQ(mix64(42), mix64(42));
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    outputs.insert(mix64(i));
  }
  EXPECT_EQ(outputs.size(), 10000u);  // a bijection never collides
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip ~32 of 64 output bits.
  const std::uint64_t base = 0x0123456789abcdefULL;
  const std::uint64_t h0 = mix64(base);
  double total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t h1 = mix64(base ^ (1ULL << bit));
    total_flips += std::popcount(h0 ^ h1);
  }
  const double mean_flips = total_flips / 64.0;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(Fnv1a, MatchesKnownVectors) {
  // Standard 64-bit FNV-1a test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, ByteAndStringOverloadsAgree) {
  const std::string s = "hello world";
  EXPECT_EQ(fnv1a(s), fnv1a(s.data(), s.size()));
}

TEST(SipHash, MatchesReferenceVectors) {
  // Official SipHash-2-4 test vectors (Aumasson & Bernstein reference
  // implementation): key = 00 01 02 … 0f, input = 00 01 02 … (len-1).
  SipKey key;
  key.k0 = 0x0706050403020100ULL;
  key.k1 = 0x0f0e0d0c0b0a0908ULL;
  const std::uint64_t expected[] = {
      0x726fdb47dd0e0e31ULL,  // len 0
      0x74f839c593dc67fdULL,  // len 1
      0x0d6c8009d9a94f5aULL,  // len 2
      0x85676696d7fb7e2dULL,  // len 3
      0xcf2794e0277187b7ULL,  // len 4
      0x18765564cd99a68dULL,  // len 5
      0xcbc9466e58fee3ceULL,  // len 6
      0xab0200f58b01d137ULL,  // len 7
      0x93f5f5799a932462ULL,  // len 8
      0x9e0082df0ba9e4b0ULL,  // len 9
  };
  unsigned char input[16];
  for (int i = 0; i < 16; ++i) {
    input[i] = static_cast<unsigned char>(i);
  }
  for (std::size_t len = 0; len < std::size(expected); ++len) {
    EXPECT_EQ(siphash24(key, input, len), expected[len]) << "len=" << len;
  }
}

TEST(SipHash, KeyedHashDependsOnKey) {
  const SipKey a = sip_key_from_seed(1);
  const SipKey b = sip_key_from_seed(2);
  int collisions = 0;
  for (std::uint64_t v = 0; v < 1000; ++v) {
    collisions += (siphash24(a, v) == siphash24(b, v)) ? 1 : 0;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(SipHash, SeedDerivationIsDeterministic) {
  const SipKey a = sip_key_from_seed(77);
  const SipKey b = sip_key_from_seed(77);
  EXPECT_EQ(a.k0, b.k0);
  EXPECT_EQ(a.k1, b.k1);
}

TEST(SipHash, Uint64OverloadMatchesByteForm) {
  const SipKey key = sip_key_from_seed(5);
  const std::uint64_t value = 0xdeadbeefcafef00dULL;
  unsigned char bytes[8];
  std::memcpy(bytes, &value, 8);
  EXPECT_EQ(siphash24(key, value), siphash24(key, bytes, 8));
}

TEST(SipHash, NoObviousCollisionsOnSequentialKeys) {
  const SipKey key = sip_key_from_seed(9);
  std::set<std::uint64_t> outputs;
  for (std::uint64_t v = 0; v < 100000; ++v) {
    outputs.insert(siphash24(key, v));
  }
  EXPECT_EQ(outputs.size(), 100000u);
}

}  // namespace
}  // namespace scp
