#include "ballsbins/balls_bins.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace scp {

std::vector<std::uint64_t> throw_balls(std::uint64_t balls, std::uint32_t bins,
                                       std::uint32_t choices, Rng& rng) {
  SCP_CHECK_MSG(bins >= 1, "need at least one bin");
  SCP_CHECK_MSG(choices >= 1 && choices <= bins,
                "choices must be in [1, bins]");
  std::vector<std::uint64_t> occupancy(bins, 0);
  for (std::uint64_t ball = 0; ball < balls; ++ball) {
    std::uint32_t best = static_cast<std::uint32_t>(rng.uniform_u64(bins));
    for (std::uint32_t c = 1; c < choices; ++c) {
      const auto candidate =
          static_cast<std::uint32_t>(rng.uniform_u64(bins));
      if (occupancy[candidate] < occupancy[best]) {
        best = candidate;
      }
    }
    ++occupancy[best];
  }
  return occupancy;
}

std::uint64_t max_occupancy(std::uint64_t balls, std::uint32_t bins,
                            std::uint32_t choices, Rng& rng) {
  const std::vector<std::uint64_t> occupancy =
      throw_balls(balls, bins, choices, rng);
  return *std::max_element(occupancy.begin(), occupancy.end());
}

double predicted_max_load_one_choice(std::uint64_t balls, std::uint32_t bins) {
  SCP_CHECK(bins >= 2);
  const double m = static_cast<double>(balls);
  const double n = static_cast<double>(bins);
  return m / n + std::sqrt(2.0 * (m / n) * std::log(n));
}

double predicted_max_load_d_choices(std::uint64_t balls, std::uint32_t bins,
                                    std::uint32_t choices,
                                    double gap_constant) {
  const double m = static_cast<double>(balls);
  const double n = static_cast<double>(bins);
  return m / n + two_choice_gap(bins, choices) + gap_constant;
}

double two_choice_gap(std::uint32_t bins, std::uint32_t choices) {
  SCP_CHECK_MSG(bins >= 3, "ln ln n needs n >= 3");
  SCP_CHECK_MSG(choices >= 2, "the gap formula holds for d >= 2");
  return std::log(std::log(static_cast<double>(bins))) /
         std::log(static_cast<double>(choices));
}

}  // namespace scp
