// Balls-into-bins: the probabilistic engine behind the paper's bound.
//
// Uncached keys land on back-end nodes exactly like balls thrown into bins:
// with replication, each ball picks the least loaded of d random bins
// ("power of d choices"). Berenbrink, Czumaj, Steger & Vöcking (STOC'00)
// prove the heavily-loaded gap: with M >> N balls the max bin holds
// M/N + ln ln N / ln d ± Θ(1) w.h.p. — crucially, the gap is *independent of
// M*, which is why the paper's cache bound does not depend on the number of
// stored items m. For d = 1 (no replication) the classical gap grows with M
// as sqrt(M ln N / N), which is why Fan et al.'s unreplicated bound behaves
// so differently.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace scp {

/// Throws `balls` balls into `bins` bins; each ball inspects `choices`
/// bins chosen uniformly with replacement and joins the least loaded
/// (ties → first inspected). Returns the bin occupancy vector.
std::vector<std::uint64_t> throw_balls(std::uint64_t balls, std::uint32_t bins,
                                       std::uint32_t choices, Rng& rng);

/// Max occupancy over a throw (convenience).
std::uint64_t max_occupancy(std::uint64_t balls, std::uint32_t bins,
                            std::uint32_t choices, Rng& rng);

/// Theoretical max-load prediction for the single-choice case (d = 1),
/// heavily loaded regime (M >= N ln N): M/N + sqrt(2·(M/N)·ln N)
/// (Raab & Steger, 1998).
double predicted_max_load_one_choice(std::uint64_t balls, std::uint32_t bins);

/// Theoretical max-load prediction for d >= 2 choices, heavily loaded:
/// M/N + ln ln N / ln d + gap_constant (Berenbrink et al., 2000). The
/// additive Θ(1) term is exposed as `gap_constant`.
double predicted_max_load_d_choices(std::uint64_t balls, std::uint32_t bins,
                                    std::uint32_t choices,
                                    double gap_constant = 1.0);

/// The gap term ln ln n / ln d itself — the `k` (minus its Θ(1) constant)
/// of the paper's Eq. 8. Requires bins >= 3 (so ln ln n is defined) and
/// choices >= 2.
double two_choice_gap(std::uint32_t bins, std::uint32_t choices);

}  // namespace scp
