// JSON serialization of the public result types, for tooling integration.
#pragma once

#include <string>

#include "core/analyzer.h"
#include "core/provisioner.h"

namespace scp {

/// Serializes a provisioning plan, e.g.:
/// {"cluster":{"nodes":1000,...},"theory":{...},"recommendation":{...},
///  "validation":{...}}
std::string to_json(const ProvisionPlan& plan);

/// Serializes an attack assessment.
std::string to_json(const AttackAssessment& assessment);

}  // namespace scp
