#include "core/detector.h"

#include <sstream>

#include "common/check.h"
#include "common/stats.h"

namespace scp {

AttackDetector::AttackDetector(DetectorOptions options)
    : options_(options) {
  SCP_CHECK(options_.imbalance_threshold > 1.0);
  SCP_CHECK(options_.baseline_factor >= 1.0);
  SCP_CHECK(options_.windows_to_trip >= 1);
  SCP_CHECK(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0);
}

bool AttackDetector::observe(std::span<const double> node_loads) {
  SCP_CHECK_MSG(!node_loads.empty(), "need at least one node's load");
  ++windows_;

  RunningStats stats;
  for (const double load : node_loads) {
    SCP_DCHECK(load >= 0.0);
    stats.add(load);
  }
  last_imbalance_ =
      stats.mean() > 0.0 ? stats.max() / stats.mean() : 1.0;

  const bool suspicious =
      last_imbalance_ > options_.imbalance_threshold &&
      last_imbalance_ > options_.baseline_factor * baseline_;
  if (suspicious) {
    if (++streak_ >= options_.windows_to_trip) {
      alarmed_ = true;
    }
  } else {
    streak_ = 0;
    // Only learn the baseline from windows we believe are benign —
    // otherwise a slow-ramp attack teaches the detector to ignore itself.
    baseline_ += options_.ewma_alpha * (last_imbalance_ - baseline_);
  }
  return alarmed_;
}

void AttackDetector::acknowledge() noexcept {
  alarmed_ = false;
  streak_ = 0;
}

std::string AttackDetector::status() const {
  std::ostringstream os;
  os << (alarmed_ ? "ALARM" : "ok") << " imbalance=" << last_imbalance_
     << " baseline=" << baseline_ << " streak=" << streak_ << "/"
     << options_.windows_to_trip;
  return os.str();
}

}  // namespace scp
