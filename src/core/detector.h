// Online DDoS detection — the runtime complement to offline provisioning.
//
// Provisioning guarantees no node *can* be pushed past the even-spread load;
// operators still want to know an attack is happening (to block sources,
// audit leaks, or notice that the cache is under-provisioned after cluster
// growth). The detector consumes periodic per-node load snapshots, tracks an
// EWMA baseline of the imbalance ratio max/mean, and raises after the ratio
// stays above an absolute threshold for a configurable number of
// consecutive windows — robust to one-window blips and to slow organic
// drift (which the EWMA absorbs).
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace scp {

struct DetectorOptions {
  /// Absolute alarm threshold on max/mean (the attack-gain analogue). The
  /// paper's Definition 2 uses 1.0 against R/n; real telemetry is noisy, so
  /// default to a margin above it.
  double imbalance_threshold = 1.5;
  /// Additionally require the ratio to exceed `baseline_factor` x the EWMA
  /// baseline, so a steadily skewed-but-stable system does not page forever.
  double baseline_factor = 1.3;
  /// Consecutive suspicious windows before the alarm trips.
  std::uint32_t windows_to_trip = 3;
  /// EWMA smoothing for the baseline (0 < alpha <= 1; small = slow).
  double ewma_alpha = 0.05;
};

class AttackDetector {
 public:
  explicit AttackDetector(DetectorOptions options = DetectorOptions{});

  /// Feeds one monitoring window's per-node loads. Returns true iff this
  /// observation trips (or keeps tripped) the alarm.
  bool observe(std::span<const double> node_loads);

  bool alarmed() const noexcept { return alarmed_; }
  /// max/mean of the most recent window.
  double last_imbalance() const noexcept { return last_imbalance_; }
  /// Current EWMA baseline of the imbalance ratio.
  double baseline() const noexcept { return baseline_; }
  /// Consecutive suspicious windows so far.
  std::uint32_t suspicious_windows() const noexcept { return streak_; }
  std::uint64_t windows_observed() const noexcept { return windows_; }

  /// Clears the alarm and the streak (baseline is kept).
  void acknowledge() noexcept;

  std::string status() const;

 private:
  DetectorOptions options_;
  double baseline_ = 1.0;
  double last_imbalance_ = 0.0;
  std::uint32_t streak_ = 0;
  std::uint64_t windows_ = 0;
  bool alarmed_ = false;
};

}  // namespace scp
