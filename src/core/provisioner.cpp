#include "core/provisioner.h"

#include <algorithm>
#include <cmath>

#include "adversary/strategy.h"
#include "common/check.h"
#include "sim/scenario.h"

namespace scp {

CacheProvisioner::CacheProvisioner(ProvisionOptions options)
    : options_(std::move(options)) {
  SCP_CHECK(options_.safety_factor >= 1.0);
  SCP_CHECK(options_.validation_trials >= 1);
}

double CacheProvisioner::threshold(std::uint32_t nodes,
                                   std::uint32_t replication) const {
  return cache_size_threshold(nodes, replication, options_.k_prime);
}

ProvisionPlan CacheProvisioner::plan(const ClusterSpec& spec) const {
  SCP_CHECK_MSG(spec.nodes >= 3, "need at least three nodes (ln ln n)");
  SCP_CHECK_MSG(spec.replication >= 1 && spec.replication <= spec.nodes,
                "replication must be in [1, nodes]");
  SCP_CHECK_MSG(spec.items >= 2, "need at least two items");
  SCP_CHECK_MSG(spec.attack_rate_qps > 0.0, "attack rate must be positive");

  ProvisionPlan plan;
  plan.spec = spec;
  plan.even_load_qps =
      spec.attack_rate_qps / static_cast<double>(spec.nodes);

  if (spec.replication < 2) {
    // Fan et al.'s unreplicated regime: the adversary can always pick an x
    // with gain > 1; no cache size yields *prevention* (only mitigation).
    plan.prevention_possible = false;
    return plan;
  }

  plan.prevention_possible = true;
  plan.k = gap_k(spec.nodes, spec.replication, options_.k_prime);
  plan.threshold =
      cache_size_threshold(spec.nodes, spec.replication, options_.k_prime);
  plan.recommended_cache_size = static_cast<std::uint64_t>(
      std::ceil(plan.threshold * options_.safety_factor));
  SCP_CHECK_MSG(plan.recommended_cache_size < spec.items,
                "key space smaller than the required cache: cache everything "
                "instead (m <= c*)");

  SystemParams params;
  params.nodes = spec.nodes;
  params.replication = spec.replication;
  params.items = spec.items;
  params.cache_size = plan.recommended_cache_size;
  params.query_rate = spec.attack_rate_qps;

  // Case 2 ⇒ the adversary's best response is x = m; Eq. 8 there is the
  // worst-case absolute load.
  plan.worst_case_load_bound_qps = max_load_bound(params, spec.items, plan.k);
  if (spec.node_capacity_qps > 0.0) {
    plan.capacity_sufficient =
        spec.node_capacity_qps >= plan.worst_case_load_bound_qps;
  }

  if (options_.degraded_failures > 0) {
    plan.degraded = degraded_guarantee(spec, plan.recommended_cache_size,
                                       options_.degraded_failures);
  }

  if (options_.validate) {
    validate_plan(plan);
  }
  return plan;
}

DegradedGuarantee CacheProvisioner::degraded_guarantee(
    const ClusterSpec& spec, std::uint64_t cache_size,
    std::uint32_t failures) const {
  SCP_CHECK_MSG(spec.replication >= 2,
                "degraded guarantees need replication (d >= 2)");
  SCP_CHECK_MSG(failures < spec.nodes, "cannot fail every node");
  const std::uint32_t survivors = spec.nodes - failures;
  SCP_CHECK_MSG(survivors >= 3 && survivors >= spec.replication,
                "need at least max(3, d) surviving nodes (ln ln n)");

  DegradedGuarantee degraded;
  degraded.failures = failures;
  degraded.surviving_nodes = survivors;
  degraded.k = gap_k(survivors, spec.replication, options_.k_prime);
  degraded.threshold =
      cache_size_threshold(survivors, spec.replication, options_.k_prime);
  degraded.cache_covers_threshold =
      static_cast<double>(cache_size) >= degraded.threshold;
  degraded.even_load_qps =
      spec.attack_rate_qps / static_cast<double>(survivors);

  SystemParams params;
  params.nodes = survivors;
  params.replication = spec.replication;
  params.items = spec.items;
  params.cache_size = cache_size;
  params.query_rate = spec.attack_rate_qps;
  degraded.worst_case_load_bound_qps =
      max_load_bound(params, spec.items, degraded.k);
  if (spec.node_capacity_qps > 0.0) {
    degraded.capacity_sufficient =
        spec.node_capacity_qps >= degraded.worst_case_load_bound_qps;
  }
  return degraded;
}

void CacheProvisioner::validate_plan(ProvisionPlan& plan) const {
  ScenarioConfig config;
  config.params.nodes = plan.spec.nodes;
  config.params.replication = plan.spec.replication;
  config.params.items = plan.spec.items;
  config.params.cache_size = plan.recommended_cache_size;
  config.params.query_rate = plan.spec.attack_rate_qps;
  config.partitioner = options_.partitioner;
  config.selector = options_.selector;

  const auto evaluate = [&](std::uint64_t x) {
    const GainStatistics stats = measure_adversarial_gain(
        config, x, options_.validation_trials, options_.seed ^ x);
    return stats.max_gain;
  };
  const BestResponse best = best_response_search(
      config.params, evaluate, options_.validation_grid_points);

  plan.validated = true;
  plan.observed_worst_gain = best.gain;
  plan.observed_worst_x = best.queried_keys;
  plan.prevention_holds = best.gain <= 1.0;
}

}  // namespace scp
