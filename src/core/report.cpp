#include "core/report.h"

#include <iomanip>
#include <sstream>

namespace scp {
namespace {

void header(std::ostringstream& os, const std::string& title) {
  os << "=== " << title << " "
     << std::string(title.size() < 66 ? 66 - title.size() : 0, '=') << "\n";
}

}  // namespace

std::string render_report(const ProvisionPlan& plan) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  header(os, "Secure Cache Provision plan");
  os << "cluster:   n=" << plan.spec.nodes << " nodes, d=" << plan.spec.replication
     << " replicas/key, m=" << plan.spec.items << " items\n"
     << "attack:    R=" << plan.spec.attack_rate_qps
     << " qps aggregate; even-spread baseline R/n=" << plan.even_load_qps
     << " qps/node\n";
  if (!plan.prevention_possible) {
    os << "verdict:   PREVENTION IMPOSSIBLE at d=1 (unreplicated).\n"
       << "           An adversary can always choose x with attack gain > 1\n"
       << "           (Fan et al., SOCC'11). Remedy: replicate (d >= 2), then\n"
       << "           re-plan; a cache alone only mitigates.\n";
    return os.str();
  }
  os << "theory:    gap k = lnln(n)/ln(d) + k' = " << plan.k << "\n"
     << "           threshold c* = n*k + 1 = " << plan.threshold << " entries\n"
     << "recommend: cache " << plan.recommended_cache_size
     << " entries (threshold x safety factor)\n"
     << "           worst-case per-node load bound (Eq. 8, x=m): "
     << plan.worst_case_load_bound_qps << " qps\n";
  if (plan.spec.node_capacity_qps > 0.0) {
    os << "capacity:  r_i=" << plan.spec.node_capacity_qps << " qps/node -> "
       << (plan.capacity_sufficient ? "SUFFICIENT (no node can saturate)"
                                    : "INSUFFICIENT (raise capacity or d)")
       << "\n";
  }
  if (plan.degraded.has_value()) {
    const DegradedGuarantee& dg = *plan.degraded;
    os << "degraded:  after f=" << dg.failures << " crashes ("
       << dg.surviving_nodes << " survivors): threshold c*(n-f) = "
       << dg.threshold << " -> "
       << (dg.cache_covers_threshold ? "cache still covers it"
                                     : "CACHE TOO SMALL for survivors")
       << "\n"
       << "           degraded baseline R/(n-f)=" << dg.even_load_qps
       << " qps/node, worst-case bound " << dg.worst_case_load_bound_qps
       << " qps";
    if (plan.spec.node_capacity_qps > 0.0) {
      os << " -> capacity "
         << (dg.capacity_sufficient ? "SUFFICIENT" : "INSUFFICIENT");
    }
    os << "\n";
  }
  if (plan.validated) {
    os << "validated: adversary best response x=" << plan.observed_worst_x
       << ", observed worst gain=" << plan.observed_worst_gain << " -> "
       << (plan.prevention_holds ? "PREVENTION HOLDS (gain <= 1)"
                                 : "VIOLATION (gain > 1) - raise k' or safety")
       << "\n";
  }
  return os.str();
}

std::string render_report(const AttackAssessment& assessment) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  header(os, "Attack assessment");
  os << "system:    " << assessment.params.to_string() << "\n";
  if (assessment.failed_nodes > 0) {
    os << "degraded:  " << assessment.failed_nodes << " nodes crashed, "
       << assessment.surviving_nodes
       << " survivors; gain vs the surviving even spread R/(n-f)\n";
  }
  os << "gain:      worst=" << assessment.worst_gain
     << " mean=" << assessment.gain.mean << " p99=" << assessment.gain.p99
     << " over " << assessment.gain.count << " trials\n"
     << "verdict:   "
     << (assessment.effective
             ? "EFFECTIVE DDoS (some node exceeds the even-spread load)"
             : "ineffective (no node exceeds the even-spread load)")
     << "\n";
  if (assessment.gain_bound.has_value()) {
    os << "bound:     Eq. 10 predicts gain <= " << *assessment.gain_bound
       << "\n";
  }
  return os.str();
}

}  // namespace scp
