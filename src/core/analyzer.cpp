#include "core/analyzer.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "sim/scenario.h"

namespace scp {

std::string AttackAssessment::to_string() const {
  std::ostringstream os;
  os << "system[" << params.to_string() << "] worst_gain=" << worst_gain
     << " mean_gain=" << gain.mean
     << (effective ? " EFFECTIVE (gain > 1)" : " ineffective (gain <= 1)");
  if (gain_bound.has_value()) {
    os << " bound=" << *gain_bound;
  }
  return os.str();
}

AttackAnalyzer::AttackAnalyzer(AnalyzerOptions options)
    : options_(std::move(options)) {
  SCP_CHECK(options_.trials >= 1);
}

namespace {

/// Detects the canonical adversarial shape: uniform over the first x keys.
/// Returns x, or nullopt for any other shape.
std::optional<std::uint64_t> uniform_over_x(
    const QueryDistribution& distribution) {
  const std::uint64_t support = distribution.support_size();
  if (support == 0) {
    return std::nullopt;
  }
  const double expected = 1.0 / static_cast<double>(support);
  for (std::uint64_t i = 0; i < support; ++i) {
    if (std::abs(distribution.probability(i) - expected) > 1e-12) {
      return std::nullopt;
    }
  }
  return support;
}

}  // namespace

AttackAssessment AttackAnalyzer::assess(
    const SystemParams& params, const QueryDistribution& distribution) const {
  params.check();
  ScenarioConfig config;
  config.params = params;
  config.partitioner = options_.partitioner;
  config.selector = options_.selector;

  const GainStatistics stats =
      measure_gain(config, distribution, options_.trials, options_.seed);

  AttackAssessment assessment;
  assessment.params = params;
  assessment.gain = stats.summary;
  assessment.worst_gain = stats.max_gain;
  assessment.effective = is_effective(stats.max_gain);

  if (params.replication >= 2 && params.nodes >= 3) {
    const std::optional<std::uint64_t> x = uniform_over_x(distribution);
    if (x.has_value() && *x > params.cache_size && *x >= 2) {
      const double k =
          gap_k(params.nodes, params.replication, options_.k_prime);
      assessment.gain_bound = attack_gain_bound(params, *x, k);
    }
  }
  return assessment;
}

AttackAssessment AttackAnalyzer::assess_adversarial(const SystemParams& params,
                                                    std::uint64_t x) const {
  return assess(params, QueryDistribution::uniform_over(x, params.items));
}

}  // namespace scp
