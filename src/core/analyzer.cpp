#include "core/analyzer.h"

#include <cmath>
#include <sstream>

#include "cache/perfect_cache.h"
#include "cluster/cluster.h"
#include "common/check.h"
#include "common/rng.h"
#include "sim/rate_sim.h"
#include "sim/scenario.h"

namespace scp {

std::string AttackAssessment::to_string() const {
  std::ostringstream os;
  os << "system[" << params.to_string() << "]";
  if (failed_nodes > 0) {
    os << " degraded[f=" << failed_nodes << " alive=" << surviving_nodes
       << "]";
  }
  os << " worst_gain=" << worst_gain << " mean_gain=" << gain.mean
     << (effective ? " EFFECTIVE (gain > 1)" : " ineffective (gain <= 1)");
  if (gain_bound.has_value()) {
    os << " bound=" << *gain_bound;
  }
  return os.str();
}

AttackAnalyzer::AttackAnalyzer(AnalyzerOptions options)
    : options_(std::move(options)) {
  SCP_CHECK(options_.trials >= 1);
}

namespace {

/// Detects the canonical adversarial shape: uniform over the first x keys.
/// Returns x, or nullopt for any other shape.
std::optional<std::uint64_t> uniform_over_x(
    const QueryDistribution& distribution) {
  const std::uint64_t support = distribution.support_size();
  if (support == 0) {
    return std::nullopt;
  }
  const double expected = 1.0 / static_cast<double>(support);
  for (std::uint64_t i = 0; i < support; ++i) {
    if (std::abs(distribution.probability(i) - expected) > 1e-12) {
      return std::nullopt;
    }
  }
  return support;
}

}  // namespace

AttackAssessment AttackAnalyzer::assess(
    const SystemParams& params, const QueryDistribution& distribution) const {
  params.check();
  ScenarioConfig config;
  config.params = params;
  config.partitioner = options_.partitioner;
  config.selector = options_.selector;

  const GainStatistics stats =
      measure_gain(config, distribution, options_.trials, options_.seed);

  AttackAssessment assessment;
  assessment.params = params;
  assessment.surviving_nodes = params.nodes;
  assessment.gain = stats.summary;
  assessment.worst_gain = stats.max_gain;
  assessment.effective = is_effective(stats.max_gain);

  if (params.replication >= 2 && params.nodes >= 3) {
    const std::optional<std::uint64_t> x = uniform_over_x(distribution);
    if (x.has_value() && *x > params.cache_size && *x >= 2) {
      const double k =
          gap_k(params.nodes, params.replication, options_.k_prime);
      assessment.gain_bound = attack_gain_bound(params, *x, k);
    }
  }
  return assessment;
}

AttackAssessment AttackAnalyzer::assess_adversarial(const SystemParams& params,
                                                    std::uint64_t x) const {
  return assess(params, QueryDistribution::uniform_over(x, params.items));
}

AttackAssessment AttackAnalyzer::assess_degraded(
    const SystemParams& params, const QueryDistribution& distribution,
    std::uint32_t failures) const {
  params.check();
  SCP_CHECK_MSG(distribution.size() == params.items,
                "distribution key space must match params.items");
  SCP_CHECK_MSG(failures < params.nodes, "cannot fail every node");
  const std::uint32_t survivors = params.nodes - failures;
  SCP_CHECK_MSG(survivors >= 3 && survivors >= params.replication,
                "need at least max(3, d) surviving nodes");

  auto selector = make_selector(options_.selector);
  std::vector<double> gains;
  gains.reserve(options_.trials);
  for (std::uint32_t t = 0; t < options_.trials; ++t) {
    // measure_gain's per-trial seed derivation, plus stream 4 for the
    // trial's crash victims — same seed, same victims, same result.
    const std::uint64_t seed = derive_seed(options_.seed, 1000 + t);
    Cluster cluster(make_partitioner(options_.partitioner, params.nodes,
                                     params.replication,
                                     derive_seed(seed, 1)));
    const PerfectCache cache(params.cache_size, distribution);

    FaultView faults(params.nodes);
    Rng crash_rng(derive_seed(seed, 4));
    for (const std::uint64_t victim :
         crash_rng.sample_without_replacement(params.nodes, failures)) {
      faults.alive[victim] = 0;
    }
    faults.alive_count = survivors;

    RateSimConfig sim_config;
    sim_config.query_rate = params.query_rate;
    sim_config.seed = derive_seed(seed, 2);
    sim_config.faults = &faults;
    const RateSimResult result =
        simulate_rates(cluster, cache, distribution, *selector, sim_config);
    gains.push_back(result.degraded_normalized_max_load);
  }

  AttackAssessment assessment;
  assessment.params = params;
  assessment.failed_nodes = failures;
  assessment.surviving_nodes = survivors;
  assessment.gain = summarize(gains);
  assessment.worst_gain = assessment.gain.max;
  assessment.effective = is_effective(assessment.worst_gain);

  if (params.replication >= 2) {
    const std::optional<std::uint64_t> x = uniform_over_x(distribution);
    if (x.has_value() && *x > params.cache_size && *x >= 2) {
      SystemParams degraded_params = params;
      degraded_params.nodes = survivors;
      const double k =
          gap_k(survivors, params.replication, options_.k_prime);
      assessment.gain_bound = attack_gain_bound(degraded_params, *x, k);
    }
  }
  return assessment;
}

}  // namespace scp
