#include "core/serialize.h"

#include "common/json.h"

namespace scp {

std::string to_json(const ProvisionPlan& plan) {
  JsonWriter json;
  json.begin_object();

  json.key("cluster").begin_object();
  json.field("nodes", static_cast<std::uint64_t>(plan.spec.nodes));
  json.field("replication", static_cast<std::uint64_t>(plan.spec.replication));
  json.field("items", plan.spec.items);
  json.field("attack_rate_qps", plan.spec.attack_rate_qps);
  if (plan.spec.node_capacity_qps > 0.0) {
    json.field("node_capacity_qps", plan.spec.node_capacity_qps);
  }
  json.end();

  json.field("prevention_possible", plan.prevention_possible);
  json.field("even_load_qps", plan.even_load_qps);

  if (plan.prevention_possible) {
    json.key("theory").begin_object();
    json.field("gap_k", plan.k);
    json.field("threshold_c_star", plan.threshold);
    json.field("worst_case_load_bound_qps", plan.worst_case_load_bound_qps);
    json.end();

    json.key("recommendation").begin_object();
    json.field("cache_entries", plan.recommended_cache_size);
    json.field("capacity_sufficient", plan.capacity_sufficient);
    json.end();
  } else {
    json.field("remedy", "replicate (d >= 2); a cache alone only mitigates");
  }

  if (plan.validated) {
    json.key("validation").begin_object();
    json.field("observed_worst_gain", plan.observed_worst_gain);
    json.field("observed_worst_x", plan.observed_worst_x);
    json.field("prevention_holds", plan.prevention_holds);
    json.end();
  }

  json.end();
  return json.str();
}

std::string to_json(const AttackAssessment& assessment) {
  JsonWriter json;
  json.begin_object();

  json.key("system").begin_object();
  json.field("nodes", static_cast<std::uint64_t>(assessment.params.nodes));
  json.field("replication",
             static_cast<std::uint64_t>(assessment.params.replication));
  json.field("items", assessment.params.items);
  json.field("cache_size", assessment.params.cache_size);
  json.field("query_rate_qps", assessment.params.query_rate);
  json.end();

  json.key("gain").begin_object();
  json.field("trials", static_cast<std::uint64_t>(assessment.gain.count));
  json.field("worst", assessment.worst_gain);
  json.field("mean", assessment.gain.mean);
  json.field("p99", assessment.gain.p99);
  json.end();

  json.field("effective", assessment.effective);
  if (assessment.gain_bound.has_value()) {
    json.field("eq10_bound", *assessment.gain_bound);
  } else {
    json.key("eq10_bound").null();
  }

  json.end();
  return json.str();
}

}  // namespace scp
