// Human-readable rendering of provisioning plans and attack assessments.
#pragma once

#include <string>

#include "core/analyzer.h"
#include "core/provisioner.h"

namespace scp {

/// Multi-line operator report for a provisioning plan: inputs, theory
/// (threshold, bound), recommendation, and validation verdict.
std::string render_report(const ProvisionPlan& plan);

/// Multi-line report for an attack assessment.
std::string render_report(const AttackAssessment& assessment);

}  // namespace scp
