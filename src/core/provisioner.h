// CacheProvisioner — the library's headline API.
//
// Answers the paper's driving question for an operator: *how large must the
// front-end cache be so that no adversarial access pattern can overload any
// back-end node?* The answer (Section III.B) is the threshold
// c* = n·(ln ln n / ln d + k′) + 1, which is O(n) for every realistic
// cluster. The provisioner computes it, sizes the cache with a safety
// factor, and optionally validates by simulating the adversary's best
// response.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "adversary/bounds.h"

namespace scp {

/// Operator-facing description of the cluster to protect.
struct ClusterSpec {
  std::uint32_t nodes = 0;          ///< n — back-end nodes
  std::uint32_t replication = 3;    ///< d — replica-group size
  std::uint64_t items = 0;          ///< m — stored (key, value) items
  double attack_rate_qps = 1.0;     ///< R — worst-case aggregate query rate
  /// Per-node capacity r_i (qps); 0 = unknown/unbounded. When known, the
  /// plan also checks r_i against the worst-case load bound.
  double node_capacity_qps = 0.0;
};

struct ProvisionOptions {
  /// Θ(1) constant k′ added to ln ln n / ln d. The paper's simulations fit
  /// k = 1.2 overall at n = 1000, d = 3; we default to a conservative
  /// additive constant instead.
  double k_prime = 0.5;
  /// Multiplier on the threshold when recommending a size (headroom for the
  /// perfect-cache assumption being approximate in practice).
  double safety_factor = 1.1;
  /// Validate by simulation (adversary best-response search).
  bool validate = true;
  std::uint32_t validation_trials = 10;
  /// Extra log-spaced x candidates between c+1 and m during validation.
  std::uint32_t validation_grid_points = 4;
  std::uint64_t seed = 0x5ca1ab1eULL;
  std::string partitioner = "hash";
  std::string selector = "least-loaded";
  /// When > 0, the plan also reports the degraded-mode guarantee with this
  /// many crashed nodes (ProvisionPlan::degraded): the Berenbrink-style
  /// ln ln N gap recomputed over the N = n−f survivors. Requires
  /// n − degraded_failures >= max(3, d).
  std::uint32_t degraded_failures = 0;
};

/// The paper's guarantee re-derived for a cluster that lost `failures`
/// nodes: every bound is recomputed with the surviving-node count
/// n′ = n − f. Because c*(n) grows with n, a cache provisioned for the full
/// cluster keeps covering the degraded threshold (cache_covers_threshold);
/// the per-node worst case rises by ≈ n/n′ and may outgrow fixed hardware
/// (capacity_sufficient).
struct DegradedGuarantee {
  std::uint32_t failures = 0;
  std::uint32_t surviving_nodes = 0;        ///< n′ = n − f
  double k = 0.0;                           ///< ln ln n′ / ln d + k′
  double threshold = 0.0;                   ///< c*(n′, d) = n′·k + 1
  bool cache_covers_threshold = false;      ///< c >= c*(n′, d)
  double even_load_qps = 0.0;               ///< R/n′ — degraded baseline
  /// Eq. 8 worst case (adversary's x = m) against the survivors.
  double worst_case_load_bound_qps = 0.0;
  /// When the spec declares node capacity: r_i still covers the degraded
  /// worst case.
  bool capacity_sufficient = true;
};

struct ProvisionPlan {
  ClusterSpec spec;
  /// False when d = 1: without replication no item-count-independent cache
  /// bound exists and an adversary can always achieve gain > 1 (Fan et al.'s
  /// setting); the fix is replication >= 2, not a bigger cache.
  bool prevention_possible = false;
  double k = 0.0;               ///< gap term used: ln ln n / ln d + k′
  double threshold = 0.0;       ///< c* = n·k + 1
  std::uint64_t recommended_cache_size = 0;  ///< ceil(c* · safety_factor)
  double even_load_qps = 0.0;   ///< R/n baseline
  /// Eq. 8 worst-case E[L_max] bound at the recommended size (adversary's
  /// best x = m in Case 2).
  double worst_case_load_bound_qps = 0.0;
  /// When spec.node_capacity_qps > 0: capacity covers the worst-case bound.
  bool capacity_sufficient = true;

  // --- simulation validation (when options.validate) ---
  bool validated = false;
  double observed_worst_gain = 0.0;  ///< max gain over best-response search
  std::uint64_t observed_worst_x = 0;
  bool prevention_holds = false;     ///< observed_worst_gain <= 1

  /// Degraded-mode guarantee (when options.degraded_failures > 0).
  std::optional<DegradedGuarantee> degraded;
};

class CacheProvisioner {
 public:
  explicit CacheProvisioner(ProvisionOptions options = ProvisionOptions{});

  const ProvisionOptions& options() const noexcept { return options_; }

  /// Computes (and optionally validates) a provisioning plan.
  /// Requires nodes >= 3 and 1 <= replication <= nodes and items > the
  /// recommended cache size.
  ProvisionPlan plan(const ClusterSpec& spec) const;

  /// The raw threshold c*(n, d) under these options, without safety factor.
  double threshold(std::uint32_t nodes, std::uint32_t replication) const;

  /// Re-derives the guarantee for `spec` with `cache_size` entries after
  /// `failures` crashed nodes. Requires spec.nodes − failures >=
  /// max(3, spec.replication) — below that the ln ln n′ gap (and with
  /// n′ < d, the replica groups themselves) no longer exist.
  DegradedGuarantee degraded_guarantee(const ClusterSpec& spec,
                                       std::uint64_t cache_size,
                                       std::uint32_t failures) const;

 private:
  void validate_plan(ProvisionPlan& plan) const;

  ProvisionOptions options_;
};

}  // namespace scp
