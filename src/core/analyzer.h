// AttackAnalyzer — evaluate a concrete workload against a configured system.
//
// Given the system parameters (n, d, m, c, R) and any query distribution,
// the analyzer measures the attack gain by simulation (Definition 1),
// classifies effectiveness (Definition 2), and compares against the Eq. 10
// bound when the workload is the canonical adversarial pattern.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "adversary/bounds.h"
#include "common/stats.h"
#include "workload/distribution.h"

namespace scp {

struct AnalyzerOptions {
  std::uint32_t trials = 20;
  std::uint64_t seed = 0xdefea7ULL;
  std::string partitioner = "hash";
  std::string selector = "least-loaded";
  /// k′ used when reporting the Eq. 10 bound alongside measurements.
  double k_prime = 0.5;
};

struct AttackAssessment {
  SystemParams params;
  Summary gain;              ///< per-trial normalized max load
  double worst_gain = 0.0;   ///< max over trials
  bool effective = false;    ///< Definition 2 on worst_gain
  /// Eq. 10 bound when the workload is uniform-over-x (the canonical
  /// adversarial shape) and d >= 2; absent otherwise.
  std::optional<double> gain_bound;

  /// Degraded-mode assessments (assess_degraded) record how many nodes were
  /// crashed per trial; gains are then normalized by the surviving even
  /// spread R/(n−f) and gain_bound is recomputed over the survivors.
  std::uint32_t failed_nodes = 0;
  std::uint32_t surviving_nodes = 0;  ///< n − failed_nodes (= n when healthy)

  std::string to_string() const;
};

class AttackAnalyzer {
 public:
  explicit AttackAnalyzer(AnalyzerOptions options = AnalyzerOptions{});

  /// Measures the distribution's attack gain against the system.
  AttackAssessment assess(const SystemParams& params,
                          const QueryDistribution& distribution) const;

  /// Convenience: assess the canonical adversarial pattern with x keys.
  AttackAssessment assess_adversarial(const SystemParams& params,
                                      std::uint64_t x) const;

  /// Degraded-mode assessment: each trial crashes `failures` random nodes
  /// (fresh victims per trial, seeded deterministically) and measures the
  /// attack gain against the *surviving* even-spread baseline R/(n−f),
  /// with routing skipping the dead replicas. The Eq. 10 bound, when the
  /// workload is canonical, is recomputed with n−f — the degraded guarantee
  /// the provisioner's DegradedGuarantee predicts. Requires
  /// failures <= n − max(3, d).
  AttackAssessment assess_degraded(const SystemParams& params,
                                   const QueryDistribution& distribution,
                                   std::uint32_t failures) const;

 private:
  AnalyzerOptions options_;
};

}  // namespace scp
