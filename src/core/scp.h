// Umbrella header: the full Secure Cache Provision public API.
//
// Quickstart:
//   #include "core/scp.h"
//   scp::ClusterSpec spec{.nodes = 1000, .replication = 3,
//                         .items = 1'000'000, .attack_rate_qps = 100'000};
//   scp::CacheProvisioner provisioner;
//   scp::ProvisionPlan plan = provisioner.plan(spec);
//   std::cout << scp::render_report(plan);
#pragma once

#include "adversary/bounds.h"      // SystemParams, Eq. 8/10, regimes
#include "adversary/knowledge.h"   // partial-knowledge (targeted) adversary
#include "adversary/optimizer.h"   // distribution-space attack search
#include "adversary/strategy.h"    // AttackPlan, best_response_search
#include "ballsbins/balls_bins.h"  // the probabilistic engine
#include "cache/cache.h"           // FrontEndCache + policies
#include "cache/frontend_tier.h"   // multi-front-end cache tier
#include "cache/perfect_cache.h"
#include "cluster/capacity.h"      // heterogeneous capacity profiles
#include "cluster/cluster.h"       // Cluster, partitioners, selectors
#include "core/analyzer.h"         // AttackAnalyzer
#include "core/detector.h"         // online attack detection
#include "core/provisioner.h"      // CacheProvisioner
#include "core/report.h"
#include "core/serialize.h"   // JSON output
#include "kvstore/kv_cluster.h"    // functional replicated KV substrate
#include "sim/event_sim.h"         // discrete-event simulator
#include "sim/failure.h"           // node-failure injection
#include "sim/fault.h"             // deterministic fault schedules
#include "sim/rate_sim.h"          // rate simulator
#include "sim/runner.h"
#include "sim/scenario.h"
#include "workload/cost_model.h"   // per-query cost multipliers
#include "workload/distribution.h" // QueryDistribution
#include "workload/rotating.h"     // time-varying hot sets
#include "workload/stream.h"
