#include "kvstore/kv_cluster.h"

#include <algorithm>

#include "common/check.h"

namespace scp {

KvCluster::KvCluster(KvClusterOptions options) : options_(std::move(options)) {
  SCP_CHECK_MSG(options_.nodes >= 1, "need at least one node");
  SCP_CHECK_MSG(
      options_.replication >= 1 && options_.replication <= options_.nodes,
      "replication must be in [1, nodes]");
  SCP_CHECK_MSG(options_.write_quorum >= 1 &&
                    options_.write_quorum <= options_.replication,
                "write quorum must be in [1, d]");
  SCP_CHECK_MSG(options_.read_quorum >= 1 &&
                    options_.read_quorum <= options_.replication,
                "read quorum must be in [1, d]");
  partitioner_ = std::make_unique<HashPartitioner>(
      options_.nodes, options_.replication, options_.seed);
  storages_.resize(options_.nodes);
  alive_.assign(options_.nodes, true);
  hints_held_.resize(options_.nodes);
  if (options_.cache_capacity > 0) {
    cache_ = make_cache(options_.cache_policy, options_.cache_capacity);
  }
}

std::uint32_t KvCluster::node_count() const noexcept {
  return options_.nodes;
}

const StorageEngine& KvCluster::storage(NodeId node) const {
  SCP_CHECK(node < storages_.size());
  return storages_[node];
}

std::vector<NodeId> KvCluster::replica_group_of(KeyId key) const {
  return partitioner_->replica_group(key);
}

void KvCluster::cache_store(KeyId key, const std::string& value) {
  if (cache_ == nullptr) {
    return;
  }
  cache_->access(key);  // admit (or refresh) per the policy's rules
  if (cache_->contains(key)) {
    cache_values_[key] = value;
  }
  // The policy evicts silently, so the value map can hold dead entries;
  // sweep it once it drifts well past the policy's capacity.
  if (cache_values_.size() > 2 * options_.cache_capacity + 16) {
    for (auto it = cache_values_.begin(); it != cache_values_.end();) {
      it = cache_->contains(it->first) ? std::next(it)
                                       : cache_values_.erase(it);
    }
  }
}

std::optional<std::string> KvCluster::cache_lookup(KeyId key) {
  if (cache_ == nullptr) {
    return std::nullopt;
  }
  if (!cache_->contains(key)) {
    return std::nullopt;
  }
  const auto it = cache_values_.find(key);
  if (it == cache_values_.end()) {
    return std::nullopt;  // admitted but value never stored (miss-path admit)
  }
  cache_->access(key);  // refresh recency/frequency
  return it->second;
}

bool KvCluster::put(KeyId key, std::string value) {
  ++stats_.puts;
  // Coherence first: even a failed write must not leave a stale copy
  // serving reads (the write may have landed on some replicas).
  if (cache_ != nullptr) {
    cache_->invalidate(key);
    cache_values_.erase(key);
  }

  const std::vector<NodeId> group = replica_group_of(key);
  std::uint32_t live = 0;
  for (const NodeId node : group) {
    live += alive_[node] ? 1 : 0;
  }
  if (live < options_.write_quorum) {
    ++stats_.quorum_failures;
    return false;
  }
  const std::uint64_t version = ++clock_;
  for (const NodeId node : group) {
    if (alive_[node]) {
      storages_[node].apply_put(key, value, version);
    }
  }
  if (options_.hinted_handoff) {
    store_hints(key, StorageEngine::Entry{value, version, false},
                std::span<const NodeId>(group));
  }
  return true;
}

void KvCluster::store_hints(KeyId key, const StorageEngine::Entry& entry,
                            std::span<const NodeId> group) {
  // Buffer a copy for each dead replica on the first live replica (the
  // sloppy-quorum holder). If no replica is alive the write failed quorum
  // already and we never get here.
  NodeId holder = group[0];
  for (const NodeId node : group) {
    if (alive_[node]) {
      holder = node;
      break;
    }
  }
  for (const NodeId node : group) {
    if (!alive_[node]) {
      hints_held_[holder].push_back(Hint{node, key, entry});
      ++stats_.hints_stored;
    }
  }
}

std::optional<std::string> KvCluster::get(KeyId key) {
  ++stats_.gets;
  if (auto cached = cache_lookup(key)) {
    ++stats_.cache_hits;
    return cached;
  }
  if (cache_ != nullptr) {
    ++stats_.cache_misses;
    ++misses_since_sweep_;
  }

  const std::vector<NodeId> group = replica_group_of(key);
  std::vector<NodeId> contacted;
  contacted.reserve(options_.read_quorum);
  for (const NodeId node : group) {
    if (alive_[node]) {
      contacted.push_back(node);
      if (contacted.size() == options_.read_quorum) {
        break;
      }
    }
  }
  if (contacted.size() < options_.read_quorum) {
    ++stats_.quorum_failures;
    return std::nullopt;
  }

  // Newest version among the quorum wins.
  std::optional<StorageEngine::Entry> newest;
  for (const NodeId node : contacted) {
    const auto entry = storages_[node].get_entry(key);
    if (entry.has_value() &&
        (!newest.has_value() || entry->version > newest->version)) {
      newest = entry;
    }
  }

  // Read repair: push the winning entry to stale contacted replicas.
  if (newest.has_value()) {
    for (const NodeId node : contacted) {
      const auto entry = storages_[node].get_entry(key);
      if (!entry.has_value() || entry->version < newest->version) {
        if (newest->tombstone) {
          storages_[node].apply_erase(key, newest->version);
        } else {
          storages_[node].apply_put(key, newest->value, newest->version);
        }
        ++stats_.read_repairs;
      }
    }
  }

  if (!newest.has_value() || newest->tombstone) {
    return std::nullopt;
  }
  cache_store(key, newest->value);
  return newest->value;
}

bool KvCluster::erase(KeyId key) {
  ++stats_.erases;
  if (cache_ != nullptr) {
    cache_->invalidate(key);
    cache_values_.erase(key);
  }
  const std::vector<NodeId> group = replica_group_of(key);
  std::uint32_t live = 0;
  for (const NodeId node : group) {
    live += alive_[node] ? 1 : 0;
  }
  if (live < options_.write_quorum) {
    ++stats_.quorum_failures;
    return false;
  }
  const std::uint64_t version = ++clock_;
  for (const NodeId node : group) {
    if (alive_[node]) {
      storages_[node].apply_erase(key, version);
    }
  }
  if (options_.hinted_handoff) {
    store_hints(key, StorageEngine::Entry{std::string(), version, true},
                std::span<const NodeId>(group));
  }
  return true;
}

void KvCluster::fail_node(NodeId node) {
  SCP_CHECK(node < alive_.size());
  alive_[node] = false;
}

void KvCluster::recover_node(NodeId node) {
  SCP_CHECK(node < alive_.size());
  alive_[node] = true;
  if (!options_.hinted_handoff) {
    return;
  }
  // Every live holder replays (and drops) its hints for the returning node.
  for (NodeId holder = 0; holder < alive_.size(); ++holder) {
    if (!alive_[holder]) {
      continue;  // a dead holder keeps its hints until it returns itself
    }
    auto& hints = hints_held_[holder];
    for (auto it = hints.begin(); it != hints.end();) {
      if (it->target != node) {
        ++it;
        continue;
      }
      if (it->entry.tombstone) {
        storages_[node].apply_erase(it->key, it->entry.version);
      } else {
        storages_[node].apply_put(it->key, it->entry.value,
                                  it->entry.version);
      }
      ++stats_.hints_replayed;
      it = hints.erase(it);
    }
  }
}

void KvCluster::wipe_node(NodeId node) {
  SCP_CHECK(node < storages_.size());
  storages_[node].clear();
  hints_held_[node].clear();  // hints lived on the wiped disk
}

bool KvCluster::node_alive(NodeId node) const {
  SCP_CHECK(node < alive_.size());
  return alive_[node];
}

void KvCluster::anti_entropy() {
  // Gather the newest entry per key across all storages, then push it to
  // every live replica of the key. O(total entries · d).
  std::unordered_map<KeyId, StorageEngine::Entry> newest;
  for (const StorageEngine& storage : storages_) {
    storage.for_each_entry(
        [&newest](KeyId key, const StorageEngine::Entry& entry) {
          auto [it, inserted] = newest.try_emplace(key, entry);
          if (!inserted && entry.version > it->second.version) {
            it->second = entry;
          }
        });
  }
  for (const auto& [key, entry] : newest) {
    for (const NodeId node : replica_group_of(key)) {
      if (!alive_[node]) {
        continue;
      }
      if (entry.tombstone) {
        storages_[node].apply_erase(key, entry.version);
      } else {
        storages_[node].apply_put(key, entry.value, entry.version);
      }
    }
  }
}

std::size_t KvCluster::hints_held_by(NodeId holder) const {
  SCP_CHECK(holder < hints_held_.size());
  return hints_held_[holder].size();
}

bool KvCluster::replicas_converged(KeyId key) const {
  std::optional<std::uint64_t> version;
  for (const NodeId node : replica_group_of(key)) {
    if (!alive_[node]) {
      continue;
    }
    const auto entry = storages_[node].get_entry(key);
    const std::uint64_t v = entry.has_value() ? entry->version : 0;
    if (version.has_value() && *version != v) {
      return false;
    }
    version = v;
  }
  return true;
}

}  // namespace scp
