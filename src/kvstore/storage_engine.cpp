#include "kvstore/storage_engine.h"

namespace scp {

bool StorageEngine::apply_put(KeyId key, std::string value,
                              std::uint64_t version) {
  auto [it, inserted] = entries_.try_emplace(key);
  Entry& entry = it->second;
  if (!inserted && version <= entry.version) {
    return false;  // stale or duplicate replay
  }
  if (inserted || entry.tombstone) {
    ++live_count_;
  } else {
    bytes_used_ -= entry.value.size();
  }
  bytes_used_ += value.size();
  entry.value = std::move(value);
  entry.version = version;
  entry.tombstone = false;
  return true;
}

bool StorageEngine::apply_erase(KeyId key, std::uint64_t version) {
  auto [it, inserted] = entries_.try_emplace(key);
  Entry& entry = it->second;
  if (!inserted && version <= entry.version) {
    return false;
  }
  if (!inserted && !entry.tombstone) {
    --live_count_;
    bytes_used_ -= entry.value.size();
  }
  entry.value.clear();
  entry.version = version;
  entry.tombstone = true;
  return true;
}

std::optional<std::string> StorageEngine::get(KeyId key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.tombstone) {
    return std::nullopt;
  }
  return it->second.value;
}

std::optional<StorageEngine::Entry> StorageEngine::get_entry(KeyId key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void StorageEngine::for_each_entry(
    const std::function<void(KeyId, const Entry&)>& visit) const {
  for (const auto& [key, entry] : entries_) {
    visit(key, entry);
  }
}

void StorageEngine::clear() {
  entries_.clear();
  live_count_ = 0;
  bytes_used_ = 0;
}

}  // namespace scp
