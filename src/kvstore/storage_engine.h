// Per-node local storage engine for the replicated key-value substrate.
//
// A versioned last-writer-wins map with tombstones: the minimum machinery a
// Dynamo/memcached-class store needs for quorum replication and
// read-repair. Versions are assigned by the cluster's logical clock; an
// apply with a version not newer than the stored one is a no-op (idempotent
// replay, reordering tolerance).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "cluster/types.h"

namespace scp {

class StorageEngine {
 public:
  struct Entry {
    std::string value;
    std::uint64_t version = 0;
    bool tombstone = false;
  };

  /// Applies a write. Returns true iff the write was newer than the stored
  /// version (strictly greater) and therefore took effect.
  bool apply_put(KeyId key, std::string value, std::uint64_t version);

  /// Applies a delete as a tombstone with the given version. Returns true
  /// iff it took effect.
  bool apply_erase(KeyId key, std::uint64_t version);

  /// Live value lookup: nullopt for absent or tombstoned keys.
  std::optional<std::string> get(KeyId key) const;

  /// Full entry lookup including tombstones (for replication/repair).
  std::optional<Entry> get_entry(KeyId key) const;

  /// Number of live (non-tombstone) keys.
  std::size_t live_count() const noexcept { return live_count_; }
  /// Number of entries including tombstones.
  std::size_t entry_count() const noexcept { return entries_.size(); }
  /// Approximate payload bytes of live values.
  std::size_t bytes_used() const noexcept { return bytes_used_; }

  /// Visits every entry (including tombstones) — anti-entropy driver.
  void for_each_entry(
      const std::function<void(KeyId, const Entry&)>& visit) const;

  /// Drops everything (simulates a node wiped by a crash).
  void clear();

 private:
  std::unordered_map<KeyId, Entry> entries_;
  std::size_t live_count_ = 0;
  std::size_t bytes_used_ = 0;
};

}  // namespace scp
