// Replicated key-value store — the functional substrate behind the paper's
// system model.
//
// Realizes the four Section-II properties end to end:
//   1. Randomized partitioning — keys route through a keyed-hash
//      ReplicaPartitioner, opaque to clients.
//   2. Equal replication — every key lives on exactly d nodes; writes go to
//      a quorum W of them, reads to R, with last-writer-wins versions and
//      read-repair (Dynamo-style; R + W > d gives read-your-writes).
//   3. Cheap to cache results — gets are served from the front-end cache
//      when possible; writes invalidate the cached copy (coherence).
//   4. Costly to shift results — placement is a pure function of the
//      partitioner; nothing rebalances on load.
//
// The store is single-threaded by design: it is the functional model the
// simulators abstract, not a network server.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <span>
#include <vector>

#include "cache/cache.h"
#include "cluster/partitioner.h"
#include "kvstore/storage_engine.h"

namespace scp {

struct KvClusterOptions {
  std::uint32_t nodes = 8;
  std::uint32_t replication = 3;   ///< d
  std::uint32_t write_quorum = 2;  ///< W (1 <= W <= d)
  std::uint32_t read_quorum = 2;   ///< R (1 <= R <= d)
  /// Front-end cache entries; 0 disables caching.
  std::size_t cache_capacity = 0;
  /// Cache policy: lru | lfu | slru | tinylfu.
  std::string cache_policy = "lru";
  /// Hinted handoff (Dynamo §4.6): a write that misses a dead replica
  /// leaves a hint on the first live replica; recover_node() replays the
  /// hints so the returning node converges without a full anti-entropy
  /// pass. Hints survive the holder's fail/recover (durable on disk) but
  /// are lost if the holder is wiped.
  bool hinted_handoff = false;
  std::uint64_t seed = 1;
};

struct KvStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t erases = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t quorum_failures = 0;  ///< ops rejected: too few live replicas
  std::uint64_t read_repairs = 0;     ///< stale replicas fixed during reads
  std::uint64_t hints_stored = 0;     ///< writes buffered for dead replicas
  std::uint64_t hints_replayed = 0;   ///< hints delivered on recovery
};

class KvCluster {
 public:
  explicit KvCluster(KvClusterOptions options);

  // --- client API ------------------------------------------------------
  /// Writes value to a write quorum of the key's replicas. Returns false if
  /// fewer than W replicas are alive. Always invalidates the cached copy.
  bool put(KeyId key, std::string value);

  /// Reads from the cache, falling back to a read quorum (newest version
  /// wins; stale live replicas are read-repaired). nullopt = absent key or
  /// quorum unavailable.
  std::optional<std::string> get(KeyId key);

  /// Deletes via tombstone on a write quorum. Returns false on quorum
  /// failure.
  bool erase(KeyId key);

  // --- operations ------------------------------------------------------
  /// Marks a node dead: it accepts no reads or writes. Requires id < nodes.
  void fail_node(NodeId node);
  /// Brings a node back (it may hold stale data until repaired). With
  /// hinted handoff enabled, live nodes replay their buffered hints to it.
  void recover_node(NodeId node);
  /// Wipes a node's storage (disk loss) — combine with recover_node.
  void wipe_node(NodeId node);
  bool node_alive(NodeId node) const;

  /// Full anti-entropy pass: every entry is pushed to every live member of
  /// its replica group at its newest version. Restores replica convergence
  /// after failures/wipes.
  void anti_entropy();

  // --- introspection ---------------------------------------------------
  std::uint32_t node_count() const noexcept;
  const KvStats& stats() const noexcept { return stats_; }
  const StorageEngine& storage(NodeId node) const;
  const ReplicaPartitioner& partitioner() const noexcept {
    return *partitioner_;
  }
  /// True iff all live replicas of `key` store the same version (or none).
  bool replicas_converged(KeyId key) const;
  /// Hints currently buffered on `holder` for other nodes (tests/metrics).
  std::size_t hints_held_by(NodeId holder) const;

 private:
  struct Hint {
    NodeId target;
    KeyId key;
    StorageEngine::Entry entry;
  };
  void store_hints(KeyId key, const StorageEngine::Entry& entry,
                   std::span<const NodeId> group);

  std::vector<NodeId> replica_group_of(KeyId key) const;
  void cache_store(KeyId key, const std::string& value);
  std::optional<std::string> cache_lookup(KeyId key);

  KvClusterOptions options_;
  std::unique_ptr<ReplicaPartitioner> partitioner_;
  std::vector<StorageEngine> storages_;
  std::vector<bool> alive_;
  std::unique_ptr<FrontEndCache> cache_;  // null when cache_capacity == 0
  std::unordered_map<KeyId, std::string> cache_values_;
  std::vector<std::vector<Hint>> hints_held_;  // per holder node
  std::uint64_t clock_ = 0;  // logical version clock
  std::uint64_t misses_since_sweep_ = 0;
  KvStats stats_;
};

}  // namespace scp
