// Live membership table fed by the failure detector and by JOIN/LEAVE
// administration. Thread-safe: the detector ticks on one reactor shard's
// loop thread while coordinators on every shard consult alive() when
// choosing replication fan-out targets.
//
// The epoch is bumped on every state transition; it is exported as a gauge
// and carried in kWriteReply acks to kJoin/kLeave, giving tests and
// operators a cheap "has the view settled" probe.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "cluster/types.h"

namespace scp::replication {

enum class NodeState : std::uint8_t {
  kUp,       ///< responding to pings
  kSuspect,  ///< missed recent pongs, still counted alive (sloppy quorum)
  kDown,     ///< declared failed by the detector
  kLeft,     ///< administratively removed (kLeave)
};

const char* to_string(NodeState state) noexcept;

struct MemberInfo {
  NodeId node = 0;
  NodeState state = NodeState::kUp;

  bool operator==(const MemberInfo&) const = default;
};

class Membership {
 public:
  /// Adds `node` as kUp, or revives it if already present. Bumps the epoch
  /// when anything changed.
  void add_node(NodeId node);

  /// Administrative leave: marks kLeft (the entry stays, so a later re-join
  /// revives it with history intact).
  void remove_node(NodeId node);

  /// Detector-driven transition. Returns true when the state changed (and
  /// the epoch was bumped).
  bool set_state(NodeId node, NodeState state);

  /// kLeft for unknown nodes.
  NodeState state(NodeId node) const;

  /// Counted toward quorums: kUp or kSuspect.
  bool alive(NodeId node) const;
  std::size_t alive_count() const;

  std::vector<MemberInfo> snapshot() const;

  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  MemberInfo* find_locked(NodeId node);
  const MemberInfo* find_locked(NodeId node) const;

  mutable std::mutex mutex_;
  std::vector<MemberInfo> members_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace scp::replication
