// Ping-based failure detector: pure single-threaded timing logic, driven by
// its owner (a backend server runs it on one reactor shard's loop via
// run_after, feeding ping sends and pong receipts in and applying the
// emitted transitions to the shared Membership table).
//
// Model: every `interval_s` each peer is due a ping; a peer whose last pong
// is older than `suspect_after_s` turns suspect (still alive for quorum
// purposes — sloppy quorums tolerate slow nodes), and older than
// `timeout_s` turns down. A pong from a down peer revives it. Keeping the
// logic free of threads, sockets and clocks makes every transition unit
// testable with synthetic timestamps.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/types.h"

namespace scp::replication {

struct FailureDetectorConfig {
  double interval_s = 0.1;        ///< ping cadence per peer
  double suspect_after_s = 0.25;  ///< missed pongs before kSuspect
  double timeout_s = 0.5;         ///< missed pongs before kDown
};

class PingFailureDetector {
 public:
  enum class Transition : std::uint8_t { kNone, kSuspect, kDown, kRecovered };

  struct Event {
    NodeId node;
    Transition transition;

    bool operator==(const Event&) const = default;
  };

  explicit PingFailureDetector(FailureDetectorConfig config = {})
      : config_(config) {}

  const FailureDetectorConfig& config() const noexcept { return config_; }

  /// Starts tracking `node`, counted up as of `now_s` (a grace period: a
  /// freshly added peer is not instantly down).
  void add_node(NodeId node, double now_s);
  void remove_node(NodeId node);
  bool tracks(NodeId node) const;

  /// Advances time. Peers due a ping are appended to `to_ping` (when
  /// non-null); state transitions crossed since the last tick are returned
  /// in tracking order.
  std::vector<Event> tick(double now_s, std::vector<NodeId>* to_ping);

  /// Records a pong. Returns the transition it caused (kRecovered when the
  /// peer was suspect/down, kNone otherwise).
  Transition record_pong(NodeId node, double now_s);

  bool down(NodeId node) const;
  bool suspect(NodeId node) const;

 private:
  struct Peer {
    NodeId node = 0;
    double last_pong_s = 0.0;
    double last_ping_s = -1.0;  // never pinged
    bool is_suspect = false;
    bool is_down = false;
  };

  Peer* find(NodeId node);
  const Peer* find(NodeId node) const;

  FailureDetectorConfig config_;
  std::vector<Peer> peers_;
};

}  // namespace scp::replication
