#include "replication/membership.h"

#include <algorithm>

namespace scp::replication {

const char* to_string(NodeState state) noexcept {
  switch (state) {
    case NodeState::kUp:
      return "up";
    case NodeState::kSuspect:
      return "suspect";
    case NodeState::kDown:
      return "down";
    case NodeState::kLeft:
      return "left";
  }
  return "?";
}

MemberInfo* Membership::find_locked(NodeId node) {
  for (auto& member : members_) {
    if (member.node == node) return &member;
  }
  return nullptr;
}

const MemberInfo* Membership::find_locked(NodeId node) const {
  for (const auto& member : members_) {
    if (member.node == node) return &member;
  }
  return nullptr;
}

void Membership::add_node(NodeId node) {
  std::lock_guard lock(mutex_);
  if (MemberInfo* member = find_locked(node)) {
    if (member->state == NodeState::kUp) return;
    member->state = NodeState::kUp;
  } else {
    members_.push_back({node, NodeState::kUp});
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void Membership::remove_node(NodeId node) {
  std::lock_guard lock(mutex_);
  MemberInfo* member = find_locked(node);
  if (member == nullptr || member->state == NodeState::kLeft) return;
  member->state = NodeState::kLeft;
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

bool Membership::set_state(NodeId node, NodeState state) {
  std::lock_guard lock(mutex_);
  MemberInfo* member = find_locked(node);
  if (member == nullptr || member->state == state) return false;
  member->state = state;
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

NodeState Membership::state(NodeId node) const {
  std::lock_guard lock(mutex_);
  const MemberInfo* member = find_locked(node);
  return member != nullptr ? member->state : NodeState::kLeft;
}

bool Membership::alive(NodeId node) const {
  const NodeState s = state(node);
  return s == NodeState::kUp || s == NodeState::kSuspect;
}

std::size_t Membership::alive_count() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(members_.begin(), members_.end(), [](const MemberInfo& m) {
        return m.state == NodeState::kUp || m.state == NodeState::kSuspect;
      }));
}

std::vector<MemberInfo> Membership::snapshot() const {
  std::lock_guard lock(mutex_);
  return members_;
}

}  // namespace scp::replication
