#include "replication/failure_detector.h"

#include <algorithm>

namespace scp::replication {

PingFailureDetector::Peer* PingFailureDetector::find(NodeId node) {
  for (auto& peer : peers_) {
    if (peer.node == node) return &peer;
  }
  return nullptr;
}

const PingFailureDetector::Peer* PingFailureDetector::find(NodeId node) const {
  for (const auto& peer : peers_) {
    if (peer.node == node) return &peer;
  }
  return nullptr;
}

void PingFailureDetector::add_node(NodeId node, double now_s) {
  if (Peer* peer = find(node)) {
    peer->last_pong_s = now_s;
    peer->last_ping_s = -1.0;
    peer->is_suspect = false;
    peer->is_down = false;
    return;
  }
  Peer peer;
  peer.node = node;
  peer.last_pong_s = now_s;
  peers_.push_back(peer);
}

void PingFailureDetector::remove_node(NodeId node) {
  peers_.erase(std::remove_if(peers_.begin(), peers_.end(),
                              [node](const Peer& p) { return p.node == node; }),
               peers_.end());
}

bool PingFailureDetector::tracks(NodeId node) const {
  return find(node) != nullptr;
}

std::vector<PingFailureDetector::Event> PingFailureDetector::tick(
    double now_s, std::vector<NodeId>* to_ping) {
  std::vector<Event> events;
  for (auto& peer : peers_) {
    if (to_ping != nullptr &&
        (peer.last_ping_s < 0.0 ||
         now_s - peer.last_ping_s >= config_.interval_s)) {
      to_ping->push_back(peer.node);
      peer.last_ping_s = now_s;
    }
    const double silent_s = now_s - peer.last_pong_s;
    if (!peer.is_down && silent_s >= config_.timeout_s) {
      peer.is_down = true;
      peer.is_suspect = false;
      events.push_back({peer.node, Transition::kDown});
    } else if (!peer.is_down && !peer.is_suspect &&
               silent_s >= config_.suspect_after_s) {
      peer.is_suspect = true;
      events.push_back({peer.node, Transition::kSuspect});
    }
  }
  return events;
}

PingFailureDetector::Transition PingFailureDetector::record_pong(
    NodeId node, double now_s) {
  Peer* peer = find(node);
  if (peer == nullptr) return Transition::kNone;
  peer->last_pong_s = now_s;
  const bool recovered = peer->is_down || peer->is_suspect;
  peer->is_down = false;
  peer->is_suspect = false;
  return recovered ? Transition::kRecovered : Transition::kNone;
}

bool PingFailureDetector::down(NodeId node) const {
  const Peer* peer = find(node);
  return peer != nullptr && peer->is_down;
}

bool PingFailureDetector::suspect(NodeId node) const {
  const Peer* peer = find(node);
  return peer != nullptr && peer->is_suspect;
}

}  // namespace scp::replication
