#include "replication/quorum.h"

namespace scp::replication {

const ReadResponse* ReadQuorum::newest() const {
  const ReadResponse* winner = nullptr;
  for (const auto& response : responses_) {
    if (!response.found) continue;
    if (winner == nullptr || response.version > winner->version) {
      winner = &response;
    }
  }
  return winner;
}

std::vector<NodeId> ReadQuorum::stale_nodes() const {
  const ReadResponse* winner = newest();
  std::vector<NodeId> stale;
  if (winner == nullptr) return stale;
  for (const auto& response : responses_) {
    if (!response.found || response.version < winner->version) {
      stale.push_back(response.node);
    }
  }
  return stale;
}

}  // namespace scp::replication
