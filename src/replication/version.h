// VersionClock: node-unique monotonic versions for last-writer-wins.
//
// A version packs a Lamport-style logical counter with the coordinator's
// node id in the low bits:
//
//   version = (logical << kNodeBits) | node_id
//
// so versions minted by different coordinators are totally ordered and never
// collide (equal logical counters tie-break on node id), which is all
// last-writer-wins needs. observe() folds versions seen from peers into the
// counter (fetch-max), so a coordinator that just received a replica apply
// at version v will mint its next local write strictly above v — without it,
// a restarted node would reissue old versions and its writes would silently
// lose to stale data.
//
// Backends preload their owned keys at version 1 (logical 0); the first
// minted version is at least (1 << kNodeBits), so every real write
// supersedes the preload.
#pragma once

#include <atomic>
#include <cstdint>

#include "cluster/types.h"

namespace scp::replication {

class VersionClock {
 public:
  /// Low bits carrying the minting node id; bounds the cluster at 1024
  /// nodes, far above anything the serving tier spawns.
  static constexpr std::uint32_t kNodeBits = 10;
  static constexpr std::uint32_t kMaxNode = (1u << kNodeBits) - 1;

  explicit VersionClock(NodeId node) noexcept : node_(node & kMaxNode) {}

  /// Mints the next version. Thread-safe; strictly increasing per node.
  std::uint64_t next() noexcept {
    const std::uint64_t logical =
        counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    return (logical << kNodeBits) | node_;
  }

  /// Folds a peer-observed version into the clock so later local writes
  /// order after it. Thread-safe fetch-max.
  void observe(std::uint64_t version) noexcept {
    const std::uint64_t seen = version >> kNodeBits;
    std::uint64_t current = counter_.load(std::memory_order_relaxed);
    while (seen > current &&
           !counter_.compare_exchange_weak(current, seen,
                                           std::memory_order_relaxed)) {
    }
  }

  static NodeId node_of(std::uint64_t version) noexcept {
    return static_cast<NodeId>(version & kMaxNode);
  }
  static std::uint64_t logical_of(std::uint64_t version) noexcept {
    return version >> kNodeBits;
  }

 private:
  NodeId node_;
  std::atomic<std::uint64_t> counter_{0};
};

}  // namespace scp::replication
