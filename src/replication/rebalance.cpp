#include "replication/rebalance.h"

#include <algorithm>

namespace scp::replication {

std::vector<HandoffItem> plan_handoff(
    const std::function<void(KeyId, std::span<NodeId>)>& old_group_of,
    const ReplicaPartitioner& new_partitioner, NodeId self,
    const std::function<bool(NodeId)>& alive, std::span<const KeyId> keys) {
  std::vector<HandoffItem> plan;
  const std::uint32_t d = new_partitioner.replication();
  std::vector<NodeId> old_group(d);
  std::vector<NodeId> new_group(d);
  for (const KeyId key : keys) {
    old_group_of(key, old_group);
    new_partitioner.replica_group(key, new_group);

    // One streamer per key: the first alive old holder. Everyone runs the
    // same deterministic election, so exactly one node streams each key.
    NodeId streamer = old_group[0];
    bool have_streamer = false;
    for (const NodeId node : old_group) {
      if (alive(node)) {
        streamer = node;
        have_streamer = true;
        break;
      }
    }
    if (!have_streamer || streamer != self) continue;

    for (const NodeId target : new_group) {
      if (std::find(old_group.begin(), old_group.end(), target) ==
          old_group.end()) {
        plan.push_back({key, target});
      }
    }
  }
  return plan;
}

}  // namespace scp::replication
