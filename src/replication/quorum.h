// Quorum accounting for coordinator-driven sloppy-quorum operations.
//
// Pure counting state machines — no I/O, no threads. The backend server
// keeps one per in-flight client operation on the coordinating shard's loop
// thread and feeds acks/losses in as replica connections answer or die:
//
//   WriteQuorum — commits once `need` (W) replicas durably applied the
//                 write; fails as soon as the remaining outstanding replies
//                 cannot reach W (fail-fast, no pointless timeout wait).
//   ReadQuorum  — resolves once `need` (R) versioned responses arrived and
//                 picks the last-writer-wins winner; stale_nodes() lists the
//                 responders that need read-repair.
//
// With R+W>N every read quorum intersects every committed write quorum, so
// the LWW winner over any R responses is at least as new as the last
// committed write — the acceptance property the loopback tests prove over
// real sockets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/types.h"

namespace scp::replication {

enum class QuorumState : std::uint8_t { kPending, kDone, kFailed };

class WriteQuorum {
 public:
  /// `need` acks required out of at most `outstanding` possible (both
  /// include the coordinator's own local apply, which the owner feeds in as
  /// the first on_ack()).
  WriteQuorum(std::uint32_t need, std::uint32_t outstanding)
      : need_(need), outstanding_(outstanding) {
    refresh();
  }

  QuorumState on_ack() {
    if (state_ == QuorumState::kPending) {
      ++acks_;
      --outstanding_;
      refresh();
    }
    return state_;
  }

  /// A replica definitively will not ack (connection down, kError).
  QuorumState on_lost() {
    if (state_ == QuorumState::kPending && outstanding_ > 0) {
      --outstanding_;
      refresh();
    }
    return state_;
  }

  QuorumState state() const noexcept { return state_; }
  std::uint32_t acks() const noexcept { return acks_; }

 private:
  void refresh() {
    if (acks_ >= need_) {
      state_ = QuorumState::kDone;
    } else if (acks_ + outstanding_ < need_) {
      state_ = QuorumState::kFailed;
    }
  }

  std::uint32_t need_;
  std::uint32_t acks_ = 0;
  std::uint32_t outstanding_;
  QuorumState state_ = QuorumState::kPending;
};

/// One replica's answer to a version read. A missing entry reports
/// found=false with version 0, which loses LWW to any real write.
struct ReadResponse {
  NodeId node = 0;
  bool found = false;
  bool tombstone = false;
  std::uint64_t version = 0;
  std::string value;
};

class ReadQuorum {
 public:
  ReadQuorum(std::uint32_t need, std::uint32_t outstanding)
      : need_(need), outstanding_(outstanding) {
    refresh();
  }

  QuorumState on_response(ReadResponse response) {
    if (state_ == QuorumState::kPending) {
      responses_.push_back(std::move(response));
      --outstanding_;
      refresh();
    }
    return state_;
  }

  QuorumState on_lost() {
    if (state_ == QuorumState::kPending && outstanding_ > 0) {
      --outstanding_;
      refresh();
    }
    return state_;
  }

  QuorumState state() const noexcept { return state_; }

  /// LWW winner among the collected responses: highest version, tombstones
  /// and live values alike. Null when no response carried an entry.
  const ReadResponse* newest() const;

  /// Responders strictly older than the winner (read-repair targets);
  /// includes not-found responders when a winner exists.
  std::vector<NodeId> stale_nodes() const;

  const std::vector<ReadResponse>& responses() const noexcept {
    return responses_;
  }

 private:
  void refresh() {
    if (responses_.size() >= need_) {
      state_ = QuorumState::kDone;
    } else if (responses_.size() + outstanding_ < need_) {
      state_ = QuorumState::kFailed;
    }
  }

  std::uint32_t need_;
  std::uint32_t outstanding_;
  std::vector<ReadResponse> responses_;
  QuorumState state_ = QuorumState::kPending;
};

}  // namespace scp::replication
