// Rebalance planning for ring membership changes.
//
// When a node joins or leaves the consistent-hash ring, each key's replica
// group shifts minimally (that is the point of the ring). The keys a node
// must stream out are exactly those whose *new* group contains nodes absent
// from the *old* group; to avoid d copies of every moved key crossing the
// wire, the first alive member of the old group is elected streamer and
// sends one kReplicate per (key, new member). Handoff applies are plain
// versioned LWW applies, so duplicate or reordered streams are harmless.
//
// Pure planning — the caller snapshots old groups before mutating the ring,
// then diffs against the new groups here. Old holders keep their copies
// (served-while-moving): a quorum read during the move still intersects at
// least one old holder, so nothing is unreadable mid-handoff.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "cluster/partitioner.h"
#include "cluster/types.h"

namespace scp::replication {

struct HandoffItem {
  KeyId key = 0;
  NodeId target = 0;

  bool operator==(const HandoffItem&) const = default;
};

/// The keys `self` must stream after a ring change, with their destinations.
/// `old_group_of` returns each key's replica group before the change (the
/// caller's snapshot); `alive` is the membership predicate used to elect the
/// streamer among old holders. `keys` is the candidate set to scan — a
/// backend passes the keys it currently stores.
std::vector<HandoffItem> plan_handoff(
    const std::function<void(KeyId, std::span<NodeId>)>& old_group_of,
    const ReplicaPartitioner& new_partitioner, NodeId self,
    const std::function<bool(NodeId)>& alive, std::span<const KeyId> keys);

}  // namespace scp::replication
