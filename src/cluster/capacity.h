// Capacity profile generators for heterogeneous clusters.
//
// The paper measures load only; real clusters have per-node service
// capacities r_i, and rarely identical ones (hardware generations, noisy
// neighbours). These helpers build capacity vectors for the heterogeneity
// ablation and the provisioner's capacity check, which must use the
// *minimum* capacity — the slowest node is what the adversary saturates
// first.
#pragma once

#include <cstdint>
#include <vector>

namespace scp {

/// All nodes at `capacity_qps`.
std::vector<double> uniform_capacities(std::uint32_t nodes,
                                       double capacity_qps);

/// Two hardware tiers: a `slow_fraction` of nodes (chosen deterministically
/// from `seed`) run at `slow_factor`x the base capacity (slow_factor < 1 for
/// older hardware). Requires 0 <= slow_fraction <= 1 and slow_factor > 0.
std::vector<double> two_tier_capacities(std::uint32_t nodes,
                                        double base_capacity_qps,
                                        double slow_factor,
                                        double slow_fraction,
                                        std::uint64_t seed);

}  // namespace scp
