// Cluster façade: n back-end nodes + a replica partitioner.
//
// Owns the node array and the partitioner and exposes the lookups both
// simulators need. Load *placement* (which replica of a group serves a key)
// is the selectors' job; the cluster only knows topology.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "cluster/node.h"
#include "cluster/partitioner.h"
#include "cluster/types.h"

namespace scp {

class Cluster {
 public:
  /// Builds `partitioner->node_count()` nodes, each with capacity
  /// `node_capacity_qps` (0 = unlimited, the paper's measurement setting).
  explicit Cluster(std::unique_ptr<ReplicaPartitioner> partitioner,
                   double node_capacity_qps = BackendNode::kUnlimitedCapacity);

  /// Heterogeneous capacities: `capacities[i]` is node i's r_i (0 =
  /// unlimited). Requires capacities.size() == partitioner->node_count().
  Cluster(std::unique_ptr<ReplicaPartitioner> partitioner,
          std::span<const double> capacities);

  /// Smallest finite node capacity; 0 when every node is unlimited.
  double min_capacity_qps() const noexcept;

  std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  std::uint32_t replication() const noexcept {
    return partitioner_->replication();
  }
  const ReplicaPartitioner& partitioner() const noexcept {
    return *partitioner_;
  }

  BackendNode& node(NodeId id) { return nodes_[id]; }
  const BackendNode& node(NodeId id) const { return nodes_[id]; }
  std::span<BackendNode> nodes() noexcept { return nodes_; }
  std::span<const BackendNode> nodes() const noexcept { return nodes_; }

  /// Fills `out` with the key's replica group (see ReplicaPartitioner).
  void replica_group(KeyId key, std::span<NodeId> out) const {
    partitioner_->replica_group(key, out);
  }

  /// Offered-rate vector across nodes (index = NodeId).
  std::vector<double> offered_rates() const;

  /// Maximum offered rate over all nodes; 0 for an idle cluster.
  double max_offered_rate() const noexcept;

  /// Number of nodes whose offered rate exceeds capacity (0 when nodes are
  /// uncapacitated).
  std::uint32_t saturated_node_count() const noexcept;

  /// Syncs node liveness from a fault view's alive flags (indexed by NodeId,
  /// 1 = up). Requires one entry per node. Topology is untouched — dead
  /// nodes keep their ids; the routing layer skips them.
  void apply_health(std::span<const std::uint8_t> alive) noexcept;

  /// Marks every node alive again (end of a faulted run).
  void restore_all_alive() noexcept;

  /// Nodes currently marked alive.
  std::uint32_t alive_node_count() const noexcept;

  /// Clears per-trial accounting on every node.
  void reset_accounting() noexcept;

 private:
  std::unique_ptr<ReplicaPartitioner> partitioner_;
  std::vector<BackendNode> nodes_;
};

}  // namespace scp
