// Back-end node model.
//
// A node is described by its query-handling capacity (r_i in the paper) and
// carries two kinds of accounting:
//   * rate accounting — expected offered load in queries/sec, used by the
//     rate simulator (the paper's level of abstraction);
//   * event accounting — arrival/served/dropped counters and queue state,
//     used by the discrete-time event simulator.
#pragma once

#include <cstdint>

#include "cluster/types.h"
#include "common/check.h"

namespace scp {

class BackendNode {
 public:
  /// `capacity_qps` = r_i, the maximum sustainable query rate. Use
  /// `kUnlimitedCapacity` for the paper's pure load-measurement setting.
  static constexpr double kUnlimitedCapacity = 0.0;

  explicit BackendNode(NodeId id, double capacity_qps = kUnlimitedCapacity)
      : id_(id), capacity_qps_(capacity_qps) {
    SCP_CHECK(capacity_qps >= 0.0);
  }

  NodeId id() const noexcept { return id_; }
  double capacity_qps() const noexcept { return capacity_qps_; }
  bool has_capacity_limit() const noexcept { return capacity_qps_ > 0.0; }

  // --- health --------------------------------------------------------------
  /// Fault-injection state (sim/fault.h): a dead node serves nothing and the
  /// routing layer skips it. Health is orthogonal to accounting — reset()
  /// does not revive a node; the simulators sync it from the fault view.
  bool alive() const noexcept { return alive_; }
  void set_alive(bool alive) noexcept { alive_ = alive; }

  // --- rate accounting -----------------------------------------------------
  double offered_rate() const noexcept { return offered_rate_; }
  void add_offered_rate(double qps) noexcept {
    SCP_DCHECK(qps >= 0.0);
    offered_rate_ += qps;
  }
  /// True iff the expected offered load exceeds capacity (a saturated node —
  /// the attack succeeded against this node).
  bool saturated() const noexcept {
    return has_capacity_limit() && offered_rate_ > capacity_qps_;
  }

  // --- event accounting ----------------------------------------------------
  std::uint64_t arrivals() const noexcept { return arrivals_; }
  std::uint64_t served() const noexcept { return served_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t queue_depth() const noexcept { return queue_depth_; }

  void record_arrival() noexcept { ++arrivals_; }
  void record_served(std::uint64_t count) noexcept { served_ += count; }
  void record_dropped(std::uint64_t count) noexcept { dropped_ += count; }
  void set_queue_depth(std::uint64_t depth) noexcept { queue_depth_ = depth; }

  /// Clears all accounting (both kinds) for a fresh trial.
  void reset() noexcept {
    offered_rate_ = 0.0;
    arrivals_ = 0;
    served_ = 0;
    dropped_ = 0;
    queue_depth_ = 0;
  }

 private:
  NodeId id_;
  double capacity_qps_;
  bool alive_ = true;
  double offered_rate_ = 0.0;
  std::uint64_t arrivals_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t queue_depth_ = 0;
};

}  // namespace scp
