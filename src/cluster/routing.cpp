#include "cluster/routing.h"

#include "common/check.h"

namespace scp {

std::size_t RandomSelector::select(KeyId /*key*/, std::span<const NodeId> group,
                                   std::span<const double> /*node_loads*/,
                                   Rng& rng) {
  SCP_DCHECK(!group.empty());
  return static_cast<std::size_t>(rng.uniform_u64(group.size()));
}

std::size_t RoundRobinSelector::select(KeyId key, std::span<const NodeId> group,
                                       std::span<const double> /*node_loads*/,
                                       Rng& /*rng*/) {
  SCP_DCHECK(!group.empty());
  const std::uint32_t turn = counters_[key]++;
  return turn % group.size();
}

std::size_t LeastLoadedSelector::select(KeyId /*key*/,
                                        std::span<const NodeId> group,
                                        std::span<const double> node_loads,
                                        Rng& rng) {
  SCP_DCHECK(!group.empty());
  return least_loaded_pick(group, node_loads, rng);
}

std::size_t PinnedLeastLoadedSelector::select(KeyId key,
                                              std::span<const NodeId> group,
                                              std::span<const double> node_loads,
                                              Rng& rng) {
  const auto it = pins_.find(key);
  if (it != pins_.end()) {
    return it->second;
  }
  const std::size_t pick = first_choice_.select(key, group, node_loads, rng);
  pins_.emplace(key, static_cast<std::uint32_t>(pick));
  return pick;
}

std::unique_ptr<ReplicaSelector> make_selector(const std::string& kind) {
  if (kind == "random") {
    return std::make_unique<RandomSelector>();
  }
  if (kind == "round-robin") {
    return std::make_unique<RoundRobinSelector>();
  }
  if (kind == "least-loaded") {
    return std::make_unique<LeastLoadedSelector>();
  }
  if (kind == "pinned") {
    return std::make_unique<PinnedLeastLoadedSelector>();
  }
  SCP_CHECK_MSG(
      false, "unknown selector kind (use random|round-robin|least-loaded|pinned)");
  return nullptr;
}

}  // namespace scp
