#include "cluster/routing.h"

#include <algorithm>

#include "common/check.h"

namespace scp {

std::size_t RandomSelector::select(KeyId /*key*/, std::span<const NodeId> group,
                                   std::span<const double> /*node_loads*/,
                                   Rng& rng) {
  SCP_DCHECK(!group.empty());
  return static_cast<std::size_t>(rng.uniform_u64(group.size()));
}

std::size_t RoundRobinSelector::select(KeyId key, std::span<const NodeId> group,
                                       std::span<const double> /*node_loads*/,
                                       Rng& /*rng*/) {
  SCP_DCHECK(!group.empty());
  const std::uint32_t turn = counters_[key]++;
  return turn % group.size();
}

std::size_t LeastLoadedSelector::select(KeyId /*key*/,
                                        std::span<const NodeId> group,
                                        std::span<const double> node_loads,
                                        Rng& rng) {
  SCP_DCHECK(!group.empty());
  return least_loaded_pick(group, node_loads, rng);
}

std::size_t PinnedLeastLoadedSelector::select(KeyId key,
                                              std::span<const NodeId> group,
                                              std::span<const double> node_loads,
                                              Rng& rng) {
  const auto it = pins_.find(key);
  if (it != pins_.end()) {
    return it->second;
  }
  const std::size_t pick = first_choice_.select(key, group, node_loads, rng);
  pins_.emplace(key, static_cast<std::uint32_t>(pick));
  return pick;
}

std::unique_ptr<ReplicaSelector> make_selector(const std::string& kind) {
  if (kind == "random") {
    return std::make_unique<RandomSelector>();
  }
  if (kind == "round-robin") {
    return std::make_unique<RoundRobinSelector>();
  }
  if (kind == "least-loaded") {
    return std::make_unique<LeastLoadedSelector>();
  }
  if (kind == "pinned") {
    return std::make_unique<PinnedLeastLoadedSelector>();
  }
  SCP_CHECK_MSG(
      false, "unknown selector kind (use random|round-robin|least-loaded|pinned)");
  return nullptr;
}

double RetryPolicy::backoff_s(std::uint32_t retry) const noexcept {
  double backoff = backoff_base_s;
  for (std::uint32_t i = 0; i < retry && backoff < backoff_cap_s; ++i) {
    backoff *= 2.0;
  }
  return std::min(backoff, backoff_cap_s);
}

std::uint32_t RetryPolicy::max_attempts() const noexcept {
  std::uint32_t attempts = 1;
  double waited = 0.0;
  for (std::uint32_t retry = 0; retry < max_retries; ++retry) {
    waited += backoff_s(retry);
    if (waited > timeout_s) {
      break;
    }
    ++attempts;
  }
  return attempts;
}

std::uint32_t alive_members(std::span<const NodeId> group,
                            std::span<const std::uint8_t> alive,
                            std::span<NodeId> out) noexcept {
  std::uint32_t count = 0;
  for (const NodeId node : group) {
    if (alive[node]) {
      out[count++] = node;
    }
  }
  return count;
}

}  // namespace scp
