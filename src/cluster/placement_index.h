// Precomputed key → replica-group placement table.
//
// Replica placement depends only on (partition seed, key, n, d), yet the
// Monte-Carlo sweeps recompute it millions of times: every figure bench walks
// the key space once per (sweep point, trial), paying a virtual
// ReplicaPartitioner::replica_group() — SipHash draws, a ring binary search,
// or an O(n) HRW scan — per key. A PlacementIndex front-loads that work into
// one flat, cache-friendly m × d table of NodeId built in a single pass over
// the key space, then serves any number of simulations with a contiguous
// row read. The table is immutable after construction, so one index can be
// shared read-only across trials, sweep points and threads.
//
// Memory is bounded explicitly: when m × d × sizeof(NodeId) exceeds the
// budget the index stays unmaterialized and fill_group() falls back to
// hashing on the fly through the partitioner, so callers can use the same
// code path at any scale and only pay memory where it buys speed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/partitioner.h"
#include "cluster/types.h"

namespace scp {

class PlacementIndex {
 public:
  /// Default materialization budget. 256 MiB covers m = 2e7 keys at d = 3 —
  /// an order of magnitude beyond the paper's largest key space.
  static constexpr std::uint64_t kDefaultMemoryBudget = 256ull << 20;

  /// Builds the placement table for keys [0, keys) from `partitioner`, which
  /// must outlive the index (it is also the fallback when the table does not
  /// fit the budget). Placement is read straight from the partitioner, so the
  /// index is bit-identical to calling replica_group() per key.
  PlacementIndex(const ReplicaPartitioner& partitioner, std::uint64_t keys,
                 std::uint64_t memory_budget_bytes = kDefaultMemoryBudget);

  /// True when the flat table was built (m × d × sizeof(NodeId) fit the
  /// budget); false means fill_group() hashes on the fly.
  bool materialized() const noexcept { return materialized_; }

  std::uint64_t keys() const noexcept { return keys_; }
  std::uint32_t replication() const noexcept { return replication_; }
  std::uint32_t node_count() const noexcept { return node_count_; }

  /// Bytes held by the materialized table (0 when unmaterialized).
  std::uint64_t memory_bytes() const noexcept {
    return table_.size() * sizeof(NodeId);
  }

  /// Bytes a table for (keys, replication) would need — what the budget is
  /// compared against.
  static std::uint64_t table_bytes(std::uint64_t keys,
                                   std::uint32_t replication) noexcept {
    return keys * replication * sizeof(NodeId);
  }

  /// Pointer to the key's d-entry replica group row. Requires materialized()
  /// and key < keys().
  const NodeId* group(KeyId key) const noexcept {
    return table_.data() + key * replication_;
  }

  /// Copies the key's replica group into `out` (size replication()), from
  /// the table when materialized, else via the partitioner.
  void fill_group(KeyId key, std::span<NodeId> out) const;

  const ReplicaPartitioner& partitioner() const noexcept {
    return *partitioner_;
  }

  /// Process-unique instance id (never 0). Lets caches keyed on an index —
  /// e.g. RateSimScratch's order-major row memo — distinguish a fresh index
  /// that happens to reuse a previous one's address.
  std::uint64_t id() const noexcept { return id_; }

 private:
  const ReplicaPartitioner* partitioner_;  // non-owning
  std::uint64_t keys_;
  std::uint32_t replication_;
  std::uint32_t node_count_;
  std::uint64_t id_;
  bool materialized_ = false;
  std::vector<NodeId> table_;  // row-major, keys_ rows of replication_ ids
};

}  // namespace scp
