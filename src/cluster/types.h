// Fundamental identifier types shared by the cluster, workload and
// simulation layers.
#pragma once

#include <cstdint>

namespace scp {

/// Identifier of a (key, value) item stored by the service. Keys are dense
/// in [0, m) for simulation purposes; the partitioner hashes them with a
/// secret key, so density leaks nothing to the adversary.
using KeyId = std::uint64_t;

/// Identifier of a back-end node, dense in [0, n).
using NodeId = std::uint32_t;

}  // namespace scp
