// Replica partitioners: the key → replica-group mapping.
//
// The paper's system model (Section II) requires randomized partitioning —
// a key is hashed with a mapping opaque to clients to select the d distinct
// back-end nodes that can serve it (its replica group), and the mapping is
// stable on the timescale of an attack ("costly to shift results").
//
// Three interchangeable implementations are provided:
//   * HashPartitioner       — keyed SipHash draws, the default and fastest;
//   * ConsistentHashRing    — classic ring with virtual nodes, successor-d
//                             placement (Chord/Dynamo style), supports node
//                             join/leave with minimal disruption;
//   * RendezvousPartitioner — highest-random-weight (HRW) top-d placement.
// All three give each key d *distinct* nodes and spread groups uniformly,
// which is what the balls-into-bins analysis requires; the ablation bench
// checks the bound is insensitive to this choice.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/types.h"
#include "common/hash.h"

namespace scp {

class ReplicaPartitioner {
 public:
  virtual ~ReplicaPartitioner() = default;

  /// Number of back-end nodes n.
  virtual std::uint32_t node_count() const noexcept = 0;
  /// Replication factor d (1 <= d <= n).
  virtual std::uint32_t replication() const noexcept = 0;
  /// Human-readable name for reports.
  virtual std::string name() const = 0;

  /// Writes the key's replica group — `replication()` distinct node ids —
  /// into `out`. Deterministic per key. Requires out.size() == replication().
  virtual void replica_group(KeyId key, std::span<NodeId> out) const = 0;

  /// Convenience allocation-returning form.
  std::vector<NodeId> replica_group(KeyId key) const;
};

/// Keyed-hash partitioner: node_i(key) = SipHash(secret, key ‖ i) mod n,
/// skipping duplicates. With a secret key this realizes Assumption 1
/// (the adversary cannot predict or bias groups).
class HashPartitioner final : public ReplicaPartitioner {
 public:
  HashPartitioner(std::uint32_t node_count, std::uint32_t replication,
                  std::uint64_t seed);

  std::uint32_t node_count() const noexcept override { return node_count_; }
  std::uint32_t replication() const noexcept override { return replication_; }
  std::string name() const override { return "hash"; }
  using ReplicaPartitioner::replica_group;
  void replica_group(KeyId key, std::span<NodeId> out) const override;

 private:
  std::uint32_t node_count_;
  std::uint32_t replication_;
  SipKey sip_key_;
};

/// Consistent-hash ring with virtual nodes. A key's group is the first d
/// *distinct physical* nodes encountered clockwise from hash(key).
class ConsistentHashRing final : public ReplicaPartitioner {
 public:
  /// `vnodes_per_node` virtual points per physical node (>= 1); more vnodes
  /// → more uniform arc ownership.
  ConsistentHashRing(std::uint32_t node_count, std::uint32_t replication,
                     std::uint32_t vnodes_per_node, std::uint64_t seed);

  /// Capacity-weighted ring: node i gets ⌈weights[i] · vnodes_per_node⌉
  /// virtual points (all weights > 0), so key ownership tracks capacity —
  /// the standard remedy for heterogeneous hardware (slow nodes own fewer
  /// arcs). Requires weights.size() == node_count.
  ConsistentHashRing(std::uint32_t node_count, std::uint32_t replication,
                     std::uint32_t vnodes_per_node,
                     std::span<const double> weights, std::uint64_t seed);

  std::uint32_t node_count() const noexcept override;
  std::uint32_t replication() const noexcept override { return replication_; }
  std::string name() const override { return "consistent-ring"; }
  using ReplicaPartitioner::replica_group;
  void replica_group(KeyId key, std::span<NodeId> out) const override;

  /// Adds a new physical node with this id; its vnodes join the ring.
  /// Requires the id not already present.
  void add_node(NodeId node);
  /// Removes a physical node and its vnodes. Requires >= replication()+1
  /// nodes present.
  void remove_node(NodeId node);
  bool contains_node(NodeId node) const;

 private:
  struct Point {
    std::uint64_t position;
    NodeId node;
    bool operator<(const Point& other) const noexcept {
      return position != other.position ? position < other.position
                                        : node < other.node;
    }
  };

  void insert_vnodes(NodeId node, std::uint32_t vnodes);

  std::uint32_t replication_;
  std::uint32_t vnodes_per_node_;
  SipKey sip_key_;
  std::vector<Point> ring_;           // sorted by position
  std::vector<NodeId> present_nodes_;  // sorted physical node ids
};

/// Rendezvous (highest-random-weight) partitioner: a key's group is the d
/// nodes with the largest SipHash(secret, key ‖ node) scores. O(n) per
/// lookup — used for correctness comparison, not for large sweeps.
class RendezvousPartitioner final : public ReplicaPartitioner {
 public:
  RendezvousPartitioner(std::uint32_t node_count, std::uint32_t replication,
                        std::uint64_t seed);

  std::uint32_t node_count() const noexcept override { return node_count_; }
  std::uint32_t replication() const noexcept override { return replication_; }
  std::string name() const override { return "rendezvous"; }
  using ReplicaPartitioner::replica_group;
  void replica_group(KeyId key, std::span<NodeId> out) const override;

 private:
  std::uint32_t node_count_;
  std::uint32_t replication_;
  SipKey sip_key_;
};

/// Factory helper used by benches: kind ∈ {"hash", "ring", "rendezvous"}.
std::unique_ptr<ReplicaPartitioner> make_partitioner(const std::string& kind,
                                                     std::uint32_t node_count,
                                                     std::uint32_t replication,
                                                     std::uint64_t seed);

}  // namespace scp
