#include "cluster/cluster.h"

#include <algorithm>

#include "common/check.h"

namespace scp {

Cluster::Cluster(std::unique_ptr<ReplicaPartitioner> partitioner,
                 double node_capacity_qps)
    : partitioner_(std::move(partitioner)) {
  SCP_CHECK(partitioner_ != nullptr);
  const std::uint32_t n = partitioner_->node_count();
  nodes_.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    nodes_.emplace_back(id, node_capacity_qps);
  }
}

Cluster::Cluster(std::unique_ptr<ReplicaPartitioner> partitioner,
                 std::span<const double> capacities)
    : partitioner_(std::move(partitioner)) {
  SCP_CHECK(partitioner_ != nullptr);
  const std::uint32_t n = partitioner_->node_count();
  SCP_CHECK_MSG(capacities.size() == n,
                "capacity vector must have one entry per node");
  nodes_.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    nodes_.emplace_back(id, capacities[id]);
  }
}

double Cluster::min_capacity_qps() const noexcept {
  double min_capacity = 0.0;
  bool any_limited = false;
  for (const auto& node : nodes_) {
    if (node.has_capacity_limit()) {
      min_capacity = any_limited ? std::min(min_capacity, node.capacity_qps())
                                 : node.capacity_qps();
      any_limited = true;
    }
  }
  return any_limited ? min_capacity : 0.0;
}

std::vector<double> Cluster::offered_rates() const {
  std::vector<double> rates;
  rates.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    rates.push_back(node.offered_rate());
  }
  return rates;
}

double Cluster::max_offered_rate() const noexcept {
  double max_rate = 0.0;
  for (const auto& node : nodes_) {
    max_rate = std::max(max_rate, node.offered_rate());
  }
  return max_rate;
}

std::uint32_t Cluster::saturated_node_count() const noexcept {
  std::uint32_t count = 0;
  for (const auto& node : nodes_) {
    if (node.saturated()) {
      ++count;
    }
  }
  return count;
}

void Cluster::apply_health(std::span<const std::uint8_t> alive) noexcept {
  SCP_CHECK_MSG(alive.size() == nodes_.size(),
                "health vector must have one entry per node");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].set_alive(alive[i] != 0);
  }
}

void Cluster::restore_all_alive() noexcept {
  for (auto& node : nodes_) {
    node.set_alive(true);
  }
}

std::uint32_t Cluster::alive_node_count() const noexcept {
  std::uint32_t count = 0;
  for (const auto& node : nodes_) {
    count += node.alive() ? 1 : 0;
  }
  return count;
}

void Cluster::reset_accounting() noexcept {
  for (auto& node : nodes_) {
    node.reset();
  }
}

}  // namespace scp
