#include "cluster/placement_index.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace scp {

namespace {

std::uint64_t next_index_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

PlacementIndex::PlacementIndex(const ReplicaPartitioner& partitioner,
                               std::uint64_t keys,
                               std::uint64_t memory_budget_bytes)
    : partitioner_(&partitioner),
      keys_(keys),
      replication_(partitioner.replication()),
      node_count_(partitioner.node_count()),
      id_(next_index_id()) {
  SCP_CHECK_MSG(replication_ >= 1, "partitioner must have replication >= 1");
  if (table_bytes(keys_, replication_) > memory_budget_bytes) {
    return;  // over budget: stay unmaterialized, hash on the fly
  }
  table_.resize(keys_ * replication_);
  for (KeyId key = 0; key < keys_; ++key) {
    partitioner_->replica_group(
        key, std::span<NodeId>(table_.data() + key * replication_,
                               replication_));
  }
  materialized_ = true;
}

void PlacementIndex::fill_group(KeyId key, std::span<NodeId> out) const {
  SCP_DCHECK(out.size() == replication_);
  if (materialized_) {
    SCP_DCHECK(key < keys_);
    const NodeId* row = group(key);
    std::copy(row, row + replication_, out.begin());
    return;
  }
  partitioner_->replica_group(key, out);
}

}  // namespace scp
