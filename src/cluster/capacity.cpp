#include "cluster/capacity.h"

#include "common/check.h"
#include "common/hash.h"

namespace scp {

std::vector<double> uniform_capacities(std::uint32_t nodes,
                                       double capacity_qps) {
  SCP_CHECK(nodes >= 1);
  SCP_CHECK(capacity_qps >= 0.0);
  return std::vector<double>(nodes, capacity_qps);
}

std::vector<double> two_tier_capacities(std::uint32_t nodes,
                                        double base_capacity_qps,
                                        double slow_factor,
                                        double slow_fraction,
                                        std::uint64_t seed) {
  SCP_CHECK(nodes >= 1);
  SCP_CHECK(base_capacity_qps > 0.0);
  SCP_CHECK(slow_factor > 0.0);
  SCP_CHECK(slow_fraction >= 0.0 && slow_fraction <= 1.0);
  std::vector<double> capacities(nodes, base_capacity_qps);
  // Compare the hash's top 53 bits against fraction·2^53: exact at the
  // endpoints (0 → never, 1 → always) and free of double→u64 overflow.
  const std::uint64_t threshold =
      static_cast<std::uint64_t>(slow_fraction * 9007199254740992.0);
  for (std::uint32_t node = 0; node < nodes; ++node) {
    if ((mix64(node ^ seed) >> 11) < threshold) {
      capacities[node] = base_capacity_qps * slow_factor;
    }
  }
  return capacities;
}

}  // namespace scp
