// Replica selection: which node of a key's replica group serves a request.
//
// The paper allows "random selection or round-robin" per query, and its
// analysis models the stable key → serving-node mapping as balls-into-bins
// with the power of d choices (each key lands on the least-loaded of its d
// replicas). The three selectors below realize those options; the routing
// ablation bench compares them.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "cluster/types.h"
#include "common/rng.h"

namespace scp {

class ReplicaSelector {
 public:
  virtual ~ReplicaSelector() = default;

  /// Returns the index (into `group`) of the replica that should serve this
  /// request. `node_loads[node]` is the current load of each node (offered
  /// rate or queue depth depending on the simulator); selectors that ignore
  /// load may ignore it.
  virtual std::size_t select(KeyId key, std::span<const NodeId> group,
                             std::span<const double> node_loads, Rng& rng) = 0;

  virtual std::string name() const = 0;

  /// True when the selector spreads a key's queries evenly across its group
  /// — in expectation (random) or exactly (round-robin). The rate simulator
  /// then assigns rate/d to every replica instead of picking one member.
  virtual bool splits_evenly() const noexcept { return false; }

  /// Clears any per-trial state (e.g. round-robin counters).
  virtual void reset() {}
};

/// Uniform random replica per request. Splits a key's load evenly across its
/// group in expectation.
class RandomSelector final : public ReplicaSelector {
 public:
  std::size_t select(KeyId key, std::span<const NodeId> group,
                     std::span<const double> node_loads, Rng& rng) override;
  std::string name() const override { return "random"; }
  bool splits_evenly() const noexcept override { return true; }
};

/// Per-key round-robin across the group. Splits a key's load exactly evenly
/// over time.
class RoundRobinSelector final : public ReplicaSelector {
 public:
  std::size_t select(KeyId key, std::span<const NodeId> group,
                     std::span<const double> node_loads, Rng& rng) override;
  std::string name() const override { return "round-robin"; }
  bool splits_evenly() const noexcept override { return true; }
  void reset() override { counters_.clear(); }

 private:
  std::unordered_map<KeyId, std::uint32_t> counters_;
};

/// The least-loaded pick shared by LeastLoadedSelector and the rate
/// simulator's indexed fast path. Both must consume the RNG identically —
/// tie-breaks draw from `rng` — so the fast path stays bit-identical to the
/// virtual-dispatch path. Returns the index into `group` of the least-loaded
/// member, ties broken uniformly at random (reservoir-style, one pass).
inline std::size_t least_loaded_pick(std::span<const NodeId> group,
                                     std::span<const double> node_loads,
                                     Rng& rng) noexcept {
  std::size_t best = 0;
  std::size_t tie_count = 1;
  for (std::size_t i = 1; i < group.size(); ++i) {
    const double load = node_loads[group[i]];
    const double best_load = node_loads[group[best]];
    if (load < best_load) {
      best = i;
      tie_count = 1;
    } else if (load == best_load) {
      ++tie_count;
      if (rng.uniform_u64(tie_count) == 0) {
        best = i;
      }
    }
  }
  return best;
}

/// Least-loaded replica (power of d choices), ties broken uniformly at
/// random. This is the paper's analytical model: sending each key to the
/// least-loaded member of its group.
class LeastLoadedSelector final : public ReplicaSelector {
 public:
  std::size_t select(KeyId key, std::span<const NodeId> group,
                     std::span<const double> node_loads, Rng& rng) override;
  std::string name() const override { return "least-loaded"; }
};

/// Sticky least-loaded: the first request for a key picks the least-loaded
/// replica, and every later request for that key goes to the same node.
/// This realizes the paper's system-model property 4 ("costly to shift
/// results" — the key → serving-node mapping is stable on the timescale of
/// an attack) at the per-request level, and is the event-simulator
/// counterpart of the rate simulator's balls-into-bins placement.
class PinnedLeastLoadedSelector final : public ReplicaSelector {
 public:
  std::size_t select(KeyId key, std::span<const NodeId> group,
                     std::span<const double> node_loads, Rng& rng) override;
  std::string name() const override { return "pinned"; }
  void reset() override { pins_.clear(); }

 private:
  LeastLoadedSelector first_choice_;
  std::unordered_map<KeyId, std::uint32_t> pins_;  // key → index in group
};

/// Factory: kind ∈ {"random", "round-robin", "least-loaded", "pinned"}.
std::unique_ptr<ReplicaSelector> make_selector(const std::string& kind);

/// Front-end retry behavior when a replica is unreachable (dead node or a
/// network-dropped request): capped exponential backoff between attempts and
/// a total per-request timeout. The defaults retry twice with 1 ms → 2 ms
/// backoff and give up after 500 ms of accumulated waiting.
struct RetryPolicy {
  std::uint32_t max_retries = 2;   ///< retries after the first attempt
  double backoff_base_s = 0.001;   ///< backoff before the first retry
  double backoff_cap_s = 0.100;    ///< exponential growth is capped here
  double timeout_s = 0.500;        ///< total backoff budget per request

  /// Backoff before the (retry+1)-th attempt: min(base·2^retry, cap).
  double backoff_s(std::uint32_t retry) const noexcept;

  /// Total attempts a request may make: 1 + every retry whose cumulative
  /// backoff still fits in timeout_s (never more than 1 + max_retries).
  /// Deterministic — both simulators precompute it once per run.
  std::uint32_t max_attempts() const noexcept;
};

/// Degraded-mode filter: writes the members of `group` whose `alive` flag is
/// set into `out` (order preserved — the surviving d' < d choices the
/// selector then picks among) and returns their count. `alive` is indexed by
/// NodeId (a FaultView's alive vector); `out` must hold group.size() slots.
std::uint32_t alive_members(std::span<const NodeId> group,
                            std::span<const std::uint8_t> alive,
                            std::span<NodeId> out) noexcept;

}  // namespace scp
