#include "cluster/partitioner.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace scp {
namespace {

void check_group_params(std::uint32_t node_count, std::uint32_t replication) {
  SCP_CHECK_MSG(node_count >= 1, "cluster needs at least one node");
  SCP_CHECK_MSG(replication >= 1, "replication factor must be >= 1");
  SCP_CHECK_MSG(replication <= node_count,
                "replication factor cannot exceed node count");
}

}  // namespace

std::vector<NodeId> ReplicaPartitioner::replica_group(KeyId key) const {
  std::vector<NodeId> group(replication());
  replica_group(key, std::span<NodeId>(group));
  return group;
}

// --- HashPartitioner ---------------------------------------------------------

HashPartitioner::HashPartitioner(std::uint32_t node_count,
                                 std::uint32_t replication, std::uint64_t seed)
    : node_count_(node_count),
      replication_(replication),
      sip_key_(sip_key_from_seed(seed)) {
  check_group_params(node_count, replication);
}

void HashPartitioner::replica_group(KeyId key, std::span<NodeId> out) const {
  SCP_DCHECK(out.size() == replication_);
  std::uint32_t filled = 0;
  std::uint64_t draw = 0;
  while (filled < replication_) {
    const std::uint64_t h = siphash24(sip_key_, key ^ (draw * 0x9e3779b97f4a7c15ULL + draw));
    ++draw;
    const NodeId candidate = static_cast<NodeId>(h % node_count_);
    bool duplicate = false;
    for (std::uint32_t i = 0; i < filled; ++i) {
      if (out[i] == candidate) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      out[filled++] = candidate;
    }
  }
}

// --- ConsistentHashRing ------------------------------------------------------

ConsistentHashRing::ConsistentHashRing(std::uint32_t node_count,
                                       std::uint32_t replication,
                                       std::uint32_t vnodes_per_node,
                                       std::uint64_t seed)
    : replication_(replication),
      vnodes_per_node_(vnodes_per_node),
      sip_key_(sip_key_from_seed(seed)) {
  check_group_params(node_count, replication);
  SCP_CHECK_MSG(vnodes_per_node >= 1, "need at least one vnode per node");
  ring_.reserve(static_cast<std::size_t>(node_count) * vnodes_per_node);
  present_nodes_.reserve(node_count);
  for (NodeId node = 0; node < node_count; ++node) {
    insert_vnodes(node, vnodes_per_node_);
    present_nodes_.push_back(node);
  }
  std::sort(ring_.begin(), ring_.end());
}

ConsistentHashRing::ConsistentHashRing(std::uint32_t node_count,
                                       std::uint32_t replication,
                                       std::uint32_t vnodes_per_node,
                                       std::span<const double> weights,
                                       std::uint64_t seed)
    : replication_(replication),
      vnodes_per_node_(vnodes_per_node),
      sip_key_(sip_key_from_seed(seed)) {
  check_group_params(node_count, replication);
  SCP_CHECK_MSG(vnodes_per_node >= 1, "need at least one vnode per node");
  SCP_CHECK_MSG(weights.size() == node_count,
                "need one weight per node");
  present_nodes_.reserve(node_count);
  for (NodeId node = 0; node < node_count; ++node) {
    SCP_CHECK_MSG(weights[node] > 0.0, "weights must be positive");
    const auto vnodes = static_cast<std::uint32_t>(
        std::ceil(weights[node] * static_cast<double>(vnodes_per_node)));
    insert_vnodes(node, std::max<std::uint32_t>(vnodes, 1));
    present_nodes_.push_back(node);
  }
  std::sort(ring_.begin(), ring_.end());
}

void ConsistentHashRing::insert_vnodes(NodeId node, std::uint32_t vnodes) {
  for (std::uint32_t v = 0; v < vnodes; ++v) {
    const std::uint64_t token =
        (static_cast<std::uint64_t>(node) << 32) | v;
    ring_.push_back(Point{siphash24(sip_key_, token ^ 0xc0ffee0000000000ULL),
                          node});
  }
}

std::uint32_t ConsistentHashRing::node_count() const noexcept {
  return static_cast<std::uint32_t>(present_nodes_.size());
}

void ConsistentHashRing::replica_group(KeyId key, std::span<NodeId> out) const {
  SCP_DCHECK(out.size() == replication_);
  SCP_DCHECK(!ring_.empty());
  const std::uint64_t h = siphash24(sip_key_, key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t pos) { return p.position < pos; });
  std::uint32_t filled = 0;
  for (std::size_t step = 0; step < ring_.size() && filled < replication_;
       ++step) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    const NodeId candidate = it->node;
    bool duplicate = false;
    for (std::uint32_t i = 0; i < filled; ++i) {
      if (out[i] == candidate) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      out[filled++] = candidate;
    }
    ++it;
  }
  SCP_CHECK_MSG(filled == replication_,
                "ring walk could not find enough distinct nodes");
}

void ConsistentHashRing::add_node(NodeId node) {
  SCP_CHECK_MSG(!contains_node(node), "node already present");
  insert_vnodes(node, vnodes_per_node_);
  std::sort(ring_.begin(), ring_.end());
  present_nodes_.insert(
      std::lower_bound(present_nodes_.begin(), present_nodes_.end(), node),
      node);
}

void ConsistentHashRing::remove_node(NodeId node) {
  SCP_CHECK_MSG(contains_node(node), "node not present");
  SCP_CHECK_MSG(present_nodes_.size() > replication_,
                "cannot drop below replication factor");
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [node](const Point& p) { return p.node == node; }),
              ring_.end());
  present_nodes_.erase(
      std::lower_bound(present_nodes_.begin(), present_nodes_.end(), node));
}

bool ConsistentHashRing::contains_node(NodeId node) const {
  return std::binary_search(present_nodes_.begin(), present_nodes_.end(), node);
}

// --- RendezvousPartitioner ---------------------------------------------------

RendezvousPartitioner::RendezvousPartitioner(std::uint32_t node_count,
                                             std::uint32_t replication,
                                             std::uint64_t seed)
    : node_count_(node_count),
      replication_(replication),
      sip_key_(sip_key_from_seed(seed)) {
  check_group_params(node_count, replication);
}

void RendezvousPartitioner::replica_group(KeyId key,
                                          std::span<NodeId> out) const {
  SCP_DCHECK(out.size() == replication_);
  // Maintain the top-d scores in a small insertion-sorted array; d is tiny
  // (typically <= 5) so this beats a heap.
  struct Scored {
    std::uint64_t score;
    NodeId node;
  };
  std::vector<Scored> best;
  best.reserve(replication_ + 1);
  for (NodeId node = 0; node < node_count_; ++node) {
    const std::uint64_t score =
        siphash24(sip_key_, key ^ (static_cast<std::uint64_t>(node) << 32 |
                                   0x5bd1e995U));
    if (best.size() < replication_ || score > best.back().score) {
      auto pos = std::find_if(
          best.begin(), best.end(),
          [score](const Scored& s) { return score > s.score; });
      best.insert(pos, Scored{score, node});
      if (best.size() > replication_) {
        best.pop_back();
      }
    }
  }
  for (std::uint32_t i = 0; i < replication_; ++i) {
    out[i] = best[i].node;
  }
}

// --- factory -----------------------------------------------------------------

std::unique_ptr<ReplicaPartitioner> make_partitioner(const std::string& kind,
                                                     std::uint32_t node_count,
                                                     std::uint32_t replication,
                                                     std::uint64_t seed) {
  if (kind == "hash") {
    return std::make_unique<HashPartitioner>(node_count, replication, seed);
  }
  if (kind == "ring") {
    // 64 vnodes/node keeps arc ownership within a few percent of uniform
    // without making ring construction dominate experiment setup.
    return std::make_unique<ConsistentHashRing>(node_count, replication,
                                                /*vnodes_per_node=*/64, seed);
  }
  if (kind == "rendezvous") {
    return std::make_unique<RendezvousPartitioner>(node_count, replication,
                                                   seed);
  }
  SCP_CHECK_MSG(false, "unknown partitioner kind (use hash|ring|rendezvous)");
  return nullptr;
}

}  // namespace scp
