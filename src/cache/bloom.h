// Bloom filter over 64-bit keys (TinyLFU's "doorkeeper").
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/types.h"

namespace scp {

class BloomFilter {
 public:
  /// Sized for `expected_items` at `target_fpp` false-positive probability
  /// using the standard m = -n·ln(p)/ln(2)² and k = (m/n)·ln(2) formulas.
  BloomFilter(std::size_t expected_items, double target_fpp,
              std::uint64_t seed);

  /// Inserts the key; returns true if it *might* have been present already
  /// (i.e. all probed bits were already set).
  bool add(KeyId key);

  /// True if the key might be present; false means definitely absent.
  bool maybe_contains(KeyId key) const;

  void clear();

  std::size_t bit_count() const noexcept { return bit_count_; }
  std::uint32_t hash_count() const noexcept { return hash_count_; }
  std::uint64_t inserted_count() const noexcept { return inserted_; }

  /// Estimated current false-positive probability given the fill ratio.
  double estimated_fpp() const noexcept;

 private:
  // Double hashing: probe_i = h1 + i·h2 (Kirsch–Mitzenmacher).
  void probe_positions(KeyId key, std::uint64_t& h1, std::uint64_t& h2) const;
  bool test_bit(std::size_t pos) const noexcept;
  void set_bit(std::size_t pos) noexcept;

  std::size_t bit_count_;
  std::uint32_t hash_count_;
  std::uint64_t seed_;
  std::uint64_t inserted_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace scp
