#include "cache/tinylfu_cache.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace scp {
namespace {

std::size_t window_capacity_for(std::size_t capacity, double fraction) {
  if (capacity == 0) {
    return 0;
  }
  const auto w = static_cast<std::size_t>(
      std::ceil(static_cast<double>(capacity) * fraction));
  // Window needs at least one slot; main keeps the rest (possibly zero for
  // capacity == 1).
  return std::clamp<std::size_t>(w, 1, capacity);
}

}  // namespace

TinyLfuCache::TinyLfuCache(std::size_t capacity, Options options)
    : capacity_(capacity),
      window_capacity_(window_capacity_for(capacity, options.window_fraction)),
      sample_size_(options.sample_size != 0
                       ? options.sample_size
                       : std::max<std::uint64_t>(10 * capacity, 1024)),
      window_(std::make_unique<LruCache>(window_capacity_)),
      main_(std::make_unique<SlruCache>(capacity - window_capacity_,
                                        options.protected_fraction)),
      doorkeeper_(std::max<std::size_t>(sample_size_, 64), 0.01, options.seed),
      sketch_(CountMinSketch::for_error(
          /*epsilon=*/1.0 / std::max<double>(static_cast<double>(capacity), 8.0),
          /*delta=*/0.01, options.seed ^ 0xabcdef1234567890ULL)) {
  SCP_CHECK(options.window_fraction >= 0.0 && options.window_fraction <= 1.0);
}

std::size_t TinyLfuCache::size() const noexcept {
  return window_->size() + main_->size();
}

void TinyLfuCache::record_access(KeyId key) {
  // Doorkeeper absorbs the first occurrence; repeat occurrences go to the
  // sketch. estimated_frequency() adds the doorkeeper bit back in.
  if (doorkeeper_.maybe_contains(key)) {
    sketch_.add(key);
  } else {
    doorkeeper_.add(key);
  }
  if (++accesses_since_reset_ >= sample_size_) {
    sketch_.halve();
    doorkeeper_.clear();
    accesses_since_reset_ = 0;
  }
}

std::uint32_t TinyLfuCache::estimated_frequency(KeyId key) const {
  return sketch_.estimate(key) + (doorkeeper_.maybe_contains(key) ? 1 : 0);
}

bool TinyLfuCache::access(KeyId key) {
  if (capacity_ == 0) {
    return false;
  }
  record_access(key);
  if (window_->touch(key)) {
    return true;
  }
  if (main_->contains(key)) {
    return main_->access(key);
  }
  // Miss: the key enters the window; the window's LRU victim (if any)
  // competes for admission to main on estimated frequency.
  const std::optional<KeyId> candidate = window_->insert(key);
  if (!candidate.has_value() || main_->capacity() == 0) {
    return false;
  }
  if (main_->size() < main_->capacity()) {
    main_->insert_probation(*candidate);
    return false;
  }
  const KeyId victim = main_->eviction_victim();
  if (estimated_frequency(*candidate) > estimated_frequency(victim)) {
    main_->evict_one();
    main_->insert_probation(*candidate);
  }
  return false;
}

bool TinyLfuCache::contains(KeyId key) const {
  return window_->contains(key) || main_->contains(key);
}

bool TinyLfuCache::invalidate(KeyId key) {
  // Frequency history is deliberately kept: invalidation removes the stale
  // *copy*, not the evidence of popularity.
  if (window_->invalidate(key)) {
    return true;
  }
  return main_->invalidate(key);
}

void TinyLfuCache::clear() {
  window_->clear();
  main_->clear();
  doorkeeper_.clear();
  sketch_.clear();
  accesses_since_reset_ = 0;
}

}  // namespace scp
