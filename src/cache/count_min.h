// Count-Min sketch with conservative update and periodic aging.
//
// Approximate frequency counting for TinyLFU admission: estimate(k) never
// underestimates the true count (within one aging window) and overestimates
// by at most ε·N with probability 1-δ, where ε = e/width and δ = e^-depth.
// The `halve()` aging operation divides all counters by two so stale
// popularity decays (TinyLFU's "reset" operation).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/types.h"

namespace scp {

class CountMinSketch {
 public:
  /// `width` counters per row, `depth` rows. Total memory = width·depth·4 B.
  CountMinSketch(std::size_t width, std::size_t depth, std::uint64_t seed);

  /// Sizes the sketch for the standard (ε, δ) guarantee.
  static CountMinSketch for_error(double epsilon, double delta,
                                  std::uint64_t seed);

  /// Adds `count` to the key. Conservative update: only raises the rows that
  /// currently hold the minimum, tightening overestimation.
  void add(KeyId key, std::uint32_t count = 1);

  /// Point estimate: min over rows. Never underestimates.
  std::uint32_t estimate(KeyId key) const;

  /// Divides all counters by two (aging). Total adds counter is also halved.
  void halve();

  void clear();

  std::size_t width() const noexcept { return width_; }
  std::size_t depth() const noexcept { return depth_; }
  /// Total of all add() counts since the last clear(), halved by halve().
  std::uint64_t total_added() const noexcept { return total_added_; }

 private:
  std::size_t index(std::size_t row, KeyId key) const noexcept;

  std::size_t width_;
  std::size_t depth_;
  std::uint64_t seed_;
  std::uint64_t total_added_ = 0;
  std::vector<std::uint32_t> counters_;  // row-major depth × width
};

}  // namespace scp
