#include "cache/perfect_cache.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "workload/distribution.h"

namespace scp {

PerfectCache::PerfectCache(std::size_t capacity, std::span<const KeyId> keys,
                           std::span<const double> probabilities)
    : capacity_(capacity) {
  SCP_CHECK_MSG(keys.size() == probabilities.size(),
                "keys/probabilities size mismatch");
  build(keys, probabilities);
  detect_prefix();
}

PerfectCache::PerfectCache(std::size_t capacity,
                           const QueryDistribution& distribution)
    : capacity_(capacity) {
  // Keys are popularity ranks, so the top-c keys are simply 0 … c-1.
  const std::uint64_t take =
      std::min<std::uint64_t>(capacity, distribution.size());
  cached_.reserve(take * 2);
  for (KeyId key = 0; key < take; ++key) {
    cached_.insert(key);
  }
  prefix_ = take;
}

void PerfectCache::build(std::span<const KeyId> keys,
                         std::span<const double> probabilities) {
  const std::size_t take = std::min(capacity_, keys.size());
  if (take == 0) {
    return;
  }
  // Partial sort indices by probability (desc), breaking ties by key id so
  // the choice is deterministic.
  std::vector<std::size_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(take),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (probabilities[a] != probabilities[b]) {
                        return probabilities[a] > probabilities[b];
                      }
                      return keys[a] < keys[b];
                    });
  cached_.reserve(take * 2);
  for (std::size_t i = 0; i < take; ++i) {
    cached_.insert(keys[order[i]]);
  }
}

void PerfectCache::detect_prefix() {
  // The cached set is a prefix iff its keys are exactly {0 … size-1}; since
  // members are distinct, max == size-1 is sufficient.
  KeyId max_key = 0;
  for (const KeyId key : cached_) {
    max_key = std::max(max_key, key);
  }
  if (cached_.empty()) {
    prefix_ = 0;
  } else if (max_key == cached_.size() - 1) {
    prefix_ = cached_.size();
  }
}

}  // namespace scp
