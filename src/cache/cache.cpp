#include "cache/cache.h"

#include "cache/lfu_cache.h"
#include "cache/lru_cache.h"
#include "cache/slru_cache.h"
#include "cache/tinylfu_cache.h"
#include "common/check.h"

namespace scp {

std::unique_ptr<FrontEndCache> make_cache(const std::string& kind,
                                          std::size_t capacity) {
  if (kind == "lru") {
    return std::make_unique<LruCache>(capacity);
  }
  if (kind == "lfu") {
    return std::make_unique<LfuCache>(capacity);
  }
  if (kind == "slru") {
    return std::make_unique<SlruCache>(capacity);
  }
  if (kind == "tinylfu") {
    return std::make_unique<TinyLfuCache>(capacity);
  }
  SCP_CHECK_MSG(false, "unknown cache kind (use lru|lfu|slru|tinylfu)");
  return nullptr;
}

}  // namespace scp
