// A tier of independent front-end caches.
//
// The paper assumes a single front-end whose cache "fits in the L3 of a
// fast CPU". Deployments that outgrow one load balancer run k front-ends,
// clients spread uniformly across them, each with its own cache learning
// independently. Because every front-end sees (a thinned sample of) the
// same distribution, all k caches converge to the *same* hot head — the
// per-front-end cache must therefore hold the full c* entries; splitting a
// c*-sized budget k ways gives each front-end only c*/k distinct coverage
// and re-opens the attack. The frontend-tier ablation measures exactly
// that.
//
// Implements FrontEndCache so the event simulator can drive it directly:
// each access lands on a front-end chosen uniformly (client affinity is
// random with respect to keys).
#pragma once

#include <memory>
#include <vector>

#include "cache/cache.h"
#include "common/rng.h"

namespace scp {

class FrontEndTier final : public FrontEndCache {
 public:
  /// `frontends` independent caches of `per_cache_capacity` entries each,
  /// all running `policy` (lru | lfu | slru | tinylfu).
  FrontEndTier(std::uint32_t frontends, std::size_t per_cache_capacity,
               const std::string& policy, std::uint64_t seed);

  /// Total entries across the tier (k · per-cache capacity).
  std::size_t capacity() const noexcept override;
  /// Total entries currently cached across the tier (duplicates counted —
  /// the same key cached on every front-end occupies k slots).
  std::size_t size() const noexcept override;
  std::string name() const override;

  /// Routes the query to a uniformly random front-end and accesses its
  /// cache: a hit on *that* front-end serves the query.
  bool access(KeyId key) override;

  /// True iff any front-end caches the key.
  bool contains(KeyId key) const override;

  void clear() override;

  /// Coherence: a write must purge the key from *every* front-end.
  bool invalidate(KeyId key) override;

  // --- tier introspection -------------------------------------------------
  std::uint32_t frontend_count() const noexcept {
    return static_cast<std::uint32_t>(caches_.size());
  }
  const FrontEndCache& frontend(std::uint32_t index) const {
    return *caches_[index];
  }
  /// How many front-ends currently cache `key` (duplication of the hot
  /// head across the tier). FrontEndCache does not enumerate contents, so
  /// tier-wide distinct coverage is measured by probing this over a key
  /// range of interest.
  std::uint32_t replication_of(KeyId key) const;

 private:
  std::vector<std::unique_ptr<FrontEndCache>> caches_;
  std::string policy_;
  Rng rng_;
};

}  // namespace scp
