#include "cache/slru_cache.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace scp {

SlruCache::SlruCache(std::size_t capacity, double protected_fraction)
    : capacity_(capacity) {
  SCP_CHECK(protected_fraction >= 0.0 && protected_fraction <= 1.0);
  protected_capacity_ = static_cast<std::size_t>(
      std::floor(static_cast<double>(capacity) * protected_fraction));
  // Keep at least one probation slot when the cache is non-trivial, so new
  // keys always have a way in.
  if (capacity >= 1 && protected_capacity_ >= capacity) {
    protected_capacity_ = capacity - 1;
  }
  index_.reserve(capacity * 2);
}

bool SlruCache::access(KeyId key) {
  if (capacity_ == 0) {
    return false;
  }
  const auto it = index_.find(key);
  if (it == index_.end()) {
    if (index_.size() >= capacity_) {
      evict_one();
    }
    insert_probation(key);
    return false;
  }
  Entry& entry = it->second;
  if (entry.segment == Segment::kProtected) {
    protected_.splice(protected_.begin(), protected_, entry.position);
    entry.position = protected_.begin();
    return true;
  }
  // Probation hit → promote to protected, demoting its LRU if full.
  probation_.erase(entry.position);
  if (protected_capacity_ == 0) {
    // Degenerate split: protected segment disabled, stay in probation.
    probation_.push_front(key);
    entry.position = probation_.begin();
    return true;
  }
  if (protected_.size() >= protected_capacity_) {
    const KeyId demoted = protected_.back();
    protected_.pop_back();
    probation_.push_front(demoted);
    auto& demoted_entry = index_.at(demoted);
    demoted_entry.segment = Segment::kProbation;
    demoted_entry.position = probation_.begin();
  }
  protected_.push_front(key);
  entry.segment = Segment::kProtected;
  entry.position = protected_.begin();
  return true;
}

bool SlruCache::contains(KeyId key) const {
  return index_.find(key) != index_.end();
}

bool SlruCache::invalidate(KeyId key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  (it->second.segment == Segment::kProbation ? probation_ : protected_)
      .erase(it->second.position);
  index_.erase(it);
  return true;
}

void SlruCache::clear() {
  probation_.clear();
  protected_.clear();
  index_.clear();
}

KeyId SlruCache::eviction_victim() const {
  SCP_CHECK_MSG(!index_.empty(), "no victim in an empty cache");
  return !probation_.empty() ? probation_.back() : protected_.back();
}

void SlruCache::evict_one() {
  SCP_CHECK_MSG(!index_.empty(), "cannot evict from an empty cache");
  if (!probation_.empty()) {
    index_.erase(probation_.back());
    probation_.pop_back();
  } else {
    index_.erase(protected_.back());
    protected_.pop_back();
  }
}

void SlruCache::insert_probation(KeyId key) {
  SCP_DCHECK(index_.find(key) == index_.end());
  SCP_DCHECK(index_.size() < capacity_);
  probation_.push_front(key);
  index_.emplace(key, Entry{Segment::kProbation, probation_.begin()});
}

}  // namespace scp
