// Segmented LRU (probation + protected) cache.
//
// New keys enter the probation segment; a hit in probation promotes to the
// protected segment, whose overflow demotes back to probation's MRU end.
// This shields proven-popular keys from scan traffic — the property
// W-TinyLFU builds on.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/cache.h"

namespace scp {

class SlruCache final : public FrontEndCache {
 public:
  /// `protected_fraction` of the capacity is reserved for the protected
  /// segment (default 0.8, the common SLRU split).
  explicit SlruCache(std::size_t capacity, double protected_fraction = 0.8);

  std::size_t capacity() const noexcept override { return capacity_; }
  std::size_t size() const noexcept override { return index_.size(); }
  std::string name() const override { return "slru"; }

  bool access(KeyId key) override;
  bool contains(KeyId key) const override;
  void clear() override;
  bool invalidate(KeyId key) override;

  // Introspection for tests and for TinyLFU's eviction-victim query.
  std::size_t probation_size() const noexcept { return probation_.size(); }
  std::size_t protected_size() const noexcept { return protected_.size(); }
  /// The key that would be evicted next (probation LRU, falling back to
  /// protected LRU). Requires size() > 0.
  KeyId eviction_victim() const;
  /// Removes exactly one entry: the eviction victim. Requires size() > 0.
  void evict_one();
  /// Inserts `key` into probation (evicting if at capacity). Requires the
  /// key not to be present; used by TinyLFU after an admission decision.
  void insert_probation(KeyId key);

 private:
  enum class Segment { kProbation, kProtected };
  struct Entry {
    Segment segment;
    std::list<KeyId>::iterator position;
  };

  std::size_t capacity_;
  std::size_t protected_capacity_;
  std::list<KeyId> probation_;  // front = MRU
  std::list<KeyId> protected_;  // front = MRU
  std::unordered_map<KeyId, Entry> index_;
};

}  // namespace scp
