// Perfect popularity cache — the paper's Assumption 2 as an oracle.
//
// Given the true query distribution, it permanently caches the c most
// popular keys (ties broken by key id, matching the convention that the
// distribution is listed in non-increasing popularity order). Accesses never
// change its contents.
#pragma once

#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "cache/cache.h"

namespace scp {

class QueryDistribution;

class PerfectCache final : public FrontEndCache {
 public:
  /// Caches the `capacity` keys with the largest probabilities among
  /// (`keys[i]`, `probabilities[i]`) pairs. Requires equal-length spans.
  PerfectCache(std::size_t capacity, std::span<const KeyId> keys,
               std::span<const double> probabilities);

  /// Convenience: build from a QueryDistribution (keys implicitly 0…m-1 in
  /// non-increasing probability order).
  PerfectCache(std::size_t capacity, const QueryDistribution& distribution);

  std::size_t capacity() const noexcept override { return capacity_; }
  std::size_t size() const noexcept override { return cached_.size(); }
  std::string name() const override { return "perfect"; }

  bool access(KeyId key) override { return contains(key); }
  bool contains(KeyId key) const override {
    return cached_.find(key) != cached_.end();
  }
  /// The oracle's cached set is a key prefix whenever the inputs are
  /// rank-canonical (always for the distribution constructor), letting the
  /// rate simulator's fast path skip the per-key set lookup.
  std::optional<std::uint64_t> cached_prefix() const override {
    return prefix_;
  }
  /// No-op: the oracle's contents are its definition (the true top-c keys),
  /// not state learned from traffic, so a fresh trial starts identical.
  void clear() override {}

 private:
  void build(std::span<const KeyId> keys, std::span<const double> probabilities);
  void detect_prefix();

  std::size_t capacity_;
  std::unordered_set<KeyId> cached_;
  std::optional<std::uint64_t> prefix_;
};

}  // namespace scp
