#include "cache/count_min.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/check.h"
#include "common/hash.h"

namespace scp {

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  SCP_CHECK_MSG(width >= 1 && depth >= 1, "sketch needs width, depth >= 1");
  counters_.assign(width * depth, 0);
}

CountMinSketch CountMinSketch::for_error(double epsilon, double delta,
                                         std::uint64_t seed) {
  SCP_CHECK_MSG(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
  SCP_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  const auto width = static_cast<std::size_t>(
      std::ceil(std::numbers::e_v<double> / epsilon));
  const auto depth =
      static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(std::max<std::size_t>(width, 1),
                        std::max<std::size_t>(depth, 1), seed);
}

std::size_t CountMinSketch::index(std::size_t row, KeyId key) const noexcept {
  const std::uint64_t h =
      mix64(key ^ (seed_ + 0x9e3779b97f4a7c15ULL * (row + 1)));
  return row * width_ + static_cast<std::size_t>(h % width_);
}

void CountMinSketch::add(KeyId key, std::uint32_t count) {
  if (count == 0) {
    return;
  }
  // Conservative update: new value = max(current, min-over-rows + count),
  // applied only where it raises the counter.
  std::uint32_t current_min = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t row = 0; row < depth_; ++row) {
    current_min = std::min(current_min, counters_[index(row, key)]);
  }
  const std::uint64_t target64 =
      static_cast<std::uint64_t>(current_min) + count;
  const std::uint32_t target =
      target64 > std::numeric_limits<std::uint32_t>::max()
          ? std::numeric_limits<std::uint32_t>::max()
          : static_cast<std::uint32_t>(target64);
  for (std::size_t row = 0; row < depth_; ++row) {
    std::uint32_t& cell = counters_[index(row, key)];
    cell = std::max(cell, target);
  }
  total_added_ += count;
}

std::uint32_t CountMinSketch::estimate(KeyId key) const {
  std::uint32_t result = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t row = 0; row < depth_; ++row) {
    result = std::min(result, counters_[index(row, key)]);
  }
  return result;
}

void CountMinSketch::halve() {
  for (std::uint32_t& cell : counters_) {
    cell >>= 1;
  }
  total_added_ >>= 1;
}

void CountMinSketch::clear() {
  std::fill(counters_.begin(), counters_.end(), 0);
  total_added_ = 0;
}

}  // namespace scp
