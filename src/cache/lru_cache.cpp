#include "cache/lru_cache.h"

#include "common/check.h"

namespace scp {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {
  index_.reserve(capacity * 2);
}

bool LruCache::touch(KeyId key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  order_.splice(order_.begin(), order_, it->second);
  return true;
}

std::optional<KeyId> LruCache::insert(KeyId key) {
  SCP_DCHECK(capacity_ > 0);
  SCP_DCHECK(index_.find(key) == index_.end());
  std::optional<KeyId> evicted;
  if (index_.size() >= capacity_) {
    evicted = order_.back();
    index_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(key);
  index_.emplace(key, order_.begin());
  return evicted;
}

bool LruCache::access(KeyId key) {
  if (capacity_ == 0) {
    return false;
  }
  if (touch(key)) {
    return true;
  }
  insert(key);
  return false;
}

bool LruCache::contains(KeyId key) const {
  return index_.find(key) != index_.end();
}

bool LruCache::invalidate(KeyId key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  order_.erase(it->second);
  index_.erase(it);
  return true;
}

void LruCache::clear() {
  order_.clear();
  index_.clear();
}

}  // namespace scp
