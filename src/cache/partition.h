// Cache-budget partition math shared by every layer that splits the paper's
// single front-end cache of capacity c across multiple holders.
//
// Two layers split the budget today and both must preserve the same
// invariant — the aggregate footprint is *exactly* c, never duplicated:
//
//   * reactor shards inside one scp_frontend process (capacity c -> c/N
//     slices, PR 5), and
//   * fleet members of a distributed front-end tier (aggregate c split
//     across N scp_frontend processes by an independent hash, DistCache
//     style).
//
// Both use slice_capacity(): the first (total mod parts) holders get one
// extra entry, so sum over indices == total for every (total, parts).
#pragma once

#include <cstddef>

namespace scp {

/// Capacity of holder `index` when `total` entries are split across `parts`
/// holders: ceil(total/parts) for the first total%parts holders,
/// floor(total/parts) for the rest. The slices sum to exactly `total`.
/// `index` must be < `parts`; `parts` must be > 0.
constexpr std::size_t slice_capacity(std::size_t total, std::size_t parts,
                                     std::size_t index) noexcept {
  return total / parts + (index < total % parts ? 1 : 0);
}

}  // namespace scp
