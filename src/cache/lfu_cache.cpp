#include "cache/lfu_cache.h"

#include "common/check.h"

namespace scp {

LfuCache::LfuCache(std::size_t capacity) : capacity_(capacity) {
  entries_.reserve(capacity * 2);
}

void LfuCache::promote(Entry& entry) {
  const auto bucket = entry.bucket;
  const std::uint64_t next_freq = bucket->frequency + 1;
  auto next = std::next(bucket);
  if (next == buckets_.end() || next->frequency != next_freq) {
    next = buckets_.insert(next, Bucket{next_freq, {}});
  }
  next->keys.splice(next->keys.begin(), bucket->keys, entry.position);
  entry.bucket = next;
  entry.position = next->keys.begin();
  if (bucket->keys.empty()) {
    buckets_.erase(bucket);
  }
}

bool LfuCache::access(KeyId key) {
  if (capacity_ == 0) {
    return false;
  }
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    promote(it->second);
    return true;
  }
  if (entries_.size() >= capacity_) {
    // Evict the least-recently-used key of the lowest-frequency bucket.
    Bucket& lowest = buckets_.front();
    SCP_DCHECK(!lowest.keys.empty());
    entries_.erase(lowest.keys.back());
    lowest.keys.pop_back();
    if (lowest.keys.empty()) {
      buckets_.pop_front();
    }
  }
  if (buckets_.empty() || buckets_.front().frequency != 1) {
    buckets_.push_front(Bucket{1, {}});
  }
  buckets_.front().keys.push_front(key);
  entries_.emplace(key, Entry{buckets_.begin(), buckets_.front().keys.begin()});
  return false;
}

bool LfuCache::contains(KeyId key) const {
  return entries_.find(key) != entries_.end();
}

bool LfuCache::invalidate(KeyId key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return false;
  }
  const auto bucket = it->second.bucket;
  bucket->keys.erase(it->second.position);
  if (bucket->keys.empty()) {
    buckets_.erase(bucket);
  }
  entries_.erase(it);
  return true;
}

void LfuCache::clear() {
  buckets_.clear();
  entries_.clear();
}

std::uint64_t LfuCache::frequency(KeyId key) const {
  const auto it = entries_.find(key);
  return it != entries_.end() ? it->second.bucket->frequency : 0;
}

}  // namespace scp
