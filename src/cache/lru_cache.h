// Least-recently-used cache with O(1) access.
#pragma once

#include <list>
#include <optional>
#include <unordered_map>

#include "cache/cache.h"

namespace scp {

class LruCache final : public FrontEndCache {
 public:
  explicit LruCache(std::size_t capacity);

  std::size_t capacity() const noexcept override { return capacity_; }
  std::size_t size() const noexcept override { return index_.size(); }
  std::string name() const override { return "lru"; }

  /// Hit: moves the key to the MRU position. Miss: admits the key, evicting
  /// the LRU entry when full.
  bool access(KeyId key) override;
  bool contains(KeyId key) const override;
  void clear() override;

  /// Hit-only variant: refreshes recency and returns true iff present;
  /// never admits. Building block for composite policies (W-TinyLFU).
  bool touch(KeyId key);

  /// Inserts an absent key at the MRU position; returns the evicted LRU key
  /// when the insert overflowed capacity. Requires !contains(key) and
  /// capacity() > 0.
  std::optional<KeyId> insert(KeyId key);

  bool invalidate(KeyId key) override;

 private:
  std::size_t capacity_;
  std::list<KeyId> order_;  // front = MRU, back = LRU
  std::unordered_map<KeyId, std::list<KeyId>::iterator> index_;
};

}  // namespace scp
