#include "cache/frontend_tier.h"

#include "common/check.h"

namespace scp {

FrontEndTier::FrontEndTier(std::uint32_t frontends,
                           std::size_t per_cache_capacity,
                           const std::string& policy, std::uint64_t seed)
    : policy_(policy), rng_(seed) {
  SCP_CHECK_MSG(frontends >= 1, "need at least one front-end");
  caches_.reserve(frontends);
  for (std::uint32_t i = 0; i < frontends; ++i) {
    caches_.push_back(make_cache(policy, per_cache_capacity));
  }
}

std::size_t FrontEndTier::capacity() const noexcept {
  return caches_.size() * caches_[0]->capacity();
}

std::size_t FrontEndTier::size() const noexcept {
  std::size_t total = 0;
  for (const auto& cache : caches_) {
    total += cache->size();
  }
  return total;
}

std::string FrontEndTier::name() const {
  return "tier(" + std::to_string(caches_.size()) + "x" + policy_ + ")";
}

bool FrontEndTier::access(KeyId key) {
  const std::size_t frontend =
      static_cast<std::size_t>(rng_.uniform_u64(caches_.size()));
  return caches_[frontend]->access(key);
}

bool FrontEndTier::contains(KeyId key) const {
  for (const auto& cache : caches_) {
    if (cache->contains(key)) {
      return true;
    }
  }
  return false;
}

void FrontEndTier::clear() {
  for (const auto& cache : caches_) {
    cache->clear();
  }
}

bool FrontEndTier::invalidate(KeyId key) {
  bool any = false;
  for (const auto& cache : caches_) {
    any = cache->invalidate(key) || any;
  }
  return any;
}

std::uint32_t FrontEndTier::replication_of(KeyId key) const {
  std::uint32_t copies = 0;
  for (const auto& cache : caches_) {
    copies += cache->contains(key) ? 1 : 0;
  }
  return copies;
}

}  // namespace scp
