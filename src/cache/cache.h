// Front-end cache interface.
//
// The paper assumes a *perfect* popularity cache (Assumption 2): the c most
// popular items are always cached. PerfectCache implements exactly that
// oracle; the real eviction policies in this module (LRU, LFU, SLRU,
// W-TinyLFU) let the cache-policy ablation measure what the assumption is
// worth under adversarial and Zipf workloads.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "cluster/types.h"

namespace scp {

class FrontEndCache {
 public:
  virtual ~FrontEndCache() = default;

  /// Maximum number of cached items (c in the paper). A capacity of zero
  /// means "no cache": every access misses and nothing is admitted.
  virtual std::size_t capacity() const noexcept = 0;

  /// Current number of cached items.
  virtual std::size_t size() const noexcept = 0;

  virtual std::string name() const = 0;

  /// Processes one query for `key`. Returns true on a cache hit (the
  /// front-end serves it; no back-end work). On a miss the policy may admit
  /// the key, evicting per its rules.
  virtual bool access(KeyId key) = 0;

  /// True iff the key is currently cached. Does not touch recency state.
  virtual bool contains(KeyId key) const = 0;

  /// Drops all cached items and any learned state.
  virtual void clear() = 0;

  /// When the cached set is exactly the key prefix [0, P) — true for the
  /// perfect oracle over a rank-canonical distribution — returns P, with the
  /// contract that contains(k) == (k < P) for every key. Simulator fast
  /// paths then replace the per-key virtual set lookup with one compare.
  /// Default: unknown (nullopt); policies with learned state must not claim
  /// a prefix.
  virtual std::optional<std::uint64_t> cached_prefix() const {
    return std::nullopt;
  }

  /// Removes one key if present (cache-coherence hook: a write to the
  /// backing store must not leave a stale cached copy). Returns true if the
  /// key was cached. Default: not supported, returns false — the perfect
  /// oracle ignores invalidation since it models read-only popularity.
  virtual bool invalidate(KeyId key) {
    (void)key;
    return false;
  }
};

/// Factory for the eviction policies usable in the event simulator:
/// kind ∈ {"lru", "lfu", "slru", "tinylfu"}. (PerfectCache is constructed
/// directly since it needs the true distribution.)
std::unique_ptr<FrontEndCache> make_cache(const std::string& kind,
                                          std::size_t capacity);

}  // namespace scp
