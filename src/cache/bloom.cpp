#include "cache/bloom.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/hash.h"

namespace scp {

BloomFilter::BloomFilter(std::size_t expected_items, double target_fpp,
                         std::uint64_t seed)
    : seed_(seed) {
  SCP_CHECK_MSG(expected_items >= 1, "expected_items must be >= 1");
  SCP_CHECK_MSG(target_fpp > 0.0 && target_fpp < 1.0,
                "target_fpp must be in (0, 1)");
  const double n = static_cast<double>(expected_items);
  const double ln2 = std::numbers::ln2_v<double>;
  bit_count_ = std::max<std::size_t>(
      64, static_cast<std::size_t>(std::ceil(-n * std::log(target_fpp) /
                                             (ln2 * ln2))));
  hash_count_ = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(
             static_cast<double>(bit_count_) / n * ln2)));
  bits_.assign((bit_count_ + 63) / 64, 0);
}

void BloomFilter::probe_positions(KeyId key, std::uint64_t& h1,
                                  std::uint64_t& h2) const {
  h1 = mix64(key ^ seed_);
  h2 = mix64(h1 ^ 0x9e3779b97f4a7c15ULL) | 1;  // odd so probes cycle all bits
}

bool BloomFilter::test_bit(std::size_t pos) const noexcept {
  return (bits_[pos >> 6] >> (pos & 63)) & 1;
}

void BloomFilter::set_bit(std::size_t pos) noexcept {
  bits_[pos >> 6] |= 1ULL << (pos & 63);
}

bool BloomFilter::add(KeyId key) {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  probe_positions(key, h1, h2);
  bool all_set = true;
  for (std::uint32_t i = 0; i < hash_count_; ++i) {
    const std::size_t pos = static_cast<std::size_t>((h1 + i * h2) % bit_count_);
    if (!test_bit(pos)) {
      all_set = false;
      set_bit(pos);
    }
  }
  ++inserted_;
  return all_set;
}

bool BloomFilter::maybe_contains(KeyId key) const {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
  probe_positions(key, h1, h2);
  for (std::uint32_t i = 0; i < hash_count_; ++i) {
    const std::size_t pos = static_cast<std::size_t>((h1 + i * h2) % bit_count_);
    if (!test_bit(pos)) {
      return false;
    }
  }
  return true;
}

void BloomFilter::clear() {
  std::fill(bits_.begin(), bits_.end(), 0);
  inserted_ = 0;
}

double BloomFilter::estimated_fpp() const noexcept {
  std::size_t set_bits = 0;
  for (const std::uint64_t word : bits_) {
    set_bits += static_cast<std::size_t>(__builtin_popcountll(word));
  }
  const double fill =
      static_cast<double>(set_bits) / static_cast<double>(bit_count_);
  return std::pow(fill, static_cast<double>(hash_count_));
}

}  // namespace scp
