// Least-frequently-used cache with O(1) access (frequency-bucket lists).
//
// Eviction removes the key with the smallest access count, breaking ties by
// least-recent use within the bucket. Frequencies reset only on clear(); this
// is the classic LFU whose weakness (stale heavy hitters) TinyLFU's aging
// addresses.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/cache.h"

namespace scp {

class LfuCache final : public FrontEndCache {
 public:
  explicit LfuCache(std::size_t capacity);

  std::size_t capacity() const noexcept override { return capacity_; }
  std::size_t size() const noexcept override { return entries_.size(); }
  std::string name() const override { return "lfu"; }

  bool access(KeyId key) override;
  bool contains(KeyId key) const override;
  void clear() override;
  bool invalidate(KeyId key) override;

  /// Access count of a cached key; 0 if not cached. For tests.
  std::uint64_t frequency(KeyId key) const;

 private:
  struct Bucket {
    std::uint64_t frequency;
    std::list<KeyId> keys;  // front = most recently used at this frequency
  };
  using BucketList = std::list<Bucket>;
  struct Entry {
    BucketList::iterator bucket;
    std::list<KeyId>::iterator position;
  };

  void promote(Entry& entry);

  std::size_t capacity_;
  BucketList buckets_;  // ascending frequency order
  std::unordered_map<KeyId, Entry> entries_;
};

}  // namespace scp
