// W-TinyLFU cache (Einziger, Friedman & Manes, 2017).
//
// Structure: a small LRU admission window in front of a large SLRU main
// cache, with a TinyLFU frequency filter deciding admission into main.
// Frequency is tracked by a Count-Min sketch behind a Bloom-filter
// doorkeeper; the sketch is halved every `sample_size` accesses so history
// ages out. On window overflow the window victim competes against the main
// cache's eviction victim: the higher estimated frequency wins.
#pragma once

#include <memory>

#include "cache/bloom.h"
#include "cache/cache.h"
#include "cache/count_min.h"
#include "cache/lru_cache.h"
#include "cache/slru_cache.h"

namespace scp {

class TinyLfuCache final : public FrontEndCache {
 public:
  struct Options {
    /// Fraction of capacity given to the LRU window (default 1%).
    double window_fraction = 0.01;
    /// Protected fraction of the SLRU main cache.
    double protected_fraction = 0.8;
    /// Accesses between sketch halvings; 0 → 10× capacity.
    std::uint64_t sample_size = 0;
    std::uint64_t seed = 0x7f4a7c159e3779b9ULL;
  };

  explicit TinyLfuCache(std::size_t capacity)
      : TinyLfuCache(capacity, Options{}) {}
  TinyLfuCache(std::size_t capacity, Options options);

  std::size_t capacity() const noexcept override { return capacity_; }
  std::size_t size() const noexcept override;
  std::string name() const override { return "tinylfu"; }

  bool access(KeyId key) override;
  bool contains(KeyId key) const override;
  void clear() override;
  bool invalidate(KeyId key) override;

  /// Estimated frequency of a key (doorkeeper + sketch). For tests.
  std::uint32_t estimated_frequency(KeyId key) const;

 private:
  void record_access(KeyId key);

  std::size_t capacity_;
  std::size_t window_capacity_;
  std::uint64_t sample_size_;
  std::uint64_t accesses_since_reset_ = 0;
  std::unique_ptr<LruCache> window_;
  std::unique_ptr<SlruCache> main_;
  BloomFilter doorkeeper_;
  CountMinSketch sketch_;
};

}  // namespace scp
