// Adversary strategies: turning the analysis into concrete attack plans.
//
// The adversary knows n, d, m, c (system settings, Section III.A) but not the
// key → node mapping. Its whole strategy space (after Theorem 1) is the
// number of keys x it queries uniformly; this module picks x analytically
// (AttackPlan) or empirically (best_response_search over a simulator
// callback, which is how the paper's Fig. 5 finds the critical point).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "adversary/bounds.h"
#include "workload/distribution.h"

namespace scp {

/// A concrete attack: query the first `queried_keys` keys uniformly at
/// aggregate rate R (the paper's Fig. 2 pattern).
struct AttackPlan {
  std::uint64_t queried_keys = 0;   ///< x
  AttackRegime regime = AttackRegime::kEffective;
  double predicted_gain_bound = 0.0;  ///< Eq. 10 at this x

  /// Materializes the plan as a query distribution over m keys.
  QueryDistribution to_distribution(std::uint64_t items) const;
};

/// Analytical plan: x = c+1 in Case 1, x = m in Case 2 (Section III.B).
AttackPlan plan_attack(const SystemParams& params, double k);

/// Evaluates candidate x values with a caller-supplied oracle (typically a
/// simulation returning the observed attack gain) and returns the best.
struct BestResponse {
  std::uint64_t queried_keys = 0;
  double gain = 0.0;
};

/// `evaluate(x)` must accept any x in (c, m]. Candidates: x = c+1, x = m,
/// plus `grid_points` log-spaced values in between when grid_points > 0.
/// Returns the candidate with the highest evaluated gain.
BestResponse best_response_search(
    const SystemParams& params,
    const std::function<double(std::uint64_t)>& evaluate,
    std::uint32_t grid_points = 0);

/// The candidate x values best_response_search would evaluate (exposed for
/// benches that want to print the whole sweep).
std::vector<std::uint64_t> candidate_queried_keys(const SystemParams& params,
                                                  std::uint32_t grid_points);

}  // namespace scp
