// The paper's analytical results (Section III.B) as executable formulas.
//
// Notation (Table I): n back-end nodes, m stored items, c cached items,
// d replication factor, R aggregate adversary query rate, x keys queried.
// The gap term k = ln ln n / ln d + k′ collects the balls-into-bins constant;
// the paper's simulations use k = 1.2 for n = 1000, d = 3.
#pragma once

#include <cstdint>
#include <string>

namespace scp {

/// Static description of the protected system.
struct SystemParams {
  std::uint32_t nodes = 0;         ///< n — number of back-end nodes
  std::uint32_t replication = 1;   ///< d — replica-group size per key
  std::uint64_t items = 0;         ///< m — number of (key, value) items
  std::uint64_t cache_size = 0;    ///< c — front-end cache entries
  double query_rate = 1.0;         ///< R — aggregate query rate (qps)

  /// Validates 1 <= d <= n <= …, c < m, m >= 1, R > 0; aborts on violation.
  void check() const;
  std::string to_string() const;
};

/// The even-spread per-node load R/n — the baseline of Definition 1.
double even_load(const SystemParams& params);

/// Gap term k(n, d, k′) = ln ln n / ln d + k′. Requires d >= 2 and n >= 3;
/// for d = 1 no M-independent gap exists (see ballsbins), which is exactly
/// Fan et al.'s unreplicated setting.
double gap_k(std::uint32_t nodes, std::uint32_t replication, double k_prime);

/// Eq. 8 — upper bound on E[L_max] in qps when the adversary queries x keys
/// (x > c) uniformly: [ (x−c)/n + k ] · R/(x−1).
double max_load_bound(const SystemParams& params, std::uint64_t x, double k);

/// Eq. 10 — the same bound normalized by R/n (the attack-gain bound):
/// 1 + (1 − c + n·k)/(x − 1).
double attack_gain_bound(const SystemParams& params, std::uint64_t x,
                         double k);

/// Definition 1 — attack gain of an observed max load.
double attack_gain(double observed_max_load, const SystemParams& params);

/// Definition 2 — an attack is effective iff its gain exceeds 1.
bool is_effective(double gain);

/// The critical cache size c* = n·k + 1 (Case 1 / Case 2 boundary).
/// With c >= c* the gain bound is <= 1 for every x: no effective attack.
double cache_size_threshold(std::uint32_t nodes, std::uint32_t replication,
                            double k_prime);

/// Which regime the system is in under the bound.
enum class AttackRegime {
  kEffective,    ///< Case 1: c < c*; best x = c+1; adversary wins (gain > 1)
  kIneffective,  ///< Case 2: c >= c*; best x = m; adversary cannot win
};
AttackRegime classify_regime(const SystemParams& params, double k);
std::string to_string(AttackRegime regime);

/// The adversary's optimal number of queried keys under the bound:
/// c+1 in Case 1, m in Case 2 (Section III.B).
std::uint64_t optimal_queried_keys(const SystemParams& params, double k);

// --- the Fan et al. (SOCC'11) unreplicated baseline ------------------------
//
// With d = 1 the balls-into-bins gap is the single-choice
// sqrt(2·M·ln n / n) (Raab & Steger), which grows with M = x − c. The gain
// bound becomes
//   gain(x) ≤ [ (x−c)/n + sqrt(2(x−c)·ln n / n) ] · n/(x−1),
// which has an *interior* maximizer x* — and stays above 1 for every cache
// size: mitigation, not prevention. These are the formulas the paper
// contrasts against in Section III.B.

/// Fan-style attack-gain bound for an unreplicated system at a given x
/// (c < x <= m, x >= 2). Requires params.replication == 1.
double fan_gain_bound(const SystemParams& params, std::uint64_t x);

/// The x maximizing fan_gain_bound (found by exact search over a unimodal
/// function; O(log m) ternary search on integers).
std::uint64_t fan_optimal_queried_keys(const SystemParams& params);

}  // namespace scp
