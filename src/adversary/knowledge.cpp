#include "adversary/knowledge.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace scp {

KnowledgePlan plan_knowledge_attack(const ReplicaPartitioner& partitioner,
                                    std::uint64_t items,
                                    std::uint64_t cache_size,
                                    double known_fraction,
                                    std::uint64_t seed) {
  SCP_CHECK(known_fraction >= 0.0 && known_fraction <= 1.0);
  SCP_CHECK_MSG(cache_size < items, "cache must be smaller than key space");

  KnowledgePlan plan;
  plan.known_keys = static_cast<std::uint64_t>(
      known_fraction * static_cast<double>(items));

  Rng rng(seed);
  if (plan.known_keys == 0) {
    // Oblivious fallback: the paper's best strategy, uniform over c+1 keys.
    plan.queried_keys.resize(cache_size + 1);
    for (std::uint64_t i = 0; i <= cache_size; ++i) {
      plan.queried_keys[i] = i;
    }
    plan.target = 0;
    return plan;
  }

  // The leak: learn the replica groups of `known_keys` random keys.
  const std::vector<std::uint64_t> probed =
      rng.sample_without_replacement(items, plan.known_keys);
  const std::uint32_t d = partitioner.replication();
  std::vector<NodeId> group(d);
  std::vector<std::vector<KeyId>> keys_on_node(partitioner.node_count());
  for (const std::uint64_t key : probed) {
    partitioner.replica_group(key, std::span<NodeId>(group));
    for (const NodeId node : group) {
      keys_on_node[node].push_back(key);
    }
  }

  // Target the best-covered node.
  std::size_t best = 0;
  for (std::size_t node = 1; node < keys_on_node.size(); ++node) {
    if (keys_on_node[node].size() > keys_on_node[best].size()) {
      best = node;
    }
  }
  plan.target = static_cast<NodeId>(best);
  plan.queried_keys = std::move(keys_on_node[best]);
  std::sort(plan.queried_keys.begin(), plan.queried_keys.end());

  // Degenerate leak (e.g. tiny φ on a big cluster): nothing usable learned;
  // fall back to the oblivious optimum rather than querying nothing.
  if (plan.queried_keys.empty()) {
    plan.queried_keys.resize(cache_size + 1);
    for (std::uint64_t i = 0; i <= cache_size; ++i) {
      plan.queried_keys[i] = i;
    }
    plan.target = 0;
  }
  return plan;
}

double knowledge_threshold(std::uint32_t nodes, std::uint32_t replication,
                           std::uint64_t items, std::uint64_t cache_size) {
  SCP_CHECK(nodes >= 1 && replication >= 1 && items >= 1);
  // Expected keys-per-node among φ·m probed keys: φ·m·d/n. Solving
  // φ·m·d/n = c gives the fraction below which the targeted set fits in
  // the cache entirely.
  const double threshold = static_cast<double>(cache_size) *
                           static_cast<double>(nodes) /
                           (static_cast<double>(items) *
                            static_cast<double>(replication));
  return std::min(threshold, 1.0);
}

}  // namespace scp
