#include "adversary/bounds.h"

#include <cmath>
#include <sstream>

#include "ballsbins/balls_bins.h"
#include "common/check.h"

namespace scp {

void SystemParams::check() const {
  SCP_CHECK_MSG(nodes >= 1, "need at least one node");
  SCP_CHECK_MSG(replication >= 1, "replication factor must be >= 1");
  SCP_CHECK_MSG(replication <= nodes, "replication cannot exceed node count");
  SCP_CHECK_MSG(items >= 1, "need at least one item");
  SCP_CHECK_MSG(cache_size < items,
                "cache at least one item short of the key space (c < m), "
                "otherwise every query hits the cache");
  SCP_CHECK_MSG(query_rate > 0.0, "query rate must be positive");
}

std::string SystemParams::to_string() const {
  std::ostringstream os;
  os << "n=" << nodes << " d=" << replication << " m=" << items
     << " c=" << cache_size << " R=" << query_rate;
  return os.str();
}

double even_load(const SystemParams& params) {
  return params.query_rate / static_cast<double>(params.nodes);
}

double gap_k(std::uint32_t nodes, std::uint32_t replication, double k_prime) {
  return two_choice_gap(nodes, replication) + k_prime;
}

double max_load_bound(const SystemParams& params, std::uint64_t x, double k) {
  params.check();
  SCP_CHECK_MSG(x > params.cache_size && x <= params.items,
                "adversary must query c < x <= m keys");
  SCP_CHECK_MSG(x >= 2, "Eq. 8 needs x >= 2 (per-key rate is R/(x-1))");
  const double n = static_cast<double>(params.nodes);
  const double keys_per_node =
      static_cast<double>(x - params.cache_size) / n + k;
  const double per_key_rate =
      params.query_rate / static_cast<double>(x - 1);
  return keys_per_node * per_key_rate;
}

double attack_gain_bound(const SystemParams& params, std::uint64_t x,
                         double k) {
  return max_load_bound(params, x, k) / even_load(params);
}

double attack_gain(double observed_max_load, const SystemParams& params) {
  return observed_max_load / even_load(params);
}

bool is_effective(double gain) { return gain > 1.0; }

double cache_size_threshold(std::uint32_t nodes, std::uint32_t replication,
                            double k_prime) {
  return static_cast<double>(nodes) * gap_k(nodes, replication, k_prime) + 1.0;
}

AttackRegime classify_regime(const SystemParams& params, double k) {
  params.check();
  // Case 1 iff 1 - c + n·k > 0, i.e. c < n·k + 1.
  const double threshold = static_cast<double>(params.nodes) * k + 1.0;
  return static_cast<double>(params.cache_size) < threshold
             ? AttackRegime::kEffective
             : AttackRegime::kIneffective;
}

std::string to_string(AttackRegime regime) {
  switch (regime) {
    case AttackRegime::kEffective:
      return "effective (c < c*: adversary can overload)";
    case AttackRegime::kIneffective:
      return "ineffective (c >= c*: provable DDoS prevention)";
  }
  return "?";
}

std::uint64_t optimal_queried_keys(const SystemParams& params, double k) {
  return classify_regime(params, k) == AttackRegime::kEffective
             ? params.cache_size + 1
             : params.items;
}

double fan_gain_bound(const SystemParams& params, std::uint64_t x) {
  params.check();
  SCP_CHECK_MSG(params.replication == 1,
                "the Fan bound models the unreplicated (d = 1) system");
  SCP_CHECK_MSG(x > params.cache_size && x <= params.items && x >= 2,
                "need c < x <= m and x >= 2");
  const double n = static_cast<double>(params.nodes);
  const double balls = static_cast<double>(x - params.cache_size);
  const double keys_per_node =
      balls / n + std::sqrt(2.0 * balls * std::log(n) / n);
  return keys_per_node * n / static_cast<double>(x - 1);
}

std::uint64_t fan_optimal_queried_keys(const SystemParams& params) {
  params.check();
  SCP_CHECK_MSG(params.replication == 1,
                "the Fan bound models the unreplicated (d = 1) system");
  // The bound is unimodal in x on (c, m]: integer ternary search.
  std::uint64_t lo = std::max<std::uint64_t>(params.cache_size + 1, 2);
  std::uint64_t hi = params.items;
  while (hi - lo > 2) {
    const std::uint64_t m1 = lo + (hi - lo) / 3;
    const std::uint64_t m2 = hi - (hi - lo) / 3;
    if (fan_gain_bound(params, m1) < fan_gain_bound(params, m2)) {
      lo = m1 + 1;
    } else {
      hi = m2 - 1;
    }
  }
  std::uint64_t best = lo;
  for (std::uint64_t x = lo + 1; x <= hi; ++x) {
    if (fan_gain_bound(params, x) > fan_gain_bound(params, best)) {
      best = x;
    }
  }
  return best;
}

}  // namespace scp
