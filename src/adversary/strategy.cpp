#include "adversary/strategy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace scp {

QueryDistribution AttackPlan::to_distribution(std::uint64_t items) const {
  SCP_CHECK_MSG(queried_keys >= 1 && queried_keys <= items,
                "plan queries more keys than exist");
  return QueryDistribution::uniform_over(queried_keys, items);
}

AttackPlan plan_attack(const SystemParams& params, double k) {
  params.check();
  AttackPlan plan;
  plan.regime = classify_regime(params, k);
  plan.queried_keys = optimal_queried_keys(params, k);
  // Eq. 10 needs x >= 2; the degenerate c = 0, x = 1 attack concentrates all
  // load on one key and its gain bound is n/d instead.
  if (plan.queried_keys >= 2) {
    plan.predicted_gain_bound =
        attack_gain_bound(params, plan.queried_keys, k);
  } else {
    plan.predicted_gain_bound = static_cast<double>(params.nodes) /
                                static_cast<double>(params.replication);
  }
  return plan;
}

std::vector<std::uint64_t> candidate_queried_keys(const SystemParams& params,
                                                  std::uint32_t grid_points) {
  params.check();
  const std::uint64_t lo = params.cache_size + 1;
  const std::uint64_t hi = params.items;
  std::vector<std::uint64_t> xs = {lo};
  if (hi > lo) {
    xs.push_back(hi);
  }
  if (grid_points > 0 && hi > lo + 1) {
    const double log_lo = std::log(static_cast<double>(lo));
    const double log_hi = std::log(static_cast<double>(hi));
    for (std::uint32_t i = 1; i <= grid_points; ++i) {
      const double t =
          static_cast<double>(i) / static_cast<double>(grid_points + 1);
      const auto x = static_cast<std::uint64_t>(
          std::llround(std::exp(log_lo + t * (log_hi - log_lo))));
      xs.push_back(std::clamp(x, lo, hi));
    }
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  return xs;
}

BestResponse best_response_search(
    const SystemParams& params,
    const std::function<double(std::uint64_t)>& evaluate,
    std::uint32_t grid_points) {
  SCP_CHECK(static_cast<bool>(evaluate));
  BestResponse best;
  for (const std::uint64_t x : candidate_queried_keys(params, grid_points)) {
    const double gain = evaluate(x);
    if (gain > best.gain) {
      best.gain = gain;
      best.queried_keys = x;
    }
  }
  return best;
}

}  // namespace scp
