#include "adversary/optimizer.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/check.h"
#include "common/rng.h"

namespace scp {
namespace {

// Canonicalizes a weight vector into a QueryDistribution: clamp negatives,
// sort non-increasing, normalize. Keys are interchangeable under random
// partitioning, so sorting loses no generality.
QueryDistribution canonicalize(std::vector<double> weights) {
  for (double& w : weights) {
    if (w < 0.0) {
      w = 0.0;
    }
  }
  std::sort(weights.begin(), weights.end(), std::greater<double>());
  return QueryDistribution::from_weights(std::move(weights));
}

std::vector<double> weights_of(const QueryDistribution& d) {
  return {d.probabilities().begin(), d.probabilities().end()};
}

// Starting shapes for the restarts: the analytic optimum's neighbourhood
// (uniform over c+1), a skewed Zipf, and the full-spread uniform.
QueryDistribution starting_point(std::uint32_t restart, std::uint64_t items,
                                 std::uint64_t cache_size) {
  switch (restart % 3) {
    case 0:
      return QueryDistribution::uniform_over(
          std::min<std::uint64_t>(cache_size + 1, items), items);
    case 1:
      return QueryDistribution::zipf(items, 1.1);
    default:
      return QueryDistribution::uniform(items);
  }
}

}  // namespace

OptimizerResult optimize_attack(std::uint64_t items, std::uint64_t cache_size,
                                const GainEvaluator& evaluate,
                                const OptimizerOptions& options) {
  SCP_CHECK_MSG(static_cast<bool>(evaluate), "evaluator must be callable");
  SCP_CHECK_MSG(cache_size < items, "cache must be smaller than key space");
  SCP_CHECK(options.iterations >= 1 && options.restarts >= 1);

  Rng rng(options.seed);
  OptimizerResult result{QueryDistribution::uniform(items), 0.0, 0, 0, {}};

  for (std::uint32_t restart = 0; restart < options.restarts; ++restart) {
    QueryDistribution current = starting_point(restart, items, cache_size);
    double current_gain = evaluate(current);
    ++result.evaluations;
    if (current_gain > result.best_gain) {
      result.best_gain = current_gain;
      result.best = current;
      result.gain_trace.push_back(current_gain);
    }

    for (std::uint32_t iter = 0; iter < options.iterations; ++iter) {
      std::vector<double> weights = weights_of(current);
      const std::uint64_t support = current.support_size();

      // Move set: shift a random fraction of a donor key's mass to a
      // receiver that is either an existing key (concentrate / equalize) or
      // the first zero key (extend the support).
      const std::uint64_t donor = rng.uniform_u64(support);
      std::uint64_t receiver;
      if (support < items && rng.bernoulli(0.25)) {
        receiver = support;  // grow the support
      } else {
        receiver = rng.uniform_u64(support);
      }
      if (receiver == donor || weights[donor] <= options.min_move_mass) {
        continue;
      }
      const double delta = weights[donor] * rng.uniform_double(0.1, 1.0);
      weights[donor] -= delta;
      weights[receiver] += delta;

      QueryDistribution candidate = canonicalize(std::move(weights));
      const double candidate_gain = evaluate(candidate);
      ++result.evaluations;
      if (candidate_gain > current_gain) {
        current = std::move(candidate);
        current_gain = candidate_gain;
        ++result.accepted_moves;
        if (current_gain > result.best_gain) {
          result.best_gain = current_gain;
          result.best = current;
          result.gain_trace.push_back(current_gain);
        }
      }
    }
  }
  return result;
}

}  // namespace scp
