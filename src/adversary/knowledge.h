// Partial-knowledge adversary — stress-testing Assumption 1.
//
// The paper's guarantee rests on the key → replica-group mapping being
// opaque (Assumption 1). Real deployments leak: timing side channels,
// verbose errors, or insider knowledge can reveal the placement of *some*
// keys. This module models an adversary who has learned the replica groups
// of a fraction φ of the key space and mounts a *targeted* attack: pick the
// node covered by the most known keys, and query exactly the known keys
// whose groups contain it — all uniformly, to keep the cacheable head as
// cheap as possible (the Theorem-1 logic still applies within the set).
//
// The headline: prevention degrades smoothly in φ, and the bound's
// protection collapses once the adversary knows more than about
// φ* ≈ c·n/(m·d) of the keys — at that point it can assemble more than c
// same-node keys and the cache can no longer absorb the head.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/partitioner.h"
#include "cluster/types.h"

namespace scp {

struct KnowledgePlan {
  /// Keys the adversary queries (uniformly). All of them have `target` in
  /// their replica group.
  std::vector<KeyId> queried_keys;
  /// The node the attack concentrates on.
  NodeId target = 0;
  /// How many keys the adversary probed (φ·m).
  std::uint64_t known_keys = 0;
};

/// Builds a targeted plan by probing `partitioner` for the groups of
/// ⌊known_fraction·items⌋ randomly chosen keys (the simulated leak), then
/// focusing on the best-covered node. Requires 0 <= known_fraction <= 1.
/// With known_fraction = 0 the plan falls back to the oblivious optimum:
/// uniformly querying cache_size+1 (arbitrary) keys.
KnowledgePlan plan_knowledge_attack(const ReplicaPartitioner& partitioner,
                                    std::uint64_t items,
                                    std::uint64_t cache_size,
                                    double known_fraction, std::uint64_t seed);

/// The analytic knowledge threshold φ* ≈ c·n/(m·d): below it the adversary
/// cannot collect more than c keys on one node, so the cache still absorbs
/// the whole targeted set.
double knowledge_threshold(std::uint32_t nodes, std::uint32_t replication,
                           std::uint64_t items, std::uint64_t cache_size);

}  // namespace scp
