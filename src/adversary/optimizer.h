// Stochastic local search over query distributions — an empirical check of
// Theorem 1.
//
// Theorem 1 says the adversary's optimum collapses to "query x keys
// uniformly". This optimizer does NOT assume that: it hill-climbs over the
// full distribution simplex (with random restarts) using mass-shifting
// moves, and measures candidates with a caller-supplied gain evaluator
// (typically a rate-simulation average). If the theorem holds, the search
// must never meaningfully beat the analytic best response — the
// ablation bench and property tests assert exactly that.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "workload/distribution.h"

namespace scp {

struct OptimizerOptions {
  std::uint32_t iterations = 200;  ///< local-search steps per restart
  std::uint32_t restarts = 3;      ///< independent starts (different shapes)
  std::uint64_t seed = 0x0b5e55edULL;
  /// Smallest donor mass a move will touch (numerical hygiene).
  double min_move_mass = 1e-12;
};

struct OptimizerResult {
  QueryDistribution best;      ///< best distribution found
  double best_gain = 0.0;      ///< evaluator value of `best`
  std::uint64_t evaluations = 0;  ///< total evaluator calls
  std::uint64_t accepted_moves = 0;
  /// Best-so-far gain after each accepted move (for convergence plots).
  std::vector<double> gain_trace;
};

/// Evaluates a candidate distribution's attack gain (higher = better for
/// the adversary). Must be deterministic for reproducible searches — bind
/// fixed trial seeds inside.
using GainEvaluator = std::function<double(const QueryDistribution&)>;

/// Searches distributions over `items` keys, against a cache of size
/// `cache_size` (used to seed sensible starting shapes). Requires
/// cache_size < items and a non-empty evaluator.
OptimizerResult optimize_attack(std::uint64_t items, std::uint64_t cache_size,
                                const GainEvaluator& evaluate,
                                const OptimizerOptions& options);

}  // namespace scp
