// Minimal command-line flag parsing for benches and examples.
//
// Supports `--name=value` and `--name value`; `--help` lists registered
// flags. No global state: each binary builds a FlagSet, registers typed
// flags bound to local variables, and parses argv.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scp {

class FlagSet {
 public:
  explicit FlagSet(std::string program_description);

  /// Registers a flag bound to `*target`; the current value of `*target` is
  /// reported as the default in --help.
  void add_int64(const std::string& name, std::int64_t* target,
                 const std::string& help);
  void add_uint64(const std::string& name, std::uint64_t* target,
                  const std::string& help);
  void add_double(const std::string& name, double* target,
                  const std::string& help);
  void add_bool(const std::string& name, bool* target, const std::string& help);
  void add_string(const std::string& name, std::string* target,
                  const std::string& help);

  /// Parses argv. Returns false if parsing failed or --help was requested;
  /// in both cases a message has been written (usage to stdout for --help,
  /// error to stderr otherwise) and the caller should exit.
  bool parse(int argc, char** argv);

  /// Usage text listing every registered flag with its default.
  std::string usage() const;

 private:
  enum class Type { kInt64, kUint64, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_value;
  };

  const Flag* find(const std::string& name) const;
  bool assign(const Flag& flag, const std::string& value);

  std::string description_;
  std::vector<Flag> flags_;
};

}  // namespace scp
