#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace scp {

LogHistogram::LogHistogram(unsigned precision) : precision_(precision) {
  SCP_CHECK_MSG(precision >= 1 && precision <= 10,
                "histogram precision must be in [1, 10]");
  sub_bucket_count_ = 1ULL << precision_;
  counts_.resize(sub_bucket_count_ * 2);
}

std::size_t LogHistogram::bucket_index(std::uint64_t value) const noexcept {
  if (value < sub_bucket_count_ * 2) {
    return static_cast<std::size_t>(value);  // linear region, exact
  }
  const unsigned msb = 63U - static_cast<unsigned>(std::countl_zero(value));
  const unsigned shift = msb - precision_;
  const std::uint64_t offset = (value >> shift) - sub_bucket_count_;
  return static_cast<std::size_t>(sub_bucket_count_ +
                                  static_cast<std::uint64_t>(shift) *
                                      sub_bucket_count_ +
                                  offset);
}

std::uint64_t LogHistogram::bucket_upper_bound(std::size_t index) const noexcept {
  if (index < sub_bucket_count_ * 2) {
    return static_cast<std::uint64_t>(index);
  }
  const std::uint64_t chunk = index / sub_bucket_count_ - 1;
  const std::uint64_t offset = index % sub_bucket_count_;
  return ((sub_bucket_count_ + offset + 1) << chunk) - 1;
}

void LogHistogram::record(std::uint64_t value) noexcept {
  record_n(value, 1);
}

void LogHistogram::record_n(std::uint64_t value, std::uint64_t count) noexcept {
  if (count == 0) {
    return;
  }
  const std::size_t idx = bucket_index(value);
  if (idx >= counts_.size()) {
    counts_.resize(idx + 1, 0);
  }
  counts_[idx] += count;
  if (total_count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  total_count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.total_count_ == 0) {
    return;
  }
  if (precision_ == other.precision_) {
    if (other.counts_.size() > counts_.size()) {
      counts_.resize(other.counts_.size(), 0);
    }
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  } else {
    // Mismatched precision: re-bucket each occupied bucket of `other` at its
    // representative value (bucket upper bound, clamped to other's true max).
    // Counts are preserved exactly; values shift by at most the coarser
    // histogram's relative error. min/max/sum below stay exact regardless.
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      if (other.counts_[i] == 0) {
        continue;
      }
      const std::uint64_t rep =
          std::min(other.bucket_upper_bound(i), other.max_);
      const std::size_t idx = bucket_index(rep);
      if (idx >= counts_.size()) {
        counts_.resize(idx + 1, 0);
      }
      counts_[idx] += other.counts_[i];
    }
  }
  if (total_count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_count_ += other.total_count_;
  sum_ += other.sum_;
}

std::uint64_t LogHistogram::min() const noexcept {
  return total_count_ > 0 ? min_ : 0;
}

std::uint64_t LogHistogram::max() const noexcept {
  return total_count_ > 0 ? max_ : 0;
}

double LogHistogram::mean() const noexcept {
  return total_count_ > 0 ? sum_ / static_cast<double>(total_count_) : 0.0;
}

std::uint64_t LogHistogram::value_at_quantile(double q) const noexcept {
  if (total_count_ == 0) {
    return 0;
  }
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      clamped * static_cast<double>(total_count_) + 0.5);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    if (running >= target && counts_[i] > 0) {
      return std::min(bucket_upper_bound(i), max_);
    }
  }
  return max_;
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
LogHistogram::nonzero_buckets() const {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) {
      out.emplace_back(static_cast<std::uint32_t>(i), counts_[i]);
    }
  }
  return out;
}

std::optional<LogHistogram> LogHistogram::from_buckets(
    unsigned precision,
    std::span<const std::pair<std::uint32_t, std::uint64_t>> buckets,
    std::uint64_t min, std::uint64_t max, double sum) {
  if (precision < 1 || precision > 10) {
    return std::nullopt;
  }
  LogHistogram h(precision);
  // Maximum representable index: shift tops out at 63 - precision, so
  // indices live in [0, sub * (65 - precision)).
  const std::uint64_t index_limit = h.sub_bucket_count_ * (65 - precision);
  std::uint64_t total = 0;
  std::uint32_t prev_index = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto [idx, cnt] = buckets[i];
    if (cnt == 0 || idx >= index_limit || (i > 0 && idx <= prev_index)) {
      return std::nullopt;
    }
    prev_index = idx;
    if (idx >= h.counts_.size()) {
      h.counts_.resize(idx + 1, 0);
    }
    h.counts_[idx] = cnt;
    total += cnt;
  }
  if (!std::isfinite(sum)) {
    return std::nullopt;
  }
  if (total == 0) {
    if (min != 0 || max != 0 || sum != 0.0) {
      return std::nullopt;
    }
    return h;
  }
  if (min > max) {
    return std::nullopt;
  }
  h.total_count_ = total;
  h.min_ = min;
  h.max_ = max;
  h.sum_ = sum;
  return h;
}

bool operator==(const LogHistogram& a, const LogHistogram& b) {
  if (a.precision_ != b.precision_ || a.total_count_ != b.total_count_ ||
      a.min() != b.min() || a.max() != b.max() || a.sum_ != b.sum_) {
    return false;
  }
  const std::size_t n = std::max(a.counts_.size(), b.counts_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ca = i < a.counts_.size() ? a.counts_[i] : 0;
    const std::uint64_t cb = i < b.counts_.size() ? b.counts_[i] : 0;
    if (ca != cb) {
      return false;
    }
  }
  return true;
}

std::string LogHistogram::summary() const {
  std::ostringstream os;
  os << "count=" << total_count_ << " mean=" << mean()
     << " p50=" << value_at_quantile(0.50) << " p99=" << value_at_quantile(0.99)
     << " max=" << max();
  return os.str();
}

}  // namespace scp
