#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/check.h"

namespace scp {

LogHistogram::LogHistogram(unsigned precision) : precision_(precision) {
  SCP_CHECK_MSG(precision >= 1 && precision <= 10,
                "histogram precision must be in [1, 10]");
  sub_bucket_count_ = 1ULL << precision_;
  counts_.resize(sub_bucket_count_ * 2);
}

std::size_t LogHistogram::bucket_index(std::uint64_t value) const noexcept {
  if (value < sub_bucket_count_ * 2) {
    return static_cast<std::size_t>(value);  // linear region, exact
  }
  const unsigned msb = 63U - static_cast<unsigned>(std::countl_zero(value));
  const unsigned shift = msb - precision_;
  const std::uint64_t offset = (value >> shift) - sub_bucket_count_;
  return static_cast<std::size_t>(sub_bucket_count_ +
                                  static_cast<std::uint64_t>(shift) *
                                      sub_bucket_count_ +
                                  offset);
}

std::uint64_t LogHistogram::bucket_upper_bound(std::size_t index) const noexcept {
  if (index < sub_bucket_count_ * 2) {
    return static_cast<std::uint64_t>(index);
  }
  const std::uint64_t chunk = index / sub_bucket_count_ - 1;
  const std::uint64_t offset = index % sub_bucket_count_;
  return ((sub_bucket_count_ + offset + 1) << chunk) - 1;
}

void LogHistogram::record(std::uint64_t value) noexcept {
  record_n(value, 1);
}

void LogHistogram::record_n(std::uint64_t value, std::uint64_t count) noexcept {
  if (count == 0) {
    return;
  }
  const std::size_t idx = bucket_index(value);
  if (idx >= counts_.size()) {
    counts_.resize(idx + 1, 0);
  }
  counts_[idx] += count;
  if (total_count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  total_count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void LogHistogram::merge(const LogHistogram& other) {
  SCP_CHECK_MSG(precision_ == other.precision_,
                "cannot merge histograms with different precision");
  if (other.total_count_ == 0) {
    return;
  }
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (total_count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_count_ += other.total_count_;
  sum_ += other.sum_;
}

std::uint64_t LogHistogram::min() const noexcept {
  return total_count_ > 0 ? min_ : 0;
}

std::uint64_t LogHistogram::max() const noexcept {
  return total_count_ > 0 ? max_ : 0;
}

double LogHistogram::mean() const noexcept {
  return total_count_ > 0 ? sum_ / static_cast<double>(total_count_) : 0.0;
}

std::uint64_t LogHistogram::value_at_quantile(double q) const noexcept {
  if (total_count_ == 0) {
    return 0;
  }
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      clamped * static_cast<double>(total_count_) + 0.5);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    if (running >= target && counts_[i] > 0) {
      return std::min(bucket_upper_bound(i), max_);
    }
  }
  return max_;
}

std::string LogHistogram::summary() const {
  std::ostringstream os;
  os << "count=" << total_count_ << " mean=" << mean()
     << " p50=" << value_at_quantile(0.50) << " p99=" << value_at_quantile(0.99)
     << " max=" << max();
  return os.str();
}

}  // namespace scp
