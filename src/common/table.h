// Aligned text tables and CSV output for the benchmark harness.
//
// Every figure-reproduction bench prints its series through TextTable so the
// output reads like the paper's figure data, and can optionally mirror rows
// to a CSV file for plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace scp {

/// A cell is a string, an integer, or a double (formatted with fixed
/// precision chosen per table).
using Cell = std::variant<std::string, std::int64_t, double>;

class TextTable {
 public:
  /// `precision` — digits after the decimal point for double cells.
  explicit TextTable(std::vector<std::string> headers, int precision = 4);

  /// Appends one row; must match the header arity.
  void add_row(std::vector<Cell> row);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Structured access for machine-readable mirrors (CSV is built in; the
  /// bench harness renders JSON series from these).
  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<Cell>>& rows() const noexcept { return rows_; }

  /// Renders with column alignment and a header underline.
  std::string render() const;
  void print(std::ostream& os) const;

  /// Writes headers + rows as RFC-4180-ish CSV (quotes cells containing
  /// commas or quotes).
  std::string to_csv() const;
  /// Writes the CSV to `path`; returns false (and leaves no file guarantees)
  /// on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::string format_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

}  // namespace scp
