#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace scp {

JsonWriter::JsonWriter() = default;

void JsonWriter::before_value() {
  SCP_CHECK_MSG(!root_done_, "document already complete");
  if (scopes_.empty()) {
    return;  // root value
  }
  if (scopes_.back() == Scope::kObject) {
    SCP_CHECK_MSG(expecting_value_, "object members need a key() first");
    expecting_value_ = false;
    return;
  }
  // Array element.
  if (has_items_.back()) {
    out_ += ',';
  }
  has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  scopes_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  scopes_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end() {
  SCP_CHECK_MSG(!scopes_.empty(), "no open scope to end");
  SCP_CHECK_MSG(!expecting_value_, "dangling key without a value");
  out_ += scopes_.back() == Scope::kObject ? '}' : ']';
  scopes_.pop_back();
  has_items_.pop_back();
  if (scopes_.empty()) {
    root_done_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  SCP_CHECK_MSG(!scopes_.empty() && scopes_.back() == Scope::kObject,
                "key() is only valid inside an object");
  SCP_CHECK_MSG(!expecting_value_, "two keys in a row");
  if (has_items_.back()) {
    out_ += ',';
  }
  has_items_.back() = true;
  write_escaped(name);
  out_ += ':';
  expecting_value_ = true;
  return *this;
}

void JsonWriter::write_escaped(std::string_view s) {
  out_ += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(ch));
          out_ += buffer;
        } else {
          out_ += ch;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  write_escaped(s);
  if (scopes_.empty()) {
    root_done_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) {
  return value(std::string_view(s));
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.12g", v);
    out_ += buffer;
  } else {
    out_ += "null";  // JSON has no Inf/NaN
  }
  if (scopes_.empty()) {
    root_done_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  if (scopes_.empty()) {
    root_done_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  if (scopes_.empty()) {
    root_done_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  if (scopes_.empty()) {
    root_done_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  if (scopes_.empty()) {
    root_done_ = true;
  }
  return *this;
}

bool JsonWriter::complete() const noexcept {
  return root_done_ && scopes_.empty();
}

std::string JsonWriter::str() const {
  SCP_CHECK_MSG(complete(), "document is not complete");
  return out_;
}

}  // namespace scp
