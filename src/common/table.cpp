#include "common/table.h"

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/check.h"

namespace scp {

TextTable::TextTable(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
  SCP_CHECK_MSG(!headers_.empty(), "table needs at least one column");
  SCP_CHECK(precision >= 0 && precision <= 17);
}

void TextTable::add_row(std::vector<Cell> row) {
  SCP_CHECK_MSG(row.size() == headers_.size(),
                "row arity does not match header arity");
  rows_.push_back(std::move(row));
}

std::string TextTable::format_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    return *s;
  }
  if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    return std::to_string(*i);
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    formatted.push_back(std::move(cells));
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& cells : formatted) {
    emit_row(cells);
  }
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << render(); }

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : ",") << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << csv_escape(format_cell(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

bool TextTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace scp
