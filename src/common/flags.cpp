#include "common/flags.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace scp {
namespace {

std::string bool_to_string(bool b) { return b ? "true" : "false"; }

}  // namespace

FlagSet::FlagSet(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagSet::add_int64(const std::string& name, std::int64_t* target,
                        const std::string& help) {
  SCP_CHECK(target != nullptr);
  SCP_CHECK_MSG(find(name) == nullptr, "duplicate flag");
  flags_.push_back(
      {name, Type::kInt64, target, help, std::to_string(*target)});
}

void FlagSet::add_uint64(const std::string& name, std::uint64_t* target,
                         const std::string& help) {
  SCP_CHECK(target != nullptr);
  SCP_CHECK_MSG(find(name) == nullptr, "duplicate flag");
  flags_.push_back(
      {name, Type::kUint64, target, help, std::to_string(*target)});
}

void FlagSet::add_double(const std::string& name, double* target,
                         const std::string& help) {
  SCP_CHECK(target != nullptr);
  SCP_CHECK_MSG(find(name) == nullptr, "duplicate flag");
  flags_.push_back(
      {name, Type::kDouble, target, help, std::to_string(*target)});
}

void FlagSet::add_bool(const std::string& name, bool* target,
                       const std::string& help) {
  SCP_CHECK(target != nullptr);
  SCP_CHECK_MSG(find(name) == nullptr, "duplicate flag");
  flags_.push_back({name, Type::kBool, target, help, bool_to_string(*target)});
}

void FlagSet::add_string(const std::string& name, std::string* target,
                         const std::string& help) {
  SCP_CHECK(target != nullptr);
  SCP_CHECK_MSG(find(name) == nullptr, "duplicate flag");
  flags_.push_back({name, Type::kString, target, help, *target});
}

const FlagSet::Flag* FlagSet::find(const std::string& name) const {
  for (const auto& flag : flags_) {
    if (flag.name == name) {
      return &flag;
    }
  }
  return nullptr;
}

bool FlagSet::assign(const Flag& flag, const std::string& value) {
  try {
    switch (flag.type) {
      case Type::kInt64:
        *static_cast<std::int64_t*>(flag.target) = std::stoll(value);
        return true;
      case Type::kUint64:
        if (!value.empty() && value[0] == '-') {
          return false;
        }
        *static_cast<std::uint64_t*>(flag.target) = std::stoull(value);
        return true;
      case Type::kDouble:
        *static_cast<double*>(flag.target) = std::stod(value);
        return true;
      case Type::kBool:
        if (value == "true" || value == "1") {
          *static_cast<bool*>(flag.target) = true;
          return true;
        }
        if (value == "false" || value == "0") {
          *static_cast<bool*>(flag.target) = false;
          return true;
        }
        return false;
      case Type::kString:
        *static_cast<std::string*>(flag.target) = value;
        return true;
    }
  } catch (const std::exception&) {
    return false;
  }
  return false;
}

bool FlagSet::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", usage().c_str());
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s",
                   arg.c_str(), usage().c_str());
      return false;
    }
    arg.erase(0, 2);
    std::string name;
    std::string value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      const Flag* peek = find(name);
      if (peek != nullptr && peek->type == Type::kBool) {
        value = "true";  // bare --flag toggles a bool on
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s is missing a value\n", name.c_str());
        return false;
      }
    }
    const Flag* flag = find(name);
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }
    if (!assign(*flag, value)) {
      std::fprintf(stderr, "bad value for --%s: '%s'\n", name.c_str(),
                   value.c_str());
      return false;
    }
  }
  return true;
}

std::string FlagSet::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& flag : flags_) {
    os << "  --" << flag.name << "  (default: " << flag.default_value << ")\n"
       << "      " << flag.help << '\n';
  }
  return os.str();
}

}  // namespace scp
