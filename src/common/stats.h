// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace scp {

class Rng;

/// Welford's online algorithm: numerically stable streaming mean / variance /
/// min / max in O(1) space.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept;
  /// Sample variance (n-1 denominator). Zero when count < 2.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample: moments plus selected percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  std::string to_string() const;
};

/// Computes a Summary; sorts a copy of `values` internally.
Summary summarize(std::span<const double> values);

/// Linear-interpolation percentile of a *sorted* sample, q in [0, 1].
double percentile_sorted(std::span<const double> sorted, double q);

/// Percentile of an unsorted sample (sorts a copy).
double percentile(std::span<const double> values, double q);

/// Two-sided bootstrap percentile confidence interval for the mean.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
};
ConfidenceInterval bootstrap_mean_ci(std::span<const double> values,
                                     double confidence, std::size_t resamples,
                                     Rng& rng);

/// Jain's fairness index of a non-negative load vector:
/// (Σx)² / (n·Σx²) ∈ (0, 1], 1 = perfectly even.
double jain_fairness(std::span<const double> loads);

/// Coefficient of variation (stddev / mean); 0 when mean == 0.
double coefficient_of_variation(std::span<const double> values);

/// Pearson chi-squared statistic of observed counts vs expected counts.
/// Used by tests to verify samplers and partitioners are unbiased.
double chi_squared_statistic(std::span<const std::uint64_t> observed,
                             std::span<const double> expected);

}  // namespace scp
