#include "common/rng.h"

#include <cmath>
#include <unordered_set>

namespace scp {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) noexcept {
  // Mix the stream index into the parent with two SplitMix64 steps so that
  // consecutive stream values do not yield correlated seeds.
  std::uint64_t s = parent ^ (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL);
  (void)splitmix64(s);
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) noexcept {
  SCP_DCHECK(bound > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  SCP_DCHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform_double() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) noexcept {
  SCP_DCHECK(lo < hi);
  return lo + (hi - lo) * uniform_double();
}

bool Rng::bernoulli(double p) noexcept {
  SCP_DCHECK(p >= 0.0 && p <= 1.0);
  return uniform_double() < p;
}

double Rng::exponential(double rate) noexcept {
  SCP_DCHECK(rate > 0.0);
  // 1 - U is in (0, 1], avoiding log(0).
  return -std::log1p(-uniform_double()) / rate;
}

std::vector<std::uint64_t> Rng::sample_without_replacement(
    std::uint64_t population, std::size_t k) {
  SCP_CHECK_MSG(k <= population, "sample larger than population");
  // Robert Floyd's algorithm, then a shuffle so order carries no bias.
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::uint64_t> out;
  out.reserve(k);
  for (std::uint64_t j = population - k; j < population; ++j) {
    const std::uint64_t t = uniform_u64(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  shuffle(std::span<std::uint64_t>(out));
  return out;
}

void Rng::long_jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if ((word & (1ULL << bit)) != 0) {
        for (std::size_t i = 0; i < 4; ++i) {
          acc[i] ^= state_[i];
        }
      }
      (void)(*this)();
    }
  }
  state_ = acc;
}

}  // namespace scp
