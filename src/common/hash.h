// Hash functions used for randomized partitioning.
//
// The paper's security argument rests on the key → replica-group mapping
// being opaque to the adversary (Assumption 1). We therefore provide a keyed
// PRF-style hash (SipHash-2-4) for the partitioners, plus cheap unkeyed
// mixers for internal data structures and sketches.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace scp {

/// 64-bit finalization mix from MurmurHash3 — full avalanche on a 64-bit
/// word. Suitable for hashing integer keys in internal tables.
std::uint64_t mix64(std::uint64_t x) noexcept;

/// FNV-1a over a byte range. Simple, unkeyed; used for checksums and tests.
std::uint64_t fnv1a(const void* data, std::size_t len) noexcept;
std::uint64_t fnv1a(std::string_view s) noexcept;

/// 128-bit key for SipHash.
struct SipKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;
};

/// SipHash-2-4 over an arbitrary byte range (Aumasson & Bernstein).
/// With a secret key this is a PRF: without the key an adversary cannot
/// predict which replica group a key maps to.
std::uint64_t siphash24(SipKey key, const void* data, std::size_t len) noexcept;

/// Convenience: SipHash-2-4 of a single 64-bit word (e.g. a KeyId).
std::uint64_t siphash24(SipKey key, std::uint64_t value) noexcept;

/// Derives a SipKey from a 64-bit seed (for reproducible simulations).
SipKey sip_key_from_seed(std::uint64_t seed) noexcept;

}  // namespace scp
