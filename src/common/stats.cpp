#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace scp {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept {
  return count_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double RunningStats::max() const noexcept {
  return count_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " sd=" << stddev << " min=" << min
     << " p50=" << p50 << " p90=" << p90 << " p99=" << p99 << " max=" << max;
  return os.str();
}

double percentile_sorted(std::span<const double> sorted, double q) {
  SCP_CHECK_MSG(!sorted.empty(), "percentile of an empty sample");
  SCP_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[idx] + frac * (sorted[idx + 1] - sorted[idx]);
}

double percentile(std::span<const double> values, double q) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, q);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) {
    return s;
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (const double v : sorted) {
    rs.add(v);
  }
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p90 = percentile_sorted(sorted, 0.90);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> values,
                                     double confidence, std::size_t resamples,
                                     Rng& rng) {
  SCP_CHECK_MSG(!values.empty(), "bootstrap of an empty sample");
  SCP_CHECK(confidence > 0.0 && confidence < 1.0);
  SCP_CHECK(resamples >= 2);
  std::vector<double> means(resamples);
  const std::size_t n = values.size();
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += values[rng.uniform_u64(n)];
    }
    means[r] = sum / static_cast<double>(n);
  }
  std::sort(means.begin(), means.end());
  const double alpha = 1.0 - confidence;
  return ConfidenceInterval{percentile_sorted(means, alpha / 2.0),
                            percentile_sorted(means, 1.0 - alpha / 2.0)};
}

double jain_fairness(std::span<const double> loads) {
  SCP_CHECK_MSG(!loads.empty(), "fairness of an empty load vector");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : loads) {
    SCP_DCHECK(x >= 0.0);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) {
    return 1.0;  // all-zero load is trivially even
  }
  return (sum * sum) / (static_cast<double>(loads.size()) * sum_sq);
}

double coefficient_of_variation(std::span<const double> values) {
  RunningStats rs;
  for (const double v : values) {
    rs.add(v);
  }
  const double mean = rs.mean();
  return mean != 0.0 ? rs.stddev() / mean : 0.0;
}

double chi_squared_statistic(std::span<const std::uint64_t> observed,
                             std::span<const double> expected) {
  SCP_CHECK(observed.size() == expected.size());
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    SCP_CHECK_MSG(expected[i] > 0.0, "expected counts must be positive");
    const double diff = static_cast<double>(observed[i]) - expected[i];
    stat += diff * diff / expected[i];
  }
  return stat;
}

}  // namespace scp
