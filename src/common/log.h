// Minimal leveled logger for the simulators and harness.
//
// Simulation hot paths never log; this exists for harness progress lines and
// configuration echo, so a simple synchronized stderr writer is sufficient.
#pragma once

#include <sstream>
#include <string>

namespace scp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line "LEVEL message" to stderr if `level` passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace scp

#define SCP_LOG_DEBUG ::scp::internal::LogLine(::scp::LogLevel::kDebug)
#define SCP_LOG_INFO ::scp::internal::LogLine(::scp::LogLevel::kInfo)
#define SCP_LOG_WARN ::scp::internal::LogLine(::scp::LogLevel::kWarn)
#define SCP_LOG_ERROR ::scp::internal::LogLine(::scp::LogLevel::kError)
