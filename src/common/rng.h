// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in SCP consumes an explicit `Rng` seeded from a
// caller-supplied 64-bit value, so a given experiment configuration always
// reproduces bit-identical results. The generator is xoshiro256** (Blackman &
// Vigna), seeded through SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"

namespace scp {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and for cheap stateless seed derivation.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Derives a child seed from a parent seed and a stream index. Distinct
/// `stream` values yield statistically independent child seeds; used to give
/// each Monte-Carlo trial its own generator.
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) noexcept;

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state, suitable for
/// large-scale simulation (not for cryptography).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). Uses Lemire's unbiased multiply-shift
  /// rejection method. Requires bound > 0.
  std::uint64_t uniform_u64(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform_double() noexcept;

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform_double(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) noexcept;

  /// Standard exponential variate with the given rate (> 0).
  double exponential(double rate) noexcept;

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct values from [0, population) without replacement.
  /// Requires k <= population. Uses Floyd's algorithm: O(k) expected time,
  /// O(k) space, output order is randomized.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t population,
                                                        std::size_t k);

  /// Long-jump: advances the state by 2^192 steps, equivalent to that many
  /// calls. Allows carving non-overlapping subsequences from one seed.
  void long_jump() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace scp
