// Discrete sampling utilities: Walker/Vose alias method for arbitrary
// discrete distributions and a rejection-inversion Zipf sampler.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace scp {

/// Samples from a fixed discrete distribution over {0, …, n-1} in O(1) per
/// draw after O(n) construction (Vose's alias method). Weights need not be
/// normalized; they must be non-negative with a positive sum.
class AliasSampler {
 public:
  explicit AliasSampler(std::span<const double> weights);

  /// Number of categories.
  std::size_t size() const noexcept { return prob_.size(); }

  /// Draws one category index.
  std::size_t sample(Rng& rng) const noexcept;

  /// Normalized probability of category i (for inspection/testing).
  double probability(std::size_t i) const noexcept;

 private:
  std::vector<double> prob_;        // P(pick own column) per column
  std::vector<std::uint32_t> alias_;  // fallback category per column
  std::vector<double> normalized_;  // normalized input weights
};

/// Zipf(θ) sampler over ranks {1, …, n}: P(k) ∝ 1 / k^θ.
///
/// Uses the rejection-inversion method of Hörmann & Derflinger (1996),
/// giving O(1) expected time per sample independent of n — essential for the
/// paper's workloads where n is 1e5…1e6 keys.
class ZipfSampler {
 public:
  /// Requires n >= 1 and theta > 0.
  ZipfSampler(std::uint64_t n, double theta);

  std::uint64_t n() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

  /// Draws a rank in [1, n].
  std::uint64_t sample(Rng& rng) const noexcept;

  /// Exact probability mass of rank k (computed from the partial harmonic
  /// sum; O(1) after construction).
  double pmf(std::uint64_t k) const noexcept;

 private:
  double h(double x) const noexcept;
  double h_integral(double x) const noexcept;
  double h_integral_inverse(double x) const noexcept;

  std::uint64_t n_;
  double theta_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
  double harmonic_;  // generalized harmonic number H_{n,θ} for pmf()
};

}  // namespace scp
