// Lightweight precondition / invariant checking.
//
// SCP_CHECK fires in all build types: simulation correctness depends on these
// contracts and the cost is negligible next to the simulation work itself.
// SCP_DCHECK compiles out in release builds; use it on hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace scp::internal {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr, const char* msg) {
  std::fprintf(stderr, "SCP_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace scp::internal

#define SCP_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::scp::internal::check_failed(__FILE__, __LINE__, #expr, "");    \
    }                                                                  \
  } while (false)

#define SCP_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::scp::internal::check_failed(__FILE__, __LINE__, #expr, (msg)); \
    }                                                                  \
  } while (false)

#ifdef NDEBUG
#define SCP_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define SCP_DCHECK(expr) SCP_CHECK(expr)
#endif
