// Log-bucketed histogram for latency-style metrics (HdrHistogram-like).
//
// Values are bucketed with bounded relative error: each power-of-two range is
// split into 2^precision sub-buckets, so recorded quantiles are accurate to
// within 2^-precision relative error. Used by the event-driven simulator to
// track per-query latency without storing every sample.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scp {

class LogHistogram {
 public:
  /// `precision` = sub-bucket bits per power of two (1…10). Higher precision
  /// costs proportionally more buckets.
  explicit LogHistogram(unsigned precision = 5);

  void record(std::uint64_t value) noexcept;
  void record_n(std::uint64_t value, std::uint64_t count) noexcept;
  void merge(const LogHistogram& other);

  std::uint64_t count() const noexcept { return total_count_; }
  std::uint64_t min() const noexcept;
  std::uint64_t max() const noexcept;
  double mean() const noexcept;

  /// Quantile q in [0, 1]; returns an upper bound of the bucket containing
  /// the q-th value. Returns 0 for an empty histogram.
  std::uint64_t value_at_quantile(double q) const noexcept;

  /// Human-readable one-line summary (count / mean / p50 / p99 / max).
  std::string summary() const;

  unsigned precision() const noexcept { return precision_; }

 private:
  std::size_t bucket_index(std::uint64_t value) const noexcept;
  std::uint64_t bucket_upper_bound(std::size_t index) const noexcept;

  unsigned precision_;
  std::uint64_t sub_bucket_count_;  // 2^precision
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace scp
