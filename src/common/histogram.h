// Log-bucketed histogram for latency-style metrics (HdrHistogram-like).
//
// Values are bucketed with bounded relative error: each power-of-two range is
// split into 2^precision sub-buckets, so recorded quantiles are accurate to
// within 2^-precision relative error. Used by the event-driven simulator to
// track per-query latency without storing every sample.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace scp {

class LogHistogram {
 public:
  /// `precision` = sub-bucket bits per power of two (1…10). Higher precision
  /// costs proportionally more buckets.
  explicit LogHistogram(unsigned precision = 5);

  void record(std::uint64_t value) noexcept;
  void record_n(std::uint64_t value, std::uint64_t count) noexcept;
  /// Combines `other` into this histogram. Equal precisions merge buckets
  /// exactly; a mismatched precision is rescaled — each occupied bucket of
  /// `other` is re-bucketed at its representative value, preserving counts
  /// exactly and values to within the *coarser* histogram's relative error
  /// (min/max/sum stay exact either way). Never aborts: histograms from
  /// different servers may legitimately disagree on precision.
  void merge(const LogHistogram& other);

  std::uint64_t count() const noexcept { return total_count_; }
  std::uint64_t min() const noexcept;
  std::uint64_t max() const noexcept;
  double mean() const noexcept;
  /// Exact sum of all recorded values (as a double; used by mean()).
  double sum() const noexcept { return sum_; }

  /// Quantile q in [0, 1]; returns an upper bound of the bucket containing
  /// the q-th value. Returns 0 for an empty histogram.
  std::uint64_t value_at_quantile(double q) const noexcept;

  /// Human-readable one-line summary (count / mean / p50 / p99 / max).
  std::string summary() const;

  unsigned precision() const noexcept { return precision_; }

  /// Sparse view of occupied buckets as (bucket index, count) pairs, in
  /// ascending index order. Together with precision/min/max/sum this is a
  /// lossless serialization of the histogram.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> nonzero_buckets() const;

  /// Reconstructs a histogram from its serialized form (the inverse of
  /// nonzero_buckets + the scalar accessors). Returns std::nullopt if the
  /// fields are inconsistent: bad precision, out-of-range bucket index,
  /// counts that don't sum to a total matching min/max presence.
  static std::optional<LogHistogram> from_buckets(
      unsigned precision,
      std::span<const std::pair<std::uint32_t, std::uint64_t>> buckets,
      std::uint64_t min, std::uint64_t max, double sum);

  friend bool operator==(const LogHistogram& a, const LogHistogram& b);

 private:
  std::size_t bucket_index(std::uint64_t value) const noexcept;
  std::uint64_t bucket_upper_bound(std::size_t index) const noexcept;

  unsigned precision_;
  std::uint64_t sub_bucket_count_;  // 2^precision
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace scp
