#include "common/hash.h"

#include <cstring>

#include "common/rng.h"

namespace scp {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

// One SipRound over the four state words.
inline void sip_round(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                      std::uint64_t& v3) noexcept {
  v0 += v1;
  v1 = rotl(v1, 13);
  v1 ^= v0;
  v0 = rotl(v0, 32);
  v2 += v3;
  v3 = rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = rotl(v1, 17);
  v1 ^= v2;
  v2 = rotl(v2, 32);
}

inline std::uint64_t load_le64(const unsigned char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);  // little-endian hosts only (x86/ARM LE)
  return v;
}

}  // namespace

std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t fnv1a(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  return fnv1a(s.data(), s.size());
}

std::uint64_t siphash24(SipKey key, const void* data, std::size_t len) noexcept {
  const auto* in = static_cast<const unsigned char*>(data);
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ key.k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ key.k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ key.k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ key.k1;

  const std::size_t full_blocks = len / 8;
  for (std::size_t i = 0; i < full_blocks; ++i) {
    const std::uint64_t m = load_le64(in + i * 8);
    v3 ^= m;
    sip_round(v0, v1, v2, v3);
    sip_round(v0, v1, v2, v3);
    v0 ^= m;
  }

  // Final block: remaining bytes plus the length in the top byte.
  std::uint64_t b = static_cast<std::uint64_t>(len) << 56;
  const unsigned char* tail = in + full_blocks * 8;
  switch (len & 7) {
    case 7: b |= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: b |= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: b |= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: b |= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: b |= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: b |= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1: b |= static_cast<std::uint64_t>(tail[0]); break;
    case 0: break;
  }
  v3 ^= b;
  sip_round(v0, v1, v2, v3);
  sip_round(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xff;
  sip_round(v0, v1, v2, v3);
  sip_round(v0, v1, v2, v3);
  sip_round(v0, v1, v2, v3);
  sip_round(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

std::uint64_t siphash24(SipKey key, std::uint64_t value) noexcept {
  return siphash24(key, &value, sizeof value);
}

SipKey sip_key_from_seed(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  SipKey key;
  key.k0 = splitmix64(s);
  key.k1 = splitmix64(s);
  return key;
}

}  // namespace scp
