// Minimal streaming JSON writer (no DOM, no parsing).
//
// Used to emit machine-readable provisioning plans and assessments so the
// library composes with dashboards and deployment tooling. Scope-based API:
// begin_object/begin_array push a scope, end() pops it; keys and values are
// validated against the current scope, commas and escaping are handled.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scp {

class JsonWriter {
 public:
  JsonWriter();

  // --- structure -------------------------------------------------------
  /// Opens the root object/array (only valid as the first call) or a
  /// nested one (inside an array, or after key() inside an object).
  JsonWriter& begin_object();
  JsonWriter& begin_array();
  /// Closes the innermost scope.
  JsonWriter& end();

  /// Declares the next member's name. Only valid directly inside an object.
  JsonWriter& key(std::string_view name);

  // --- values ----------------------------------------------------------
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// True once the root scope has been closed.
  bool complete() const noexcept;

  /// The serialized document. Requires complete().
  std::string str() const;

 private:
  enum class Scope { kObject, kArray };
  void before_value();
  void write_escaped(std::string_view s);

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> has_items_;  // per scope: need a comma before next item
  bool expecting_value_ = false;  // a key() was written, value must follow
  bool root_done_ = false;
};

}  // namespace scp
