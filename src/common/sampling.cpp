#include "common/sampling.h"

#include <cmath>
#include <numeric>

#include "common/check.h"

namespace scp {
namespace {

// (exp(t) - 1) / t with the removable singularity at t = 0 handled.
double expm1_over(double t) noexcept {
  if (std::abs(t) > 1e-8) {
    return std::expm1(t) / t;
  }
  return 1.0 + t * 0.5 * (1.0 + t / 3.0);
}

// log(1 + t) / t with the removable singularity at t = 0 handled.
double log1p_over(double t) noexcept {
  if (std::abs(t) > 1e-8) {
    return std::log1p(t) / t;
  }
  return 1.0 - t * 0.5 * (1.0 - t * (2.0 / 3.0));
}

}  // namespace

AliasSampler::AliasSampler(std::span<const double> weights) {
  SCP_CHECK_MSG(!weights.empty(), "alias sampler needs at least one weight");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (const double w : weights) {
    SCP_CHECK_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  SCP_CHECK_MSG(total > 0.0, "weights must have a positive sum");

  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
  }

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's algorithm: partition scaled probabilities into small/large piles
  // and pair each small column with mass borrowed from a large one.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are numerically 1.0.
  for (const std::uint32_t l : large) {
    prob_[l] = 1.0;
    alias_[l] = l;
  }
  for (const std::uint32_t s : small) {
    prob_[s] = 1.0;
    alias_[s] = s;
  }
}

std::size_t AliasSampler::sample(Rng& rng) const noexcept {
  const std::size_t column =
      static_cast<std::size_t>(rng.uniform_u64(prob_.size()));
  return rng.uniform_double() < prob_[column] ? column : alias_[column];
}

double AliasSampler::probability(std::size_t i) const noexcept {
  SCP_DCHECK(i < normalized_.size());
  return normalized_[i];
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  SCP_CHECK_MSG(n >= 1, "Zipf needs n >= 1");
  SCP_CHECK_MSG(theta > 0.0, "Zipf needs theta > 0");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  harmonic_ = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    harmonic_ += std::pow(static_cast<double>(k), -theta);
  }
}

double ZipfSampler::h(double x) const noexcept {
  return std::exp(-theta_ * std::log(x));
}

double ZipfSampler::h_integral(double x) const noexcept {
  const double log_x = std::log(x);
  return expm1_over((1.0 - theta_) * log_x) * log_x;
}

double ZipfSampler::h_integral_inverse(double x) const noexcept {
  double t = x * (1.0 - theta_);
  if (t < -1.0) {
    t = -1.0;  // guard against rounding below the logarithm's domain
  }
  return std::exp(log1p_over(t) * x);
}

std::uint64_t ZipfSampler::sample(Rng& rng) const noexcept {
  while (true) {
    const double u =
        h_integral_n_ + rng.uniform_double() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

double ZipfSampler::pmf(std::uint64_t k) const noexcept {
  SCP_DCHECK(k >= 1 && k <= n_);
  return std::pow(static_cast<double>(k), -theta_) / harmonic_;
}

}  // namespace scp
