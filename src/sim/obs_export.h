// Event-simulation results under the live tier's metric names.
//
// The live servers (FrontendServer / BackendServer) publish their counters
// and histograms as an obs::MetricsSnapshot; this adapter publishes an
// EventSimResult under the *same names*, so a simulated run and a live run
// of the same scenario can be diffed metric-by-metric (EXPERIMENTS.md,
// "Observability").
#pragma once

#include "obs/metrics.h"
#include "sim/event_sim.h"

namespace scp {

/// Converts an event-simulation result into the live tier's metric
/// vocabulary:
///
///   frontend.requests   = total_queries
///   frontend.hits       = cache_hits
///   frontend.misses     = total_queries - cache_hits
///   frontend.forwarded  = backend_arrivals - dropped   (answered via a node)
///   frontend.retries    = retries
///   frontend.failures   = dropped + unserved           (observable damage)
///   backend.requests    = backend_arrivals
///   frontend.backends_up (gauge) = min_alive_nodes
///   frontend.request_us (timer)  = wait_us — the simulator's request
///     latency is pure queueing delay (fluid service, zero network), the
///     degenerate case of the live frontend.request_us histogram.
obs::MetricsSnapshot event_sim_metrics(const EventSimResult& result);

}  // namespace scp
