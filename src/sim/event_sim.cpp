#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "workload/stream.h"

namespace scp {

EventSimResult simulate_events(Cluster& cluster, FrontEndCache& cache,
                               const QueryDistribution& distribution,
                               ReplicaSelector& selector,
                               const EventSimConfig& config) {
  SCP_CHECK(config.query_rate > 0.0);
  SCP_CHECK(config.duration_s > 0.0);
  SCP_CHECK_MSG(config.queue_capacity >= 1, "need at least one queue slot");
  cluster.reset_accounting();
  selector.reset();
  cache.clear();

  const std::uint32_t n = cluster.node_count();
  const std::uint32_t d = cluster.replication();
  std::vector<NodeId> group(d);

  // Per-node fluid queue state, advanced lazily to each arrival time.
  std::vector<double> backlog(n, 0.0);       // queries waiting/being served
  std::vector<double> last_update(n, 0.0);   // sim time of last drain
  std::vector<double> backlog_as_load(n, 0.0);  // selector's view
  std::vector<double> served_total(n, 0.0);

  auto drain = [&](NodeId node, double now) {
    const BackendNode& state = cluster.node(node);
    if (state.has_capacity_limit()) {
      const double served_capacity =
          (now - last_update[node]) * state.capacity_qps();
      const double served = std::min(backlog[node], served_capacity);
      backlog[node] -= served;
      served_total[node] += served;
    } else {
      served_total[node] += backlog[node];
      backlog[node] = 0.0;  // infinite capacity: instant service
    }
    last_update[node] = now;
    backlog_as_load[node] = backlog[node];
  };

  EventSimResult result;
  result.node_arrivals.assign(n, 0);

  QueryStream stream(distribution, config.query_rate, config.seed);
  Rng route_rng(derive_seed(config.seed, 0x5e1ec7ULL));

  while (true) {
    const Query q = stream.next();
    if (q.time >= config.duration_s) {
      break;
    }
    ++result.total_queries;
    if (cache.access(q.key)) {
      ++result.cache_hits;
      result.wait_us.record(0);
      continue;
    }
    cluster.replica_group(q.key, std::span<NodeId>(group));
    for (const NodeId node : group) {
      drain(node, q.time);
    }
    const std::size_t pick = selector.select(
        q.key, std::span<const NodeId>(group), backlog_as_load, route_rng);
    const NodeId target = group[pick];
    ++result.backend_arrivals;
    ++result.node_arrivals[target];
    cluster.node(target).record_arrival();

    if (backlog[target] + 1.0 > static_cast<double>(config.queue_capacity)) {
      ++result.dropped;
      cluster.node(target).record_dropped(1);
      continue;
    }
    // Waiting time = backlog ahead of us divided by the service rate.
    const BackendNode& state = cluster.node(target);
    if (state.has_capacity_limit()) {
      const double wait_s = backlog[target] / state.capacity_qps();
      result.wait_us.record(
          static_cast<std::uint64_t>(std::llround(wait_s * 1e6)));
    } else {
      result.wait_us.record(0);
    }
    backlog[target] += 1.0;
    backlog_as_load[target] = backlog[target];
    cluster.node(target).set_queue_depth(
        static_cast<std::uint64_t>(backlog[target]));
  }

  result.cache_hit_ratio =
      result.total_queries > 0
          ? static_cast<double>(result.cache_hits) /
                static_cast<double>(result.total_queries)
          : 0.0;
  result.drop_ratio =
      result.total_queries > 0
          ? static_cast<double>(result.dropped) /
                static_cast<double>(result.total_queries)
          : 0.0;

  for (NodeId id = 0; id < n; ++id) {
    cluster.node(id).record_served(
        static_cast<std::uint64_t>(std::llround(served_total[id])));
  }

  std::vector<double> arrivals_d(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    arrivals_d[i] = static_cast<double>(result.node_arrivals[i]);
  }
  result.arrival_metrics = compute_load_metrics(arrivals_d);
  if (result.total_queries > 0) {
    result.normalized_max_arrivals = normalized_against(
        result.arrival_metrics.max, static_cast<double>(result.total_queries),
        n);
  }
  return result;
}

}  // namespace scp
