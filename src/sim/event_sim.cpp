#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "workload/stream.h"

namespace scp {

EventSimResult simulate_events(Cluster& cluster, FrontEndCache& cache,
                               const QueryDistribution& distribution,
                               ReplicaSelector& selector,
                               const EventSimConfig& config) {
  return simulate_events(cluster, cache, distribution, selector, config,
                         nullptr, nullptr);
}

EventSimResult simulate_events(Cluster& cluster, FrontEndCache& cache,
                               const QueryDistribution& distribution,
                               ReplicaSelector& selector,
                               const EventSimConfig& config,
                               const PlacementIndex* index,
                               EventSimScratch* scratch) {
  SCP_CHECK(config.query_rate > 0.0);
  SCP_CHECK(config.duration_s > 0.0);
  SCP_CHECK_MSG(config.queue_capacity >= 1, "need at least one queue slot");
  const std::uint32_t n = cluster.node_count();
  const std::uint32_t d = cluster.replication();
  const bool table_backed = index != nullptr && index->materialized();
  if (index != nullptr) {
    SCP_CHECK_MSG(
        index->replication() == d && index->node_count() == n,
        "placement index topology must match the cluster");
    SCP_CHECK_MSG(!index->materialized() ||
                      index->keys() >= distribution.support_size(),
                  "placement index must cover the distribution's support");
  }
  cluster.reset_accounting();
  selector.reset();
  cache.clear();

  EventSimScratch local;
  if (scratch == nullptr) {
    scratch = &local;
  }
  scratch->group.resize(d);
  std::span<NodeId> group(scratch->group);

  // Per-node fluid queue state, advanced lazily to each arrival time.
  scratch->backlog.assign(n, 0.0);       // queries waiting/being served
  scratch->last_update.assign(n, 0.0);   // sim time of last drain
  scratch->backlog_as_load.assign(n, 0.0);  // selector's view
  scratch->served_total.assign(n, 0.0);
  std::vector<double>& backlog = scratch->backlog;
  std::vector<double>& last_update = scratch->last_update;
  std::vector<double>& backlog_as_load = scratch->backlog_as_load;
  std::vector<double>& served_total = scratch->served_total;
  const NodeId* table = table_backed ? index->group(0) : nullptr;

  // Fault timeline: current per-node health plus the sorted times at which
  // it changes. An absent or empty schedule leaves `faulted` false and the
  // loop below byte-identical to the fault-unaware simulator.
  const FaultSchedule* schedule = config.faults;
  if (schedule != nullptr) {
    SCP_CHECK_MSG(schedule->nodes() == n,
                  "fault schedule must match the cluster's node count");
    if (schedule->empty()) {
      schedule = nullptr;
    }
  }
  const bool faulted = schedule != nullptr;
  FaultView fault_view;
  std::vector<double> transitions;
  std::size_t transition_cursor = 0;

  EventSimResult result;
  result.node_arrivals.assign(n, 0);
  result.min_alive_nodes = n;

  // A slow node drains its backlog at capacity/multiplier.
  const auto service_rate = [&](const BackendNode& state, NodeId node) {
    return faulted ? state.capacity_qps() / fault_view.slow[node]
                   : state.capacity_qps();
  };

  auto drain = [&](NodeId node, double now) {
    const BackendNode& state = cluster.node(node);
    if (state.has_capacity_limit()) {
      const double served_capacity =
          (now - last_update[node]) * service_rate(state, node);
      const double served = std::min(backlog[node], served_capacity);
      backlog[node] -= served;
      served_total[node] += served;
    } else {
      served_total[node] += backlog[node];
      backlog[node] = 0.0;  // infinite capacity: instant service
    }
    last_update[node] = now;
    backlog_as_load[node] = backlog[node];
  };

  if (faulted) {
    fault_view = schedule->view_at(0.0);
    transitions = schedule->transition_times();
    while (transition_cursor < transitions.size() &&
           transitions[transition_cursor] <= 0.0) {
      ++transition_cursor;  // already folded into the initial view
    }
    cluster.apply_health(std::span<const std::uint8_t>(fault_view.alive));
    result.min_alive_nodes = fault_view.alive_count;
  } else {
    cluster.restore_all_alive();
  }

  // Replays every health change in (then, now]: drains each node piecewise
  // under the old multipliers, then applies the new view — crashed nodes
  // lose their backlog, recovered nodes rejoin empty.
  const auto advance_faults = [&](double now) {
    while (transition_cursor < transitions.size() &&
           transitions[transition_cursor] <= now) {
      const double when = transitions[transition_cursor++];
      for (NodeId node = 0; node < n; ++node) {
        drain(node, when);
      }
      const FaultView next = schedule->view_at(when);
      for (NodeId node = 0; node < n; ++node) {
        if (fault_view.alive[node] && !next.alive[node]) {
          const auto lost =
              static_cast<std::uint64_t>(std::llround(backlog[node]));
          result.crash_lost += lost;
          cluster.node(node).record_dropped(lost);
          backlog[node] = 0.0;
          backlog_as_load[node] = 0.0;
          cluster.node(node).set_queue_depth(0);
        } else if (!fault_view.alive[node] && next.alive[node]) {
          backlog[node] = 0.0;
          backlog_as_load[node] = 0.0;
          last_update[node] = when;
        }
      }
      fault_view = next;
      result.min_alive_nodes =
          std::min(result.min_alive_nodes, fault_view.alive_count);
    }
  };

  QueryStream stream(distribution, config.query_rate, config.seed);
  Rng route_rng(derive_seed(config.seed, 0x5e1ec7ULL));
  Rng fault_rng(derive_seed(config.seed, 0xfa117ULL));
  const std::uint32_t max_attempts = config.retry.max_attempts();

  while (true) {
    const Query q = stream.next();
    if (q.time >= config.duration_s) {
      break;
    }
    ++result.total_queries;
    if (faulted) {
      advance_faults(q.time);
    }
    if (cache.access(q.key)) {
      ++result.cache_hits;
      result.wait_us.record(0);
      continue;
    }
    const NodeId* row;
    if (table != nullptr) {
      row = table + q.key * d;
    } else {
      cluster.replica_group(q.key, group);
      row = group.data();
    }

    NodeId target = 0;
    double backoff_s = 0.0;
    if (faulted) {
      // Degraded routing: skip dead replicas, power-of-d' choices over the
      // survivors, retry network-dropped sends with capped backoff.
      scratch->survivors.resize(d);
      const std::uint32_t d_alive = alive_members(
          std::span<const NodeId>(row, d),
          std::span<const std::uint8_t>(fault_view.alive),
          std::span<NodeId>(scratch->survivors));
      if (d_alive == 0) {
        ++result.unserved;
        continue;
      }
      const std::span<const NodeId> candidates(scratch->survivors.data(),
                                               d_alive);
      for (const NodeId node : candidates) {
        drain(node, q.time);
      }
      bool reached = false;
      for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
        const std::size_t pick =
            selector.select(q.key, candidates, backlog_as_load, route_rng);
        const NodeId candidate = candidates[pick];
        if (fault_view.drop[candidate] > 0.0 &&
            fault_rng.bernoulli(fault_view.drop[candidate])) {
          if (attempt + 1 < max_attempts) {
            backoff_s += config.retry.backoff_s(attempt);
            ++result.retries;
          }
          continue;
        }
        target = candidate;
        reached = true;
        break;
      }
      if (!reached) {
        ++result.unserved;
        continue;
      }
    } else {
      for (std::uint32_t j = 0; j < d; ++j) {
        drain(row[j], q.time);
      }
      const std::size_t pick = selector.select(
          q.key, std::span<const NodeId>(row, d), backlog_as_load, route_rng);
      target = row[pick];
    }
    ++result.backend_arrivals;
    ++result.node_arrivals[target];
    cluster.node(target).record_arrival();

    if (backlog[target] + 1.0 > static_cast<double>(config.queue_capacity)) {
      ++result.dropped;
      cluster.node(target).record_dropped(1);
      continue;
    }
    // Waiting time = backlog ahead of us divided by the (possibly degraded)
    // service rate, plus any retry backoff the front-end burned.
    const BackendNode& state = cluster.node(target);
    if (state.has_capacity_limit()) {
      const double wait_s =
          backlog[target] / service_rate(state, target) + backoff_s;
      result.wait_us.record(
          static_cast<std::uint64_t>(std::llround(wait_s * 1e6)));
    } else {
      result.wait_us.record(
          static_cast<std::uint64_t>(std::llround(backoff_s * 1e6)));
    }
    backlog[target] += 1.0;
    backlog_as_load[target] = backlog[target];
    cluster.node(target).set_queue_depth(
        static_cast<std::uint64_t>(backlog[target]));
  }

  result.cache_hit_ratio =
      result.total_queries > 0
          ? static_cast<double>(result.cache_hits) /
                static_cast<double>(result.total_queries)
          : 0.0;
  result.drop_ratio =
      result.total_queries > 0
          ? static_cast<double>(result.dropped) /
                static_cast<double>(result.total_queries)
          : 0.0;
  result.unserved_ratio =
      result.total_queries > 0
          ? static_cast<double>(result.unserved) /
                static_cast<double>(result.total_queries)
          : 0.0;

  for (NodeId id = 0; id < n; ++id) {
    cluster.node(id).record_served(
        static_cast<std::uint64_t>(std::llround(served_total[id])));
  }

  scratch->arrivals_d.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    scratch->arrivals_d[i] = static_cast<double>(result.node_arrivals[i]);
  }
  result.arrival_metrics = compute_load_metrics(scratch->arrivals_d);
  if (result.total_queries > 0) {
    result.normalized_max_arrivals = normalized_against(
        result.arrival_metrics.max, static_cast<double>(result.total_queries),
        n);
  }
  return result;
}

}  // namespace scp
