#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "workload/stream.h"

namespace scp {

EventSimResult simulate_events(Cluster& cluster, FrontEndCache& cache,
                               const QueryDistribution& distribution,
                               ReplicaSelector& selector,
                               const EventSimConfig& config) {
  return simulate_events(cluster, cache, distribution, selector, config,
                         nullptr, nullptr);
}

EventSimResult simulate_events(Cluster& cluster, FrontEndCache& cache,
                               const QueryDistribution& distribution,
                               ReplicaSelector& selector,
                               const EventSimConfig& config,
                               const PlacementIndex* index,
                               EventSimScratch* scratch) {
  SCP_CHECK(config.query_rate > 0.0);
  SCP_CHECK(config.duration_s > 0.0);
  SCP_CHECK_MSG(config.queue_capacity >= 1, "need at least one queue slot");
  const std::uint32_t n = cluster.node_count();
  const std::uint32_t d = cluster.replication();
  const bool table_backed = index != nullptr && index->materialized();
  if (index != nullptr) {
    SCP_CHECK_MSG(
        index->replication() == d && index->node_count() == n,
        "placement index topology must match the cluster");
    SCP_CHECK_MSG(!index->materialized() ||
                      index->keys() >= distribution.support_size(),
                  "placement index must cover the distribution's support");
  }
  cluster.reset_accounting();
  selector.reset();
  cache.clear();

  EventSimScratch local;
  if (scratch == nullptr) {
    scratch = &local;
  }
  scratch->group.resize(d);
  std::span<NodeId> group(scratch->group);

  // Per-node fluid queue state, advanced lazily to each arrival time.
  scratch->backlog.assign(n, 0.0);       // queries waiting/being served
  scratch->last_update.assign(n, 0.0);   // sim time of last drain
  scratch->backlog_as_load.assign(n, 0.0);  // selector's view
  scratch->served_total.assign(n, 0.0);
  std::vector<double>& backlog = scratch->backlog;
  std::vector<double>& last_update = scratch->last_update;
  std::vector<double>& backlog_as_load = scratch->backlog_as_load;
  std::vector<double>& served_total = scratch->served_total;
  const NodeId* table = table_backed ? index->group(0) : nullptr;

  auto drain = [&](NodeId node, double now) {
    const BackendNode& state = cluster.node(node);
    if (state.has_capacity_limit()) {
      const double served_capacity =
          (now - last_update[node]) * state.capacity_qps();
      const double served = std::min(backlog[node], served_capacity);
      backlog[node] -= served;
      served_total[node] += served;
    } else {
      served_total[node] += backlog[node];
      backlog[node] = 0.0;  // infinite capacity: instant service
    }
    last_update[node] = now;
    backlog_as_load[node] = backlog[node];
  };

  EventSimResult result;
  result.node_arrivals.assign(n, 0);

  QueryStream stream(distribution, config.query_rate, config.seed);
  Rng route_rng(derive_seed(config.seed, 0x5e1ec7ULL));

  while (true) {
    const Query q = stream.next();
    if (q.time >= config.duration_s) {
      break;
    }
    ++result.total_queries;
    if (cache.access(q.key)) {
      ++result.cache_hits;
      result.wait_us.record(0);
      continue;
    }
    const NodeId* row;
    if (table != nullptr) {
      row = table + q.key * d;
    } else {
      cluster.replica_group(q.key, group);
      row = group.data();
    }
    for (std::uint32_t j = 0; j < d; ++j) {
      drain(row[j], q.time);
    }
    const std::size_t pick = selector.select(
        q.key, std::span<const NodeId>(row, d), backlog_as_load, route_rng);
    const NodeId target = row[pick];
    ++result.backend_arrivals;
    ++result.node_arrivals[target];
    cluster.node(target).record_arrival();

    if (backlog[target] + 1.0 > static_cast<double>(config.queue_capacity)) {
      ++result.dropped;
      cluster.node(target).record_dropped(1);
      continue;
    }
    // Waiting time = backlog ahead of us divided by the service rate.
    const BackendNode& state = cluster.node(target);
    if (state.has_capacity_limit()) {
      const double wait_s = backlog[target] / state.capacity_qps();
      result.wait_us.record(
          static_cast<std::uint64_t>(std::llround(wait_s * 1e6)));
    } else {
      result.wait_us.record(0);
    }
    backlog[target] += 1.0;
    backlog_as_load[target] = backlog[target];
    cluster.node(target).set_queue_depth(
        static_cast<std::uint64_t>(backlog[target]));
  }

  result.cache_hit_ratio =
      result.total_queries > 0
          ? static_cast<double>(result.cache_hits) /
                static_cast<double>(result.total_queries)
          : 0.0;
  result.drop_ratio =
      result.total_queries > 0
          ? static_cast<double>(result.dropped) /
                static_cast<double>(result.total_queries)
          : 0.0;

  for (NodeId id = 0; id < n; ++id) {
    cluster.node(id).record_served(
        static_cast<std::uint64_t>(std::llround(served_total[id])));
  }

  scratch->arrivals_d.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    scratch->arrivals_d[i] = static_cast<double>(result.node_arrivals[i]);
  }
  result.arrival_metrics = compute_load_metrics(scratch->arrivals_d);
  if (result.total_queries > 0) {
    result.normalized_max_arrivals = normalized_against(
        result.arrival_metrics.max, static_cast<double>(result.total_queries),
        n);
  }
  return result;
}

}  // namespace scp
