// Failure injection: does provable prevention survive node failures?
//
// The paper provisions for a fixed n. Real clusters lose nodes. Two things
// happen on failure with consistent-hash placement: (i) the failed nodes'
// keys remap to ring successors (bounded disruption — "costly to shift
// results" is why we must re-measure, not re-derive), and (ii) the effective
// cluster is smaller, so both the even-spread baseline R/(n−f) and the
// threshold c*(n−f) move. Since c* grows with n, a cache provisioned for n
// still satisfies c ≥ c*(n−f): the guarantee should *survive* failures, with
// the load everywhere rising by n/(n−f). This module measures exactly that.
#pragma once

#include <cstdint>
#include <string>

#include "workload/distribution.h"

namespace scp {

struct FailureExperimentConfig {
  std::uint32_t nodes = 100;        ///< n before failures
  std::uint32_t replication = 3;    ///< d
  std::uint64_t items = 10000;      ///< m
  std::uint64_t cache_size = 0;     ///< c
  double query_rate = 1.0;          ///< R
  std::uint32_t vnodes_per_node = 64;
  std::string selector = "least-loaded";
};

struct FailureExperimentResult {
  /// Normalized max load before any failure (baseline, vs R/n).
  double gain_before = 0.0;
  /// Normalized max load over surviving nodes after the failures,
  /// normalized against the post-failure even spread R/(n−f).
  double gain_after = 0.0;
  /// Fraction of (supported) keys whose replica group changed.
  double disruption_fraction = 0.0;
  std::uint32_t failed_nodes = 0;
  std::uint32_t alive_nodes = 0;
};

/// Runs the before/after measurement: builds a consistent-hash ring cluster,
/// measures the workload's gain, fails `failures` random nodes (removing
/// them from the ring, which remaps their arcs to successors), and measures
/// again with the *same* workload and cache contents (the adversary and the
/// front-end don't react instantly). Requires failures + replication <=
/// nodes.
FailureExperimentResult run_failure_experiment(
    const FailureExperimentConfig& config, std::uint32_t failures,
    const QueryDistribution& workload, std::uint64_t seed);

}  // namespace scp
