// Rate simulator — the paper's level of abstraction.
//
// Works with expected per-key query rates instead of individual requests:
// cached keys' mass is absorbed by the front-end; each uncached key's rate
// p_i·R is placed on its replica group by the selector (whole rate to the
// least-loaded member — the balls-into-bins model — or split evenly for
// random / round-robin selection). One run = one random partition of keys to
// nodes; repeated runs with fresh seeds give the max-load distribution the
// paper plots.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.h"
#include "cluster/cluster.h"
#include "cluster/placement_index.h"
#include "cluster/routing.h"
#include "common/rng.h"
#include "sim/fault.h"
#include "sim/metrics.h"
#include "workload/cost_model.h"
#include "workload/distribution.h"

namespace scp {

struct RateSimConfig {
  double query_rate = 1.0;  ///< R — aggregate client rate (qps)
  /// Seed for the selector's tie-breaks and the key-placement order.
  std::uint64_t seed = 1;
  /// Optional per-key cost multipliers (Assumption 4 relaxation). When set,
  /// every rate in the result is *effective* (cost-weighted) and must match
  /// the distribution's key space. Null = uniform cost 1.
  const CostModel* cost_model = nullptr;
  /// Opt-in degraded mode: a health snapshot (sim/fault.h) the placement
  /// consults per key. Dead replicas are skipped (the selector runs a
  /// degraded d' < d power-of-choices over the survivors), slow nodes cost
  /// `slow[node]`x the work per delivered query, and lossy nodes lose
  /// `drop[node]` of each attempt's mass, which is retried under `retry`.
  /// Null — or a view with no faults — reproduces the healthy simulation
  /// bit-for-bit. Must outlive the call and match the cluster's node count.
  const FaultView* faults = nullptr;
  /// Retry behavior for network-dropped mass (only consulted with faults).
  RetryPolicy retry;
};

struct RateSimResult {
  std::vector<double> node_loads;  ///< offered rate per node (qps)
  LoadMetrics metrics;             ///< imbalance metrics of node_loads
  double cache_rate = 0.0;         ///< rate absorbed by the front-end cache
  double backend_rate = 0.0;       ///< rate reaching the back-ends
  double cache_hit_ratio = 0.0;    ///< cache_rate / R
  /// Observed max load normalized by the even-spread baseline R_eff/n
  /// (Definition 1's attack gain; R_eff = cost-weighted total demand, = R
  /// under uniform cost).
  double normalized_max_load = 0.0;
  std::uint32_t saturated_nodes = 0;  ///< nodes with offered > capacity
  /// Max over capacity-limited nodes of offered/capacity; 0 when every node
  /// is unlimited. The metric that matters under heterogeneous capacities:
  /// the cluster melts down where *utilization*, not raw load, peaks.
  double max_utilization = 0.0;

  // --- degraded-mode accounting (fault injection; see RateSimConfig) ------
  std::uint32_t alive_nodes = 0;  ///< surviving nodes (= n without faults)
  /// Demand that reached no node: every replica dead, or network-dropped on
  /// all allowed retry attempts. 0 without faults.
  double unserved_rate = 0.0;
  /// Observed max load normalized by the *surviving* even spread
  /// R_eff/(n−f) — the degraded analogue of normalized_max_load (identical
  /// to it without faults).
  double degraded_normalized_max_load = 0.0;
};

/// Reusable buffers for repeated simulate_rates calls. One scratch per
/// worker thread removes every per-trial allocation from the hot loop, and
/// three memos turn the placement loop into purely sequential reads:
///
///  - `order`, the shuffled key order, memoized by (seed, support size);
///    restoring `post_shuffle_rng` keeps reuse bit-identical to reshuffling.
///  - `ordered_rows`, the placement-table rows laid out in `order`-major
///    sequence, memoized per placement index — gathered once per (trial,
///    support), then every sweep point streams them contiguously.
///  - `ordered_rates`, the effective per-key rates in the same layout,
///    memoized per (distribution, query rate, cost model) — the x = m point
///    repeated at every cache size pays the gather once.
///
/// The memo keys identify the distribution and cost model by address; the
/// caller must keep those objects alive and unchanged while reusing a
/// scratch (the benches' pattern maps and GainSweep do).
struct RateSimScratch {
  std::vector<std::uint64_t> order;   ///< shuffled placement order
  std::vector<double> loads;          ///< per-node offered rates
  std::vector<NodeId> ordered_rows;   ///< replica groups, order-major
  std::vector<double> ordered_rates;  ///< effective rates, order-major
  std::vector<NodeId> group;          ///< fallback replica-group buffer
  std::vector<NodeId> survivors;      ///< alive replica-group members

  // Memoized shuffle: `order` holds the permutation for
  // (order_seed, order_support) and `post_shuffle_rng` the generator state
  // right after producing it. The dependent memos below are only valid
  // while the order they were gathered under is.
  bool has_order = false;
  std::uint64_t order_seed = 0;
  std::uint64_t order_support = 0;
  Rng post_shuffle_rng{0};

  std::uint64_t rows_index_id = 0;  ///< PlacementIndex::id(), 0 = invalid
  const void* rates_distribution = nullptr;
  const void* rates_cost_model = nullptr;
  double rates_query_rate = 0.0;
};

/// Runs one rate simulation. Resets the cluster's accounting first and
/// leaves the offered rates of this run on the cluster's nodes.
RateSimResult simulate_rates(Cluster& cluster, const FrontEndCache& cache,
                             const QueryDistribution& distribution,
                             ReplicaSelector& selector,
                             const RateSimConfig& config);

/// Fast-path overload: same semantics and bit-identical results, but
/// placement comes from `index` (when non-null and materialized) instead of
/// per-key virtual hashing, and all working memory lives in `scratch` (when
/// non-null) so repeated trials allocate nothing. `index` must be built from
/// the cluster's own partitioner and cover at least the distribution's
/// support; pass nullptr for either argument to fall back gracefully.
RateSimResult simulate_rates(Cluster& cluster, const FrontEndCache& cache,
                             const QueryDistribution& distribution,
                             ReplicaSelector& selector,
                             const RateSimConfig& config,
                             const PlacementIndex* index,
                             RateSimScratch* scratch);

}  // namespace scp
