// Rate simulator — the paper's level of abstraction.
//
// Works with expected per-key query rates instead of individual requests:
// cached keys' mass is absorbed by the front-end; each uncached key's rate
// p_i·R is placed on its replica group by the selector (whole rate to the
// least-loaded member — the balls-into-bins model — or split evenly for
// random / round-robin selection). One run = one random partition of keys to
// nodes; repeated runs with fresh seeds give the max-load distribution the
// paper plots.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.h"
#include "cluster/cluster.h"
#include "cluster/routing.h"
#include "sim/metrics.h"
#include "workload/cost_model.h"
#include "workload/distribution.h"

namespace scp {

struct RateSimConfig {
  double query_rate = 1.0;  ///< R — aggregate client rate (qps)
  /// Seed for the selector's tie-breaks and the key-placement order.
  std::uint64_t seed = 1;
  /// Optional per-key cost multipliers (Assumption 4 relaxation). When set,
  /// every rate in the result is *effective* (cost-weighted) and must match
  /// the distribution's key space. Null = uniform cost 1.
  const CostModel* cost_model = nullptr;
};

struct RateSimResult {
  std::vector<double> node_loads;  ///< offered rate per node (qps)
  LoadMetrics metrics;             ///< imbalance metrics of node_loads
  double cache_rate = 0.0;         ///< rate absorbed by the front-end cache
  double backend_rate = 0.0;       ///< rate reaching the back-ends
  double cache_hit_ratio = 0.0;    ///< cache_rate / R
  /// Observed max load normalized by the even-spread baseline R_eff/n
  /// (Definition 1's attack gain; R_eff = cost-weighted total demand, = R
  /// under uniform cost).
  double normalized_max_load = 0.0;
  std::uint32_t saturated_nodes = 0;  ///< nodes with offered > capacity
  /// Max over capacity-limited nodes of offered/capacity; 0 when every node
  /// is unlimited. The metric that matters under heterogeneous capacities:
  /// the cluster melts down where *utilization*, not raw load, peaks.
  double max_utilization = 0.0;
};

/// Runs one rate simulation. Resets the cluster's accounting first and
/// leaves the offered rates of this run on the cluster's nodes.
RateSimResult simulate_rates(Cluster& cluster, const FrontEndCache& cache,
                             const QueryDistribution& distribution,
                             ReplicaSelector& selector,
                             const RateSimConfig& config);

}  // namespace scp
