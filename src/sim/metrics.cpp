#include "sim/metrics.h"

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "common/check.h"
#include "common/stats.h"

namespace scp {

std::string LoadMetrics::to_string() const {
  std::ostringstream os;
  os << "max=" << max << " mean=" << mean << " max/mean=" << max_over_mean
     << " cov=" << coefficient_of_variation << " jain=" << jain_fairness;
  return os.str();
}

LoadMetrics compute_load_metrics(std::span<const double> loads) {
  SCP_CHECK_MSG(!loads.empty(), "load vector is empty");
  LoadMetrics metrics;
  RunningStats rs;
  for (const double load : loads) {
    rs.add(load);
  }
  metrics.max = rs.max();
  metrics.mean = rs.mean();
  metrics.min = rs.min();
  metrics.max_over_mean = rs.mean() > 0.0 ? rs.max() / rs.mean() : 0.0;
  metrics.coefficient_of_variation = coefficient_of_variation(loads);
  metrics.jain_fairness = jain_fairness(loads);
  return metrics;
}

double normalized_against(double max_load, double total_rate,
                          std::uint32_t nodes) {
  SCP_CHECK(nodes >= 1);
  SCP_CHECK(total_rate > 0.0);
  return max_load / (total_rate / static_cast<double>(nodes));
}

}  // namespace scp
