#include "sim/scenario.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <numeric>
#include <thread>
#include <vector>

#include "adversary/knowledge.h"
#include "cache/perfect_cache.h"
#include "cluster/cluster.h"
#include "common/check.h"
#include "common/rng.h"
#include "sim/rate_sim.h"

namespace scp {

double gain_trial(const ScenarioConfig& config,
                  const QueryDistribution& distribution, std::uint64_t seed) {
  config.params.check();
  SCP_CHECK_MSG(distribution.size() == config.params.items,
                "distribution key space must match params.items");
  Cluster cluster(make_partitioner(config.partitioner, config.params.nodes,
                                   config.params.replication,
                                   derive_seed(seed, 1)));
  const PerfectCache cache(config.params.cache_size, distribution);
  auto selector = make_selector(config.selector);
  RateSimConfig sim_config;
  sim_config.query_rate = config.params.query_rate;
  sim_config.seed = derive_seed(seed, 2);
  sim_config.faults = config.faults;
  sim_config.retry = config.retry;
  const RateSimResult result =
      simulate_rates(cluster, cache, distribution, *selector, sim_config);
  return result.normalized_max_load;
}

double adversarial_gain_trial(const ScenarioConfig& config, std::uint64_t x,
                              std::uint64_t seed) {
  return gain_trial(
      config, QueryDistribution::uniform_over(x, config.params.items), seed);
}

GainStatistics measure_gain(const ScenarioConfig& config,
                            const QueryDistribution& distribution,
                            std::uint32_t trials, std::uint64_t base_seed) {
  SCP_CHECK_MSG(trials >= 1, "need at least one trial");
  std::vector<double> gains;
  gains.reserve(trials);
  for (std::uint32_t t = 0; t < trials; ++t) {
    gains.push_back(gain_trial(config, distribution,
                               derive_seed(base_seed, 1000 + t)));
  }
  GainStatistics stats;
  stats.summary = summarize(gains);
  stats.max_gain = stats.summary.max;
  return stats;
}

GainStatistics measure_adversarial_gain(const ScenarioConfig& config,
                                        std::uint64_t x, std::uint32_t trials,
                                        std::uint64_t base_seed) {
  const QueryDistribution distribution =
      QueryDistribution::uniform_over(x, config.params.items);
  return measure_gain(config, distribution, trials, base_seed);
}

GainSweep::GainSweep(ScenarioConfig config, std::uint32_t trials,
                     std::uint64_t base_seed, Options options)
    : config_(std::move(config)),
      trials_(trials),
      base_seed_(base_seed),
      options_(options) {
  SCP_CHECK_MSG(trials_ >= 1, "need at least one trial");
  SCP_CHECK_MSG(options_.threads >= 1, "need at least one thread");
  config_.params.check();
}

std::vector<GainStatistics> GainSweep::run(
    std::span<const Point> points) const {
  for (const Point& point : points) {
    SCP_CHECK_MSG(point.distribution != nullptr, "point needs a distribution");
    SCP_CHECK_MSG(point.distribution->size() == config_.params.items,
                  "distribution key space must match params.items");
  }

  // Per-point caches are immutable (the perfect oracle's contents are its
  // definition), so one instance is shared read-only by every trial.
  std::vector<PerfectCache> caches;
  caches.reserve(points.size());
  for (const Point& point : points) {
    caches.emplace_back(point.cache_size, *point.distribution);
  }

  // Evaluate points grouped by distribution (stably, so same-workload
  // points stay in input order). Each point's simulation is independent —
  // per-sim selector reset, seed fixed per trial — so evaluation order
  // cannot change results, but grouping maximizes the scratch memo hits:
  // the shuffled order, order-major placement rows and order-major rates
  // are all reused across every point that shares a workload (e.g. the
  // x = m pattern at each cache size) instead of being rebuilt when
  // supports alternate.
  std::vector<std::size_t> eval_order(points.size());
  std::iota(eval_order.begin(), eval_order.end(), 0);
  std::stable_sort(eval_order.begin(), eval_order.end(),
                   [&points](std::size_t a, std::size_t b) {
                     return std::less<const QueryDistribution*>{}(
                         points[a].distribution, points[b].distribution);
                   });

  // values[point][trial], written by trial index so aggregation (and hence
  // the result) is independent of thread scheduling.
  std::vector<std::vector<double>> values(
      points.size(), std::vector<double>(trials_, 0.0));
  std::atomic<std::uint32_t> next{0};
  const auto worker = [&] {
    auto selector = make_selector(config_.selector);
    RateSimScratch scratch;
    while (true) {
      const std::uint32_t t = next.fetch_add(1);
      if (t >= trials_) {
        return;
      }
      const std::uint64_t trial_seed = derive_seed(base_seed_, 1000 + t);
      Cluster cluster(make_partitioner(
          config_.partitioner, config_.params.nodes,
          config_.params.replication, derive_seed(trial_seed, 1)));
      const PlacementIndex index(cluster.partitioner(), config_.params.items,
                                 options_.index_memory_budget);
      RateSimConfig sim_config;
      sim_config.query_rate = config_.params.query_rate;
      sim_config.seed = derive_seed(trial_seed, 2);
      sim_config.faults = config_.faults;
      sim_config.retry = config_.retry;
      for (const std::size_t p : eval_order) {
        values[p][t] =
            simulate_rates(cluster, caches[p], *points[p].distribution,
                           *selector, sim_config, &index, &scratch)
                .normalized_max_load;
      }
    }
  };

  const std::uint32_t workers = std::min(options_.threads, trials_);
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint32_t t = 0; t < workers; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  std::vector<GainStatistics> stats(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    stats[p].summary = summarize(values[p]);
    stats[p].max_gain = stats[p].summary.max;
  }
  return stats;
}

GainStatistics GainSweep::run_one(const QueryDistribution& distribution,
                                  std::uint64_t cache_size) const {
  const Point point{&distribution, cache_size};
  return run(std::span<const Point>(&point, 1)).front();
}

TargetedAttackResult knowledge_attack_trial(const ScenarioConfig& config,
                                            double known_fraction,
                                            std::uint64_t seed) {
  config.params.check();
  Cluster cluster(make_partitioner(config.partitioner, config.params.nodes,
                                   config.params.replication,
                                   derive_seed(seed, 1)));
  const KnowledgePlan plan = plan_knowledge_attack(
      cluster.partitioner(), config.params.items, config.params.cache_size,
      known_fraction, derive_seed(seed, 3));

  // Uniform over the targeted key set — Theorem 1's logic applies within
  // the set: no key should be hotter than the cached ceiling.
  const std::uint64_t x = plan.queried_keys.size();
  const std::vector<double> probabilities(
      x, 1.0 / static_cast<double>(x));
  const PerfectCache cache(config.params.cache_size,
                           std::span<const KeyId>(plan.queried_keys),
                           std::span<const double>(probabilities));

  auto selector = make_selector(config.selector);
  Rng rng(derive_seed(seed, 2));
  const std::uint32_t d = cluster.replication();
  std::vector<NodeId> group(d);
  std::vector<double> loads(cluster.node_count(), 0.0);
  const double per_key_rate =
      config.params.query_rate / static_cast<double>(x);

  std::vector<std::uint64_t> order(x);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<std::uint64_t>(order));
  for (const std::uint64_t index : order) {
    const KeyId key = plan.queried_keys[index];
    if (cache.contains(key)) {
      continue;
    }
    cluster.replica_group(key, std::span<NodeId>(group));
    if (selector->splits_evenly()) {
      const double share = per_key_rate / static_cast<double>(d);
      for (const NodeId node : group) {
        loads[node] += share;
      }
    } else {
      const std::size_t pick =
          selector->select(key, std::span<const NodeId>(group), loads, rng);
      loads[group[pick]] += per_key_rate;
    }
  }

  TargetedAttackResult result;
  result.queried_keys = x;
  result.known_keys = plan.known_keys;
  const double even = config.params.query_rate /
                      static_cast<double>(config.params.nodes);
  result.target_gain = loads[plan.target] / even;
  result.max_gain = *std::max_element(loads.begin(), loads.end()) / even;
  return result;
}

}  // namespace scp
