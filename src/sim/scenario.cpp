#include "sim/scenario.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "adversary/knowledge.h"
#include "cache/perfect_cache.h"
#include "cluster/cluster.h"
#include "common/check.h"
#include "common/rng.h"
#include "sim/rate_sim.h"

namespace scp {

double gain_trial(const ScenarioConfig& config,
                  const QueryDistribution& distribution, std::uint64_t seed) {
  config.params.check();
  SCP_CHECK_MSG(distribution.size() == config.params.items,
                "distribution key space must match params.items");
  Cluster cluster(make_partitioner(config.partitioner, config.params.nodes,
                                   config.params.replication,
                                   derive_seed(seed, 1)));
  const PerfectCache cache(config.params.cache_size, distribution);
  auto selector = make_selector(config.selector);
  RateSimConfig sim_config;
  sim_config.query_rate = config.params.query_rate;
  sim_config.seed = derive_seed(seed, 2);
  const RateSimResult result =
      simulate_rates(cluster, cache, distribution, *selector, sim_config);
  return result.normalized_max_load;
}

double adversarial_gain_trial(const ScenarioConfig& config, std::uint64_t x,
                              std::uint64_t seed) {
  return gain_trial(
      config, QueryDistribution::uniform_over(x, config.params.items), seed);
}

GainStatistics measure_gain(const ScenarioConfig& config,
                            const QueryDistribution& distribution,
                            std::uint32_t trials, std::uint64_t base_seed) {
  SCP_CHECK_MSG(trials >= 1, "need at least one trial");
  std::vector<double> gains;
  gains.reserve(trials);
  for (std::uint32_t t = 0; t < trials; ++t) {
    gains.push_back(gain_trial(config, distribution,
                               derive_seed(base_seed, 1000 + t)));
  }
  GainStatistics stats;
  stats.summary = summarize(gains);
  stats.max_gain = stats.summary.max;
  return stats;
}

GainStatistics measure_adversarial_gain(const ScenarioConfig& config,
                                        std::uint64_t x, std::uint32_t trials,
                                        std::uint64_t base_seed) {
  const QueryDistribution distribution =
      QueryDistribution::uniform_over(x, config.params.items);
  return measure_gain(config, distribution, trials, base_seed);
}

TargetedAttackResult knowledge_attack_trial(const ScenarioConfig& config,
                                            double known_fraction,
                                            std::uint64_t seed) {
  config.params.check();
  Cluster cluster(make_partitioner(config.partitioner, config.params.nodes,
                                   config.params.replication,
                                   derive_seed(seed, 1)));
  const KnowledgePlan plan = plan_knowledge_attack(
      cluster.partitioner(), config.params.items, config.params.cache_size,
      known_fraction, derive_seed(seed, 3));

  // Uniform over the targeted key set — Theorem 1's logic applies within
  // the set: no key should be hotter than the cached ceiling.
  const std::uint64_t x = plan.queried_keys.size();
  const std::vector<double> probabilities(
      x, 1.0 / static_cast<double>(x));
  const PerfectCache cache(config.params.cache_size,
                           std::span<const KeyId>(plan.queried_keys),
                           std::span<const double>(probabilities));

  auto selector = make_selector(config.selector);
  Rng rng(derive_seed(seed, 2));
  const std::uint32_t d = cluster.replication();
  std::vector<NodeId> group(d);
  std::vector<double> loads(cluster.node_count(), 0.0);
  const double per_key_rate =
      config.params.query_rate / static_cast<double>(x);

  std::vector<std::uint64_t> order(x);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<std::uint64_t>(order));
  for (const std::uint64_t index : order) {
    const KeyId key = plan.queried_keys[index];
    if (cache.contains(key)) {
      continue;
    }
    cluster.replica_group(key, std::span<NodeId>(group));
    if (selector->splits_evenly()) {
      const double share = per_key_rate / static_cast<double>(d);
      for (const NodeId node : group) {
        loads[node] += share;
      }
    } else {
      const std::size_t pick =
          selector->select(key, std::span<const NodeId>(group), loads, rng);
      loads[group[pick]] += per_key_rate;
    }
  }

  TargetedAttackResult result;
  result.queried_keys = x;
  result.known_keys = plan.known_keys;
  const double even = config.params.query_rate /
                      static_cast<double>(config.params.nodes);
  result.target_gain = loads[plan.target] / even;
  result.max_gain = *std::max_element(loads.begin(), loads.end()) / even;
  return result;
}

}  // namespace scp
