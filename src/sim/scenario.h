// Scenario helpers: one-call construction of "cluster + perfect cache +
// distribution → attack gain" trials, the unit every figure bench and the
// provisioner repeat thousands of times.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "adversary/bounds.h"
#include "cluster/placement_index.h"
#include "cluster/routing.h"
#include "common/stats.h"
#include "sim/fault.h"
#include "workload/distribution.h"

namespace scp {

/// How a scenario realizes the system model.
struct ScenarioConfig {
  SystemParams params;                     ///< n, d, m, c, R
  std::string partitioner = "hash";        ///< hash | ring | rendezvous
  std::string selector = "least-loaded";   ///< least-loaded | random | round-robin
  /// Opt-in degraded mode, forwarded to every rate simulation this scenario
  /// runs (see RateSimConfig::faults). Non-owning; null = healthy cluster.
  const FaultView* faults = nullptr;
  RetryPolicy retry;                       ///< consulted only with faults
};

/// One rate-simulation trial against an arbitrary workload distribution:
/// builds a fresh cluster (partition seeded from `seed`), a perfect cache of
/// the c most popular keys of `distribution`, runs the rate simulator and
/// returns the normalized max load (Definition 1's attack gain).
double gain_trial(const ScenarioConfig& config,
                  const QueryDistribution& distribution, std::uint64_t seed);

/// Trial against the paper's adversarial pattern with x queried keys.
double adversarial_gain_trial(const ScenarioConfig& config, std::uint64_t x,
                              std::uint64_t seed);

/// Aggregate of repeated trials.
struct GainStatistics {
  Summary summary;      ///< over per-trial normalized max loads
  double max_gain = 0;  ///< max over trials — what the paper's Fig. 3 plots
};

/// Runs `trials` independent gain trials (seeds derived from `base_seed`).
GainStatistics measure_gain(const ScenarioConfig& config,
                            const QueryDistribution& distribution,
                            std::uint32_t trials, std::uint64_t base_seed);

/// measure_gain against the adversarial pattern with x keys.
GainStatistics measure_adversarial_gain(const ScenarioConfig& config,
                                        std::uint64_t x, std::uint32_t trials,
                                        std::uint64_t base_seed);

/// Shared-placement gain sweeps — the figure benches' hot path.
///
/// measure_gain() rebuilds the random partition for every (sweep point,
/// trial) pair, recomputing key placement millions of times. A GainSweep
/// instead builds each trial's partition once — a fresh cluster plus a
/// PlacementIndex over the whole key space — and evaluates *every* sweep
/// point against it, so a whole figure costs one placement build per trial.
/// Reusing the same Monte-Carlo partitions across sweep points additionally
/// pairs the points (common random numbers), which lowers the variance of
/// point-to-point comparisons.
///
/// Seed convention: trial t uses trial_seed = derive_seed(base_seed,
/// 1000 + t), partition seed derive_seed(trial_seed, 1) and simulation seed
/// derive_seed(trial_seed, 2) — exactly gain_trial's derivation, so a
/// one-point sweep reproduces measure_gain bit-for-bit.
struct GainSweepOptions {
  /// Worker threads; trials are distributed work-stealing style and
  /// results are written by trial index, so output is thread-count
  /// independent (bit-identical).
  std::uint32_t threads = 1;
  /// Placement-table budget per in-flight trial; over budget the sweep
  /// transparently falls back to on-the-fly hashing.
  std::uint64_t index_memory_budget = PlacementIndex::kDefaultMemoryBudget;
};

class GainSweep {
 public:
  /// One sweep point: a workload (non-owning; must outlive run()) evaluated
  /// at a cache size. The distribution's key space must equal params.items.
  struct Point {
    const QueryDistribution* distribution = nullptr;
    std::uint64_t cache_size = 0;
  };

  using Options = GainSweepOptions;

  GainSweep(ScenarioConfig config, std::uint32_t trials,
            std::uint64_t base_seed, Options options = {});

  /// Evaluates every point against every trial partition; returns one
  /// GainStatistics per point, in input order.
  std::vector<GainStatistics> run(std::span<const Point> points) const;

  /// Single-point convenience (equivalent to measure_gain).
  GainStatistics run_one(const QueryDistribution& distribution,
                         std::uint64_t cache_size) const;

  std::uint32_t trials() const noexcept { return trials_; }
  std::uint64_t base_seed() const noexcept { return base_seed_; }
  const ScenarioConfig& config() const noexcept { return config_; }

 private:
  ScenarioConfig config_;
  std::uint32_t trials_;
  std::uint64_t base_seed_;
  Options options_;
};

/// Outcome of one partial-knowledge (targeted) attack trial.
struct TargetedAttackResult {
  double max_gain = 0.0;     ///< normalized load of the most loaded node
  double target_gain = 0.0;  ///< normalized load of the attacked node
  std::uint64_t queried_keys = 0;  ///< size of the targeted key set
  std::uint64_t known_keys = 0;    ///< keys whose placement leaked (φ·m)
};

/// One trial of the Assumption-1 stress test: the adversary probes the
/// trial's own partitioner for a `known_fraction` of keys (the simulated
/// leak), mounts the targeted plan from adversary/knowledge.h, and the
/// rate simulation measures the damage. Uses the scenario's selector;
/// key→node placement stickiness follows the selector as usual.
TargetedAttackResult knowledge_attack_trial(const ScenarioConfig& config,
                                            double known_fraction,
                                            std::uint64_t seed);

}  // namespace scp
