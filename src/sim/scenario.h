// Scenario helpers: one-call construction of "cluster + perfect cache +
// distribution → attack gain" trials, the unit every figure bench and the
// provisioner repeat thousands of times.
#pragma once

#include <cstdint>
#include <string>

#include "adversary/bounds.h"
#include "common/stats.h"
#include "workload/distribution.h"

namespace scp {

/// How a scenario realizes the system model.
struct ScenarioConfig {
  SystemParams params;                     ///< n, d, m, c, R
  std::string partitioner = "hash";        ///< hash | ring | rendezvous
  std::string selector = "least-loaded";   ///< least-loaded | random | round-robin
};

/// One rate-simulation trial against an arbitrary workload distribution:
/// builds a fresh cluster (partition seeded from `seed`), a perfect cache of
/// the c most popular keys of `distribution`, runs the rate simulator and
/// returns the normalized max load (Definition 1's attack gain).
double gain_trial(const ScenarioConfig& config,
                  const QueryDistribution& distribution, std::uint64_t seed);

/// Trial against the paper's adversarial pattern with x queried keys.
double adversarial_gain_trial(const ScenarioConfig& config, std::uint64_t x,
                              std::uint64_t seed);

/// Aggregate of repeated trials.
struct GainStatistics {
  Summary summary;      ///< over per-trial normalized max loads
  double max_gain = 0;  ///< max over trials — what the paper's Fig. 3 plots
};

/// Runs `trials` independent gain trials (seeds derived from `base_seed`).
GainStatistics measure_gain(const ScenarioConfig& config,
                            const QueryDistribution& distribution,
                            std::uint32_t trials, std::uint64_t base_seed);

/// measure_gain against the adversarial pattern with x keys.
GainStatistics measure_adversarial_gain(const ScenarioConfig& config,
                                        std::uint64_t x, std::uint32_t trials,
                                        std::uint64_t base_seed);

/// Outcome of one partial-knowledge (targeted) attack trial.
struct TargetedAttackResult {
  double max_gain = 0.0;     ///< normalized load of the most loaded node
  double target_gain = 0.0;  ///< normalized load of the attacked node
  std::uint64_t queried_keys = 0;  ///< size of the targeted key set
  std::uint64_t known_keys = 0;    ///< keys whose placement leaked (φ·m)
};

/// One trial of the Assumption-1 stress test: the adversary probes the
/// trial's own partitioner for a `known_fraction` of keys (the simulated
/// leak), mounts the targeted plan from adversary/knowledge.h, and the
/// rate simulation measures the damage. Uses the scenario's selector;
/// key→node placement stickiness follows the selector as usual.
TargetedAttackResult knowledge_attack_trial(const ScenarioConfig& config,
                                            double known_fraction,
                                            std::uint64_t seed);

}  // namespace scp
