// Deterministic fault injection: crashes, slowdowns and lossy links.
//
// The paper's guarantee is stated for n healthy nodes. Real clusters lose
// replicas mid-attack, serve from degraded hardware, and drop packets — the
// scenario DistCache (Liu et al., NSDI'19) motivates for multi-layer load
// balancing. This module describes such degradation as data: a FaultSchedule
// is a set of timed events (crash / crash-recover, slow-node with a latency
// multiplier, network-drop with a probability), and a FaultView is the
// per-node snapshot of that schedule at one instant. Both simulators accept
// them as opt-in inputs; with no faults configured their output is
// bit-identical to the fault-unaware code (enforced by equivalence tests),
// and every faulted run is reproducible from its seed alone, independent of
// thread count.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "cluster/types.h"

namespace scp {

enum class FaultKind : std::uint8_t {
  kCrash,        ///< node is down: no requests served, backlog lost
  kSlow,         ///< node serves, but each query costs `severity`x the work
  kNetworkDrop,  ///< requests to the node are lost with probability `severity`
};

/// One timed fault: active on [start_s, end_s). end_s = kNeverRecovers keeps
/// the fault active for the rest of the run (a crash without recovery).
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  NodeId node = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  /// kSlow: latency multiplier (>= 1). kNetworkDrop: drop probability in
  /// [0, 1]. Ignored for kCrash.
  double severity = 0.0;
};

/// Per-node health snapshot at one instant — what the routing layer consults.
/// Overlapping faults of the same kind on a node combine pessimistically
/// (max severity); a crashed node is dead regardless of other faults.
struct FaultView {
  std::vector<std::uint8_t> alive;  ///< 1 = up; indexed by NodeId
  std::vector<double> slow;         ///< latency multiplier, 1.0 = healthy
  std::vector<double> drop;         ///< network-drop probability, 0.0 = none
  std::uint32_t alive_count = 0;

  FaultView() = default;
  explicit FaultView(std::uint32_t nodes) { reset(nodes); }

  void reset(std::uint32_t nodes);
  std::uint32_t nodes() const noexcept {
    return static_cast<std::uint32_t>(alive.size());
  }
  /// False when every node is up, full-speed and lossless — the simulators
  /// then take the fault-unaware fast path unchanged.
  bool any_faults() const noexcept;
};

/// Knobs for FaultSchedule::random — the deterministic scenario generator
/// the failure ablation sweeps. Fractions select distinct victim nodes per
/// fault kind (a node can appear in several kinds).
struct RandomFaultConfig {
  std::uint32_t nodes = 0;
  double horizon_s = 1.0;  ///< end of the simulated window
  /// Fault onsets are uniform in [0, onset_window_s]; 0 = everything fails
  /// at t = 0 (the rate simulator's steady-state setting).
  double onset_window_s = 0.0;

  double crash_fraction = 0.0;
  /// Time from crash to recovery; <= 0 means crashed nodes never come back.
  double recovery_s = 0.0;

  double slow_fraction = 0.0;
  double slow_multiplier = 4.0;  ///< latency multiplier for slow nodes

  double drop_fraction = 0.0;
  double drop_probability = 0.2;  ///< per-request loss on lossy links
};

/// An immutable-after-construction set of timed fault events over a cluster
/// of `nodes` nodes, queried either as a snapshot (view_at) by the rate
/// simulator or as a timeline (transition_times + view_at per transition) by
/// the event simulator.
class FaultSchedule {
 public:
  static constexpr double kNeverRecovers =
      std::numeric_limits<double>::infinity();

  FaultSchedule() = default;
  explicit FaultSchedule(std::uint32_t nodes) : nodes_(nodes) {}

  std::uint32_t nodes() const noexcept { return nodes_; }
  bool empty() const noexcept { return events_.empty(); }
  std::span<const FaultEvent> events() const noexcept { return events_; }

  /// Node crashes at start_s and (optionally) rejoins empty at recover_s.
  void add_crash(NodeId node, double start_s,
                 double recover_s = kNeverRecovers);
  /// Node serves at 1/multiplier speed on [start_s, end_s). multiplier >= 1.
  void add_slow(NodeId node, double start_s, double end_s, double multiplier);
  /// Requests to the node are lost with `probability` on [start_s, end_s).
  void add_network_drop(NodeId node, double start_s, double end_s,
                        double probability);

  /// Snapshot of every node's health at time_s (events active on
  /// [start_s, end_s)).
  FaultView view_at(double time_s) const;

  /// Sorted, deduplicated times at which some node's health changes
  /// (event starts and finite ends). The event simulator replays these.
  std::vector<double> transition_times() const;

  /// The snapshot with the fewest alive nodes over the whole schedule
  /// (earliest such instant on ties; the healthy view for an empty
  /// schedule). The steady-state input for degraded rate simulations:
  /// "how bad does it get at the worst moment of the outage".
  FaultView worst_view() const;

  /// Deterministic random scenario: victims and onsets are drawn from an Rng
  /// seeded with `seed`, so the same (config, seed) pair always builds the
  /// same schedule.
  static FaultSchedule random(const RandomFaultConfig& config,
                              std::uint64_t seed);

 private:
  std::uint32_t nodes_ = 0;
  std::vector<FaultEvent> events_;
};

}  // namespace scp
