#include "sim/runner.h"

#include <atomic>
#include <thread>

#include "common/check.h"
#include "common/log.h"
#include "common/rng.h"

namespace scp {

ExperimentRunner::ExperimentRunner(std::uint64_t base_seed,
                                   std::uint32_t trials,
                                   std::string progress_label,
                                   std::uint32_t threads)
    : base_seed_(base_seed),
      trials_(trials),
      progress_label_(std::move(progress_label)),
      threads_(threads) {
  SCP_CHECK_MSG(trials >= 1, "need at least one trial");
  SCP_CHECK_MSG(threads >= 1, "need at least one thread");
}

std::uint64_t ExperimentRunner::trial_seed(std::uint32_t index) const {
  SCP_CHECK(index < trials_);
  return derive_seed(base_seed_, 0xa11ce000ULL + index);
}

std::vector<double> ExperimentRunner::run_parallel(
    const std::function<double(std::uint32_t, std::uint64_t)>& trial) const {
  // Work stealing by atomic index: each worker claims the next trial and
  // writes to its own slot, so ordering (and therefore aggregation) is
  // independent of scheduling.
  std::vector<double> values(trials_);
  std::atomic<std::uint32_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::uint32_t index = next.fetch_add(1);
      if (index >= trials_) {
        return;
      }
      values[index] = trial(index, trial_seed(index));
    }
  };
  std::vector<std::thread> pool;
  const std::uint32_t workers = std::min(threads_, trials_);
  pool.reserve(workers);
  for (std::uint32_t t = 0; t < workers; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  // Per-trial progress from inside the workers would interleave; emit one
  // final summary line instead so parallel sweeps are not silent.
  if (!progress_label_.empty()) {
    SCP_LOG_INFO << progress_label_ << ": " << trials_ << "/" << trials_
                 << " trials (parallel, " << workers << " threads)";
  }
  return values;
}

std::vector<double> ExperimentRunner::run_indexed(
    const std::function<double(std::uint32_t, std::uint64_t)>& trial) const {
  SCP_CHECK(static_cast<bool>(trial));
  if (threads_ > 1) {
    return run_parallel(trial);
  }
  std::vector<double> values;
  values.reserve(trials_);
  const std::uint32_t report_every = std::max(1U, trials_ / 4);
  for (std::uint32_t t = 0; t < trials_; ++t) {
    values.push_back(trial(t, trial_seed(t)));
    if (!progress_label_.empty() &&
        ((t + 1) % report_every == 0 || t + 1 == trials_)) {
      SCP_LOG_INFO << progress_label_ << ": " << (t + 1) << "/" << trials_
                   << " trials";
    }
  }
  return values;
}

std::vector<double> ExperimentRunner::run(
    const std::function<double(std::uint64_t)>& trial) const {
  SCP_CHECK(static_cast<bool>(trial));
  return run_indexed(
      [&trial](std::uint32_t, std::uint64_t seed) { return trial(seed); });
}

Summary ExperimentRunner::run_summary(
    const std::function<double(std::uint64_t)>& trial) const {
  const std::vector<double> values = run(trial);
  return summarize(values);
}

}  // namespace scp
