#include "sim/rate_sim.h"

#include <algorithm>

#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace scp {

RateSimResult simulate_rates(Cluster& cluster, const FrontEndCache& cache,
                             const QueryDistribution& distribution,
                             ReplicaSelector& selector,
                             const RateSimConfig& config) {
  SCP_CHECK(config.query_rate > 0.0);
  if (config.cost_model != nullptr) {
    SCP_CHECK_MSG(config.cost_model->size() == distribution.size(),
                  "cost model key space must match the distribution");
  }
  cluster.reset_accounting();
  selector.reset();
  Rng rng(config.seed);

  const std::uint32_t d = cluster.replication();
  std::vector<NodeId> group(d);
  std::vector<double> loads(cluster.node_count(), 0.0);

  RateSimResult result;

  // Place keys in random order: the greedy least-loaded assignment is then
  // unbiased with respect to key rank (matters for skewed distributions).
  const std::uint64_t support = distribution.support_size();
  std::vector<std::uint64_t> order(support);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<std::uint64_t>(order));

  double effective_total = 0.0;
  for (const std::uint64_t key : order) {
    const double cost =
        config.cost_model != nullptr ? config.cost_model->cost(key) : 1.0;
    const double rate = distribution.probability(key) * config.query_rate * cost;
    if (rate <= 0.0) {
      continue;
    }
    effective_total += rate;
    if (cache.contains(key)) {
      result.cache_rate += rate;
      continue;
    }
    cluster.replica_group(key, std::span<NodeId>(group));
    if (selector.splits_evenly()) {
      const double share = rate / static_cast<double>(d);
      for (const NodeId node : group) {
        loads[node] += share;
      }
    } else {
      const std::size_t pick = selector.select(
          key, std::span<const NodeId>(group), loads, rng);
      loads[group[pick]] += rate;
    }
  }

  for (NodeId id = 0; id < cluster.node_count(); ++id) {
    cluster.node(id).add_offered_rate(loads[id]);
  }

  result.node_loads = std::move(loads);
  result.metrics = compute_load_metrics(result.node_loads);
  // With a cost model, normalize against the effective (cost-weighted)
  // total demand; under uniform cost this is exactly R.
  const double demand =
      config.cost_model != nullptr ? effective_total : config.query_rate;
  result.backend_rate = demand - result.cache_rate;
  result.cache_hit_ratio = demand > 0.0 ? result.cache_rate / demand : 0.0;
  result.normalized_max_load =
      demand > 0.0
          ? normalized_against(result.metrics.max, demand, cluster.node_count())
          : 0.0;
  result.saturated_nodes = cluster.saturated_node_count();
  for (const BackendNode& node : cluster.nodes()) {
    if (node.has_capacity_limit()) {
      result.max_utilization = std::max(
          result.max_utilization, node.offered_rate() / node.capacity_qps());
    }
  }
  return result;
}

}  // namespace scp
