#include "sim/rate_sim.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace scp {

namespace {

void check_config(const RateSimConfig& config,
                  const QueryDistribution& distribution) {
  SCP_CHECK(config.query_rate > 0.0);
  if (config.cost_model != nullptr) {
    SCP_CHECK_MSG(config.cost_model->size() == distribution.size(),
                  "cost model key space must match the distribution");
  }
}

/// Resolves the run's fault view: validates it against the cluster, syncs
/// node liveness, and returns nullptr when there is nothing to inject so
/// the caller takes the fault-unaware path unchanged.
const FaultView* resolve_faults(const RateSimConfig& config,
                                Cluster& cluster) {
  const FaultView* faults = config.faults;
  if (faults == nullptr) {
    cluster.restore_all_alive();
    return nullptr;
  }
  SCP_CHECK_MSG(faults->nodes() == cluster.node_count(),
                "fault view must have one entry per cluster node");
  cluster.apply_health(std::span<const std::uint8_t>(faults->alive));
  return faults->any_faults() ? faults : nullptr;
}

/// Degraded placement of one key's rate: skip dead replicas, run the
/// selector over the surviving d' < d choices, lose `drop` of each
/// attempt's mass on lossy links and retry it (capped by the retry
/// policy), and weight delivered work by the slow multiplier. Returns the
/// mass that never reached a node. Shared verbatim by the legacy and the
/// indexed fast path so both stay bit-identical under faults.
double place_key_faulted(const FaultView& faults, std::uint32_t max_attempts,
                         KeyId key, double rate, const NodeId* row,
                         std::uint32_t d, bool split, bool least_loaded,
                         ReplicaSelector& selector, std::vector<double>& loads,
                         std::vector<NodeId>& survivors, Rng& rng) {
  survivors.resize(d);
  const std::uint32_t d_alive =
      alive_members(std::span<const NodeId>(row, d),
                    std::span<const std::uint8_t>(faults.alive),
                    std::span<NodeId>(survivors));
  if (d_alive == 0) {
    return rate;
  }
  const std::span<const NodeId> group(survivors.data(), d_alive);
  double mass = rate;
  for (std::uint32_t attempt = 0; attempt < max_attempts && mass > 0.0;
       ++attempt) {
    if (split) {
      const double share = mass / static_cast<double>(d_alive);
      double undelivered = 0.0;
      for (const NodeId node : group) {
        const double delivered = share * (1.0 - faults.drop[node]);
        loads[node] += delivered * faults.slow[node];
        undelivered += share - delivered;
      }
      mass = undelivered;
    } else {
      const std::size_t pick = least_loaded
                                   ? least_loaded_pick(group, loads, rng)
                                   : selector.select(key, group, loads, rng);
      const NodeId node = group[pick];
      const double delivered = mass * (1.0 - faults.drop[node]);
      loads[node] += delivered * faults.slow[node];
      mass -= delivered;
    }
  }
  return mass;
}

/// Shared result assembly: metrics, normalization and cluster accounting
/// from the finished per-node load vector.
void finalize_result(RateSimResult& result, Cluster& cluster,
                     const RateSimConfig& config, double effective_total,
                     std::span<const double> loads) {
  for (NodeId id = 0; id < cluster.node_count(); ++id) {
    cluster.node(id).add_offered_rate(loads[id]);
  }
  result.metrics = compute_load_metrics(result.node_loads);
  // With a cost model, normalize against the effective (cost-weighted)
  // total demand; under uniform cost this is exactly R.
  const double demand =
      config.cost_model != nullptr ? effective_total : config.query_rate;
  result.backend_rate = demand - result.cache_rate;
  result.cache_hit_ratio = demand > 0.0 ? result.cache_rate / demand : 0.0;
  result.normalized_max_load =
      demand > 0.0
          ? normalized_against(result.metrics.max, demand, cluster.node_count())
          : 0.0;
  result.alive_nodes = config.faults != nullptr ? config.faults->alive_count
                                                : cluster.node_count();
  result.degraded_normalized_max_load =
      demand > 0.0 && result.alive_nodes > 0
          ? normalized_against(result.metrics.max, demand, result.alive_nodes)
          : 0.0;
  result.saturated_nodes = cluster.saturated_node_count();
  for (const BackendNode& node : cluster.nodes()) {
    if (node.has_capacity_limit()) {
      result.max_utilization = std::max(
          result.max_utilization, node.offered_rate() / node.capacity_qps());
    }
  }
}

}  // namespace

RateSimResult simulate_rates(Cluster& cluster, const FrontEndCache& cache,
                             const QueryDistribution& distribution,
                             ReplicaSelector& selector,
                             const RateSimConfig& config) {
  check_config(config, distribution);
  cluster.reset_accounting();
  selector.reset();
  Rng rng(config.seed);

  const FaultView* faults = resolve_faults(config, cluster);
  const std::uint32_t max_attempts = config.retry.max_attempts();
  std::vector<NodeId> survivors;

  const std::uint32_t d = cluster.replication();
  std::vector<NodeId> group(d);
  std::vector<double> loads(cluster.node_count(), 0.0);

  RateSimResult result;

  // Place keys in random order: the greedy least-loaded assignment is then
  // unbiased with respect to key rank (matters for skewed distributions).
  const std::uint64_t support = distribution.support_size();
  std::vector<std::uint64_t> order(support);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<std::uint64_t>(order));

  double effective_total = 0.0;
  for (const std::uint64_t key : order) {
    const double cost =
        config.cost_model != nullptr ? config.cost_model->cost(key) : 1.0;
    const double rate = distribution.probability(key) * config.query_rate * cost;
    if (rate <= 0.0) {
      continue;
    }
    effective_total += rate;
    if (cache.contains(key)) {
      result.cache_rate += rate;
      continue;
    }
    cluster.replica_group(key, std::span<NodeId>(group));
    if (faults != nullptr) {
      result.unserved_rate += place_key_faulted(
          *faults, max_attempts, key, rate, group.data(), d,
          selector.splits_evenly(), /*least_loaded=*/false, selector, loads,
          survivors, rng);
    } else if (selector.splits_evenly()) {
      const double share = rate / static_cast<double>(d);
      for (const NodeId node : group) {
        loads[node] += share;
      }
    } else {
      const std::size_t pick = selector.select(
          key, std::span<const NodeId>(group), loads, rng);
      loads[group[pick]] += rate;
    }
  }

  result.node_loads = std::move(loads);
  finalize_result(result, cluster, config, effective_total,
                  result.node_loads);
  return result;
}

RateSimResult simulate_rates(Cluster& cluster, const FrontEndCache& cache,
                             const QueryDistribution& distribution,
                             ReplicaSelector& selector,
                             const RateSimConfig& config,
                             const PlacementIndex* index,
                             RateSimScratch* scratch) {
  check_config(config, distribution);
  const std::uint32_t d = cluster.replication();
  const std::uint64_t support = distribution.support_size();
  const bool table_backed =
      index != nullptr && index->materialized() && support > 0;
  if (index != nullptr) {
    SCP_CHECK_MSG(index->replication() == d &&
                      index->node_count() == cluster.node_count(),
                  "placement index topology must match the cluster");
    SCP_CHECK_MSG(!index->materialized() || index->keys() >= support,
                  "placement index must cover the distribution's support");
  }
  cluster.reset_accounting();
  selector.reset();
  const FaultView* faults = resolve_faults(config, cluster);
  const std::uint32_t max_attempts = config.retry.max_attempts();

  RateSimScratch local;
  if (scratch == nullptr) {
    scratch = &local;
  }

  // Shuffled placement order, memoized by (seed, support): restoring the
  // post-shuffle RNG state makes the reuse invisible to the selector's
  // tie-breaks, so results stay bit-identical to a fresh shuffle.
  Rng rng(config.seed);
  if (scratch->has_order && scratch->order_seed == config.seed &&
      scratch->order_support == support) {
    rng = scratch->post_shuffle_rng;
  } else {
    scratch->order.resize(support);
    std::iota(scratch->order.begin(), scratch->order.end(), 0);
    rng.shuffle(std::span<std::uint64_t>(scratch->order));
    scratch->has_order = true;
    scratch->order_seed = config.seed;
    scratch->order_support = support;
    scratch->post_shuffle_rng = rng;
    // The order-major memos below were gathered under the old order.
    scratch->rows_index_id = 0;
    scratch->rates_distribution = nullptr;
  }

  // Gather the placement-table rows into order-major layout once per
  // (order, index); every simulation over this support then streams rows
  // sequentially instead of hopping through the table in shuffle order.
  const NodeId* rows = nullptr;
  if (table_backed) {
    if (scratch->rows_index_id != index->id()) {
      const NodeId* table = index->group(0);
      scratch->ordered_rows.resize(support * d);
      NodeId* out = scratch->ordered_rows.data();
      for (const std::uint64_t key : scratch->order) {
        const NodeId* row = table + key * d;
        for (std::uint32_t j = 0; j < d; ++j) {
          out[j] = row[j];
        }
        out += d;
      }
      scratch->rows_index_id = index->id();
    }
    rows = scratch->ordered_rows.data();
  }

  // Effective per-key rates in the same order-major layout, folding in the
  // cost model; the product order matches the legacy path exactly
  // ((p · R) · cost). Memoized per (distribution, R, cost model): sweep
  // points that revisit the same workload — e.g. x = m at every cache size —
  // skip the gather.
  if (scratch->rates_distribution != &distribution ||
      scratch->rates_query_rate != config.query_rate ||
      scratch->rates_cost_model != config.cost_model) {
    scratch->ordered_rates.resize(support);
    const std::span<const double> p = distribution.probabilities();
    double* out = scratch->ordered_rates.data();
    if (config.cost_model != nullptr) {
      for (const std::uint64_t key : scratch->order) {
        *out++ = p[key] * config.query_rate * config.cost_model->cost(key);
      }
    } else {
      for (const std::uint64_t key : scratch->order) {
        *out++ = p[key] * config.query_rate;
      }
    }
    scratch->rates_distribution = &distribution;
    scratch->rates_query_rate = config.query_rate;
    scratch->rates_cost_model = config.cost_model;
  }

  scratch->loads.assign(cluster.node_count(), 0.0);
  scratch->group.resize(d);
  std::vector<double>& loads = scratch->loads;
  const double* rates = scratch->ordered_rates.data();
  const std::uint64_t* order = scratch->order.data();

  const std::optional<std::uint64_t> prefix = cache.cached_prefix();
  const bool has_prefix = prefix.has_value();
  const std::uint64_t prefix_end = prefix.value_or(0);

  const bool split = selector.splits_evenly();
  // Devirtualize the paper's balls-into-bins selector: least_loaded_pick is
  // the same inline routine LeastLoadedSelector::select runs.
  const bool least_loaded =
      !split && dynamic_cast<LeastLoadedSelector*>(&selector) != nullptr;

  RateSimResult result;
  double effective_total = 0.0;
  for (std::uint64_t i = 0; i < support; ++i) {
    const double rate = rates[i];
    if (rate <= 0.0) {
      continue;
    }
    effective_total += rate;
    const std::uint64_t key = order[i];
    if (has_prefix ? key < prefix_end : cache.contains(key)) {
      result.cache_rate += rate;
      continue;
    }
    const NodeId* row;
    if (rows != nullptr) {
      row = rows + i * d;
    } else {
      cluster.replica_group(key, std::span<NodeId>(scratch->group));
      row = scratch->group.data();
    }
    if (faults != nullptr) {
      result.unserved_rate += place_key_faulted(
          *faults, max_attempts, key, rate, row, d, split, least_loaded,
          selector, loads, scratch->survivors, rng);
    } else if (split) {
      const double share = rate / static_cast<double>(d);
      for (std::uint32_t j = 0; j < d; ++j) {
        loads[row[j]] += share;
      }
    } else if (least_loaded) {
      const std::size_t pick =
          least_loaded_pick(std::span<const NodeId>(row, d), loads, rng);
      loads[row[pick]] += rate;
    } else {
      const std::size_t pick =
          selector.select(key, std::span<const NodeId>(row, d), loads, rng);
      loads[row[pick]] += rate;
    }
  }

  result.node_loads = loads;  // copy: scratch keeps its buffer for reuse
  finalize_result(result, cluster, config, effective_total,
                  result.node_loads);
  return result;
}

}  // namespace scp
