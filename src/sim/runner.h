// Experiment runner: repeated seeded trials with aggregation.
//
// Centralizes the trial-seed derivation convention so every experiment is
// reproducible from one base seed, and optionally reports progress for
// long sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"

namespace scp {

class ExperimentRunner {
 public:
  /// `trials` independent repetitions per measurement, seeded from
  /// `base_seed`. `progress_label`, when non-empty, logs one line per 25%.
  /// `threads` > 1 runs trials concurrently on a small thread pool; results
  /// are written by trial index, so the output is bit-identical regardless
  /// of thread count (the trial callback must be thread-safe — the scenario
  /// helpers are, since each trial builds its own cluster).
  ExperimentRunner(std::uint64_t base_seed, std::uint32_t trials,
                   std::string progress_label = {}, std::uint32_t threads = 1);

  std::uint32_t trials() const noexcept { return trials_; }
  std::uint64_t base_seed() const noexcept { return base_seed_; }

  /// Runs `trial(seed)` for each derived trial seed and returns the raw
  /// per-trial values.
  std::vector<double> run(
      const std::function<double(std::uint64_t)>& trial) const;

  /// Like run(), but the callback also receives the trial index — for
  /// workers that look up per-trial shared state (e.g. a prebuilt placement
  /// index) instead of re-deriving it from the seed.
  std::vector<double> run_indexed(
      const std::function<double(std::uint32_t, std::uint64_t)>& trial) const;

  /// run() + summarize().
  Summary run_summary(const std::function<double(std::uint64_t)>& trial) const;

  /// The i-th trial's seed (for re-running a single trial in isolation).
  std::uint64_t trial_seed(std::uint32_t index) const;

  std::uint32_t threads() const noexcept { return threads_; }

 private:
  std::vector<double> run_parallel(
      const std::function<double(std::uint32_t, std::uint64_t)>& trial) const;

  std::uint64_t base_seed_;
  std::uint32_t trials_;
  std::string progress_label_;
  std::uint32_t threads_;
};

}  // namespace scp
