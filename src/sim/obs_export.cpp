#include "sim/obs_export.h"

#include <algorithm>

namespace scp {

obs::MetricsSnapshot event_sim_metrics(const EventSimResult& result) {
  obs::MetricsSnapshot snap;
  snap.counters["frontend.requests"] = result.total_queries;
  snap.counters["frontend.hits"] = result.cache_hits;
  snap.counters["frontend.misses"] = result.total_queries - result.cache_hits;
  snap.counters["frontend.forwarded"] =
      result.backend_arrivals - std::min(result.dropped,
                                         result.backend_arrivals);
  snap.counters["frontend.retries"] = result.retries;
  snap.counters["frontend.failures"] = result.dropped + result.unserved;
  snap.counters["backend.requests"] = result.backend_arrivals;
  snap.gauges["frontend.backends_up"] =
      static_cast<std::int64_t>(result.min_alive_nodes);
  snap.timers.emplace("frontend.request_us", result.wait_us);
  return snap;
}

}  // namespace scp
