// Load-imbalance metrics computed from per-node load vectors.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace scp {

/// Summary of a per-node load vector (offered rates or request counts).
struct LoadMetrics {
  double max = 0.0;
  double mean = 0.0;
  double min = 0.0;
  /// max / mean — 1.0 is perfect balance. This is the paper's
  /// "normalized max load" when the loads are offered rates (mean = R'/n
  /// with R' the back-end-bound rate; see normalized_against below for the
  /// R/n-normalized variant of Definition 1).
  double max_over_mean = 0.0;
  double coefficient_of_variation = 0.0;
  double jain_fairness = 0.0;

  std::string to_string() const;
};

LoadMetrics compute_load_metrics(std::span<const double> loads);

/// Definition 1's normalization: observed max load over the even-spread
/// baseline R/n, where R is the *total* (pre-cache) query rate.
double normalized_against(double max_load, double total_rate,
                          std::uint32_t nodes);

}  // namespace scp
