#include "sim/failure.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "cache/perfect_cache.h"
#include "cluster/partitioner.h"
#include "cluster/routing.h"
#include "common/check.h"
#include "common/rng.h"

namespace scp {
namespace {

// Places the workload's uncached mass on the ring's current membership and
// returns the per-node loads (indexed by original NodeId; dead nodes 0).
std::vector<double> place_load(const ConsistentHashRing& ring,
                               std::uint32_t original_nodes,
                               const QueryDistribution& workload,
                               const PerfectCache& cache,
                               ReplicaSelector& selector, double query_rate,
                               Rng& rng) {
  const std::uint32_t d = ring.replication();
  std::vector<NodeId> group(d);
  std::vector<double> loads(original_nodes, 0.0);
  std::vector<std::uint64_t> order(workload.support_size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<std::uint64_t>(order));
  for (const std::uint64_t key : order) {
    const double rate = workload.probability(key) * query_rate;
    if (rate <= 0.0 || cache.contains(key)) {
      continue;
    }
    ring.replica_group(key, std::span<NodeId>(group));
    if (selector.splits_evenly()) {
      const double share = rate / static_cast<double>(d);
      for (const NodeId node : group) {
        loads[node] += share;
      }
    } else {
      const std::size_t pick =
          selector.select(key, std::span<const NodeId>(group), loads, rng);
      loads[group[pick]] += rate;
    }
  }
  return loads;
}

double normalized_max(const std::vector<double>& loads, double query_rate,
                      std::uint32_t alive_nodes) {
  const double max_load = *std::max_element(loads.begin(), loads.end());
  return max_load / (query_rate / static_cast<double>(alive_nodes));
}

}  // namespace

FailureExperimentResult run_failure_experiment(
    const FailureExperimentConfig& config, std::uint32_t failures,
    const QueryDistribution& workload, std::uint64_t seed) {
  SCP_CHECK(config.nodes >= 1 && config.replication >= 1);
  SCP_CHECK_MSG(failures + config.replication <= config.nodes,
                "cannot fail below the replication factor");
  SCP_CHECK_MSG(workload.size() == config.items,
                "workload key space must match config.items");
  SCP_CHECK(config.query_rate > 0.0);

  ConsistentHashRing ring(config.nodes, config.replication,
                          config.vnodes_per_node, derive_seed(seed, 1));
  const PerfectCache cache(config.cache_size, workload);
  auto selector = make_selector(config.selector);

  FailureExperimentResult result;
  result.failed_nodes = failures;
  result.alive_nodes = config.nodes - failures;

  // Snapshot replica groups of the support for disruption accounting.
  const std::uint64_t support = workload.support_size();
  std::vector<std::vector<NodeId>> groups_before(support);
  for (std::uint64_t key = 0; key < support; ++key) {
    groups_before[key] = ring.replica_group(key);
  }

  Rng rng(derive_seed(seed, 2));
  result.gain_before = normalized_max(
      place_load(ring, config.nodes, workload, cache, *selector,
                 config.query_rate, rng),
      config.query_rate, config.nodes);

  // Fail `failures` distinct random nodes.
  Rng failure_rng(derive_seed(seed, 3));
  const std::vector<std::uint64_t> victims =
      failure_rng.sample_without_replacement(config.nodes, failures);
  for (const std::uint64_t victim : victims) {
    ring.remove_node(static_cast<NodeId>(victim));
  }

  std::uint64_t disrupted = 0;
  for (std::uint64_t key = 0; key < support; ++key) {
    if (ring.replica_group(key) != groups_before[key]) {
      ++disrupted;
    }
  }
  result.disruption_fraction =
      support > 0 ? static_cast<double>(disrupted) /
                        static_cast<double>(support)
                  : 0.0;

  selector->reset();
  result.gain_after = normalized_max(
      place_load(ring, config.nodes, workload, cache, *selector,
                 config.query_rate, rng),
      config.query_rate, result.alive_nodes);
  return result;
}

}  // namespace scp
