#include "sim/fault.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace scp {

void FaultView::reset(std::uint32_t node_count) {
  alive.assign(node_count, 1);
  slow.assign(node_count, 1.0);
  drop.assign(node_count, 0.0);
  alive_count = node_count;
}

bool FaultView::any_faults() const noexcept {
  if (alive_count != nodes()) {
    return true;
  }
  for (const double s : slow) {
    if (s != 1.0) {
      return true;
    }
  }
  for (const double p : drop) {
    if (p != 0.0) {
      return true;
    }
  }
  return false;
}

void FaultSchedule::add_crash(NodeId node, double start_s, double recover_s) {
  SCP_CHECK_MSG(node < nodes_, "fault on a node outside the cluster");
  SCP_CHECK(start_s >= 0.0 && recover_s > start_s);
  events_.push_back({FaultKind::kCrash, node, start_s, recover_s, 0.0});
}

void FaultSchedule::add_slow(NodeId node, double start_s, double end_s,
                             double multiplier) {
  SCP_CHECK_MSG(node < nodes_, "fault on a node outside the cluster");
  SCP_CHECK(start_s >= 0.0 && end_s > start_s);
  SCP_CHECK_MSG(multiplier >= 1.0, "slow multiplier must be >= 1");
  events_.push_back({FaultKind::kSlow, node, start_s, end_s, multiplier});
}

void FaultSchedule::add_network_drop(NodeId node, double start_s, double end_s,
                                     double probability) {
  SCP_CHECK_MSG(node < nodes_, "fault on a node outside the cluster");
  SCP_CHECK(start_s >= 0.0 && end_s > start_s);
  SCP_CHECK_MSG(probability >= 0.0 && probability <= 1.0,
                "drop probability must be in [0, 1]");
  events_.push_back(
      {FaultKind::kNetworkDrop, node, start_s, end_s, probability});
}

FaultView FaultSchedule::view_at(double time_s) const {
  FaultView view(nodes_);
  for (const FaultEvent& event : events_) {
    if (time_s < event.start_s || time_s >= event.end_s) {
      continue;
    }
    switch (event.kind) {
      case FaultKind::kCrash:
        if (view.alive[event.node]) {
          view.alive[event.node] = 0;
          --view.alive_count;
        }
        break;
      case FaultKind::kSlow:
        view.slow[event.node] = std::max(view.slow[event.node],
                                         event.severity);
        break;
      case FaultKind::kNetworkDrop:
        view.drop[event.node] = std::max(view.drop[event.node],
                                         event.severity);
        break;
    }
  }
  return view;
}

std::vector<double> FaultSchedule::transition_times() const {
  std::vector<double> times;
  times.reserve(events_.size() * 2);
  for (const FaultEvent& event : events_) {
    times.push_back(event.start_s);
    if (event.end_s != kNeverRecovers) {
      times.push_back(event.end_s);
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

FaultView FaultSchedule::worst_view() const {
  FaultView worst = view_at(0.0);
  for (const double time : transition_times()) {
    FaultView candidate = view_at(time);
    if (candidate.alive_count < worst.alive_count) {
      worst = std::move(candidate);
    }
  }
  return worst;
}

FaultSchedule FaultSchedule::random(const RandomFaultConfig& config,
                                    std::uint64_t seed) {
  SCP_CHECK(config.nodes >= 1);
  SCP_CHECK(config.horizon_s > 0.0);
  SCP_CHECK(config.onset_window_s >= 0.0);
  SCP_CHECK(config.crash_fraction >= 0.0 && config.crash_fraction <= 1.0);
  SCP_CHECK(config.slow_fraction >= 0.0 && config.slow_fraction <= 1.0);
  SCP_CHECK(config.drop_fraction >= 0.0 && config.drop_fraction <= 1.0);

  FaultSchedule schedule(config.nodes);
  Rng rng(seed);
  const auto victim_count = [&](double fraction) {
    return static_cast<std::size_t>(fraction *
                                    static_cast<double>(config.nodes));
  };
  const auto onset = [&]() {
    return config.onset_window_s > 0.0
               ? rng.uniform_double(0.0, config.onset_window_s)
               : 0.0;
  };

  for (const std::uint64_t victim : rng.sample_without_replacement(
           config.nodes, victim_count(config.crash_fraction))) {
    const double start = onset();
    const double recover = config.recovery_s > 0.0 ? start + config.recovery_s
                                                   : kNeverRecovers;
    schedule.add_crash(static_cast<NodeId>(victim), start, recover);
  }
  for (const std::uint64_t victim : rng.sample_without_replacement(
           config.nodes, victim_count(config.slow_fraction))) {
    schedule.add_slow(static_cast<NodeId>(victim), onset(), config.horizon_s,
                      config.slow_multiplier);
  }
  for (const std::uint64_t victim : rng.sample_without_replacement(
           config.nodes, victim_count(config.drop_fraction))) {
    schedule.add_network_drop(static_cast<NodeId>(victim), onset(),
                              config.horizon_s, config.drop_probability);
  }
  return schedule;
}

}  // namespace scp
