// Discrete-event simulator: individual queries, queues, drops, latency.
//
// Validates that the rate simulator's expectation-level story survives
// queueing dynamics. Poisson arrivals at rate R; each query checks the
// front-end cache (any FrontEndCache policy, including the real eviction
// policies), and on a miss is routed to one member of its replica group by
// the selector (least-loaded = join-shortest-queue). Back-end nodes are
// fluid-drain servers: a node with capacity r serves its FIFO backlog at r
// queries/sec, lazily advanced to each arrival's timestamp. Queries that
// arrive to a full queue are dropped — the observable DDoS damage.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.h"
#include "cluster/cluster.h"
#include "cluster/placement_index.h"
#include "cluster/routing.h"
#include "common/histogram.h"
#include "sim/fault.h"
#include "sim/metrics.h"
#include "workload/distribution.h"

namespace scp {

struct EventSimConfig {
  double query_rate = 1.0;      ///< R (qps)
  double duration_s = 1.0;      ///< simulated horizon
  std::uint64_t queue_capacity = 1000;  ///< per-node backlog limit
  std::uint64_t seed = 1;
  /// Opt-in fault injection: timed crash / crash-recover, slow-node and
  /// network-drop events replayed against the simulated clock. Crashed nodes
  /// lose their backlog and are skipped by routing until recovery; slow
  /// nodes drain at capacity/multiplier; lossy nodes drop arrivals with the
  /// configured probability, which the front-end retries under `retry`
  /// (capped exponential backoff counted into the query's waiting time).
  /// Null — or an empty schedule — reproduces the fault-unaware simulation
  /// bit-for-bit. Must outlive the call and match the cluster's node count.
  const FaultSchedule* faults = nullptr;
  /// Retry behavior for unreachable replicas (only consulted with faults).
  RetryPolicy retry;
};

struct EventSimResult {
  std::uint64_t total_queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t backend_arrivals = 0;
  std::uint64_t dropped = 0;
  double cache_hit_ratio = 0.0;
  double drop_ratio = 0.0;  ///< dropped / total_queries
  std::vector<std::uint64_t> node_arrivals;  ///< per-node arrival counts
  LoadMetrics arrival_metrics;  ///< imbalance of node_arrivals
  /// Queueing delay in microseconds (time a query waits behind its node's
  /// backlog); cache hits count as 0.
  LogHistogram wait_us;
  /// Max arrivals normalized by total_queries/n — event-level analogue of
  /// the attack gain.
  double normalized_max_arrivals = 0.0;

  // --- degraded-mode accounting (fault injection; see EventSimConfig) -----
  /// Queries that reached no node: whole replica group dead, or network-
  /// dropped on every allowed retry attempt. 0 without faults.
  std::uint64_t unserved = 0;
  double unserved_ratio = 0.0;      ///< unserved / total_queries
  std::uint64_t retries = 0;        ///< retry attempts performed
  /// Backlogged queries lost when their node crashed (server-side loss,
  /// recorded as dropped on the node).
  std::uint64_t crash_lost = 0;
  /// Smallest number of alive nodes observed over the horizon (= n without
  /// faults).
  std::uint32_t min_alive_nodes = 0;

  EventSimResult() : wait_us(5) {}
};

/// Reusable per-worker buffers for repeated simulate_events calls — the
/// per-node queue state and the replica-group buffer, so Monte-Carlo loops
/// over event trials allocate nothing per trial.
struct EventSimScratch {
  std::vector<NodeId> group;
  std::vector<NodeId> survivors;
  std::vector<double> backlog;
  std::vector<double> last_update;
  std::vector<double> backlog_as_load;
  std::vector<double> served_total;
  std::vector<double> arrivals_d;
};

/// Runs one event simulation. Nodes must have a capacity limit
/// (BackendNode::has_capacity_limit()) for queueing to be meaningful.
EventSimResult simulate_events(Cluster& cluster, FrontEndCache& cache,
                               const QueryDistribution& distribution,
                               ReplicaSelector& selector,
                               const EventSimConfig& config);

/// Fast-path overload, mirroring the rate simulator's: identical results,
/// but replica groups are read from `index` (when non-null and
/// materialized) instead of per-query virtual hashing, and all per-node
/// state lives in `scratch` (when non-null). Pass nullptr for either to
/// fall back gracefully.
EventSimResult simulate_events(Cluster& cluster, FrontEndCache& cache,
                               const QueryDistribution& distribution,
                               ReplicaSelector& selector,
                               const EventSimConfig& config,
                               const PlacementIndex* index,
                               EventSimScratch* scratch);

}  // namespace scp
