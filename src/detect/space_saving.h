// SpaceSaving top-k heavy-hitter sketch (Metwally, Agrawal, El Abbadi:
// "Efficient computation of frequent and top-k elements in data streams").
//
// Tracks at most `capacity` keys with per-key (count, error) pairs. A key
// already monitored increments its count; a new key while full replaces the
// current minimum, inheriting its count as the new key's error bound. The
// classic guarantees follow: `count` never underestimates a monitored key's
// true frequency, overestimates it by at most `error`, and any key whose
// true frequency exceeds total()/capacity is guaranteed to be monitored.
//
// This complements cache/count_min.h: the count-min sketch answers point
// frequency queries for TinyLFU admission, while SpaceSaving *enumerates*
// the current heavy hitters — which is what the detection gossip needs to
// put on the wire (a kHotKeyReport is a top-k listing, not a query).
//
// halve() ages every count/error (dropping entries that reach zero) so a
// shifted attack's stale hot set decays within a couple of report windows
// instead of occupying monitor slots forever.
//
// Not thread-safe; owners serialize access (the backend guards one sketch
// with a mutex, consistent with the storage locks already on that path).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/types.h"

namespace scp::detect {

class SpaceSaving {
 public:
  struct Entry {
    KeyId key = 0;
    std::uint64_t count = 0;  ///< estimated frequency (never underestimates)
    std::uint64_t error = 0;  ///< overestimation bound inherited at takeover
  };

  explicit SpaceSaving(std::size_t capacity);

  void observe(KeyId key, std::uint64_t weight = 1);

  /// The k heaviest monitored keys, sorted by descending count (ties by
  /// ascending key for determinism). k > size() returns everything.
  std::vector<Entry> top(std::size_t k) const;

  /// Estimated count for `key`: its entry's count when monitored, otherwise
  /// the minimum monitored count (the standard upper bound for absentees;
  /// 0 while the sketch has free slots, since a new key would start fresh).
  std::uint64_t estimate(KeyId key) const;

  bool monitored(KeyId key) const { return index_.count(key) != 0; }

  /// Ages the sketch: halves every count and error, evicting entries whose
  /// count reaches zero. total() halves too, keeping fractions meaningful.
  void halve();

  void clear();

  /// Sum of observe() weights since clear(), aged by halve().
  std::uint64_t total() const noexcept { return total_; }
  std::size_t size() const noexcept { return slots_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t min_slot() const;

  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::vector<Entry> slots_;
  std::unordered_map<KeyId, std::size_t> index_;  ///< key → slot
};

}  // namespace scp::detect
