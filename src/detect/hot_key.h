// Hot-key detection: per-backend heavy-hitter tracking and the cross-node
// aggregation that turns gossiped top-k reports into a global hot set.
//
// The attack this detects (per the gossip-DoS paper in PAPERS.md) is a
// cache-miss flood: an adversary queries a small key set chosen to miss the
// front-end cache, so every request lands on the keys' d replicas. Each
// backend only sees its own slice of that flood; the signature — a few keys
// carrying a large fraction of the *cluster-wide* backend request stream —
// only appears once nodes exchange their observations. Hence the split:
//
//   HotKeyDetector   — wraps a SpaceSaving sketch on one backend's serve
//                      path and periodically drains it into a HotKeyReport
//                      (the payload of the kHotKeyReport wire frame).
//   HotKeyAggregator — merges the latest report per node (a backend's own
//                      plus everything gossiped to it, or everything a
//                      subscribed front end receives) and classifies keys
//                      whose aggregated share of the backend request stream
//                      crosses a threshold, with hysteresis so borderline
//                      keys don't flap.
//
// The front end combines the aggregator's hot set with its own cache state:
// globally hot at the backends *and* absent from the FE tier is precisely
// the miss-flood signature, and those keys get force-admitted (mitigation).
// Neither class is thread-safe; owners serialize access.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/types.h"
#include "detect/space_saving.h"

namespace scp::detect {

struct HotKeyEntry {
  KeyId key = 0;
  std::uint64_t count = 0;

  bool operator==(const HotKeyEntry&) const = default;
};

/// One node's windowed top-k observation — the kHotKeyReport payload.
struct HotKeyReport {
  NodeId node = 0;
  std::uint64_t seq = 0;    ///< reporter-local sequence; stale ones ignored
  std::uint64_t total = 0;  ///< requests observed in the sketch's window
  std::vector<HotKeyEntry> entries;

  bool operator==(const HotKeyReport&) const = default;
};

/// Wire sanity cap on a report's entry list (mirrors the metrics-entry cap
/// in wire.cpp; real reports carry a configured top-k of ≤ a few dozen).
inline constexpr std::uint32_t kMaxHotKeyEntries = 512;

class HotKeyDetector {
 public:
  /// `sketch_capacity` monitor slots; reports carry the top `report_k`.
  HotKeyDetector(std::size_t sketch_capacity, std::size_t report_k);

  void observe(KeyId key) { sketch_.observe(key); }

  /// Snapshot the current window as a report (monotonic seq per call).
  HotKeyReport report(NodeId node);

  /// Ages the window (SpaceSaving::halve) — called once per report tick so
  /// counts emphasize the last couple of windows and a shifted attack's old
  /// hot set decays instead of lingering.
  void age() { sketch_.halve(); }

  std::uint64_t total() const noexcept { return sketch_.total(); }
  std::size_t monitored_keys() const noexcept { return sketch_.size(); }

 private:
  SpaceSaving sketch_;
  std::size_t report_k_;
  std::uint64_t next_seq_ = 1;
};

class HotKeyAggregator {
 public:
  struct Options {
    /// A key is hot when its aggregated count ≥ hot_fraction × aggregated
    /// total. Calibration: a miss-flood over x keys gives each ~1/x of the
    /// backend stream (x is near the FE capacity c for the strongest
    /// attack), while a benign zipf residual's heaviest key carries ~1% at
    /// the preset scales — 0.02 splits the two with ~2× margin each way.
    double hot_fraction = 0.02;
    /// Hysteresis exit: an already-hot key stays flagged until its share
    /// drops below hot_fraction × drop_ratio.
    double drop_ratio = 0.5;
    /// No classification until the aggregated total reaches this floor
    /// (cold-start guard: three requests shouldn't flag anything).
    std::uint64_t min_samples = 256;
  };

  HotKeyAggregator() : HotKeyAggregator(Options{}) {}
  explicit HotKeyAggregator(Options options);

  /// Installs `report` as its node's latest observation (stale seq ignored)
  /// and reclassifies. Returns the keys that *newly* became hot.
  std::vector<KeyId> update(const HotKeyReport& report);

  /// Currently-hot keys (insertion-ordered classification is not promised;
  /// callers treat this as a set).
  const std::unordered_set<KeyId>& hot() const noexcept { return hot_; }

  /// Aggregated request total across the latest report of every node.
  std::uint64_t aggregated_total() const noexcept { return aggregated_total_; }
  std::size_t reporting_nodes() const noexcept { return reports_.size(); }

 private:
  void reclassify(std::vector<KeyId>* newly_hot);

  Options options_;
  std::unordered_map<NodeId, HotKeyReport> reports_;  ///< latest per node
  std::unordered_set<KeyId> hot_;
  std::uint64_t aggregated_total_ = 0;
  // reclassify() scratch, kept across calls to avoid re-allocation.
  std::unordered_map<KeyId, std::uint64_t> counts_;
};

}  // namespace scp::detect
