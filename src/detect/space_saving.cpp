#include "detect/space_saving.h"

#include <algorithm>

namespace scp::detect {

SpaceSaving::SpaceSaving(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  slots_.reserve(capacity_);
  index_.reserve(capacity_);
}

std::size_t SpaceSaving::min_slot() const {
  // Linear scan: capacity is a few dozen to a few hundred slots and the
  // scan only runs when an unmonitored key arrives while full. A bucketed
  // stream-summary would make this O(1) but isn't worth the structure at
  // gossip-report sizes.
  std::size_t best = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].count < slots_[best].count) best = i;
  }
  return best;
}

void SpaceSaving::observe(KeyId key, std::uint64_t weight) {
  if (weight == 0) return;
  total_ += weight;
  auto it = index_.find(key);
  if (it != index_.end()) {
    slots_[it->second].count += weight;
    return;
  }
  if (slots_.size() < capacity_) {
    index_.emplace(key, slots_.size());
    slots_.push_back(Entry{key, weight, 0});
    return;
  }
  // Take over the minimum slot: the evictee's count becomes the newcomer's
  // count floor and error bound.
  const std::size_t slot = min_slot();
  Entry& entry = slots_[slot];
  index_.erase(entry.key);
  index_.emplace(key, slot);
  entry.error = entry.count;
  entry.count += weight;
  entry.key = key;
}

std::vector<SpaceSaving::Entry> SpaceSaving::top(std::size_t k) const {
  std::vector<Entry> out = slots_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::uint64_t SpaceSaving::estimate(KeyId key) const {
  auto it = index_.find(key);
  if (it != index_.end()) return slots_[it->second].count;
  if (slots_.size() < capacity_) return 0;
  return slots_[min_slot()].count;
}

void SpaceSaving::halve() {
  total_ /= 2;
  std::size_t kept = 0;
  index_.clear();
  for (Entry& entry : slots_) {
    entry.count /= 2;
    entry.error /= 2;
    if (entry.count == 0) continue;
    slots_[kept] = entry;
    index_.emplace(slots_[kept].key, kept);
    ++kept;
  }
  slots_.resize(kept);
}

void SpaceSaving::clear() {
  total_ = 0;
  slots_.clear();
  index_.clear();
}

}  // namespace scp::detect
