#include "detect/hot_key.h"

#include <algorithm>

namespace scp::detect {

HotKeyDetector::HotKeyDetector(std::size_t sketch_capacity,
                               std::size_t report_k)
    : sketch_(std::max<std::size_t>(sketch_capacity, 1)),
      report_k_(std::max<std::size_t>(report_k, 1)) {}

HotKeyReport HotKeyDetector::report(NodeId node) {
  HotKeyReport report;
  report.node = node;
  report.seq = next_seq_++;
  report.total = sketch_.total();
  const auto top = sketch_.top(report_k_);
  report.entries.reserve(top.size());
  for (const SpaceSaving::Entry& entry : top) {
    report.entries.push_back(HotKeyEntry{entry.key, entry.count});
  }
  return report;
}

HotKeyAggregator::HotKeyAggregator(Options options) : options_(options) {
  if (options_.hot_fraction <= 0.0) options_.hot_fraction = 0.02;
  options_.drop_ratio = std::clamp(options_.drop_ratio, 0.0, 1.0);
}

std::vector<KeyId> HotKeyAggregator::update(const HotKeyReport& report) {
  auto [it, inserted] = reports_.try_emplace(report.node, report);
  if (!inserted) {
    if (report.seq <= it->second.seq) return {};  // stale or duplicate gossip
    it->second = report;
  }
  std::vector<KeyId> newly_hot;
  reclassify(&newly_hot);
  return newly_hot;
}

void HotKeyAggregator::reclassify(std::vector<KeyId>* newly_hot) {
  counts_.clear();
  aggregated_total_ = 0;
  for (const auto& [node, report] : reports_) {
    aggregated_total_ += report.total;
    for (const HotKeyEntry& entry : report.entries) {
      counts_[entry.key] += entry.count;
    }
  }
  if (aggregated_total_ < options_.min_samples) return;

  const double total = static_cast<double>(aggregated_total_);
  const double enter = options_.hot_fraction * total;
  const double exit = enter * options_.drop_ratio;
  for (const auto& [key, count] : counts_) {
    const double c = static_cast<double>(count);
    if (hot_.count(key) != 0) continue;  // exit rule handles existing keys
    if (c >= enter) {
      hot_.insert(key);
      newly_hot->push_back(key);
    }
  }
  for (auto it = hot_.begin(); it != hot_.end();) {
    const auto found = counts_.find(*it);
    const double c =
        found == counts_.end() ? 0.0 : static_cast<double>(found->second);
    it = c < exit ? hot_.erase(it) : std::next(it);
  }
}

}  // namespace scp::detect
