// Prometheus-style text exposition and a minimal scrape endpoint.
//
// MetricsHttpServer is a deliberately tiny HTTP/1.0 responder: one accept
// thread, one request per connection, GET only. It serves
//   /metrics       — Prometheus text format (version 0.0.4)
//   /metrics.json  — the same snapshot as a JSON document
// It runs on its own thread with raw POSIX sockets so the obs layer stays
// independent of the FrameLoop reactor in src/net (which depends on obs, not
// the other way around).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/json.h"
#include "obs/metrics.h"

namespace scp::obs {

/// Rewrites a dotted metric name to a Prometheus-legal one: "scp_" prefix,
/// dots become underscores, any character outside [a-zA-Z0-9_:] becomes '_'.
std::string prometheus_name(std::string_view name);

/// Renders a snapshot in the Prometheus text format. Counters become
/// `counter`, gauges `gauge`, timers `summary` (quantile series + _sum and
/// _count) — all values are cumulative since process start.
std::string to_prometheus_text(const MetricsSnapshot& snapshot);

/// Renders a snapshot as JSON:
/// {"counters": {...}, "gauges": {...},
///  "timers": {"name": {"count":..., "mean":..., "p50":..., "p90":...,
///             "p99":..., "p999":..., "min":..., "max":...}, ...}}
std::string to_json(const MetricsSnapshot& snapshot);

/// Writes the same object into an in-progress JsonWriter (after a key() or
/// inside an array), so callers can embed a snapshot in a larger document.
void write_json(JsonWriter& writer, const MetricsSnapshot& snapshot);

class MetricsHttpServer {
 public:
  /// `snapshot_fn` is called per scrape on the server thread; it must be
  /// thread-safe (MetricsRegistry::snapshot is).
  MetricsHttpServer(std::function<MetricsSnapshot()> snapshot_fn);
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned) and starts the accept
  /// thread. Returns false if the bind fails. Call at most once.
  bool start(std::uint16_t port);
  void stop();

  /// The bound port; valid after a successful start().
  std::uint16_t port() const noexcept { return port_; }

 private:
  void serve();

  std::function<MetricsSnapshot()> snapshot_fn_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace scp::obs
