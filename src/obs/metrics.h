// Lock-light metrics registry shared by the simulators and the live tier.
//
// Counters and gauges are single relaxed atomic words — the hot-path cost of
// an increment is one uncontended fetch_add. Timers are LogHistogram-backed
// and guarded by a per-timer spinlock: every server in this codebase runs its
// FrameLoop on one thread, so the only contention is a snapshot scrape a few
// times per second. Registration (name lookup) takes a mutex and is meant for
// setup time; hot paths hold the returned reference, which is stable for the
// registry's lifetime.
//
// Metric naming convention: dot-separated lowercase components with a unit
// suffix, e.g. "frontend.forward_rtt_us", "loop.tick_us",
// "backend.service_us". The Prometheus exposition layer rewrites dots to
// underscores and prefixes "scp_".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/histogram.h"

namespace scp::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Latency-style distribution; record() is wait-free against other record()
/// calls in the single-writer case and only ever spins against a concurrent
/// snapshot().
class Timer {
 public:
  explicit Timer(unsigned precision = 5) : hist_(precision) {}

  void record(std::uint64_t value) noexcept {
    while (lock_.test_and_set(std::memory_order_acquire)) {
    }
    hist_.record(value);
    lock_.clear(std::memory_order_release);
  }

  LogHistogram snapshot() const {
    while (lock_.test_and_set(std::memory_order_acquire)) {
    }
    LogHistogram copy = hist_;
    lock_.clear(std::memory_order_release);
    return copy;
  }

 private:
  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  LogHistogram hist_;
};

/// Point-in-time copy of every metric in a registry. Mergeable across
/// registries (multi-node scrapes) and serializable over the wire — maps are
/// ordered so encodings are deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, LogHistogram> timers;

  /// Sums counters, sums gauges, and merges timer histograms name-by-name.
  void merge(const MetricsSnapshot& other);

  bool empty() const {
    return counters.empty() && gauges.empty() && timers.empty();
  }

  bool operator==(const MetricsSnapshot&) const = default;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// References stay valid for the registry's lifetime. Re-registering a
  /// timer with a different precision keeps the original.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name, unsigned precision = 5);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

/// Monotonic nanoseconds for latency instrumentation.
std::uint64_t now_ns() noexcept;

/// Records `now_ns() - start_ns` into `timer`, scaled to the timer's unit
/// (pass divisor 1'000 for _us metrics). No-op when `timer` is null, so call
/// sites can keep one unconditional line whether metrics are enabled or not.
inline void record_elapsed(Timer* timer, std::uint64_t start_ns,
                           std::uint64_t divisor = 1) noexcept {
  if (timer != nullptr) {
    timer->record((now_ns() - start_ns) / divisor);
  }
}

}  // namespace scp::obs
