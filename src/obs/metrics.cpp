#include "obs/metrics.h"

#include <chrono>

namespace scp::obs {

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] += value;
  }
  for (const auto& [name, hist] : other.timers) {
    auto it = timers.find(name);
    if (it == timers.end()) {
      timers.emplace(name, hist);
    } else {
      it->second.merge(hist);
    }
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Timer& MetricsRegistry::timer(std::string_view name, unsigned precision) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_
             .emplace(std::string(name), std::make_unique<Timer>(precision))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, timer] : timers_) {
    snap.timers.emplace(name, timer->snapshot());
  }
  return snap;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace scp::obs
