#include "obs/exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <utility>

#include "common/json.h"
#include "common/log.h"

namespace scp::obs {
namespace {

bool legal_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_quantiles(std::ostringstream& os, const std::string& name,
                      const LogHistogram& hist) {
  static constexpr std::pair<const char*, double> kQuantiles[] = {
      {"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999}};
  for (const auto& [label, q] : kQuantiles) {
    os << name << "{quantile=\"" << label << "\"} "
       << hist.value_at_quantile(q) << "\n";
  }
  os << name << "_sum " << hist.sum() << "\n";
  os << name << "_count " << hist.count() << "\n";
}

std::string http_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.0 " << status << ' ' << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "scp_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    out.push_back(legal_char(c) ? c : '_');
  }
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string pname = prometheus_name(name);
    os << "# TYPE " << pname << " counter\n" << pname << ' ' << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string pname = prometheus_name(name);
    os << "# TYPE " << pname << " gauge\n" << pname << ' ' << value << "\n";
  }
  for (const auto& [name, hist] : snapshot.timers) {
    const std::string pname = prometheus_name(name);
    os << "# TYPE " << pname << " summary\n";
    append_quantiles(os, pname, hist);
  }
  return os.str();
}

void write_json(JsonWriter& w, const MetricsSnapshot& snapshot) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : snapshot.counters) {
    w.field(name, value);
  }
  w.end();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : snapshot.gauges) {
    w.field(name, static_cast<std::int64_t>(value));
  }
  w.end();
  w.key("timers").begin_object();
  for (const auto& [name, hist] : snapshot.timers) {
    w.key(name).begin_object();
    w.field("count", hist.count());
    w.field("mean", hist.mean());
    w.field("p50", hist.value_at_quantile(0.50));
    w.field("p90", hist.value_at_quantile(0.90));
    w.field("p99", hist.value_at_quantile(0.99));
    w.field("p999", hist.value_at_quantile(0.999));
    w.field("min", hist.min());
    w.field("max", hist.max());
    w.end();
  }
  w.end();
  w.end();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  write_json(w, snapshot);
  return w.str();
}

MetricsHttpServer::MetricsHttpServer(std::function<MetricsSnapshot()> snapshot_fn)
    : snapshot_fn_(std::move(snapshot_fn)) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

bool MetricsHttpServer::start(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve(); });
  return true;
}

void MetricsHttpServer::stop() {
  if (!thread_.joinable()) {
    return;
  }
  stopping_.store(true, std::memory_order_relaxed);
  thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::serve() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) {
      continue;  // timeout (re-check stopping_) or transient error
    }
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      continue;
    }
    char buf[2048];
    std::string request;
    // Read until the end of the request head; scrapers send tiny requests,
    // so a short bounded loop suffices.
    while (request.size() < 16 * 1024 &&
           request.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
      if (n <= 0) {
        break;
      }
      request.append(buf, static_cast<std::size_t>(n));
    }
    std::string path;
    if (request.rfind("GET ", 0) == 0) {
      const std::size_t end = request.find(' ', 4);
      if (end != std::string::npos) {
        path = request.substr(4, end - 4);
      }
    }
    std::string response;
    if (path == "/metrics" || path == "/") {
      response = http_response(
          200, "OK", "text/plain; version=0.0.4; charset=utf-8",
          to_prometheus_text(snapshot_fn_()));
    } else if (path == "/metrics.json") {
      response = http_response(200, "OK", "application/json",
                               to_json(snapshot_fn_()));
    } else {
      response = http_response(404, "Not Found", "text/plain",
                               "not found\n");
    }
    send_all(client, response);
    ::close(client);
  }
}

}  // namespace scp::obs
