#include "net/reactor.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/log.h"
#include "net/frame_loop.h"
#include "net/uring_loop.h"

namespace scp::net {
namespace {

/// Buffer-pool bounds: buffers above the capacity cap are dropped on
/// release (a one-off huge value must not become resident scratch), and the
/// pool holds at most this many buffers.
constexpr std::size_t kPoolMaxBuffers = 256;
constexpr std::size_t kPoolMaxCapacity = 64 * 1024;

bool make_wake_pipe(Socket& read_end, Socket& write_end) {
  int fds[2];
  if (::pipe(fds) != 0) {
    SCP_LOG_ERROR << "net: pipe() failed: " << std::strerror(errno);
    return false;
  }
  read_end.reset(fds[0]);
  write_end.reset(fds[1]);
  return set_nonblocking(fds[0]) && set_nonblocking(fds[1]);
}

}  // namespace

bool parse_reactor_kind(const std::string& text, ReactorKind& kind) {
  if (text == "epoll") {
    kind = ReactorKind::kEpoll;
    return true;
  }
  if (text == "uring") {
    kind = ReactorKind::kUring;
    return true;
  }
  return false;
}

const char* to_string(ReactorKind kind) noexcept {
  return kind == ReactorKind::kUring ? "uring" : "epoll";
}

bool uring_available(std::string* reason) {
  return uring_runtime_available(reason);
}

std::unique_ptr<Reactor> make_reactor(const ReactorOptions& options) {
  if (options.kind == ReactorKind::kUring) {
    UringOptions uring;
    uring.busy_poll = options.busy_poll;
    std::unique_ptr<Reactor> loop = make_uring_loop(uring);
    if (loop != nullptr) return loop;
    std::string reason;
    uring_available(&reason);
    SCP_LOG_WARN << "net: io_uring unavailable (" << reason
                 << "); falling back to epoll";
  }
  return std::make_unique<FrameLoop>();
}

Reactor::Reactor() { make_wake_pipe(wake_read_, wake_write_); }

Reactor::~Reactor() = default;

void Reactor::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    tick_us_ = nullptr;
    dispatch_depth_ = nullptr;
    return;
  }
  tick_us_ = &registry->timer("loop.tick_us");
  dispatch_depth_ = &registry->timer("loop.dispatch_depth");
}

void Reactor::adopt(int fd) {
  if (on_loop_thread()) {
    adopt_on_loop(fd);
    return;
  }
  if (!running_.load()) {
    ::close(fd);
    return;
  }
  post([this, fd] { adopt_on_loop(fd); });
}

bool Reactor::start() {
  if (started_ || !valid() || !wake_valid()) return false;
  started_ = true;
  // Visible before the thread spawns so running() is true the moment start()
  // returns; callers poll it as the serve-loop condition.
  running_.store(true);
  thread_ = std::thread([this] {
    loop_thread_id_.store(std::this_thread::get_id(),
                          std::memory_order_release);
    run();
    running_.store(false);
  });
  return true;
}

void Reactor::stop(double drain_s) {
  request_stop(drain_s);
  join();
}

void Reactor::request_stop(double drain_s) {
  if (!started_) {
    listener_.reset();
    return;
  }
  drain_s_.store(drain_s);
  stop_requested_.store(true);
  wakeup();
}

void Reactor::join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

ConnId Reactor::connect(const std::string& address, std::uint16_t port) {
  const ConnId id = next_conn_id_.fetch_add(1);
  if (!running_.load()) {
    std::lock_guard<std::mutex> lock(post_mutex_);
    pending_connects_.push_back({id, {address, port}});
    return id;
  }
  if (on_loop_thread()) {
    do_connect(id, address, port);
  } else {
    post([this, id, address, port] { do_connect(id, address, port); });
  }
  return id;
}

void Reactor::run_after(double delay_s, std::function<void()> fn) {
  if (running_.load() && !on_loop_thread()) {
    post([this, delay_s, fn = std::move(fn)]() mutable {
      run_after(delay_s, std::move(fn));
    });
    return;
  }
  Timer timer;
  timer.deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(delay_s));
  timer.seq = timer_seq_++;
  timer.fn = std::move(fn);
  timers_.push(std::move(timer));
}

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  wakeup();
}

void Reactor::wakeup() noexcept {
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_.fd(), &byte, 1);
}

void Reactor::drain_wake_pipe() {
  char buf[64];
  counters_.syscalls.fetch_add(1, std::memory_order_relaxed);
  while (::read(wake_read_.fd(), buf, sizeof(buf)) > 0) {
    counters_.syscalls.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t Reactor::drain_posted() {
  std::vector<std::function<void()>> posted;
  std::vector<std::pair<ConnId, std::pair<std::string, std::uint16_t>>>
      connects;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted.swap(posted_);
    connects.swap(pending_connects_);
  }
  for (auto& [id, target] : connects) {
    do_connect(id, target.first, target.second);
  }
  for (auto& fn : posted) {
    fn();
  }
  return posted.size();
}

void Reactor::run_due_timers() {
  const Clock::time_point now = Clock::now();
  while (!timers_.empty() && timers_.top().deadline <= now) {
    // priority_queue::top() is const; the handle is moved out via a cast —
    // safe because pop() immediately removes the slot.
    auto fn = std::move(const_cast<Timer&>(timers_.top()).fn);
    timers_.pop();
    fn();
  }
}

int Reactor::next_timeout_ms() const {
  if (timers_.empty()) return 100;
  const auto now = Clock::now();
  const auto deadline = timers_.top().deadline;
  if (deadline <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count();
  return static_cast<int>(std::min<long long>(ms + 1, 100));
}

std::vector<std::uint8_t> Reactor::acquire_buffer() {
  if (buffer_pool_.empty()) return {};
  std::vector<std::uint8_t> buffer = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  buffer.clear();
  return buffer;
}

void Reactor::release_buffer(std::vector<std::uint8_t>&& buffer) {
  if (buffer_pool_.size() < kPoolMaxBuffers &&
      buffer.capacity() > 0 && buffer.capacity() <= kPoolMaxCapacity) {
    buffer_pool_.push_back(std::move(buffer));
  }
}

}  // namespace scp::net
