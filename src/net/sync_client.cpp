#include "net/sync_client.h"

#include <poll.h>
#include <sys/socket.h>

#include <cassert>
#include <cerrno>
#include <chrono>

namespace scp::net {
namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left <= 0 ? 0 : static_cast<int>(left);
}

}  // namespace

bool SyncClient::connect(const std::string& address, std::uint16_t port,
                         double timeout_s) {
  sock_ = connect_tcp(address, port, timeout_s);
  reader_ = FrameReader();
  return sock_.valid();
}

bool SyncClient::send_all(const std::uint8_t* data, std::size_t size,
                          double timeout_s) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(sock_.fd(), data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{sock_.fd(), POLLOUT, 0};
      const int timeout = remaining_ms(deadline);
      if (timeout == 0 || ::poll(&pfd, 1, timeout) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

std::optional<Message> SyncClient::call(const Message& request,
                                        double timeout_s) {
  if (!sock_.valid()) return std::nullopt;
  const std::vector<std::uint8_t> frame = encode(request);
  if (!send_all(frame.data(), frame.size(), timeout_s)) {
    disconnect();
    return std::nullopt;
  }

  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  std::uint8_t buffer[16384];
  while (true) {
    if (auto payload = reader_.next_payload(); payload.has_value()) {
      auto message = decode_payload(*payload);
      if (!message.has_value()) {
        disconnect();
        return std::nullopt;
      }
      // Strictly synchronous contract: one reply per request, so nothing may
      // remain buffered once the reply is decoded. Leftover bytes mean the
      // server pipelined an unrequested frame (or ordering broke).
      assert(reader_.buffered_bytes() == 0 &&
             "SyncClient: server sent bytes beyond the single expected reply");
      return message;
    }
    if (reader_.corrupted()) {
      disconnect();
      return std::nullopt;
    }
    pollfd pfd{sock_.fd(), POLLIN, 0};
    const int timeout = remaining_ms(deadline);
    if (timeout == 0 || ::poll(&pfd, 1, timeout) <= 0) {
      disconnect();
      return std::nullopt;
    }
    const ssize_t n = ::recv(sock_.fd(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      reader_.append({buffer, static_cast<std::size_t>(n)});
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    disconnect();  // EOF or hard error
    return std::nullopt;
  }
}

std::optional<Message> SyncClient::get(std::uint64_t key, double timeout_s) {
  Message request;
  request.type = MsgType::kGet;
  request.key = key;
  return call(request, timeout_s);
}

std::optional<std::vector<Message>> SyncClient::batch_get(
    const std::vector<std::uint64_t>& keys, double timeout_s) {
  if (!sock_.valid() || keys.empty()) return std::nullopt;
  Message request;
  request.type = MsgType::kBatchGet;
  request.batch_keys = keys;
  const std::vector<std::uint8_t> frame = encode(request);
  if (!send_all(frame.data(), frame.size(), timeout_s)) {
    disconnect();
    return std::nullopt;
  }

  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  std::vector<std::optional<Message>> slots(keys.size());
  std::size_t filled = 0;
  std::uint8_t buffer[16384];
  while (true) {
    while (auto payload = reader_.next_payload()) {
      auto message = decode_payload(*payload);
      if (!message.has_value()) {
        disconnect();
        return std::nullopt;
      }
      if (message->type == MsgType::kBatchReply) {
        // Backend path: one frame answers the whole batch in request order;
        // mixing it with per-key frames would be a protocol error.
        if (filled != 0 || message->batch.size() != keys.size()) {
          disconnect();
          return std::nullopt;
        }
        std::vector<Message> replies;
        replies.reserve(keys.size());
        for (std::size_t i = 0; i < keys.size(); ++i) {
          BatchItem& item = message->batch[i];
          if (item.key != keys[i]) {
            disconnect();
            return std::nullopt;
          }
          Message reply;
          reply.type = item.type;
          reply.key = item.key;
          reply.node = item.node;
          reply.payload = std::move(item.payload);
          replies.push_back(std::move(reply));
        }
        assert(reader_.buffered_bytes() == 0 &&
               "SyncClient: server sent bytes beyond the batch reply");
        return replies;
      }
      // Front-end path: one frame per key, in whatever order the keys
      // settled. Duplicate request keys fill their slots oldest-first.
      bool matched = false;
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] == message->key && !slots[i].has_value()) {
          slots[i] = std::move(*message);
          ++filled;
          matched = true;
          break;
        }
      }
      if (!matched) {
        disconnect();  // reply for a key we did not ask for
        return std::nullopt;
      }
      if (filled == keys.size()) {
        assert(reader_.buffered_bytes() == 0 &&
               "SyncClient: server sent bytes beyond the batch replies");
        std::vector<Message> replies;
        replies.reserve(keys.size());
        for (auto& slot : slots) replies.push_back(std::move(*slot));
        return replies;
      }
    }
    if (reader_.corrupted()) {
      disconnect();
      return std::nullopt;
    }
    pollfd pfd{sock_.fd(), POLLIN, 0};
    const int timeout = remaining_ms(deadline);
    if (timeout == 0 || ::poll(&pfd, 1, timeout) <= 0) {
      disconnect();
      return std::nullopt;
    }
    const ssize_t n = ::recv(sock_.fd(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      reader_.append({buffer, static_cast<std::size_t>(n)});
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    disconnect();  // EOF or hard error
    return std::nullopt;
  }
}

}  // namespace scp::net
