#include "net/sync_client.h"

#include <poll.h>
#include <sys/socket.h>

#include <cassert>
#include <cerrno>
#include <chrono>

namespace scp::net {
namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left <= 0 ? 0 : static_cast<int>(left);
}

}  // namespace

bool SyncClient::connect(const std::string& address, std::uint16_t port,
                         double timeout_s) {
  sock_ = connect_tcp(address, port, timeout_s);
  reader_ = FrameReader();
  return sock_.valid();
}

bool SyncClient::send_all(const std::uint8_t* data, std::size_t size,
                          double timeout_s) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(sock_.fd(), data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{sock_.fd(), POLLOUT, 0};
      const int timeout = remaining_ms(deadline);
      if (timeout == 0 || ::poll(&pfd, 1, timeout) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

std::optional<Message> SyncClient::call(const Message& request,
                                        double timeout_s) {
  if (!sock_.valid()) return std::nullopt;
  const std::vector<std::uint8_t> frame = encode(request);
  if (!send_all(frame.data(), frame.size(), timeout_s)) {
    disconnect();
    return std::nullopt;
  }

  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  std::uint8_t buffer[16384];
  while (true) {
    if (auto payload = reader_.next_payload(); payload.has_value()) {
      auto message = decode_payload(*payload);
      if (!message.has_value()) {
        disconnect();
        return std::nullopt;
      }
      // Strictly synchronous contract: one reply per request, so nothing may
      // remain buffered once the reply is decoded. Leftover bytes mean the
      // server pipelined an unrequested frame (or ordering broke).
      assert(reader_.buffered_bytes() == 0 &&
             "SyncClient: server sent bytes beyond the single expected reply");
      return message;
    }
    if (reader_.corrupted()) {
      disconnect();
      return std::nullopt;
    }
    pollfd pfd{sock_.fd(), POLLIN, 0};
    const int timeout = remaining_ms(deadline);
    if (timeout == 0 || ::poll(&pfd, 1, timeout) <= 0) {
      disconnect();
      return std::nullopt;
    }
    const ssize_t n = ::recv(sock_.fd(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      reader_.append({buffer, static_cast<std::size_t>(n)});
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    disconnect();  // EOF or hard error
    return std::nullopt;
  }
}

std::optional<Message> SyncClient::get(std::uint64_t key, double timeout_s) {
  Message request;
  request.type = MsgType::kGet;
  request.key = key;
  return call(request, timeout_s);
}

}  // namespace scp::net
