// Thin POSIX TCP socket helpers: RAII fd ownership, loopback listeners with
// kernel-assigned ports (--port 0), and blocking/non-blocking connects.
// Everything returns a plain invalid Socket on failure and logs the errno —
// the serving tier treats socket failure as "peer is down", never as a
// crash.
#pragma once

#include <cstdint>
#include <string>

namespace scp::net {

/// Move-only RAII wrapper around a file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { reset(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }

  /// Releases ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

bool set_nonblocking(int fd) noexcept;
bool set_nodelay(int fd) noexcept;

/// Creates a listening TCP socket bound to address:port (SO_REUSEADDR set;
/// port 0 = kernel-assigned). On success writes the actually bound port to
/// `bound_port` (when non-null) and returns the socket; invalid on failure.
/// With `reuse_port` the socket is additionally bound with SO_REUSEPORT so
/// several listeners can share one port and the kernel spreads accepted
/// connections across them (the multi-reactor accept path). When the
/// platform rejects SO_REUSEPORT the bind fails — callers fall back to a
/// single acceptor.
Socket listen_tcp(const std::string& address, std::uint16_t port, int backlog,
                  std::uint16_t* bound_port, bool reuse_port = false);

/// Starts a non-blocking connect. On return the socket is either connected,
/// in progress (`*in_progress` = true; completion is signaled by
/// writability, result read via SO_ERROR), or invalid (immediate failure).
Socket connect_tcp_nonblocking(const std::string& address, std::uint16_t port,
                               bool* in_progress);

/// Blocking connect with a timeout. Returns an invalid socket on failure or
/// timeout. The returned socket is left in blocking mode.
Socket connect_tcp(const std::string& address, std::uint16_t port,
                   double timeout_s);

}  // namespace scp::net
