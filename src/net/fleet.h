// Distributed front-end fleet: hashing and replica choice (DistCache-style).
//
// An N-process front-end tier splits the paper's cache budget c across its
// members with an *independent* hash — independent of the backend
// consistent-hash/replica partitioner in src/cluster (different keyed
// SipHash streams) and of the intra-process reactor-shard split (unkeyed
// mix64). DistCache proves that independent partitioning per cache layer
// plus power-of-two-choices between cache nodes preserves the load-balance
// guarantee; this header provides both halves:
//
//   * fleet_owner()      — which fleet member holds a key's cache slot (the
//                          only member allowed to cache it, so the aggregate
//                          footprint stays exactly c), and
//   * fleet_candidates() — the key's two candidate front ends (owner plus a
//                          distinct alternate from a second hash stream),
//                          between which FleetRouter picks by live load.
//
// The same functions run in the edge router (scp_router / RouterServer),
// the fleet members themselves (a non-owner answers a cached key with
// kRedirect to the owner) and the tests, so every component agrees on the
// key -> member mapping from the shared fleet seed alone — no handshake.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace scp::net {

inline constexpr std::uint32_t kNoFleetMember = UINT32_MAX;

/// The fleet member owning `key`'s cache slot: keyed SipHash of the key
/// under a stream derived from `fleet_seed`, reduced mod `fleet_size`.
/// Deterministic across processes sharing the seed. fleet_size == 0 is
/// treated as 1 (a degenerate single-member fleet owns everything).
std::uint32_t fleet_owner(std::uint64_t key, std::uint64_t fleet_seed,
                          std::uint32_t fleet_size) noexcept;

/// A key's two candidate front ends for power-of-two-choices routing.
struct FleetCandidates {
  std::uint32_t owner = 0;      ///< cache owner (fleet_owner())
  std::uint32_t alternate = 0;  ///< distinct second choice (== owner iff N=1)
};

/// owner = fleet_owner(); alternate drawn from an independent hash stream
/// over the remaining N-1 members, so the two candidates are distinct
/// whenever the fleet has more than one member.
FleetCandidates fleet_candidates(std::uint64_t key, std::uint64_t fleet_seed,
                                 std::uint32_t fleet_size) noexcept;

/// Power-of-two-choices over a key's candidate pair on a live load signal.
///
// Load per member is split into a scraped base (the member's own request
// counter published through src/obs, refreshed by the router's scrape
// timer) plus the locally tracked in-flight delta since that scrape — the
// classic "least outstanding" correction that keeps the signal fresh
// between scrapes. Not thread-safe: lives on one reactor thread (or inside
// one load-generator worker).
class FleetRouter {
 public:
  FleetRouter(std::uint32_t fleet_size, std::uint64_t fleet_seed);

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(members_.size());
  }
  std::uint64_t seed() const noexcept { return fleet_seed_; }

  std::uint32_t owner_of(std::uint64_t key) const noexcept {
    return fleet_owner(key, fleet_seed_, size());
  }
  FleetCandidates candidates_of(std::uint64_t key) const noexcept {
    return fleet_candidates(key, fleet_seed_, size());
  }

  /// The less-loaded of the key's two live candidates (ties broken by
  /// `rng`); the live one when only one is up; kNoFleetMember when neither
  /// is. A single-member fleet always picks member 0 (when up).
  std::uint32_t pick(std::uint64_t key, Rng& rng) const;

  /// Scraped load base for `member` (e.g. its "frontend.requests" counter
  /// plus its pending gauge from a kMetricsRequest scrape). Resets the
  /// local outstanding delta: the scrape already reflects delivered work.
  void set_scraped_load(std::uint32_t member, std::uint64_t load);

  /// Local in-flight accounting between scrapes.
  void on_dispatch(std::uint32_t member);
  void on_complete(std::uint32_t member);

  void set_up(std::uint32_t member, bool up);
  bool up(std::uint32_t member) const { return members_[member].up; }

  /// Current effective load (scraped base + local outstanding).
  double load(std::uint32_t member) const;

 private:
  struct Member {
    std::uint64_t scraped = 0;   ///< last scraped request count
    std::int64_t outstanding = 0;  ///< local dispatches since that scrape
    bool up = true;
  };

  std::uint64_t fleet_seed_;
  std::vector<Member> members_;
};

}  // namespace scp::net
