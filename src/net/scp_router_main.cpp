// scp_router — edge router for a distributed front-end fleet.
//
// Binds (kernel-assigned port with --port 0), prints `PORT <port>` on
// stdout, connects to every fleet member named by --frontends (list order =
// fleet index order; it must match each member's --fleet-index), and routes
// client GETs by power-of-two-choices on live load until SIGINT or SIGTERM.
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/flags.h"
#include "net/router_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

/// Parses "host:port,host:port,…" (or bare "port" entries, defaulting the
/// host to 127.0.0.1). Returns false on a malformed entry.
bool parse_endpoints(
    const std::string& list,
    std::vector<std::pair<std::string, std::uint16_t>>& endpoints) {
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string entry = list.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    std::string host = "127.0.0.1";
    std::string port_text = entry;
    const std::size_t colon = entry.rfind(':');
    if (colon != std::string::npos) {
      host = entry.substr(0, colon);
      port_text = entry.substr(colon + 1);
    }
    try {
      const unsigned long port = std::stoul(port_text);
      if (port == 0 || port > 65535) return false;
      endpoints.emplace_back(host, static_cast<std::uint16_t>(port));
    } catch (...) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scp;
  using namespace scp::net;

  RouterConfig config;
  std::uint64_t port = 0;
  std::uint64_t max_hops = config.max_hops;
  std::uint64_t batch_max = config.batch_max;
  std::string frontends_list;
  std::string reactor = "epoll";
  double drain_s = 1.0;
  std::int64_t metrics_port = -1;

  FlagSet flags("scp_router: fleet edge router (power-of-two-choices)");
  flags.add_string("address", &config.address, "bind address");
  flags.add_uint64("port", &port, "bind port (0 = kernel-assigned)");
  flags.add_string("frontends", &frontends_list,
                   "comma-separated host:port per fleet member, in fleet "
                   "index order (must match each member's --fleet-index)");
  flags.add_uint64("fleet-seed", &config.fleet_seed,
                   "fleet hash seed (must match every member)");
  flags.add_uint64("seed", &config.seed, "routing tie-break seed");
  flags.add_double("scrape-interval", &config.scrape_interval_s,
                   "load-signal scrape cadence (seconds)");
  double scrape_ms = 0.0;
  flags.add_double("scrape-ms", &scrape_ms,
                   "load-signal scrape cadence in milliseconds "
                   "(overrides --scrape-interval when > 0; surfaced as the "
                   "router.scrape_ms gauge)");
  flags.add_uint64("max-hops", &max_hops,
                   "dispatch budget per request (initial send + redirect "
                   "follows + dead-member re-dispatches)");
  flags.add_double("timeout", &config.timeout_s,
                   "per-request deadline before a member connection reset");
  flags.add_uint64("batch-max", &batch_max,
                   "max keys per kBatchGet dispatch frame; 1 disables "
                   "batching (one kGet frame per dispatch)");
  flags.add_string("reactor", &reactor,
                   "event loop backend: epoll|uring (uring falls back to "
                   "epoll when io_uring is unavailable)");
  flags.add_bool("busy-poll", &config.busy_poll,
                 "uring only: SQPOLL + spin-peek before blocking");
  flags.add_double("drain", &drain_s, "shutdown drain budget (seconds)");
  flags.add_bool("metrics", &config.metrics, "hot-path histograms");
  flags.add_int64("metrics-port", &metrics_port,
                  "Prometheus /metrics port (-1 = off, 0 = kernel-assigned)");
  if (!flags.parse(argc, argv)) return 2;

  config.port = static_cast<std::uint16_t>(port);
  if (scrape_ms > 0.0) config.scrape_interval_s = scrape_ms / 1000.0;
  config.max_hops = static_cast<std::uint32_t>(max_hops == 0 ? 1 : max_hops);
  config.batch_max =
      static_cast<std::uint32_t>(batch_max == 0 ? 1 : batch_max);
  config.metrics_port = static_cast<std::int32_t>(metrics_port);
  if (!parse_reactor_kind(reactor, config.reactor)) {
    std::fprintf(stderr, "scp_router: bad --reactor '%s' (epoll|uring)\n",
                 reactor.c_str());
    return 2;
  }
  if (!parse_endpoints(frontends_list, config.frontends)) {
    std::fprintf(stderr, "scp_router: bad --frontends entry\n");
    return 2;
  }
  if (config.frontends.empty()) {
    std::fprintf(stderr, "scp_router: --frontends is required\n");
    return 2;
  }

  RouterServer server(std::move(config));
  if (!server.start()) {
    std::fprintf(stderr, "scp_router: failed to start\n");
    return 1;
  }
  std::printf("PORT %u\n", static_cast<unsigned>(server.port()));
  // Effective backend: may differ from --reactor after uring fallback.
  std::printf("REACTOR %s\n", to_string(server.reactor_kind()));
  if (server.metrics_http_port() != 0) {
    std::printf("METRICS_PORT %u\n",
                static_cast<unsigned>(server.metrics_http_port()));
  }
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0 && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  server.stop(drain_s);
  const ServerStats stats = server.stats();
  std::printf("scp_router: requests=%llu forwarded=%llu redirects=%llu "
              "retries=%llu failures=%llu attempts=%llu\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.forwarded),
              static_cast<unsigned long long>(stats.redirects),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.failures),
              static_cast<unsigned long long>(stats.attempts));
  return 0;
}
