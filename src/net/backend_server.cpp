#include "net/backend_server.h"

#include <algorithm>
#include <vector>

#include "common/log.h"

namespace scp::net {

BackendServer::BackendServer(BackendConfig config)
    : config_(std::move(config)),
      partitioner_(make_partitioner(config_.partitioner, config_.nodes,
                                    config_.replication,
                                    config_.partition_seed)),
      pool_(ReactorPool::Options{
          .shards = config_.shards == 0 ? 1 : config_.shards,
          .force_fallback_accept = config_.force_fallback_accept,
          .reactor = config_.reactor,
          .busy_poll = config_.busy_poll}) {}

BackendServer::~BackendServer() { stop(0.0); }

void BackendServer::preload() {
  std::vector<NodeId> group(config_.replication);
  for (std::uint64_t key = 0; key < config_.items; ++key) {
    partitioner_->replica_group(key, group);
    if (std::find(group.begin(), group.end(), config_.node_id) != group.end()) {
      storage_.apply_put(key, make_value(key, config_.value_bytes),
                         /*version=*/1);
    }
  }
}

bool BackendServer::start() {
  preload();
  for (std::size_t k = 0; k < pool_.shards(); ++k) {
    Reactor& loop = pool_.shard(k);
    Reactor::Callbacks callbacks;
    callbacks.on_message = [this, k, &loop](ConnId conn, Message&& message) {
      handle(k, loop, conn, std::move(message));
    };
    loop.set_callbacks(std::move(callbacks));
    if (config_.metrics) {
      auto registry = std::make_unique<obs::MetricsRegistry>();
      service_us_.push_back(&registry->timer("backend.service_us"));
      if (k == 0) {
        // Shared storage — recorded once so the merged gauge is the key
        // count, not shards × keys.
        registry->gauge("backend.keys")
            .set(static_cast<std::int64_t>(storage_.live_count()));
      }
      loop.set_metrics(registry.get());
      registries_.push_back(std::move(registry));
    }
  }
  if (!pool_.listen(config_.address, config_.port)) return false;
  if (config_.metrics_port >= 0) {
    metrics_http_ = std::make_unique<obs::MetricsHttpServer>(
        [this] { return metrics_snapshot(); });
    if (!metrics_http_->start(
            static_cast<std::uint16_t>(config_.metrics_port))) {
      SCP_LOG_ERROR << "scp_backend: failed to bind metrics port "
                    << config_.metrics_port;
      return false;
    }
  }
  if (!pool_.start()) return false;
  SCP_LOG_INFO << "scp_backend node " << config_.node_id << " serving "
               << storage_.live_count() << " keys on " << config_.address
               << ":" << pool_.port() << " (" << pool_.shards() << " shard"
               << (pool_.shards() == 1 ? "" : "s") << ")";
  return true;
}

void BackendServer::stop(double drain_s) {
  pool_.stop(drain_s);
  if (metrics_http_ != nullptr) {
    metrics_http_->stop();
  }
}

ServerStats BackendServer::stats() const {
  ServerStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.redirects = redirects_.load(std::memory_order_relaxed);
  return stats;
}

obs::MetricsSnapshot BackendServer::metrics_snapshot() const {
  std::vector<obs::MetricsSnapshot> shards;
  shards.reserve(registries_.size());
  for (std::size_t k = 0; k < registries_.size(); ++k) {
    obs::MetricsSnapshot snap = registries_[k]->snapshot();
    const ReactorCounters& loop = pool_.shard(k).counters();
    snap.counters["loop.syscalls"] =
        loop.syscalls.load(std::memory_order_relaxed);
    snap.counters["loop.wakeups"] =
        loop.wakeups.load(std::memory_order_relaxed);
    snap.counters["loop.frames_in"] =
        loop.frames_in.load(std::memory_order_relaxed);
    snap.counters["loop.frames_out"] =
        loop.frames_out.load(std::memory_order_relaxed);
    snap.counters["loop.buf_starved"] =
        loop.buf_starved.load(std::memory_order_relaxed);
    shards.push_back(std::move(snap));
  }
  obs::MetricsSnapshot snap = merge_shard_snapshots("backend", shards);
  const ServerStats s = stats();
  snap.counters["backend.requests"] = s.requests;
  snap.counters["backend.hits"] = s.hits;
  snap.counters["backend.misses"] = s.misses;
  snap.counters["backend.redirects"] = s.redirects;
  return snap;
}

std::uint16_t BackendServer::metrics_http_port() const noexcept {
  return metrics_http_ != nullptr ? metrics_http_->port() : 0;
}

void BackendServer::handle(std::size_t shard, Reactor& loop, ConnId conn,
                           Message&& message) {
  obs::Timer* service_us =
      shard < service_us_.size() ? service_us_[shard] : nullptr;
  switch (message.type) {
    case MsgType::kGet: {
      const std::uint64_t start_ns =
          service_us != nullptr ? obs::now_ns() : 0;
      requests_.fetch_add(1, std::memory_order_relaxed);
      std::vector<NodeId> group(config_.replication);
      partitioner_->replica_group(message.key, group);
      if (std::find(group.begin(), group.end(), config_.node_id) ==
          group.end()) {
        redirects_.fetch_add(1, std::memory_order_relaxed);
        Message reply;
        reply.type = MsgType::kRedirect;
        reply.key = message.key;
        reply.node = group[0];
        loop.send(conn, reply);
        obs::record_elapsed(service_us, start_ns, /*divisor=*/1'000);
        return;
      }
      Message reply;
      reply.key = message.key;
      if (auto value = storage_.get(message.key); value.has_value()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kValue;
        reply.payload = std::move(*value);
      } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kMiss;
      }
      loop.send(conn, reply);
      obs::record_elapsed(service_us, start_ns, /*divisor=*/1'000);
      return;
    }
    case MsgType::kStats: {
      Message reply;
      reply.type = MsgType::kStatsReply;
      reply.stats = stats();
      loop.send(conn, reply);
      return;
    }
    case MsgType::kMetricsRequest: {
      Message reply;
      reply.type = MsgType::kMetricsReply;
      reply.metrics = metrics_snapshot();
      loop.send(conn, reply);
      return;
    }
    case MsgType::kPing: {
      Message reply;
      reply.type = MsgType::kPong;
      loop.send(conn, reply);
      return;
    }
    default: {
      Message reply;
      reply.type = MsgType::kError;
      reply.key = message.key;
      reply.payload = "unexpected message type";
      loop.send(conn, reply);
      return;
    }
  }
}

}  // namespace scp::net
