#include "net/backend_server.h"

#include <algorithm>
#include <vector>

#include "common/log.h"

namespace scp::net {

BackendServer::BackendServer(BackendConfig config)
    : config_(std::move(config)),
      partitioner_(make_partitioner(config_.partitioner, config_.nodes,
                                    config_.replication,
                                    config_.partition_seed)) {}

BackendServer::~BackendServer() { stop(0.0); }

void BackendServer::preload() {
  std::vector<NodeId> group(config_.replication);
  for (std::uint64_t key = 0; key < config_.items; ++key) {
    partitioner_->replica_group(key, group);
    if (std::find(group.begin(), group.end(), config_.node_id) != group.end()) {
      storage_.apply_put(key, make_value(key, config_.value_bytes),
                         /*version=*/1);
    }
  }
}

bool BackendServer::start() {
  preload();
  FrameLoop::Callbacks callbacks;
  callbacks.on_message = [this](ConnId conn, Message&& message) {
    handle(conn, std::move(message));
  };
  loop_.set_callbacks(std::move(callbacks));
  if (!loop_.listen(config_.address, config_.port)) return false;
  if (!loop_.start()) return false;
  SCP_LOG_INFO << "scp_backend node " << config_.node_id << " serving "
               << storage_.live_count() << " keys on " << config_.address
               << ":" << loop_.port();
  return true;
}

void BackendServer::stop(double drain_s) { loop_.stop(drain_s); }

ServerStats BackendServer::stats() const {
  ServerStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.redirects = redirects_.load(std::memory_order_relaxed);
  return stats;
}

void BackendServer::handle(ConnId conn, Message&& message) {
  switch (message.type) {
    case MsgType::kGet: {
      requests_.fetch_add(1, std::memory_order_relaxed);
      std::vector<NodeId> group(config_.replication);
      partitioner_->replica_group(message.key, group);
      if (std::find(group.begin(), group.end(), config_.node_id) ==
          group.end()) {
        redirects_.fetch_add(1, std::memory_order_relaxed);
        Message reply;
        reply.type = MsgType::kRedirect;
        reply.key = message.key;
        reply.node = group[0];
        loop_.send(conn, reply);
        return;
      }
      Message reply;
      reply.key = message.key;
      if (auto value = storage_.get(message.key); value.has_value()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kValue;
        reply.payload = std::move(*value);
      } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
        reply.type = MsgType::kMiss;
      }
      loop_.send(conn, reply);
      return;
    }
    case MsgType::kStats: {
      Message reply;
      reply.type = MsgType::kStatsReply;
      reply.stats = stats();
      loop_.send(conn, reply);
      return;
    }
    case MsgType::kPing: {
      Message reply;
      reply.type = MsgType::kPong;
      loop_.send(conn, reply);
      return;
    }
    default: {
      Message reply;
      reply.type = MsgType::kError;
      reply.key = message.key;
      reply.payload = "unexpected message type";
      loop_.send(conn, reply);
      return;
    }
  }
}

}  // namespace scp::net
