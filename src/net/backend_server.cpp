#include "net/backend_server.h"

#include <algorithm>
#include <charconv>
#include <functional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/log.h"
#include "replication/rebalance.h"

namespace scp::net {
namespace {

constexpr double kSweepIntervalS = 0.050;
constexpr double kReconnectBaseS = 0.050;
constexpr double kReconnectCapS = 1.0;
/// Repair/handoff frames deferred while a peer connection establishes; a
/// peer that stays down longer than this buffer's worth is healed later by
/// read-repair instead.
constexpr std::size_t kMaxQueuedPerPeer = 65536;

bool parse_endpoint(const std::string& text, std::string& host,
                    std::uint16_t& port) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return false;
  }
  unsigned value = 0;
  const char* begin = text.data() + colon + 1;
  const char* end = text.data() + text.size();
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc() || result.ptr != end || value > 65535) {
    return false;
  }
  host = text.substr(0, colon);
  port = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace

BackendServer::BackendServer(BackendConfig config)
    : config_(std::move(config)),
      partitioner_(make_partitioner(config_.partitioner, config_.nodes,
                                    config_.replication,
                                    config_.partition_seed)),
      pool_(ReactorPool::Options{
          .shards = config_.shards == 0 ? 1 : config_.shards,
          .force_fallback_accept = config_.force_fallback_accept,
          .reactor = config_.reactor,
          .busy_poll = config_.busy_poll}),
      clock_(config_.node_id),
      detector_(replication::FailureDetectorConfig{
          .interval_s = config_.fd_interval_s,
          .suspect_after_s = config_.fd_suspect_s,
          .timeout_s = config_.fd_timeout_s}) {}

BackendServer::~BackendServer() { stop(0.0); }

void BackendServer::preload() {
  std::vector<NodeId> group(config_.replication);
  for (std::uint64_t key = 0; key < config_.items; ++key) {
    partitioner_->replica_group(key, group);
    if (std::find(group.begin(), group.end(), config_.node_id) != group.end()) {
      // Version 1 loses last-writer-wins to any minted version (the clock's
      // first is (1 << kNodeBits) | node), so every real write supersedes
      // the preload on every replica.
      storage_.apply_put(key, make_value(key, config_.value_bytes),
                         /*version=*/1);
    }
  }
}

std::uint32_t BackendServer::write_quorum_need() const noexcept {
  const std::uint32_t d = config_.replication;
  if (!peers_configured_.load(std::memory_order_relaxed)) return 1;
  const std::uint32_t w =
      config_.write_quorum != 0 ? config_.write_quorum : d / 2 + 1;
  return std::clamp<std::uint32_t>(w, 1, d);
}

std::uint32_t BackendServer::read_quorum_need() const noexcept {
  const std::uint32_t d = config_.replication;
  if (!peers_configured_.load(std::memory_order_relaxed)) return 1;
  const std::uint32_t r =
      config_.read_quorum != 0 ? config_.read_quorum : d / 2 + 1;
  return std::clamp<std::uint32_t>(r, 1, d);
}

bool BackendServer::in_group(const std::vector<NodeId>& group) const noexcept {
  return std::find(group.begin(), group.end(), config_.node_id) != group.end();
}

bool BackendServer::start() {
  preload();
  if (config_.detect) {
    if (config_.detect_k == 0) config_.detect_k = 16;
    const std::size_t slots = config_.detect_capacity != 0
                                  ? config_.detect_capacity
                                  : std::size_t{8} * config_.detect_k;
    hot_detector_ =
        std::make_unique<detect::HotKeyDetector>(slots, config_.detect_k);
    hot_agg_ = detect::HotKeyAggregator(detect::HotKeyAggregator::Options{
        .hot_fraction = config_.detect_hot_fraction,
        .drop_ratio = 0.5,
        .min_samples = config_.detect_min_samples});
  }
  shards_.clear();
  for (std::size_t k = 0; k < pool_.shards(); ++k) {
    auto shard = std::make_unique<Shard>();
    shard->index = k;
    shard->loop = &pool_.shard(k);
    shard->group.resize(config_.replication);

    Shard* s = shard.get();
    Reactor::Callbacks callbacks;
    callbacks.on_message = [this, s](ConnId conn, Message&& message) {
      handle(*s, conn, std::move(message));
    };
    callbacks.on_close = [this, s](ConnId conn) { on_conn_close(*s, conn); };
    callbacks.on_connect = [this, s](ConnId conn, bool ok) {
      on_conn_connect(*s, conn, ok);
    };
    s->loop->set_callbacks(std::move(callbacks));

    if (config_.metrics) {
      auto registry = std::make_unique<obs::MetricsRegistry>();
      service_us_.push_back(&registry->timer("backend.service_us"));
      write_us_.push_back(&registry->timer("backend.write_quorum_us"));
      quorum_read_us_.push_back(&registry->timer("backend.read_quorum_us"));
      if (k == 0) {
        // Shared storage — recorded once so the merged gauge is the key
        // count, not shards × keys.
        registry->gauge("backend.keys")
            .set(static_cast<std::int64_t>(storage_.live_count()));
      }
      s->loop->set_metrics(registry.get());
      registries_.push_back(std::move(registry));
    }
    s->loop->run_after(kSweepIntervalS, [this, s] { sweep_ops(*s); });
    if (config_.detect && k == 0) {
      s->loop->run_after(config_.detect_interval_s, [this] { hot_tick(); });
    }
    shards_.push_back(std::move(shard));
  }
  if (!pool_.listen(config_.address, config_.port)) return false;
  if (config_.metrics_port >= 0) {
    metrics_http_ = std::make_unique<obs::MetricsHttpServer>(
        [this] { return metrics_snapshot(); });
    if (!metrics_http_->start(
            static_cast<std::uint16_t>(config_.metrics_port))) {
      SCP_LOG_ERROR << "scp_backend: failed to bind metrics port "
                    << config_.metrics_port;
      return false;
    }
  }
  if (!pool_.start()) return false;
  if (!config_.peers.empty()) {
    set_peers(std::vector<std::pair<std::string, std::uint16_t>>(
        config_.peers));
  }
  SCP_LOG_INFO << "scp_backend node " << config_.node_id << " serving "
               << storage_.live_count() << " keys on " << config_.address
               << ":" << pool_.port() << " (" << pool_.shards() << " shard"
               << (pool_.shards() == 1 ? "" : "s")
               << (peers_configured_.load() ? ", replicated" : "") << ")";
  return true;
}

void BackendServer::stop(double drain_s) {
  stopping_.store(true);
  pool_.stop(drain_s);
  if (metrics_http_ != nullptr) {
    metrics_http_->stop();
  }
}

void BackendServer::set_peers(
    std::vector<std::pair<std::string, std::uint16_t>> endpoints) {
  if (shards_.empty()) {
    // Before start(): stash in the config; start() re-enters here.
    config_.peers = std::move(endpoints);
    return;
  }
  std::uint32_t targets = 0;
  for (std::uint32_t node = 0; node < endpoints.size(); ++node) {
    if (node == config_.node_id || endpoints[node].first.empty()) continue;
    ++targets;
  }
  peers_configured_.store(targets > 0, std::memory_order_release);
  peer_target_ = targets;

  membership_.add_node(config_.node_id);
  for (std::uint32_t node = 0; node < endpoints.size(); ++node) {
    if (node == config_.node_id || endpoints[node].first.empty()) continue;
    membership_.add_node(node);
  }

  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->loop->post([this, s, endpoints] {
      for (std::uint32_t node = 0; node < endpoints.size(); ++node) {
        if (node == config_.node_id || endpoints[node].first.empty()) continue;
        if (s->peers.size() <= node) s->peers.resize(node + 1);
        PeerState& peer = s->peers[node];
        if (peer.conn != kInvalidConn && peer.address == endpoints[node].first &&
            peer.port == endpoints[node].second) {
          continue;  // already wired
        }
        peer.address = endpoints[node].first;
        peer.port = endpoints[node].second;
        peer.left = false;
        if (peer.conn == kInvalidConn) {
          peer.conn = s->loop->connect(peer.address, peer.port);
          s->peer_by_conn[peer.conn] = node;
        }
      }
    });
  }

  Shard* s0 = shards_[0].get();
  s0->loop->post([this, endpoints] {
    for (std::uint32_t node = 0; node < endpoints.size(); ++node) {
      if (node == config_.node_id || endpoints[node].first.empty()) continue;
      if (!detector_.tracks(node)) detector_.add_node(node, now_s());
    }
    if (!detector_running_.exchange(true)) {
      detector_tick();
    }
  });
}

bool BackendServer::wait_peers_up(double timeout_s) const {
  const std::uint64_t want =
      static_cast<std::uint64_t>(peer_target_) * shards_.size();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (true) {
    std::uint64_t up = 0;
    for (const auto& shard : shards_) {
      up += shard->peers_up.load(std::memory_order_relaxed);
    }
    if (up >= want) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

ServerStats BackendServer::stats() const {
  ServerStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.redirects = redirects_.load(std::memory_order_relaxed);
  stats.puts = puts_.load(std::memory_order_relaxed);
  stats.deletes = deletes_.load(std::memory_order_relaxed);
  stats.replications = replications_.load(std::memory_order_relaxed);
  return stats;
}

obs::MetricsSnapshot BackendServer::metrics_snapshot() const {
  std::vector<obs::MetricsSnapshot> shards;
  shards.reserve(registries_.size());
  for (std::size_t k = 0; k < registries_.size(); ++k) {
    obs::MetricsSnapshot snap = registries_[k]->snapshot();
    const ReactorCounters& loop = pool_.shard(k).counters();
    snap.counters["loop.syscalls"] =
        loop.syscalls.load(std::memory_order_relaxed);
    snap.counters["loop.wakeups"] =
        loop.wakeups.load(std::memory_order_relaxed);
    snap.counters["loop.frames_in"] =
        loop.frames_in.load(std::memory_order_relaxed);
    snap.counters["loop.frames_out"] =
        loop.frames_out.load(std::memory_order_relaxed);
    snap.counters["loop.buf_starved"] =
        loop.buf_starved.load(std::memory_order_relaxed);
    shards.push_back(std::move(snap));
  }
  obs::MetricsSnapshot snap = merge_shard_snapshots("backend", shards);
  const ServerStats s = stats();
  snap.counters["backend.requests"] = s.requests;
  snap.counters["backend.hits"] = s.hits;
  snap.counters["backend.misses"] = s.misses;
  snap.counters["backend.redirects"] = s.redirects;
  snap.counters["backend.puts"] = s.puts;
  snap.counters["backend.deletes"] = s.deletes;
  snap.counters["backend.replications"] = s.replications;
  snap.counters["backend.quorum_gets"] =
      quorum_gets_.load(std::memory_order_relaxed);
  snap.counters["backend.quorum_failures"] =
      quorum_failures_.load(std::memory_order_relaxed);
  snap.counters["backend.read_repairs"] =
      read_repairs_.load(std::memory_order_relaxed);
  snap.counters["backend.rebalanced_keys"] =
      rebalanced_keys_.load(std::memory_order_relaxed);
  snap.gauges["backend.peers_alive"] =
      static_cast<std::int64_t>(membership_.alive_count());
  snap.gauges["backend.membership_epoch"] =
      static_cast<std::int64_t>(membership_.epoch());
  if (config_.detect) {
    snap.counters["detect.observed"] =
        hot_observed_.load(std::memory_order_relaxed);
    snap.counters["detect.reports_sent"] =
        hot_reports_sent_.load(std::memory_order_relaxed);
    snap.counters["detect.reports_received"] =
        hot_reports_received_.load(std::memory_order_relaxed);
    snap.counters["detect.flagged_keys"] =
        hot_flagged_.load(std::memory_order_relaxed);
    {
      std::lock_guard lock(hot_agg_mutex_);
      snap.gauges["detect.hot_keys"] =
          static_cast<std::int64_t>(hot_agg_.hot().size());
    }
    if (hot_detector_ != nullptr) {
      std::lock_guard lock(hot_mutex_);
      snap.gauges["detect.sketch_keys"] =
          static_cast<std::int64_t>(hot_detector_->monitored_keys());
    }
  }
  return snap;
}

std::uint16_t BackendServer::metrics_http_port() const noexcept {
  return metrics_http_ != nullptr ? metrics_http_->port() : 0;
}

std::optional<StorageEngine::Entry> BackendServer::storage_entry(
    KeyId key) const {
  std::shared_lock lock(storage_mutex_);
  return storage_.get_entry(key);
}

void BackendServer::handle(Shard& shard, ConnId conn, Message&& message) {
  auto it = shard.peer_by_conn.find(conn);
  if (it != shard.peer_by_conn.end()) {
    handle_peer_reply(shard, it->second, std::move(message));
    return;
  }
  switch (message.type) {
    case MsgType::kGet:
      handle_get(shard, conn, message);
      return;
    case MsgType::kBatchGet:
      handle_batch_get(shard, conn, message);
      return;
    case MsgType::kPut:
    case MsgType::kDelete:
      handle_write(shard, conn, message);
      return;
    case MsgType::kQuorumGet:
      handle_quorum_get(shard, conn, message);
      return;
    case MsgType::kReplicate:
      handle_replicate(shard, conn, message);
      return;
    case MsgType::kVerRead:
      handle_ver_read(shard, conn, message);
      return;
    case MsgType::kJoin:
      handle_join(shard, conn, message);
      return;
    case MsgType::kLeave:
      handle_leave(shard, conn, message);
      return;
    case MsgType::kHotKeyReport:
      // Gossip from a peer (it arrives on the conn the peer dialed to us,
      // never on our reply-FIFO outbound conns). One-way: no reply.
      handle_hot_report(message);
      return;
    case MsgType::kHotKeySubscribe:
      // Deliberately unacked (see wire.h): the subscriber's reply-FIFO
      // matching must not see a frame it never owed.
      if (config_.detect &&
          std::find(shard.hot_subs.begin(), shard.hot_subs.end(), conn) ==
              shard.hot_subs.end()) {
        shard.hot_subs.push_back(conn);
      }
      return;
    case MsgType::kStats: {
      Message reply;
      reply.type = MsgType::kStatsReply;
      reply.stats = stats();
      shard.loop->send(conn, reply);
      return;
    }
    case MsgType::kMetricsRequest: {
      Message reply;
      reply.type = MsgType::kMetricsReply;
      reply.metrics = metrics_snapshot();
      shard.loop->send(conn, reply);
      return;
    }
    case MsgType::kPing: {
      Message reply;
      reply.type = MsgType::kPong;
      shard.loop->send(conn, reply);
      return;
    }
    default: {
      Message reply;
      reply.type = MsgType::kError;
      reply.key = message.key;
      reply.payload = "unexpected message type";
      shard.loop->send(conn, reply);
      return;
    }
  }
}

void BackendServer::handle_get(Shard& shard, ConnId conn,
                               const Message& message) {
  obs::Timer* service_us =
      shard.index < service_us_.size() ? service_us_[shard.index] : nullptr;
  const std::uint64_t start_ns = service_us != nullptr ? obs::now_ns() : 0;
  requests_.fetch_add(1, std::memory_order_relaxed);
  {
    std::shared_lock lock(partitioner_mutex_);
    shard.group.resize(partitioner_->replication());
    partitioner_->replica_group(message.key, shard.group);
  }
  if (!in_group(shard.group)) {
    redirects_.fetch_add(1, std::memory_order_relaxed);
    Message reply;
    reply.type = MsgType::kRedirect;
    reply.key = message.key;
    reply.node = shard.group[0];
    shard.loop->send(conn, reply);
    obs::record_elapsed(service_us, start_ns, /*divisor=*/1'000);
    return;
  }
  if (hot_detector_ != nullptr) {
    // Every served GET feeds the heavy-hitter sketch — this stream *is* the
    // front-end miss stream, which is where a miss-flood attack lives.
    hot_observed_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(hot_mutex_);
    hot_detector_->observe(message.key);
  }
  Message reply;
  reply.key = message.key;
  std::optional<std::string> value;
  {
    std::shared_lock lock(storage_mutex_);
    value = storage_.get(message.key);
  }
  if (value.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    reply.type = MsgType::kValue;
    reply.payload = std::move(*value);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    reply.type = MsgType::kMiss;
  }
  shard.loop->send(conn, reply);
  obs::record_elapsed(service_us, start_ns, /*divisor=*/1'000);
}

void BackendServer::handle_batch_get(Shard& shard, ConnId conn,
                                     const Message& message) {
  obs::Timer* service_us =
      shard.index < service_us_.size() ? service_us_[shard.index] : nullptr;
  const std::uint64_t start_ns = service_us != nullptr ? obs::now_ns() : 0;
  requests_.fetch_add(message.batch_keys.size(), std::memory_order_relaxed);

  Message reply;
  reply.type = MsgType::kBatchReply;
  reply.batch.resize(message.batch_keys.size());

  // Ownership pass: one partitioner lock for the whole batch.
  {
    std::shared_lock lock(partitioner_mutex_);
    shard.group.resize(partitioner_->replication());
    for (std::size_t i = 0; i < message.batch_keys.size(); ++i) {
      BatchItem& item = reply.batch[i];
      item.key = message.batch_keys[i];
      partitioner_->replica_group(item.key, shard.group);
      if (in_group(shard.group)) {
        item.type = MsgType::kMiss;  // provisional; storage pass may upgrade
      } else {
        item.type = MsgType::kRedirect;
        item.node = shard.group[0];
      }
    }
  }
  std::size_t served = 0;
  for (const BatchItem& item : reply.batch) {
    if (item.type != MsgType::kRedirect) ++served;
  }
  redirects_.fetch_add(reply.batch.size() - served, std::memory_order_relaxed);

  if (hot_detector_ != nullptr && served > 0) {
    // The served stream feeds the heavy-hitter sketch exactly as on the
    // single-GET path, under one lock acquisition for the batch.
    hot_observed_.fetch_add(served, std::memory_order_relaxed);
    std::lock_guard lock(hot_mutex_);
    for (const BatchItem& item : reply.batch) {
      if (item.type != MsgType::kRedirect) hot_detector_->observe(item.key);
    }
  }

  // Storage pass: one shared lock for every lookup.
  std::uint64_t hit = 0;
  std::uint64_t missed = 0;
  {
    std::shared_lock lock(storage_mutex_);
    for (BatchItem& item : reply.batch) {
      if (item.type == MsgType::kRedirect) continue;
      if (auto value = storage_.get(item.key); value.has_value()) {
        item.type = MsgType::kValue;
        item.payload = std::move(*value);
        ++hit;
      } else {
        ++missed;
      }
    }
  }
  hits_.fetch_add(hit, std::memory_order_relaxed);
  misses_.fetch_add(missed, std::memory_order_relaxed);

  shard.loop->send(conn, reply);
  obs::record_elapsed(service_us, start_ns, /*divisor=*/1'000);
}

void BackendServer::handle_write(Shard& shard, ConnId conn,
                                 const Message& message) {
  const bool is_delete = message.type == MsgType::kDelete;
  (is_delete ? deletes_ : puts_).fetch_add(1, std::memory_order_relaxed);
  obs::Timer* write_us =
      shard.index < write_us_.size() ? write_us_[shard.index] : nullptr;
  const std::uint64_t start_ns = write_us != nullptr ? obs::now_ns() : 0;

  {
    std::shared_lock lock(partitioner_mutex_);
    shard.group.resize(partitioner_->replication());
    partitioner_->replica_group(message.key, shard.group);
  }
  const bool self_in = in_group(shard.group);
  const bool meshed = peers_configured_.load(std::memory_order_acquire);
  if (!self_in && !meshed) {
    // Without a replica mesh this node cannot reach the owners; bounce the
    // caller exactly like a misrouted GET.
    redirects_.fetch_add(1, std::memory_order_relaxed);
    Message reply;
    reply.type = MsgType::kRedirect;
    reply.key = message.key;
    reply.node = shard.group[0];
    shard.loop->send(conn, reply);
    return;
  }

  const std::uint64_t version = clock_.next();
  std::uint32_t acked = 0;
  std::uint32_t outstanding = 0;
  if (self_in) {
    std::unique_lock lock(storage_mutex_);
    if (is_delete) {
      storage_.apply_erase(message.key, version);
    } else {
      storage_.apply_put(message.key, message.payload, version);
    }
    acked = 1;
    outstanding = 1;
  }

  const std::uint64_t op_id = shard.next_op++;
  if (meshed) {
    Message replicate;
    replicate.type = MsgType::kReplicate;
    replicate.key = message.key;
    replicate.version = version;
    replicate.flags = is_delete ? kFlagTombstone : 0;
    replicate.payload = message.payload;
    for (const NodeId node : shard.group) {
      if (node == config_.node_id) continue;
      if (!membership_.alive(node)) continue;
      if (send_to_peer(shard, node, replicate, Expect::kRepAck, op_id,
                       /*queue_if_down=*/false)) {
        ++outstanding;
      }
    }
  }

  Op op;
  op.client = conn;
  op.kind = message.type;
  op.key = message.key;
  op.version = version;
  op.start_ns = start_ns;
  op.write.emplace(write_quorum_need(), outstanding);
  for (std::uint32_t i = 0; i < acked; ++i) op.write->on_ack();

  switch (op.write->state()) {
    case replication::QuorumState::kDone:
      resolve_write(shard, op_id, op);
      return;
    case replication::QuorumState::kFailed:
      fail_op(shard, op, "write quorum unavailable");
      return;
    case replication::QuorumState::kPending:
      op.deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(config_.op_timeout_s));
      shard.ops.emplace(op_id, std::move(op));
      return;
  }
}

void BackendServer::handle_quorum_get(Shard& shard, ConnId conn,
                                      const Message& message) {
  quorum_gets_.fetch_add(1, std::memory_order_relaxed);
  obs::Timer* read_us = shard.index < quorum_read_us_.size()
                            ? quorum_read_us_[shard.index]
                            : nullptr;
  const std::uint64_t start_ns = read_us != nullptr ? obs::now_ns() : 0;

  {
    std::shared_lock lock(partitioner_mutex_);
    shard.group.resize(partitioner_->replication());
    partitioner_->replica_group(message.key, shard.group);
  }
  const bool self_in = in_group(shard.group);
  const bool meshed = peers_configured_.load(std::memory_order_acquire);
  if (!self_in && !meshed) {
    Message reply;
    reply.type = MsgType::kRedirect;
    reply.key = message.key;
    reply.node = shard.group[0];
    redirects_.fetch_add(1, std::memory_order_relaxed);
    shard.loop->send(conn, reply);
    return;
  }

  std::uint32_t outstanding = self_in ? 1 : 0;
  const std::uint64_t op_id = shard.next_op++;
  if (meshed) {
    Message probe;
    probe.type = MsgType::kVerRead;
    probe.key = message.key;
    for (const NodeId node : shard.group) {
      if (node == config_.node_id) continue;
      if (!membership_.alive(node)) continue;
      if (send_to_peer(shard, node, probe, Expect::kVerValue, op_id,
                       /*queue_if_down=*/false)) {
        ++outstanding;
      }
    }
  }

  Op op;
  op.client = conn;
  op.kind = MsgType::kQuorumGet;
  op.key = message.key;
  op.start_ns = start_ns;
  op.read.emplace(read_quorum_need(), outstanding);
  if (self_in) {
    replication::ReadResponse response;
    response.node = config_.node_id;
    std::optional<StorageEngine::Entry> entry = storage_entry(message.key);
    if (entry.has_value()) {
      response.found = true;
      response.tombstone = entry->tombstone;
      response.version = entry->version;
      if (!entry->tombstone) response.value = std::move(entry->value);
    }
    op.read->on_response(std::move(response));
  }

  switch (op.read->state()) {
    case replication::QuorumState::kDone:
      resolve_read(shard, op_id, op);
      return;
    case replication::QuorumState::kFailed:
      fail_op(shard, op, "read quorum unavailable");
      return;
    case replication::QuorumState::kPending:
      op.deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(config_.op_timeout_s));
      shard.ops.emplace(op_id, std::move(op));
      return;
  }
}

void BackendServer::handle_replicate(Shard& shard, ConnId conn,
                                     const Message& message) {
  replications_.fetch_add(1, std::memory_order_relaxed);
  clock_.observe(message.version);
  bool applied = false;
  {
    std::unique_lock lock(storage_mutex_);
    if ((message.flags & kFlagTombstone) != 0) {
      applied = storage_.apply_erase(message.key, message.version);
    } else {
      applied = storage_.apply_put(message.key, message.payload,
                                   message.version);
    }
  }
  Message reply;
  reply.type = MsgType::kRepAck;
  reply.key = message.key;
  reply.version = message.version;
  reply.flags = applied ? kFlagApplied : 0;
  shard.loop->send(conn, reply);
}

void BackendServer::handle_ver_read(Shard& shard, ConnId conn,
                                    const Message& message) {
  Message reply;
  reply.type = MsgType::kVerValue;
  reply.key = message.key;
  std::optional<StorageEngine::Entry> entry = storage_entry(message.key);
  if (entry.has_value()) {
    reply.version = entry->version;
    reply.flags = kFlagFound;
    if (entry->tombstone) {
      reply.flags |= kFlagTombstone;
    } else {
      reply.payload = std::move(entry->value);
    }
  }
  shard.loop->send(conn, reply);
}

bool BackendServer::send_to_peer(Shard& shard, std::uint32_t node,
                                 const Message& message, Expect expect,
                                 std::uint64_t op, bool queue_if_down) {
  if (node >= shard.peers.size()) return false;
  PeerState& peer = shard.peers[node];
  if (peer.left || peer.address.empty()) return false;
  if (peer.up) {
    if (!shard.loop->send(peer.conn, message)) return false;
    peer.expected.push_back({op, expect, message.key});
    return true;
  }
  if (queue_if_down && peer.queued.size() < kMaxQueuedPerPeer) {
    peer.queued.push_back(message);
    return true;
  }
  return false;
}

void BackendServer::handle_peer_reply(Shard& shard, std::uint32_t node,
                                      Message&& message) {
  PeerState& peer = shard.peers[node];
  if (peer.expected.empty()) {
    SCP_LOG_WARN << "scp_backend: unsolicited reply from peer " << node
                 << "; resetting connection";
    shard.loop->close_connection(peer.conn);
    return;
  }
  ExpectedReply expected = peer.expected.front();
  peer.expected.pop_front();

  const auto protocol_error = [&] {
    SCP_LOG_WARN << "scp_backend: reply mismatch from peer " << node
                 << "; resetting connection";
    apply_peer_loss(shard, expected);
    shard.loop->close_connection(peer.conn);
  };

  switch (expected.kind) {
    case Expect::kPong: {
      if (message.type != MsgType::kPong) {
        protocol_error();
        return;
      }
      if (shard.index == 0 && detector_running_.load()) {
        if (detector_.record_pong(node, now_s()) ==
            replication::PingFailureDetector::Transition::kRecovered) {
          membership_.set_state(node, replication::NodeState::kUp);
        }
      }
      return;
    }
    case Expect::kRepairAck: {
      if (message.type == MsgType::kError) return;  // healed later by repair
      if (message.type != MsgType::kRepAck || message.key != expected.key) {
        protocol_error();
        return;
      }
      clock_.observe(message.version);
      return;
    }
    case Expect::kRepAck: {
      if (message.type == MsgType::kError) {
        apply_peer_loss(shard, expected);
        return;
      }
      if (message.type != MsgType::kRepAck || message.key != expected.key) {
        protocol_error();
        return;
      }
      clock_.observe(message.version);
      auto it = shard.ops.find(expected.op);
      if (it == shard.ops.end()) return;  // already resolved or swept
      Op& op = it->second;
      if (!op.write.has_value()) return;
      switch (op.write->on_ack()) {
        case replication::QuorumState::kDone:
          resolve_write(shard, it->first, op);
          shard.ops.erase(it);
          return;
        case replication::QuorumState::kFailed:
          fail_op(shard, op, "write quorum unavailable");
          shard.ops.erase(it);
          return;
        case replication::QuorumState::kPending:
          return;
      }
      return;
    }
    case Expect::kVerValue: {
      if (message.type == MsgType::kError) {
        apply_peer_loss(shard, expected);
        return;
      }
      if (message.type != MsgType::kVerValue || message.key != expected.key) {
        protocol_error();
        return;
      }
      clock_.observe(message.version);
      auto it = shard.ops.find(expected.op);
      if (it == shard.ops.end()) return;
      Op& op = it->second;
      if (!op.read.has_value()) return;
      replication::ReadResponse response;
      response.node = node;
      response.found = (message.flags & kFlagFound) != 0;
      response.tombstone = (message.flags & kFlagTombstone) != 0;
      response.version = message.version;
      response.value = std::move(message.payload);
      switch (op.read->on_response(std::move(response))) {
        case replication::QuorumState::kDone:
          resolve_read(shard, it->first, op);
          shard.ops.erase(it);
          return;
        case replication::QuorumState::kFailed:
          fail_op(shard, op, "read quorum unavailable");
          shard.ops.erase(it);
          return;
        case replication::QuorumState::kPending:
          return;
      }
      return;
    }
  }
}

void BackendServer::apply_peer_loss(Shard& shard,
                                    const ExpectedReply& expected) {
  if (expected.op == 0) return;
  auto it = shard.ops.find(expected.op);
  if (it == shard.ops.end()) return;
  Op& op = it->second;
  const replication::QuorumState state =
      op.write.has_value() ? op.write->on_lost() : op.read->on_lost();
  switch (state) {
    case replication::QuorumState::kDone:
      if (op.write.has_value()) {
        resolve_write(shard, it->first, op);
      } else {
        resolve_read(shard, it->first, op);
      }
      shard.ops.erase(it);
      return;
    case replication::QuorumState::kFailed:
      fail_op(shard, op,
              op.write.has_value() ? "write quorum unavailable"
                                   : "read quorum unavailable");
      shard.ops.erase(it);
      return;
    case replication::QuorumState::kPending:
      return;
  }
}

void BackendServer::resolve_write(Shard& shard, std::uint64_t /*op_id*/,
                                  Op& op) {
  Message reply;
  reply.type = MsgType::kWriteReply;
  reply.key = op.key;
  reply.version = op.version;
  shard.loop->send(op.client, reply);
  obs::Timer* write_us =
      shard.index < write_us_.size() ? write_us_[shard.index] : nullptr;
  obs::record_elapsed(write_us, op.start_ns, /*divisor=*/1'000);
}

void BackendServer::resolve_read(Shard& shard, std::uint64_t /*op_id*/,
                                 Op& op) {
  const replication::ReadResponse* winner = op.read->newest();
  Message reply;
  reply.key = op.key;
  if (winner != nullptr && !winner->tombstone) {
    reply.type = MsgType::kValue;
    reply.payload = winner->value;
  } else {
    reply.type = MsgType::kMiss;
  }
  shard.loop->send(op.client, reply);
  obs::Timer* read_us = shard.index < quorum_read_us_.size()
                            ? quorum_read_us_[shard.index]
                            : nullptr;
  obs::record_elapsed(read_us, op.start_ns, /*divisor=*/1'000);

  if (winner == nullptr) return;
  // Read-repair: push the winner to every responder that answered with an
  // older version (idempotent LWW apply — duplicates are no-ops).
  Message repair;
  repair.type = MsgType::kReplicate;
  repair.key = op.key;
  repair.version = winner->version;
  repair.flags = winner->tombstone ? kFlagTombstone : 0;
  repair.payload = winner->value;
  for (const NodeId node : op.read->stale_nodes()) {
    read_repairs_.fetch_add(1, std::memory_order_relaxed);
    if (node == config_.node_id) {
      std::unique_lock lock(storage_mutex_);
      if (winner->tombstone) {
        storage_.apply_erase(op.key, winner->version);
      } else {
        storage_.apply_put(op.key, winner->value, winner->version);
      }
    } else {
      send_to_peer(shard, node, repair, Expect::kRepairAck, 0,
                   /*queue_if_down=*/true);
    }
  }
}

void BackendServer::fail_op(Shard& shard, Op& op, const char* reason) {
  quorum_failures_.fetch_add(1, std::memory_order_relaxed);
  Message reply;
  reply.type = MsgType::kError;
  reply.key = op.key;
  reply.payload = reason;
  shard.loop->send(op.client, reply);
}

void BackendServer::sweep_ops(Shard& shard) {
  if (stopping_.load()) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto it = shard.ops.begin(); it != shard.ops.end();) {
    if (it->second.deadline <= now) {
      fail_op(shard, it->second, "quorum op timed out");
      it = shard.ops.erase(it);
    } else {
      ++it;
    }
  }
  Shard* s = &shard;
  shard.loop->run_after(kSweepIntervalS, [this, s] { sweep_ops(*s); });
}

void BackendServer::on_conn_close(Shard& shard, ConnId conn) {
  if (!shard.hot_subs.empty()) {
    std::erase(shard.hot_subs, conn);
  }
  auto it = shard.peer_by_conn.find(conn);
  if (it == shard.peer_by_conn.end()) {
    return;  // client hung up; their pending replies fail at send()
  }
  const std::uint32_t node = it->second;
  shard.peer_by_conn.erase(it);
  PeerState& peer = shard.peers[node];
  if (peer.up) {
    peer.up = false;
    shard.peers_up.fetch_sub(1, std::memory_order_relaxed);
  }
  peer.conn = kInvalidConn;

  std::deque<ExpectedReply> orphaned;
  orphaned.swap(peer.expected);
  for (const ExpectedReply& expected : orphaned) {
    apply_peer_loss(shard, expected);
  }
  if (!peer.left) schedule_reconnect(shard, node);
}

void BackendServer::on_conn_connect(Shard& shard, ConnId conn, bool ok) {
  auto it = shard.peer_by_conn.find(conn);
  if (it == shard.peer_by_conn.end()) return;
  const std::uint32_t node = it->second;
  PeerState& peer = shard.peers[node];
  if (!ok) {
    shard.peer_by_conn.erase(it);
    peer.conn = kInvalidConn;
    if (!peer.left) schedule_reconnect(shard, node);
    return;
  }
  peer.up = true;
  peer.connect_attempts = 0;
  shard.peers_up.fetch_add(1, std::memory_order_relaxed);
  // Flush deferred repair/handoff frames in order.
  std::vector<Message> queued;
  queued.swap(peer.queued);
  for (const Message& message : queued) {
    if (!shard.loop->send(peer.conn, message)) break;
    peer.expected.push_back({0, Expect::kRepairAck, message.key});
  }
}

void BackendServer::schedule_reconnect(Shard& shard, std::uint32_t node) {
  if (stopping_.load()) return;
  PeerState& peer = shard.peers[node];
  const double delay =
      std::min(kReconnectBaseS * static_cast<double>(
                                     1u << std::min(peer.connect_attempts, 10u)),
               kReconnectCapS);
  peer.connect_attempts++;
  Shard* s = &shard;
  shard.loop->run_after(delay, [this, s, node] {
    if (stopping_.load()) return;
    if (node >= s->peers.size()) return;
    PeerState& target = s->peers[node];
    if (target.left || target.conn != kInvalidConn) return;
    target.conn = s->loop->connect(target.address, target.port);
    s->peer_by_conn[target.conn] = node;
  });
}

void BackendServer::detector_tick() {
  if (stopping_.load() || shards_.empty()) return;
  Shard& shard = *shards_[0];
  std::vector<NodeId> to_ping;
  for (const auto& event : detector_.tick(now_s(), &to_ping)) {
    switch (event.transition) {
      case replication::PingFailureDetector::Transition::kSuspect:
        membership_.set_state(event.node, replication::NodeState::kSuspect);
        break;
      case replication::PingFailureDetector::Transition::kDown:
        membership_.set_state(event.node, replication::NodeState::kDown);
        break;
      default:
        break;
    }
  }
  Message ping;
  ping.type = MsgType::kPing;
  for (const NodeId node : to_ping) {
    send_to_peer(shard, node, ping, Expect::kPong, 0, /*queue_if_down=*/false);
  }
  shard.loop->run_after(config_.fd_interval_s, [this] { detector_tick(); });
}

void BackendServer::hot_tick() {
  if (stopping_.load() || shards_.empty() || hot_detector_ == nullptr) return;
  Shard& shard = *shards_[0];
  detect::HotKeyReport report;
  {
    std::lock_guard lock(hot_mutex_);
    report = hot_detector_->report(config_.node_id);
    // Age the sketch every tick so the report window is roughly exponential
    // — an adversary that shifts its key set stops dominating the sketch
    // within a few intervals instead of coasting on stale counts.
    hot_detector_->age();
  }
  if (report.total > 0) {
    absorb_hot_report(report);
    Message message;
    message.type = MsgType::kHotKeyReport;
    message.hot = std::move(report);
    // Gossip to alive mesh peers. One-way: no expected-reply registration,
    // so the frame rides the FIFO reply-matched connection without ever
    // entering its match queue.
    for (std::uint32_t node = 0; node < shard.peers.size(); ++node) {
      const PeerState& peer = shard.peers[node];
      if (!peer.up || peer.left) continue;
      if (!membership_.alive(node)) continue;
      if (shard.loop->send(peer.conn, message)) {
        hot_reports_sent_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Push to subscribed front ends; subscriptions live per shard.
    for (auto& other : shards_) {
      Shard* s = other.get();
      auto push = [this, s, message] {
        for (const ConnId conn : s->hot_subs) {
          if (s->loop->send(conn, message)) {
            hot_reports_sent_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      };
      if (s == &shard) {
        push();
      } else {
        s->loop->post(std::move(push));
      }
    }
  }
  shard.loop->run_after(config_.detect_interval_s, [this] { hot_tick(); });
}

void BackendServer::handle_hot_report(const Message& message) {
  if (!config_.detect) return;  // peer detects, we don't: drop silently
  hot_reports_received_.fetch_add(1, std::memory_order_relaxed);
  absorb_hot_report(message.hot);
}

void BackendServer::absorb_hot_report(const detect::HotKeyReport& report) {
  std::lock_guard lock(hot_agg_mutex_);
  const std::vector<KeyId> newly = hot_agg_.update(report);
  if (!newly.empty()) {
    hot_flagged_.fetch_add(newly.size(), std::memory_order_relaxed);
  }
}

void BackendServer::stream_handoff(
    Shard& shard,
    const std::function<void(KeyId, std::span<NodeId>)>& old_group_of) {
  std::vector<KeyId> keys;
  {
    std::shared_lock lock(storage_mutex_);
    keys.reserve(storage_.entry_count());
    storage_.for_each_entry(
        [&keys](KeyId key, const StorageEngine::Entry&) {
          keys.push_back(key);
        });
  }
  std::vector<replication::HandoffItem> plan;
  {
    std::shared_lock lock(partitioner_mutex_);
    plan = replication::plan_handoff(
        old_group_of, *partitioner_, config_.node_id,
        [this](NodeId node) {
          return node == config_.node_id || membership_.alive(node);
        },
        keys);
  }
  for (const replication::HandoffItem& item : plan) {
    std::optional<StorageEngine::Entry> entry = storage_entry(item.key);
    if (!entry.has_value()) continue;
    Message replicate;
    replicate.type = MsgType::kReplicate;
    replicate.key = item.key;
    replicate.version = entry->version;
    replicate.flags = entry->tombstone ? kFlagTombstone : 0;
    if (!entry->tombstone) replicate.payload = std::move(entry->value);
    send_to_peer(shard, item.target, replicate, Expect::kRepairAck, 0,
                 /*queue_if_down=*/true);
  }
  rebalanced_keys_.fetch_add(plan.size(), std::memory_order_relaxed);
}

void BackendServer::handle_join(Shard& shard, ConnId conn,
                                const Message& message) {
  std::string host;
  std::uint16_t port = 0;
  if (!parse_endpoint(message.payload, host, port)) {
    Message reply;
    reply.type = MsgType::kError;
    reply.payload = "join: bad endpoint (want host:port)";
    shard.loop->send(conn, reply);
    return;
  }
  const NodeId node = message.node;
  std::shared_ptr<ConsistentHashRing> old_ring;
  {
    std::unique_lock lock(partitioner_mutex_);
    auto* ring = dynamic_cast<ConsistentHashRing*>(partitioner_.get());
    if (ring == nullptr) {
      lock.unlock();
      Message reply;
      reply.type = MsgType::kError;
      reply.payload = "join: requires the ring partitioner";
      shard.loop->send(conn, reply);
      return;
    }
    if (!ring->contains_node(node)) {
      old_ring = std::make_shared<ConsistentHashRing>(*ring);
      ring->add_node(node);
    }
  }

  membership_.add_node(node);
  for (auto& other : shards_) {
    Shard* s = other.get();
    auto wire = [this, s, node, host, port] {
      if (s->peers.size() <= node) s->peers.resize(node + 1);
      PeerState& peer = s->peers[node];
      peer.left = false;
      if (peer.conn != kInvalidConn && peer.address == host &&
          peer.port == port) {
        return;
      }
      peer.address = host;
      peer.port = port;
      if (peer.conn == kInvalidConn) {
        peer.conn = s->loop->connect(peer.address, peer.port);
        s->peer_by_conn[peer.conn] = node;
      }
    };
    if (s == &shard) {
      wire();
    } else {
      s->loop->post(wire);
    }
  }
  {
    Shard* s0 = shards_[0].get();
    auto track = [this, node] {
      if (!detector_.tracks(node)) detector_.add_node(node, now_s());
    };
    if (s0 == &shard) {
      track();
    } else {
      s0->loop->post(track);
    }
  }
  peers_configured_.store(true, std::memory_order_release);

  if (old_ring != nullptr) {
    stream_handoff(shard, [old_ring](KeyId key, std::span<NodeId> out) {
      old_ring->replica_group(key, out);
    });
  }
  Message reply;
  reply.type = MsgType::kWriteReply;
  reply.version = membership_.epoch();
  shard.loop->send(conn, reply);
}

void BackendServer::handle_leave(Shard& shard, ConnId conn,
                                 const Message& message) {
  const NodeId node = message.node;
  std::shared_ptr<ConsistentHashRing> old_ring;
  {
    std::unique_lock lock(partitioner_mutex_);
    auto* ring = dynamic_cast<ConsistentHashRing*>(partitioner_.get());
    if (ring == nullptr) {
      lock.unlock();
      Message reply;
      reply.type = MsgType::kError;
      reply.payload = "leave: requires the ring partitioner";
      shard.loop->send(conn, reply);
      return;
    }
    if (ring->contains_node(node)) {
      if (ring->node_count() <= ring->replication()) {
        lock.unlock();
        Message reply;
        reply.type = MsgType::kError;
        reply.payload = "leave: too few nodes left for the replication factor";
        shard.loop->send(conn, reply);
        return;
      }
      old_ring = std::make_shared<ConsistentHashRing>(*ring);
      ring->remove_node(node);
    }
  }

  membership_.remove_node(node);
  for (auto& other : shards_) {
    Shard* s = other.get();
    auto unwire = [this, s, node] {
      if (node >= s->peers.size()) return;
      PeerState& peer = s->peers[node];
      peer.left = true;
      if (peer.conn != kInvalidConn) {
        s->loop->close_connection(peer.conn);  // on_close drops its queue
      }
    };
    if (s == &shard) {
      unwire();
    } else {
      s->loop->post(unwire);
    }
  }
  {
    Shard* s0 = shards_[0].get();
    auto untrack = [this, node] { detector_.remove_node(node); };
    if (s0 == &shard) {
      untrack();
    } else {
      s0->loop->post(untrack);
    }
  }

  if (old_ring != nullptr) {
    stream_handoff(shard, [old_ring](KeyId key, std::span<NodeId> out) {
      old_ring->replica_group(key, out);
    });
  }
  Message reply;
  reply.type = MsgType::kWriteReply;
  reply.version = membership_.epoch();
  shard.loop->send(conn, reply);
}

}  // namespace scp::net
