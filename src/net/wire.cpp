#include "net/wire.h"

#include <bit>
#include <cstring>
#include <utility>

namespace scp::net {
namespace {

/// Sanity cap on map entries in a kMetricsReply; real registries carry a few
/// dozen metrics, and the frame cap bounds total bytes anyway.
constexpr std::uint32_t kMaxMetricEntries = 4096;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_bytes(std::vector<std::uint8_t>& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked big-endian cursor over a payload.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  bool read_u8(std::uint8_t& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = data_[pos_++];
    return true;
  }
  bool read_u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
        (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
        (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
        static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return true;
  }
  bool read_u64(std::uint64_t& v) {
    std::uint32_t hi = 0;
    std::uint32_t lo = 0;
    if (!read_u32(hi) || !read_u32(lo)) return false;
    v = (static_cast<std::uint64_t>(hi) << 32) | lo;
    return true;
  }
  bool read_bytes(std::string& out) {
    std::uint32_t len = 0;
    if (!read_u32(len)) return false;
    if (pos_ + len > data_.size()) return false;
    out.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return true;
  }
  bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode(const Message& message) {
  std::vector<std::uint8_t> frame;
  encode_into(message, frame);
  return frame;
}

void encode_into(const Message& message, std::vector<std::uint8_t>& frame) {
  // Encode the payload directly after a placeholder length prefix, then
  // patch the prefix — one buffer, no payload-to-frame copy, and no heap
  // traffic at all once `frame` has warmed up to the flow's frame size.
  frame.clear();
  std::vector<std::uint8_t>& payload = frame;
  put_u32(payload, 0);  // length prefix, patched below
  put_u8(payload, static_cast<std::uint8_t>(message.type));
  switch (message.type) {
    case MsgType::kGet:
    case MsgType::kMiss:
      put_u64(payload, message.key);
      break;
    case MsgType::kValue:
      put_u64(payload, message.key);
      put_bytes(payload, message.payload);
      break;
    case MsgType::kRedirect:
      put_u64(payload, message.key);
      put_u32(payload, message.node);
      break;
    case MsgType::kStats:
    case MsgType::kPing:
    case MsgType::kPong:
      break;
    case MsgType::kStatsReply:
      put_u64(payload, message.stats.requests);
      put_u64(payload, message.stats.hits);
      put_u64(payload, message.stats.misses);
      put_u64(payload, message.stats.redirects);
      put_u64(payload, message.stats.forwarded);
      put_u64(payload, message.stats.retries);
      put_u64(payload, message.stats.failures);
      put_u64(payload, message.stats.attempts);
      put_u64(payload, message.stats.puts);
      put_u64(payload, message.stats.deletes);
      put_u64(payload, message.stats.replications);
      put_u64(payload, message.stats.invalidations);
      put_u64(payload, message.stats.coalesced);
      break;
    case MsgType::kMetricsRequest:
      break;
    case MsgType::kMetricsReply: {
      const auto& m = message.metrics;
      put_u32(payload, static_cast<std::uint32_t>(m.counters.size()));
      for (const auto& [name, value] : m.counters) {
        put_bytes(payload, name);
        put_u64(payload, value);
      }
      put_u32(payload, static_cast<std::uint32_t>(m.gauges.size()));
      for (const auto& [name, value] : m.gauges) {
        put_bytes(payload, name);
        put_u64(payload, static_cast<std::uint64_t>(value));
      }
      put_u32(payload, static_cast<std::uint32_t>(m.timers.size()));
      for (const auto& [name, hist] : m.timers) {
        put_bytes(payload, name);
        put_u8(payload, static_cast<std::uint8_t>(hist.precision()));
        put_u64(payload, hist.min());
        put_u64(payload, hist.max());
        put_u64(payload, std::bit_cast<std::uint64_t>(hist.sum()));
        const auto buckets = hist.nonzero_buckets();
        put_u32(payload, static_cast<std::uint32_t>(buckets.size()));
        for (const auto& [index, count] : buckets) {
          put_u32(payload, index);
          put_u64(payload, count);
        }
      }
      break;
    }
    case MsgType::kError:
      put_u64(payload, message.key);
      put_bytes(payload, message.payload);
      break;
    case MsgType::kPut:
      put_u64(payload, message.key);
      put_bytes(payload, message.payload);
      break;
    case MsgType::kDelete:
    case MsgType::kQuorumGet:
    case MsgType::kVerRead:
      put_u64(payload, message.key);
      break;
    case MsgType::kWriteReply:
      put_u64(payload, message.key);
      put_u64(payload, message.version);
      break;
    case MsgType::kVerValue:
    case MsgType::kReplicate:
      put_u64(payload, message.key);
      put_u64(payload, message.version);
      put_u8(payload, message.flags);
      put_bytes(payload, message.payload);
      break;
    case MsgType::kRepAck:
      put_u64(payload, message.key);
      put_u64(payload, message.version);
      put_u8(payload, message.flags);
      break;
    case MsgType::kJoin:
      put_u32(payload, message.node);
      put_bytes(payload, message.payload);
      break;
    case MsgType::kLeave:
      put_u32(payload, message.node);
      break;
    case MsgType::kHotKeyReport:
      put_u32(payload, message.hot.node);
      put_u64(payload, message.hot.seq);
      put_u64(payload, message.hot.total);
      put_u32(payload, static_cast<std::uint32_t>(message.hot.entries.size()));
      for (const detect::HotKeyEntry& entry : message.hot.entries) {
        put_u64(payload, entry.key);
        put_u64(payload, entry.count);
      }
      break;
    case MsgType::kHotKeySubscribe:
      break;
    case MsgType::kBatchGet:
      put_u32(payload, static_cast<std::uint32_t>(message.batch_keys.size()));
      for (const std::uint64_t key : message.batch_keys) {
        put_u64(payload, key);
      }
      break;
    case MsgType::kBatchReply:
      put_u32(payload, static_cast<std::uint32_t>(message.batch.size()));
      for (const BatchItem& item : message.batch) {
        put_u8(payload, static_cast<std::uint8_t>(item.type));
        put_u64(payload, item.key);
        switch (item.type) {
          case MsgType::kValue:
          case MsgType::kError:
            put_bytes(payload, item.payload);
            break;
          case MsgType::kRedirect:
            put_u32(payload, item.node);
            break;
          default:  // kMiss carries only its key
            break;
        }
      }
      break;
  }
  const std::uint32_t length =
      static_cast<std::uint32_t>(frame.size() - kLengthPrefixBytes);
  frame[0] = static_cast<std::uint8_t>(length >> 24);
  frame[1] = static_cast<std::uint8_t>(length >> 16);
  frame[2] = static_cast<std::uint8_t>(length >> 8);
  frame[3] = static_cast<std::uint8_t>(length);
}

std::optional<Message> decode_payload(std::span<const std::uint8_t> payload) {
  Cursor cursor(payload);
  std::uint8_t raw_type = 0;
  if (!cursor.read_u8(raw_type)) return std::nullopt;

  Message message;
  switch (static_cast<MsgType>(raw_type)) {
    case MsgType::kGet:
    case MsgType::kMiss:
      message.type = static_cast<MsgType>(raw_type);
      if (!cursor.read_u64(message.key)) return std::nullopt;
      break;
    case MsgType::kValue:
      message.type = MsgType::kValue;
      if (!cursor.read_u64(message.key)) return std::nullopt;
      if (!cursor.read_bytes(message.payload)) return std::nullopt;
      break;
    case MsgType::kRedirect:
      message.type = MsgType::kRedirect;
      if (!cursor.read_u64(message.key)) return std::nullopt;
      if (!cursor.read_u32(message.node)) return std::nullopt;
      break;
    case MsgType::kStats:
    case MsgType::kPing:
    case MsgType::kPong:
      message.type = static_cast<MsgType>(raw_type);
      break;
    case MsgType::kStatsReply:
      message.type = MsgType::kStatsReply;
      if (!cursor.read_u64(message.stats.requests) ||
          !cursor.read_u64(message.stats.hits) ||
          !cursor.read_u64(message.stats.misses) ||
          !cursor.read_u64(message.stats.redirects) ||
          !cursor.read_u64(message.stats.forwarded) ||
          !cursor.read_u64(message.stats.retries) ||
          !cursor.read_u64(message.stats.failures) ||
          !cursor.read_u64(message.stats.attempts) ||
          !cursor.read_u64(message.stats.puts) ||
          !cursor.read_u64(message.stats.deletes) ||
          !cursor.read_u64(message.stats.replications) ||
          !cursor.read_u64(message.stats.invalidations) ||
          !cursor.read_u64(message.stats.coalesced)) {
        return std::nullopt;
      }
      break;
    case MsgType::kMetricsRequest:
      message.type = MsgType::kMetricsRequest;
      break;
    case MsgType::kMetricsReply: {
      message.type = MsgType::kMetricsReply;
      std::uint32_t n = 0;
      if (!cursor.read_u32(n) || n > kMaxMetricEntries) return std::nullopt;
      for (std::uint32_t i = 0; i < n; ++i) {
        std::string name;
        std::uint64_t value = 0;
        if (!cursor.read_bytes(name) || !cursor.read_u64(value)) {
          return std::nullopt;
        }
        message.metrics.counters.emplace(std::move(name), value);
      }
      if (!cursor.read_u32(n) || n > kMaxMetricEntries) return std::nullopt;
      for (std::uint32_t i = 0; i < n; ++i) {
        std::string name;
        std::uint64_t raw = 0;
        if (!cursor.read_bytes(name) || !cursor.read_u64(raw)) {
          return std::nullopt;
        }
        message.metrics.gauges.emplace(std::move(name),
                                       static_cast<std::int64_t>(raw));
      }
      if (!cursor.read_u32(n) || n > kMaxMetricEntries) return std::nullopt;
      for (std::uint32_t i = 0; i < n; ++i) {
        std::string name;
        std::uint8_t precision = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        std::uint64_t sum_bits = 0;
        std::uint32_t bucket_count = 0;
        if (!cursor.read_bytes(name) || !cursor.read_u8(precision) ||
            !cursor.read_u64(min) || !cursor.read_u64(max) ||
            !cursor.read_u64(sum_bits) || !cursor.read_u32(bucket_count) ||
            bucket_count > kMaxMetricEntries) {
          return std::nullopt;
        }
        std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
        buckets.reserve(bucket_count);
        for (std::uint32_t b = 0; b < bucket_count; ++b) {
          std::uint32_t index = 0;
          std::uint64_t count = 0;
          if (!cursor.read_u32(index) || !cursor.read_u64(count)) {
            return std::nullopt;
          }
          buckets.emplace_back(index, count);
        }
        auto hist = LogHistogram::from_buckets(
            precision, buckets, min, max, std::bit_cast<double>(sum_bits));
        if (!hist.has_value()) return std::nullopt;
        message.metrics.timers.emplace(std::move(name), *std::move(hist));
      }
      break;
    }
    case MsgType::kError:
      message.type = MsgType::kError;
      if (!cursor.read_u64(message.key)) return std::nullopt;
      if (!cursor.read_bytes(message.payload)) return std::nullopt;
      break;
    case MsgType::kPut:
      message.type = MsgType::kPut;
      if (!cursor.read_u64(message.key)) return std::nullopt;
      if (!cursor.read_bytes(message.payload)) return std::nullopt;
      break;
    case MsgType::kDelete:
    case MsgType::kQuorumGet:
    case MsgType::kVerRead:
      message.type = static_cast<MsgType>(raw_type);
      if (!cursor.read_u64(message.key)) return std::nullopt;
      break;
    case MsgType::kWriteReply:
      message.type = MsgType::kWriteReply;
      if (!cursor.read_u64(message.key)) return std::nullopt;
      if (!cursor.read_u64(message.version)) return std::nullopt;
      break;
    case MsgType::kVerValue:
    case MsgType::kReplicate:
      message.type = static_cast<MsgType>(raw_type);
      if (!cursor.read_u64(message.key)) return std::nullopt;
      if (!cursor.read_u64(message.version)) return std::nullopt;
      if (!cursor.read_u8(message.flags)) return std::nullopt;
      if (!cursor.read_bytes(message.payload)) return std::nullopt;
      break;
    case MsgType::kRepAck:
      message.type = MsgType::kRepAck;
      if (!cursor.read_u64(message.key)) return std::nullopt;
      if (!cursor.read_u64(message.version)) return std::nullopt;
      if (!cursor.read_u8(message.flags)) return std::nullopt;
      break;
    case MsgType::kJoin:
      message.type = MsgType::kJoin;
      if (!cursor.read_u32(message.node)) return std::nullopt;
      if (!cursor.read_bytes(message.payload)) return std::nullopt;
      break;
    case MsgType::kLeave:
      message.type = MsgType::kLeave;
      if (!cursor.read_u32(message.node)) return std::nullopt;
      break;
    case MsgType::kHotKeyReport: {
      message.type = MsgType::kHotKeyReport;
      std::uint32_t n = 0;
      if (!cursor.read_u32(message.hot.node) ||
          !cursor.read_u64(message.hot.seq) ||
          !cursor.read_u64(message.hot.total) || !cursor.read_u32(n) ||
          n > detect::kMaxHotKeyEntries) {
        return std::nullopt;
      }
      message.hot.entries.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        detect::HotKeyEntry entry;
        if (!cursor.read_u64(entry.key) || !cursor.read_u64(entry.count)) {
          return std::nullopt;
        }
        message.hot.entries.push_back(entry);
      }
      break;
    }
    case MsgType::kHotKeySubscribe:
      message.type = MsgType::kHotKeySubscribe;
      break;
    case MsgType::kBatchGet: {
      message.type = MsgType::kBatchGet;
      std::uint32_t n = 0;
      if (!cursor.read_u32(n) || n > kMaxBatchEntries) return std::nullopt;
      message.batch_keys.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        std::uint64_t key = 0;
        if (!cursor.read_u64(key)) return std::nullopt;
        message.batch_keys.push_back(key);
      }
      break;
    }
    case MsgType::kBatchReply: {
      message.type = MsgType::kBatchReply;
      std::uint32_t n = 0;
      if (!cursor.read_u32(n) || n > kMaxBatchEntries) return std::nullopt;
      message.batch.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        BatchItem item;
        std::uint8_t raw_item = 0;
        if (!cursor.read_u8(raw_item)) return std::nullopt;
        item.type = static_cast<MsgType>(raw_item);
        if (!cursor.read_u64(item.key)) return std::nullopt;
        switch (item.type) {
          case MsgType::kValue:
          case MsgType::kError:
            if (!cursor.read_bytes(item.payload)) return std::nullopt;
            break;
          case MsgType::kRedirect:
            if (!cursor.read_u32(item.node)) return std::nullopt;
            break;
          case MsgType::kMiss:
            break;
          default:  // an item may only be a per-key reply shape
            return std::nullopt;
        }
        message.batch.push_back(std::move(item));
      }
      break;
    }
    default:
      return std::nullopt;
  }
  if (!cursor.exhausted()) return std::nullopt;  // trailing garbage
  return message;
}

void FrameReader::append(std::span<const std::uint8_t> data) {
  if (corrupted_) return;
  // Compact once the consumed prefix dominates, keeping the buffer bounded
  // by a few in-flight frames.
  if (offset_ > 4096 && offset_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

bool FrameReader::peek_frame(std::uint32_t& length) {
  if (corrupted_) return false;
  if (buffer_.size() - offset_ < kLengthPrefixBytes) return false;
  length = (static_cast<std::uint32_t>(buffer_[offset_]) << 24) |
           (static_cast<std::uint32_t>(buffer_[offset_ + 1]) << 16) |
           (static_cast<std::uint32_t>(buffer_[offset_ + 2]) << 8) |
           static_cast<std::uint32_t>(buffer_[offset_ + 3]);
  if (length > max_payload_) {
    corrupted_ = true;
    return false;
  }
  return buffer_.size() - offset_ >= kLengthPrefixBytes + length;
}

std::optional<std::vector<std::uint8_t>> FrameReader::next_payload() {
  std::uint32_t length = 0;
  if (!peek_frame(length)) return std::nullopt;
  const auto begin =
      buffer_.begin() + static_cast<std::ptrdiff_t>(offset_ +
                                                    kLengthPrefixBytes);
  std::vector<std::uint8_t> payload(begin,
                                    begin + static_cast<std::ptrdiff_t>(length));
  offset_ += kLengthPrefixBytes + length;
  return payload;
}

std::optional<std::span<const std::uint8_t>> FrameReader::next_frame() {
  std::uint32_t length = 0;
  if (!peek_frame(length)) return std::nullopt;
  const std::span<const std::uint8_t> payload(
      buffer_.data() + offset_ + kLengthPrefixBytes, length);
  offset_ += kLengthPrefixBytes + length;
  return payload;
}

std::string make_value(std::uint64_t key, std::uint32_t value_bytes) {
  std::string value;
  value.reserve(value_bytes);
  value.push_back('v');
  value += std::to_string(key);
  value.push_back(':');
  if (value.size() < value_bytes) {
    value.append(value_bytes - value.size(), 'x');
  }
  return value;
}

}  // namespace scp::net
