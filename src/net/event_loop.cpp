#include "net/event_loop.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#if SCP_NET_USE_EPOLL
#include <sys/epoll.h>
#endif

#include "common/log.h"

namespace scp::net {

#if SCP_NET_USE_EPOLL

EventLoop::EventLoop() {
  epoll_.reset(::epoll_create1(0));
  if (!epoll_.valid()) {
    SCP_LOG_ERROR << "net: epoll_create1 failed: " << std::strerror(errno);
  }
}

EventLoop::~EventLoop() = default;

bool EventLoop::valid() const noexcept { return epoll_.valid(); }

void EventLoop::set_wake_fd(int fd) {
  wake_fd_ = fd;
  if (fd >= 0) add(fd, /*want_read=*/true, /*want_write=*/false);
}

bool EventLoop::add(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  count_syscall();
  return ::epoll_ctl(epoll_.fd(), EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool EventLoop::modify(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  count_syscall();
  return ::epoll_ctl(epoll_.fd(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::remove(int fd) {
  count_syscall();
  ::epoll_ctl(epoll_.fd(), EPOLL_CTL_DEL, fd, nullptr);
}

int EventLoop::wait(std::vector<IoEvent>& out, int timeout_ms) {
  out.clear();
  epoll_event events[64];
  count_syscall();
  const int n = ::epoll_wait(epoll_.fd(), events, 64, timeout_ms);
  if (n < 0) {
    return errno == EINTR ? 0 : -1;
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      char buf[64];
      count_syscall();
      while (::read(fd, buf, sizeof(buf)) > 0) {
        count_syscall();
      }
      continue;
    }
    IoEvent event;
    event.fd = fd;
    event.readable = (events[i].events & EPOLLIN) != 0;
    event.writable = (events[i].events & EPOLLOUT) != 0;
    event.broken = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    out.push_back(event);
  }
  return static_cast<int>(out.size());
}

#else  // poll(2) fallback

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() = default;

bool EventLoop::valid() const noexcept { return true; }

void EventLoop::set_wake_fd(int fd) {
  wake_fd_ = fd;
  if (fd >= 0) interest_[fd] = POLLIN;
}

bool EventLoop::add(int fd, bool want_read, bool want_write) {
  if (interest_.count(fd) != 0) return false;
  interest_[fd] = static_cast<short>((want_read ? POLLIN : 0) |
                                     (want_write ? POLLOUT : 0));
  return true;
}

bool EventLoop::modify(int fd, bool want_read, bool want_write) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) return false;
  it->second = static_cast<short>((want_read ? POLLIN : 0) |
                                  (want_write ? POLLOUT : 0));
  return true;
}

void EventLoop::remove(int fd) { interest_.erase(fd); }

int EventLoop::wait(std::vector<IoEvent>& out, int timeout_ms) {
  out.clear();
  pollfds_.clear();
  for (const auto& [fd, events] : interest_) {
    pollfds_.push_back(pollfd{fd, events, 0});
  }
  count_syscall();
  const int n = ::poll(pollfds_.data(),
                       static_cast<nfds_t>(pollfds_.size()), timeout_ms);
  if (n < 0) {
    return errno == EINTR ? 0 : -1;
  }
  for (const pollfd& pfd : pollfds_) {
    if (pfd.revents == 0) continue;
    if (pfd.fd == wake_fd_) {
      char buf[64];
      count_syscall();
      while (::read(pfd.fd, buf, sizeof(buf)) > 0) {
        count_syscall();
      }
      continue;
    }
    IoEvent event;
    event.fd = pfd.fd;
    event.readable = (pfd.revents & POLLIN) != 0;
    event.writable = (pfd.revents & POLLOUT) != 0;
    event.broken = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(event);
  }
  return static_cast<int>(out.size());
}

#endif  // SCP_NET_USE_EPOLL

}  // namespace scp::net
