// scp_frontend — the live serving tier's front end.
//
// Binds (kernel-assigned port with --port 0), prints `PORT <port>` on
// stdout, connects to every backend named by --backends, and serves client
// GETs (cache hits locally, misses forwarded with power-of-d routing and
// RetryPolicy failover) until SIGINT or SIGTERM.
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/flags.h"
#include "net/frontend_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

/// Parses "host:port,host:port,…" (or bare "port" entries, defaulting the
/// host to 127.0.0.1). Returns false on a malformed entry.
bool parse_backends(
    const std::string& list,
    std::vector<std::pair<std::string, std::uint16_t>>& backends) {
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string entry = list.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    std::string host = "127.0.0.1";
    std::string port_text = entry;
    const std::size_t colon = entry.rfind(':');
    if (colon != std::string::npos) {
      host = entry.substr(0, colon);
      port_text = entry.substr(colon + 1);
    }
    try {
      const unsigned long port = std::stoul(port_text);
      if (port == 0 || port > 65535) return false;
      backends.emplace_back(host, static_cast<std::uint16_t>(port));
    } catch (...) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scp;
  using namespace scp::net;

  FrontendConfig config;
  std::uint64_t port = 0;
  std::uint64_t nodes = config.nodes;
  std::uint64_t replication = config.replication;
  std::uint64_t cache_capacity = 0;
  std::uint64_t frontends = config.frontends;
  std::uint64_t items = config.items;
  std::uint64_t value_bytes = config.value_bytes;
  std::uint64_t max_retries = config.retry.max_retries;
  std::uint64_t batch_max = config.batch_max;
  bool no_coalesce = false;
  std::uint64_t shards = config.shards;
  std::uint64_t fleet = 1;
  std::uint64_t fleet_index = 0;
  std::string backends_list;
  std::string reactor = "epoll";
  double drain_s = 1.0;
  std::int64_t metrics_port = -1;

  FlagSet flags("scp_frontend: cache + power-of-d routing front end");
  flags.add_string("address", &config.address, "bind address");
  flags.add_uint64("port", &port, "bind port (0 = kernel-assigned)");
  flags.add_uint64("nodes", &nodes, "cluster size n");
  flags.add_uint64("replication", &replication, "replica-group size d");
  flags.add_string("partitioner", &config.partitioner,
                   "replica partitioner: hash|ring|rendezvous");
  flags.add_uint64("partition-seed", &config.partition_seed,
                   "partitioner seed (must match the whole tier)");
  flags.add_string("backends", &backends_list,
                   "comma-separated host:port per node id (n entries)");
  flags.add_string("cache", &config.cache_policy,
                   "front-end cache: perfect|none|lru|lfu|slru|tinylfu");
  flags.add_uint64("cache-capacity", &cache_capacity,
                   "entries per front-end cache (c)");
  flags.add_uint64("frontends", &frontends,
                   "tier width k (policy caches only)");
  flags.add_uint64("items", &items, "key space size m (perfect cache bound)");
  flags.add_uint64("value-bytes", &value_bytes,
                   "value size for perfect-cache synthesis");
  flags.add_string("router", &config.router,
                   "miss routing: pinned|least-loaded|random|round-robin");
  flags.add_uint64("max-retries", &max_retries,
                   "retries after the first attempt");
  flags.add_double("retry-backoff", &config.retry.backoff_base_s,
                   "backoff before the first retry (seconds)");
  flags.add_double("retry-timeout", &config.retry.timeout_s,
                   "per-request timeout (seconds)");
  flags.add_uint64("seed", &config.seed, "routing tie-break seed");
  flags.add_uint64("batch-max", &batch_max,
                   "max keys per kBatchGet forward frame; 1 disables "
                   "batching (one kGet frame per forward)");
  flags.add_bool("no-coalesce", &no_coalesce,
                 "disable single-flight miss coalescing (every miss emits "
                 "its own forward, even with one already in flight)");
  flags.add_uint64("shards", &shards,
                   "reactor shards sharing the port via SO_REUSEPORT; the "
                   "cache capacity c is split c/N across them");
  flags.add_uint64("fleet", &fleet,
                   "front-end fleet size N (DistCache-style tier; the "
                   "aggregate cache capacity is hash-partitioned across the "
                   "N members)");
  flags.add_uint64("fleet-index", &fleet_index,
                   "this member's index in the fleet (0..N-1)");
  flags.add_uint64("fleet-seed", &config.fleet_seed,
                   "fleet hash seed (must match every member and router)");
  flags.add_string("reactor", &reactor,
                   "event loop backend: epoll|uring (uring falls back to "
                   "epoll when io_uring is unavailable)");
  flags.add_bool("busy-poll", &config.busy_poll,
                 "uring only: SQPOLL + spin-peek before blocking");
  flags.add_double("drain", &drain_s, "shutdown drain budget (seconds)");
  flags.add_bool("metrics", &config.metrics,
                 "hot-path histograms (lookup, RTT, request latency)");
  flags.add_int64("metrics-port", &metrics_port,
                  "Prometheus /metrics port (-1 = off, 0 = kernel-assigned)");
  flags.add_bool("detect", &config.detect,
                 "hot-key mitigation: subscribe to backend kHotKeyReport "
                 "pushes and force-admit globally-hot uncached keys");
  flags.add_double("detect-threshold", &config.detect_hot_fraction,
                   "aggregated share of the backend stream that flags a key "
                   "(match the backends')");
  flags.add_uint64("detect-min-samples", &config.detect_min_samples,
                   "no hot-key classification below this aggregated total");
  if (!flags.parse(argc, argv)) return 2;

  config.port = static_cast<std::uint16_t>(port);
  config.nodes = static_cast<std::uint32_t>(nodes);
  config.replication = static_cast<std::uint32_t>(replication);
  config.cache_capacity = cache_capacity;
  config.frontends = static_cast<std::uint32_t>(frontends);
  config.items = items;
  config.value_bytes = static_cast<std::uint32_t>(value_bytes);
  config.retry.max_retries = static_cast<std::uint32_t>(max_retries);
  config.batch_max =
      static_cast<std::uint32_t>(batch_max == 0 ? 1 : batch_max);
  config.coalesce = !no_coalesce;
  config.metrics_port = static_cast<std::int32_t>(metrics_port);
  config.shards = static_cast<std::uint32_t>(shards == 0 ? 1 : shards);
  config.fleet_size = static_cast<std::uint32_t>(fleet == 0 ? 1 : fleet);
  config.fleet_index = static_cast<std::uint32_t>(fleet_index);
  if (config.fleet_index >= config.fleet_size) {
    std::fprintf(stderr,
                 "scp_frontend: --fleet-index %u out of range for --fleet %u\n",
                 static_cast<unsigned>(config.fleet_index),
                 static_cast<unsigned>(config.fleet_size));
    return 2;
  }
  if (!parse_reactor_kind(reactor, config.reactor)) {
    std::fprintf(stderr, "scp_frontend: bad --reactor '%s' (epoll|uring)\n",
                 reactor.c_str());
    return 2;
  }
  if (!parse_backends(backends_list, config.backends)) {
    std::fprintf(stderr, "scp_frontend: bad --backends entry\n");
    return 2;
  }
  if (config.backends.size() != config.nodes) {
    std::fprintf(stderr,
                 "scp_frontend: --backends names %zu endpoints but --nodes=%u\n",
                 config.backends.size(), static_cast<unsigned>(config.nodes));
    return 2;
  }

  FrontendServer server(std::move(config));
  if (!server.start()) {
    std::fprintf(stderr, "scp_frontend: failed to start\n");
    return 1;
  }
  std::printf("PORT %u\n", static_cast<unsigned>(server.port()));
  // Effective backend: may differ from --reactor after uring fallback.
  std::printf("REACTOR %s\n", to_string(server.reactor_kind()));
  if (server.metrics_http_port() != 0) {
    std::printf("METRICS_PORT %u\n",
                static_cast<unsigned>(server.metrics_http_port()));
  }
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0 && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  server.stop(drain_s);
  const ServerStats stats = server.stats();
  std::printf("scp_frontend: requests=%llu hits=%llu misses=%llu "
              "forwarded=%llu coalesced=%llu retries=%llu failures=%llu\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.forwarded),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.failures));
  return 0;
}
