#include "net/router_server.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/log.h"

namespace scp::net {
namespace {

constexpr double kSweepIntervalS = 0.020;
constexpr double kReconnectBaseS = 0.050;
constexpr double kReconnectCapS = 1.0;

}  // namespace

RouterServer::RouterServer(RouterConfig config)
    : config_(std::move(config)),
      loop_(make_reactor(
          ReactorOptions{.kind = config_.reactor, .busy_poll = config_.busy_poll})),
      router_(static_cast<std::uint32_t>(config_.frontends.size()),
              config_.fleet_seed),
      rng_(config_.seed) {}

RouterServer::~RouterServer() { stop(0.0); }

bool RouterServer::start() {
  if (config_.frontends.empty()) {
    SCP_LOG_ERROR << "scp_router: no fleet members configured";
    return false;
  }
  if (config_.max_hops == 0) config_.max_hops = 1;
  // A kBatchGet frame cannot carry more keys than the decoder accepts.
  config_.batch_max = std::min(config_.batch_max, kMaxBatchEntries);

  members_.resize(config_.frontends.size());
  for (std::size_t i = 0; i < config_.frontends.size(); ++i) {
    members_[i].address = config_.frontends[i].first;
    members_[i].port = config_.frontends[i].second;
    // Members start pessimistically down; on_conn_connect flips them up.
    router_.set_up(static_cast<std::uint32_t>(i), false);
  }

  Reactor::Callbacks callbacks;
  callbacks.on_message = [this](ConnId conn, Message&& message) {
    handle(conn, std::move(message));
  };
  callbacks.on_close = [this](ConnId conn) { on_conn_close(conn); };
  callbacks.on_connect = [this](ConnId conn, bool ok) {
    on_conn_connect(conn, ok);
  };
  loop_->set_callbacks(std::move(callbacks));
  if (config_.batch_max > 1) {
    // Flush queued GET dispatches right before the reactor's gathered
    // write; batch_max <= 1 never queues, keeping the unbatched dispatch
    // path byte-identical.
    loop_->set_before_flush([this] { flush_member_queues(); });
  }

  if (config_.metrics) {
    request_us_ = &registry_.timer("router.request_us");
    member_rtt_us_ = &registry_.timer("router.fe_rtt_us");
    member_dispatches_.resize(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
      member_dispatches_[i] =
          &registry_.counter("router.dispatches.fe" + std::to_string(i));
    }
    loop_->set_metrics(&registry_);
  }

  if (!loop_->listen(config_.address, config_.port)) return false;
  if (config_.metrics_port >= 0) {
    metrics_http_ = std::make_unique<obs::MetricsHttpServer>(
        [this] { return metrics_snapshot(); });
    if (!metrics_http_->start(
            static_cast<std::uint16_t>(config_.metrics_port))) {
      SCP_LOG_ERROR << "scp_router: failed to bind metrics port "
                    << config_.metrics_port;
      return false;
    }
  }

  for (std::uint32_t member = 0; member < members_.size(); ++member) {
    MemberState& fe = members_[member];
    fe.conn = loop_->connect(fe.address, fe.port);
    member_by_conn_[fe.conn] = member;
  }
  loop_->run_after(kSweepIntervalS, [this] { sweep_timeouts(); });
  loop_->run_after(config_.scrape_interval_s, [this] { scrape_members(); });

  if (!loop_->start()) return false;
  SCP_LOG_INFO << "scp_router serving on " << config_.address << ":"
               << loop_->port() << " (fleet=" << members_.size()
               << " scrape=" << config_.scrape_interval_s << "s)";
  return true;
}

void RouterServer::stop(double drain_s) {
  stopping_.store(true);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(drain_s));
  while (pending_total_.load() > 0 &&
         std::chrono::steady_clock::now() < deadline && loop_->running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  loop_->stop();
  if (metrics_http_ != nullptr) {
    metrics_http_->stop();
  }
}

std::uint16_t RouterServer::port() const noexcept { return loop_->port(); }

bool RouterServer::running() const noexcept { return loop_->running(); }

ReactorKind RouterServer::reactor_kind() const noexcept {
  return loop_->kind();
}

bool RouterServer::wait_frontends_up(double timeout_s) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_s));
  while (frontends_up_.load(std::memory_order_relaxed) < members_.size()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

ServerStats RouterServer::stats() const {
  ServerStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.forwarded = forwarded_.load(std::memory_order_relaxed);
  stats.redirects = redirects_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  stats.attempts = attempts_.load(std::memory_order_relaxed);
  return stats;
}

obs::MetricsSnapshot RouterServer::metrics_snapshot() const {
  obs::MetricsSnapshot snap = registry_.snapshot();
  snap.counters["router.requests"] =
      requests_.load(std::memory_order_relaxed);
  snap.counters["router.forwarded"] =
      forwarded_.load(std::memory_order_relaxed);
  snap.counters["router.redirects_followed"] =
      redirects_.load(std::memory_order_relaxed);
  snap.counters["router.retries"] = retries_.load(std::memory_order_relaxed);
  snap.counters["router.failures"] =
      failures_.load(std::memory_order_relaxed);
  snap.counters["router.attempts_total"] =
      attempts_.load(std::memory_order_relaxed);
  snap.counters["router.batch_frames"] =
      batch_frames_.load(std::memory_order_relaxed);
  snap.counters["router.batch_keys"] =
      batch_keys_.load(std::memory_order_relaxed);
  snap.counters["router.scrapes"] = scrapes_.load(std::memory_order_relaxed);
  snap.gauges["router.scrape_ms"] =
      static_cast<std::int64_t>(config_.scrape_interval_s * 1000.0);
  snap.gauges["router.frontends_up"] = static_cast<std::int64_t>(
      frontends_up_.load(std::memory_order_relaxed));
  snap.gauges["router.fleet_size"] =
      static_cast<std::int64_t>(members_.size());
  snap.gauges["router.pending_requests"] = static_cast<std::int64_t>(
      pending_total_.load(std::memory_order_relaxed));
  const ReactorCounters& loop = loop_->counters();
  snap.counters["loop.syscalls"] =
      loop.syscalls.load(std::memory_order_relaxed);
  snap.counters["loop.wakeups"] = loop.wakeups.load(std::memory_order_relaxed);
  snap.counters["loop.frames_in"] =
      loop.frames_in.load(std::memory_order_relaxed);
  snap.counters["loop.frames_out"] =
      loop.frames_out.load(std::memory_order_relaxed);
  snap.counters["loop.buf_starved"] =
      loop.buf_starved.load(std::memory_order_relaxed);
  return snap;
}

std::uint16_t RouterServer::metrics_http_port() const noexcept {
  return metrics_http_ != nullptr ? metrics_http_->port() : 0;
}

void RouterServer::handle(ConnId conn, Message&& message) {
  auto it = member_by_conn_.find(conn);
  if (it != member_by_conn_.end()) {
    handle_member(it->second, std::move(message));
  } else {
    handle_client(conn, std::move(message));
  }
}

void RouterServer::handle_client(ConnId conn, Message&& message) {
  switch (message.type) {
    case MsgType::kGet: {
      const std::uint64_t start_ns =
          request_us_ != nullptr ? obs::now_ns() : 0;
      requests_.fetch_add(1, std::memory_order_relaxed);
      dispatch(conn, message.key, /*hops=*/0, start_ns);
      return;
    }
    case MsgType::kPut:
    case MsgType::kDelete:
    case MsgType::kQuorumGet: {
      // Writes and quorum reads route like GETs; the fleet member either
      // serves them (invalidating its cache slice on the way) or answers
      // kRedirect toward the owner, which handle_member replays with the
      // same op and payload.
      const std::uint64_t start_ns =
          request_us_ != nullptr ? obs::now_ns() : 0;
      requests_.fetch_add(1, std::memory_order_relaxed);
      dispatch(conn, message.key, /*hops=*/0, start_ns, message.type,
               message.payload);
      return;
    }
    case MsgType::kStats: {
      Message reply;
      reply.type = MsgType::kStatsReply;
      reply.stats = stats();
      loop_->send(conn, reply);
      return;
    }
    case MsgType::kMetricsRequest: {
      Message reply;
      reply.type = MsgType::kMetricsReply;
      reply.metrics = metrics_snapshot();
      loop_->send(conn, reply);
      return;
    }
    case MsgType::kPing: {
      Message reply;
      reply.type = MsgType::kPong;
      loop_->send(conn, reply);
      return;
    }
    default: {
      Message reply;
      reply.type = MsgType::kError;
      reply.key = message.key;
      reply.payload = "unexpected message type";
      loop_->send(conn, reply);
      return;
    }
  }
}

void RouterServer::handle_member(std::uint32_t member, Message&& message) {
  MemberState& fe = members_[member];
  if (message.type == MsgType::kMetricsReply) {
    // Scrape result: refresh this member's load base — its own request
    // counter plus whatever it still has in flight toward the backends.
    std::uint64_t load = 0;
    auto counter = message.metrics.counters.find("frontend.requests");
    if (counter != message.metrics.counters.end()) load = counter->second;
    auto gauge = message.metrics.gauges.find("frontend.pending_requests");
    if (gauge != message.metrics.gauges.end() && gauge->second > 0) {
      load += static_cast<std::uint64_t>(gauge->second);
    }
    router_.set_scraped_load(member, load);
    return;
  }
  if (message.type == MsgType::kPong ||
      message.type == MsgType::kStatsReply) {
    return;  // health probes; nothing pending
  }
  // Replies are matched by key, not FIFO: a fleet member answers cache hits
  // and redirects immediately but forwards only when the backend responds,
  // so its replies legitimately overtake one another. Oldest-first scan so
  // duplicate keys in flight complete in dispatch order.
  const auto it = std::find_if(
      fe.pending.begin(), fe.pending.end(),
      [&](const PendingRequest& p) { return p.key == message.key; });
  if (it == fe.pending.end()) {
    SCP_LOG_WARN << "scp_router: unmatched reply from fe " << member
                 << "; resetting connection";
    loop_->close_connection(fe.conn);
    return;
  }
  PendingRequest request = *it;
  fe.pending.erase(it);
  pending_total_.fetch_sub(1, std::memory_order_relaxed);
  router_.on_complete(member);

  if (message.type == MsgType::kRedirect) {
    // A cached key landed on the non-owner: follow the hop to the owner
    // (message.node is a *fleet index*). Transparent to the client.
    redirects_.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t owner = static_cast<std::uint32_t>(message.node);
    if (owner < members_.size() && request.hops < config_.max_hops &&
        dispatch_to(owner, request.client, request.key, request.hops,
                    request.start_ns, request.op, request.payload)) {
      return;
    }
    // Owner down or hop budget spent: let the surviving candidate serve
    // the forward path instead of failing outright.
    if (request.hops < config_.max_hops) {
      dispatch(request.client, request.key, request.hops, request.start_ns,
               request.op, request.payload);
    } else {
      fail_request(request.client, request.key);
    }
    return;
  }

  // kValue / kMiss / kError relay verbatim; the client sees exactly what
  // the fleet member answered. An error still counts as a failure (not a
  // forward) so requests == forwarded + failures holds at the router too.
  if (message.type == MsgType::kError) {
    failures_.fetch_add(1, std::memory_order_relaxed);
  } else {
    forwarded_.fetch_add(1, std::memory_order_relaxed);
  }
  if (request_us_ != nullptr) {
    const std::uint64_t now = obs::now_ns();
    if (request.start_ns != 0) {
      request_us_->record((now - request.start_ns) / 1'000);
    }
  }
  const ConnId client = request.client;
  loop_->send(client, message);
}

void RouterServer::on_conn_close(ConnId conn) {
  auto it = member_by_conn_.find(conn);
  if (it == member_by_conn_.end()) {
    return;  // client hung up; replies fail at send()
  }
  const std::uint32_t member = it->second;
  member_by_conn_.erase(it);
  MemberState& fe = members_[member];
  if (fe.up) {
    fe.up = false;
    frontends_up_.fetch_sub(1, std::memory_order_relaxed);
  }
  fe.conn = kInvalidConn;
  router_.set_up(member, false);

  std::deque<PendingRequest> orphaned;
  orphaned.swap(fe.pending);
  for (const PendingRequest& request : orphaned) {
    pending_total_.fetch_sub(1, std::memory_order_relaxed);
    router_.on_complete(member);
    // Re-dispatch to whichever candidate is still live (the dead member is
    // marked down, so pick() routes around it).
    if (request.hops < config_.max_hops) {
      dispatch(request.client, request.key, request.hops, request.start_ns,
               request.op, request.payload);
    } else {
      fail_request(request.client, request.key);
    }
  }
  // Queued dispatches never hit the wire: unwind the queue-time accounting
  // and route them again without burning a hop.
  std::vector<QueuedDispatch> queued;
  queued.swap(fe.queued);
  for (const QueuedDispatch& q : queued) {
    pending_total_.fetch_sub(1, std::memory_order_relaxed);
    router_.on_complete(member);
    dispatch(q.client, q.key, q.hops, q.start_ns);
  }
  schedule_reconnect(member);
}

void RouterServer::on_conn_connect(ConnId conn, bool ok) {
  auto it = member_by_conn_.find(conn);
  if (it == member_by_conn_.end()) return;
  const std::uint32_t member = it->second;
  MemberState& fe = members_[member];
  if (ok) {
    fe.up = true;
    fe.connect_attempts = 0;
    frontends_up_.fetch_add(1, std::memory_order_relaxed);
    router_.set_up(member, true);
    return;
  }
  member_by_conn_.erase(it);
  fe.conn = kInvalidConn;
  schedule_reconnect(member);
}

void RouterServer::schedule_reconnect(std::uint32_t member) {
  if (stopping_.load()) return;
  MemberState& fe = members_[member];
  const double delay =
      std::min(kReconnectBaseS * static_cast<double>(
                                     1u << std::min(fe.connect_attempts, 10u)),
               kReconnectCapS);
  fe.connect_attempts++;
  loop_->run_after(delay, [this, member] {
    if (stopping_.load()) return;
    MemberState& target = members_[member];
    if (target.conn != kInvalidConn) return;  // already reconnecting
    target.conn = loop_->connect(target.address, target.port);
    member_by_conn_[target.conn] = member;
  });
}

bool RouterServer::dispatch_to(std::uint32_t member, ConnId client,
                               std::uint64_t key, std::uint32_t hops,
                               std::uint64_t start_ns, MsgType op,
                               const std::string& payload) {
  MemberState& fe = members_[member];
  if (!fe.up) return false;
  if (op == MsgType::kGet && config_.batch_max > 1) {
    // Batched dispatch: GETs for this member accumulate and flush as one
    // kBatchGet at the reactor's before-flush hook (sooner if the queue
    // fills). The load delta is counted now so power-of-two-choices sees
    // same-wakeup dispatches; the wire send, pending entry and attempt
    // counters happen at flush.
    fe.queued.push_back({client, key, hops, start_ns});
    pending_total_.fetch_add(1, std::memory_order_relaxed);
    router_.on_dispatch(member);
    if (fe.queued.size() >= config_.batch_max) {
      flush_member_queue(member);
    }
    return true;
  }
  Message request;
  request.type = op;
  request.key = key;
  if (op == MsgType::kPut) request.payload = payload;
  if (!loop_->send(fe.conn, request)) return false;
  attempts_.fetch_add(1, std::memory_order_relaxed);
  if (hops > 0) retries_.fetch_add(1, std::memory_order_relaxed);
  router_.on_dispatch(member);
  if (member < member_dispatches_.size() &&
      member_dispatches_[member] != nullptr) {
    member_dispatches_[member]->inc();
  }

  PendingRequest pending;
  pending.client = client;
  pending.key = key;
  pending.op = op;
  if (op == MsgType::kPut) pending.payload = payload;
  pending.hops = hops + 1;
  pending.start_ns = start_ns;
  pending.deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.timeout_s));
  fe.pending.push_back(pending);
  pending_total_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void RouterServer::flush_member_queues() {
  for (std::uint32_t member = 0;
       member < static_cast<std::uint32_t>(members_.size()); ++member) {
    if (!members_[member].queued.empty()) flush_member_queue(member);
  }
}

void RouterServer::flush_member_queue(std::uint32_t member) {
  MemberState& fe = members_[member];
  if (fe.queued.empty()) return;
  std::vector<QueuedDispatch> queued;
  queued.swap(fe.queued);

  const auto redispatch_all = [&] {
    // The wire send never happened: unwind the queue-time accounting and
    // route each dispatch again (the dead member is marked down, so pick()
    // goes around it; dispatch re-counts pending_total_ on its way in).
    for (const QueuedDispatch& q : queued) {
      pending_total_.fetch_sub(1, std::memory_order_relaxed);
      router_.on_complete(member);
      dispatch(q.client, q.key, q.hops, q.start_ns);
    }
  };
  if (!fe.up) {
    redispatch_all();
    return;
  }

  bool sent = false;
  if (queued.size() == 1) {
    // A batch of one gains nothing over the plain frame; keep the wire
    // identical to the unbatched path.
    Message request;
    request.type = MsgType::kGet;
    request.key = queued.front().key;
    sent = loop_->send(fe.conn, request);
  } else {
    Message request;
    request.type = MsgType::kBatchGet;
    request.batch_keys.reserve(queued.size());
    for (const QueuedDispatch& q : queued) {
      request.batch_keys.push_back(q.key);
    }
    sent = loop_->send(fe.conn, request);
    if (sent) {
      batch_frames_.fetch_add(1, std::memory_order_relaxed);
      batch_keys_.fetch_add(queued.size(), std::memory_order_relaxed);
    }
  }
  if (!sent) {
    redispatch_all();
    return;
  }

  // One wire send for the whole queue; the ledger stays per key (the fleet
  // member answers each with its own frame and counts them individually).
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.timeout_s));
  for (const QueuedDispatch& q : queued) {
    attempts_.fetch_add(1, std::memory_order_relaxed);
    if (q.hops > 0) retries_.fetch_add(1, std::memory_order_relaxed);
    if (member < member_dispatches_.size() &&
        member_dispatches_[member] != nullptr) {
      member_dispatches_[member]->inc();
    }
    PendingRequest pending;
    pending.client = q.client;
    pending.key = q.key;
    pending.op = MsgType::kGet;
    pending.hops = q.hops + 1;
    pending.start_ns = q.start_ns;
    pending.deadline = deadline;
    // pending_total_ and router_.on_dispatch were counted at queue time.
    fe.pending.push_back(pending);
  }
}

void RouterServer::dispatch(ConnId client, std::uint64_t key,
                            std::uint32_t hops, std::uint64_t start_ns,
                            MsgType op, const std::string& payload) {
  if (hops >= config_.max_hops) {
    fail_request(client, key);
    return;
  }
  const std::uint32_t member = router_.pick(key, rng_);
  if (member != kNoFleetMember &&
      dispatch_to(member, client, key, hops, start_ns, op, payload)) {
    return;
  }
  // pick() chose a member whose send failed, or nothing is live: try the
  // remaining candidate once before giving up.
  const FleetCandidates candidates = router_.candidates_of(key);
  const std::uint32_t other =
      member == candidates.owner ? candidates.alternate : candidates.owner;
  if (other != member && router_.up(other) &&
      dispatch_to(other, client, key, hops, start_ns, op, payload)) {
    return;
  }
  fail_request(client, key);
}

void RouterServer::fail_request(ConnId client, std::uint64_t key) {
  failures_.fetch_add(1, std::memory_order_relaxed);
  Message reply;
  reply.type = MsgType::kError;
  reply.key = key;
  reply.payload = "no live front end";
  loop_->send(client, reply);
}

void RouterServer::scrape_members() {
  if (stopping_.load()) return;
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  Message probe;
  probe.type = MsgType::kMetricsRequest;
  for (const MemberState& fe : members_) {
    if (fe.up) loop_->send(fe.conn, probe);
  }
  loop_->run_after(config_.scrape_interval_s, [this] { scrape_members(); });
}

void RouterServer::sweep_timeouts() {
  if (stopping_.load()) return;
  const auto now = std::chrono::steady_clock::now();
  for (MemberState& fe : members_) {
    if (fe.conn != kInvalidConn && !fe.pending.empty() &&
        fe.pending.front().deadline <= now) {
      // Head-of-line timeout: reset the connection; on_conn_close
      // re-dispatches the whole queue to the surviving candidate.
      loop_->close_connection(fe.conn);
    }
  }
  loop_->run_after(kSweepIntervalS, [this] { sweep_timeouts(); });
}

}  // namespace scp::net
