// Sharded multi-reactor: N reactors (FrameLoop or UringLoop, per
// Options::reactor) sharing one listening port.
//
// The preferred mechanism is SO_REUSEPORT — every shard owns its own
// listening socket bound to the same address/port and the kernel spreads
// incoming connections across them, so the accept path itself scales with
// shards and no fd ever crosses a thread. Port 0 works: shard 0 binds first
// (kernel assigns), the remaining shards bind the resolved port.
//
// Where SO_REUSEPORT is unavailable (or force_fallback_accept is set, which
// tests use to cover the path), the pool degrades to a single acceptor:
// only shard 0 listens, and its accept handler round-robins accepted fds
// into the shards via FrameLoop::adopt() — same observable behavior, one
// extra cross-thread hop per accepted connection.
//
// The pool owns loop lifecycle only. Per-shard callbacks, metrics and
// application state belong to the owner (FrontendServer/BackendServer keep
// a Shard struct per loop); connections never migrate between shards, so
// shard state needs no locks. stop() asks every shard to stop before
// joining any of them — all shards quit accepting immediately and drain
// their write queues concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/reactor.h"
#include "obs/metrics.h"

namespace scp::net {

/// Merges per-shard registry snapshots into one aggregate view. With a
/// single shard the result is exactly that shard's snapshot (byte-identical
/// exposition to the unsharded server). With more, the canonical names hold
/// the cross-shard sums/merges and every shard's series is re-emitted as
/// "<role>.shardK.<rest>": names already starting "<role>." get the shard
/// segment spliced in after the role, anything else (e.g. "loop.tick_us")
/// is prefixed whole.
obs::MetricsSnapshot merge_shard_snapshots(
    const std::string& role, const std::vector<obs::MetricsSnapshot>& shards);

class ReactorPool {
 public:
  struct Options {
    std::size_t shards = 1;
    /// Test hook: skip SO_REUSEPORT and exercise the single-acceptor
    /// round-robin fallback even where the kernel supports sharded listen.
    bool force_fallback_accept = false;
    /// Requested backend for every shard. kUring falls back to epoll where
    /// io_uring is unusable — reactor_kind() reports the effective choice.
    ReactorKind reactor = ReactorKind::kEpoll;
    /// UringLoop only (see ReactorOptions::busy_poll).
    bool busy_poll = false;
  };

  explicit ReactorPool(Options options);
  ReactorPool(const ReactorPool&) = delete;
  ReactorPool& operator=(const ReactorPool&) = delete;

  std::size_t shards() const noexcept { return loops_.size(); }
  Reactor& shard(std::size_t index) { return *loops_[index]; }
  const Reactor& shard(std::size_t index) const { return *loops_[index]; }

  /// The effective backend all shards run (after any uring→epoll fallback).
  ReactorKind reactor_kind() const noexcept { return reactor_kind_; }

  /// Binds the shared listening port across all shards (see file comment).
  /// Call after per-shard callbacks are set, before start(). All-or-nothing:
  /// on failure no shard is left listening.
  bool listen(const std::string& address, std::uint16_t port,
              int backlog = 128);

  /// Resolved listening port (after listen() with port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// True when the single-acceptor fallback is active instead of
  /// SO_REUSEPORT sharding.
  bool fallback_accept() const noexcept { return fallback_accept_; }

  /// Starts every shard loop; on any failure stops the ones already
  /// started and returns false.
  bool start();

  /// Graceful stop: every shard stops accepting at once, then all drain
  /// concurrently for up to `drain_s` and are joined. Idempotent.
  void stop(double drain_s = 1.0);

  bool running() const noexcept;

  /// Sum of the per-shard loop counters.
  struct Totals {
    std::uint64_t accepted = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t syscalls = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t buf_starved = 0;
  };
  Totals totals() const;

 private:
  Options options_;
  ReactorKind reactor_kind_ = ReactorKind::kEpoll;
  // unique_ptr: reactors are non-movable and shard() refs must be stable.
  std::vector<std::unique_ptr<Reactor>> loops_;
  std::uint16_t port_ = 0;
  bool fallback_accept_ = false;
  std::atomic<std::uint64_t> next_accept_{0};
};

}  // namespace scp::net
