#include "net/fleet.h"

#include <algorithm>

#include "common/hash.h"

namespace scp::net {
namespace {

// Distinct derive_seed() streams for the two fleet hashes. The backend
// partitioners key their SipHash from the partition seed directly (streams
// 0x5c9 / ring point streams), so deriving from the *fleet* seed with
// private stream ids keeps the fleet mapping statistically independent of
// the replica-group mapping even when an operator reuses one seed value
// everywhere.
constexpr std::uint64_t kOwnerStream = 0xf1ee70;
constexpr std::uint64_t kAlternateStream = 0xf1ee71;

}  // namespace

std::uint32_t fleet_owner(std::uint64_t key, std::uint64_t fleet_seed,
                          std::uint32_t fleet_size) noexcept {
  if (fleet_size <= 1) return 0;
  const SipKey sip = sip_key_from_seed(derive_seed(fleet_seed, kOwnerStream));
  return static_cast<std::uint32_t>(siphash24(sip, key) % fleet_size);
}

FleetCandidates fleet_candidates(std::uint64_t key, std::uint64_t fleet_seed,
                                 std::uint32_t fleet_size) noexcept {
  FleetCandidates candidates;
  candidates.owner = fleet_owner(key, fleet_seed, fleet_size);
  if (fleet_size <= 1) {
    candidates.alternate = candidates.owner;
    return candidates;
  }
  // Independent second stream over the other N-1 members: the alternate is
  // uniform over the fleet minus the owner, so the pair is always distinct.
  const SipKey sip =
      sip_key_from_seed(derive_seed(fleet_seed, kAlternateStream));
  const std::uint32_t step =
      static_cast<std::uint32_t>(siphash24(sip, key) % (fleet_size - 1));
  candidates.alternate = (candidates.owner + 1 + step) % fleet_size;
  return candidates;
}

FleetRouter::FleetRouter(std::uint32_t fleet_size, std::uint64_t fleet_seed)
    : fleet_seed_(fleet_seed),
      members_(std::max<std::uint32_t>(fleet_size, 1)) {}

std::uint32_t FleetRouter::pick(std::uint64_t key, Rng& rng) const {
  const FleetCandidates candidates = candidates_of(key);
  const bool owner_up = members_[candidates.owner].up;
  const bool alternate_up = members_[candidates.alternate].up;
  if (candidates.owner == candidates.alternate) {
    return owner_up ? candidates.owner : kNoFleetMember;
  }
  if (!owner_up && !alternate_up) return kNoFleetMember;
  if (!alternate_up) return candidates.owner;
  if (!owner_up) return candidates.alternate;
  const double owner_load = load(candidates.owner);
  const double alternate_load = load(candidates.alternate);
  if (owner_load < alternate_load) return candidates.owner;
  if (alternate_load < owner_load) return candidates.alternate;
  return rng.uniform_u64(2) == 0 ? candidates.owner : candidates.alternate;
}

void FleetRouter::set_scraped_load(std::uint32_t member, std::uint64_t load) {
  Member& m = members_[member];
  m.scraped = load;
  m.outstanding = 0;
}

void FleetRouter::on_dispatch(std::uint32_t member) {
  ++members_[member].outstanding;
}

void FleetRouter::on_complete(std::uint32_t member) {
  // Completions for work dispatched before the last scrape would drive the
  // delta negative; the scrape base already covers them.
  if (members_[member].outstanding > 0) --members_[member].outstanding;
}

void FleetRouter::set_up(std::uint32_t member, bool up) {
  members_[member].up = up;
}

double FleetRouter::load(std::uint32_t member) const {
  const Member& m = members_[member];
  return static_cast<double>(m.scraped) +
         static_cast<double>(m.outstanding);
}

}  // namespace scp::net
