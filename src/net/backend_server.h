// scp_backend: one replica-group member serving GETs — and, since the
// write path landed, coordinating quorum-replicated PUT/DELETEs.
//
// Read path (unchanged from the read-only tier): a kGet is answered from
// the local kvstore::StorageEngine, preloaded with every key whose replica
// group (under the cluster-wide partitioner seed) contains this node. A GET
// for a key this node does not own is answered with REDIRECT to the key's
// first replica. Per-node request counters are the measurement the live
// serving bench exists for.
//
// Write path (Dynamo-style sloppy quorum, coordinator-driven): any backend
// can coordinate a kPut/kDelete. The coordinator mints a version from its
// VersionClock, applies locally when it is a group member, fans kReplicate
// to the other replicas over its peer-mesh connections, and acks the client
// with kWriteReply once W replicas (its own apply included) confirmed —
// failing fast when the reachable replicas cannot reach W. kQuorumGet fans
// kVerRead, resolves last-writer-wins over R versioned responses and
// read-repairs stale replicas with the winner. With R+W>N a write acked by
// any coordinator is readable through any coordinator with a replica down.
//
// Liveness: a ping-based failure detector runs on shard 0's loop over the
// peer mesh, feeding the shared Membership table that coordinators consult
// when choosing fan-out targets. kJoin/kLeave mutate the consistent-hash
// ring live: each member re-plans ownership, elects one streamer per moved
// key (first alive old holder) and streams handoff as idempotent
// kReplicate applies — old holders keep serving while keys move.
//
// Reply matching on peer connections is FIFO (peers answer in order); every
// expected reply carries the key for cross-checking, and a mismatch drops
// the connection like the front end does.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/partitioner.h"
#include "detect/hot_key.h"
#include "kvstore/storage_engine.h"
#include "net/reactor_pool.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "replication/failure_detector.h"
#include "replication/membership.h"
#include "replication/quorum.h"
#include "replication/version.h"

namespace scp::net {

struct BackendConfig {
  std::string address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned (see BackendServer::port)
  std::uint32_t node_id = 0;
  std::uint32_t nodes = 8;        ///< n
  std::uint32_t replication = 2;  ///< d
  std::string partitioner = "hash";
  std::uint64_t partition_seed = 1;
  /// Keys 0…items-1 are preloaded where owned; 0 = empty store.
  std::uint64_t items = 0;
  std::uint32_t value_bytes = 64;
  /// Hot-path instrumentation (service-time and loop-tick histograms).
  /// Off leaves only the ServerStats atomics — the overhead A/B baseline.
  bool metrics = true;
  /// Prometheus endpoint: -1 = none, 0 = kernel-assigned, else fixed port.
  std::int32_t metrics_port = -1;
  /// Reactor shards sharing the listening port (SO_REUSEPORT). The request
  /// path is stateless over the shared storage, so sharding a backend
  /// changes only which thread serves a connection.
  std::uint32_t shards = 1;
  /// Test hook: force the single-acceptor round-robin accept path.
  bool force_fallback_accept = false;
  /// Event-loop backend for every shard (uring falls back to epoll where
  /// unavailable; reactor_kind() reports the effective choice).
  ReactorKind reactor = ReactorKind::kEpoll;
  /// UringLoop only: SQPOLL + spin-peek before blocking.
  bool busy_poll = false;

  /// Replica-mesh endpoint per NodeId (index = node; this node's own entry
  /// is ignored). Empty = no mesh: writes coordinate locally with W=1,
  /// which keeps single-node benches and the read-only tier working
  /// unchanged. Kernel-assigned ports are wired post-start via set_peers().
  std::vector<std::pair<std::string, std::uint16_t>> peers;
  /// W and R. 0 = majority of d (d/2+1); both are clamped to [1, d].
  std::uint32_t write_quorum = 0;
  std::uint32_t read_quorum = 0;
  /// Failure detector timing (see replication/failure_detector.h).
  double fd_interval_s = 0.1;
  double fd_suspect_s = 0.25;
  double fd_timeout_s = 0.5;
  /// Deadline for an in-flight quorum op; a sweep fails it with kError.
  double op_timeout_s = 1.0;

  /// Hot-key detection (src/detect): maintain a SpaceSaving sketch over the
  /// GETs this node serves, and every detect_interval_s gossip the top
  /// detect_k as a kHotKeyReport to alive mesh peers and to connections
  /// that sent kHotKeySubscribe (front ends). Received reports feed a
  /// HotKeyAggregator whose globally-hot view is exported as detect.*
  /// metrics — the backend-side view of a cache-miss flood.
  bool detect = false;
  std::uint32_t detect_k = 16;      ///< entries per report
  std::size_t detect_capacity = 0;  ///< sketch monitor slots; 0 = 8×detect_k
  double detect_interval_s = 0.25;  ///< report + sketch-aging cadence
  /// Aggregator classification knobs (see detect::HotKeyAggregator).
  double detect_hot_fraction = 0.02;
  std::uint64_t detect_min_samples = 256;
};

class BackendServer {
 public:
  explicit BackendServer(BackendConfig config);
  ~BackendServer();

  /// Binds, preloads the storage engine and starts serving. False on bind
  /// failure. When config.peers is non-empty the replica mesh is wired
  /// immediately.
  bool start();
  /// Graceful stop: drains queued replies for up to `drain_s`.
  void stop(double drain_s = 1.0);

  /// Wires (or re-wires) the replica mesh: endpoint per NodeId, self
  /// ignored. Callable before or after start() — tests and the bench spawn
  /// every backend on port 0 first, then hand the resolved ports around.
  void set_peers(std::vector<std::pair<std::string, std::uint16_t>> endpoints);

  /// Blocks until every shard's connection to every peer is up (true) or
  /// the timeout expires (false).
  bool wait_peers_up(double timeout_s) const;

  std::uint16_t port() const noexcept { return pool_.port(); }
  bool running() const noexcept { return pool_.running(); }

  /// Counter snapshot, aggregated across shards (thread-safe).
  ServerStats stats() const;

  /// Full metrics snapshot: shard registries merged, plus the ServerStats
  /// counters under "backend.*" names. With shards > 1 each shard's series
  /// also appear as "backend.shardK.*" (thread-safe).
  obs::MetricsSnapshot metrics_snapshot() const;

  /// Bound Prometheus endpoint port, or 0 when config.metrics_port == -1.
  std::uint16_t metrics_http_port() const noexcept;

  /// Effective reactor backend (after any uring→epoll fallback).
  ReactorKind reactor_kind() const noexcept { return pool_.reactor_kind(); }

  /// Summed reactor counters across shards — syscalls and wakeups feed the
  /// syscalls/request and frames/wakeup measurements (thread-safe).
  ReactorPool::Totals loop_totals() const { return pool_.totals(); }

  /// Thread-safe versioned lookup (tombstones included) — what loopback
  /// tests use to assert replica convergence while the server runs.
  std::optional<StorageEngine::Entry> storage_entry(KeyId key) const;

  const replication::Membership& membership() const noexcept {
    return membership_;
  }

  /// Direct storage access for quiescent introspection only (no lock).
  const StorageEngine& storage() const noexcept { return storage_; }
  const BackendConfig& config() const noexcept { return config_; }

 private:
  static constexpr std::uint32_t kNoNode = UINT32_MAX;

  /// Reply kinds owed on a peer connection, FIFO per connection.
  enum class Expect : std::uint8_t {
    kRepAck,    ///< kReplicate sent for a client write (op != 0)
    kVerValue,  ///< kVerRead sent for a quorum read (op != 0)
    kRepairAck, ///< fire-and-forget kReplicate (read-repair / handoff)
    kPong,      ///< failure-detector ping
  };

  struct ExpectedReply {
    std::uint64_t op = 0;  ///< ops entry, 0 = none
    Expect kind = Expect::kRepairAck;
    std::uint64_t key = 0;
  };

  /// An in-flight coordinated operation (write or quorum read).
  struct Op {
    ConnId client = kInvalidConn;
    MsgType kind = MsgType::kPut;  ///< kPut, kDelete or kQuorumGet
    std::uint64_t key = 0;
    std::uint64_t version = 0;  ///< writes: the minted version
    std::optional<replication::WriteQuorum> write;
    std::optional<replication::ReadQuorum> read;
    std::uint64_t start_ns = 0;
    std::chrono::steady_clock::time_point deadline;
  };

  struct PeerState {
    std::string address;
    std::uint16_t port = 0;
    ConnId conn = kInvalidConn;
    bool up = false;
    bool left = false;  ///< administratively removed; never redialed
    std::uint32_t connect_attempts = 0;
    std::deque<ExpectedReply> expected;  ///< FIFO on this connection
    /// Repair/handoff frames deferred until the connection establishes
    /// (a just-joined node is dialed asynchronously). Bounded.
    std::vector<Message> queued;
  };

  /// Per-reactor mutable state, touched only by that shard's loop thread.
  struct Shard {
    std::size_t index = 0;
    Reactor* loop = nullptr;
    std::vector<PeerState> peers;  ///< index = NodeId
    std::unordered_map<ConnId, std::uint32_t> peer_by_conn;
    std::unordered_map<std::uint64_t, Op> ops;
    std::uint64_t next_op = 1;
    std::vector<NodeId> group;  ///< replica-group scratch
    /// Connections that asked for kHotKeyReport pushes (front ends).
    std::vector<ConnId> hot_subs;
    std::atomic<std::uint32_t> peers_up{0};
  };

  void preload();
  std::uint32_t write_quorum_need() const noexcept;
  std::uint32_t read_quorum_need() const noexcept;
  bool in_group(const std::vector<NodeId>& group) const noexcept;

  void handle(Shard& shard, ConnId conn, Message&& message);
  void handle_peer_reply(Shard& shard, std::uint32_t node, Message&& message);
  void on_conn_close(Shard& shard, ConnId conn);
  void on_conn_connect(Shard& shard, ConnId conn, bool ok);
  void schedule_reconnect(Shard& shard, std::uint32_t node);

  void handle_get(Shard& shard, ConnId conn, const Message& message);
  /// Serves a whole kBatchGet in one pass — one partitioner lock, one
  /// storage lock, one sketch lock for every key — and answers with a
  /// single kBatchReply carrying a per-key verdict in request order.
  void handle_batch_get(Shard& shard, ConnId conn, const Message& message);
  void handle_write(Shard& shard, ConnId conn, const Message& message);
  void handle_quorum_get(Shard& shard, ConnId conn, const Message& message);
  void handle_replicate(Shard& shard, ConnId conn, const Message& message);
  void handle_ver_read(Shard& shard, ConnId conn, const Message& message);
  void handle_join(Shard& shard, ConnId conn, const Message& message);
  void handle_leave(Shard& shard, ConnId conn, const Message& message);

  /// Sends on the shard's mesh connection to `node`, registering the owed
  /// reply. With `queue_if_down` an unconnected (but not left) peer defers
  /// the frame until the connection establishes. False = peer unreachable.
  bool send_to_peer(Shard& shard, std::uint32_t node, const Message& message,
                    Expect expect, std::uint64_t op, bool queue_if_down);

  /// Counts a lost in-flight reply (closed connection, kError) against the
  /// op's quorum, resolving or failing it when that tips the balance.
  void apply_peer_loss(Shard& shard, const ExpectedReply& expected);

  void resolve_write(Shard& shard, std::uint64_t op_id, Op& op);
  void resolve_read(Shard& shard, std::uint64_t op_id, Op& op);
  void fail_op(Shard& shard, Op& op, const char* reason);
  void sweep_ops(Shard& shard);

  /// Streams handoff for a ring change this node is the elected streamer
  /// of. `old_group_of` must reflect the ring before the change.
  void stream_handoff(
      Shard& shard,
      const std::function<void(KeyId, std::span<NodeId>)>& old_group_of);

  void detector_tick();
  /// Hot-key gossip tick (shard 0's loop): drain the sketch into a report,
  /// absorb it locally, gossip it to alive peers and post it to every
  /// shard's subscribers. One-way frames — no reply bookkeeping anywhere.
  void hot_tick();
  void handle_hot_report(const Message& message);
  /// Merges a report (own or gossiped) into this node's aggregated view.
  void absorb_hot_report(const detect::HotKeyReport& report);
  static double now_s() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  BackendConfig config_;
  std::unique_ptr<ReplicaPartitioner> partitioner_;
  mutable std::shared_mutex partitioner_mutex_;  ///< ring join/leave
  StorageEngine storage_;
  mutable std::shared_mutex storage_mutex_;
  ReactorPool pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // One registry per shard so the hot path never shares a cache line across
  // reactors; scrapes merge them (merge_shard_snapshots).
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries_;
  std::vector<obs::Timer*> service_us_;  // empty = instrumentation off
  std::vector<obs::Timer*> write_us_;
  std::vector<obs::Timer*> quorum_read_us_;
  std::unique_ptr<obs::MetricsHttpServer> metrics_http_;

  /// Hot-key detection state. The sketch is guarded by its own mutex: every
  /// shard's serve path observes into it (~20 ns uncontended, in line with
  /// the shared storage locks already on that path) and shard 0's tick
  /// drains it. The aggregator is touched by any shard receiving gossip.
  std::unique_ptr<detect::HotKeyDetector> hot_detector_;
  mutable std::mutex hot_mutex_;
  detect::HotKeyAggregator hot_agg_;
  mutable std::mutex hot_agg_mutex_;

  replication::VersionClock clock_;
  replication::Membership membership_;
  /// Shard 0 loop thread only.
  replication::PingFailureDetector detector_;
  std::atomic<bool> peers_configured_{false};
  std::atomic<bool> detector_running_{false};
  std::atomic<bool> stopping_{false};
  /// Mesh connections each shard should establish (for wait_peers_up).
  std::atomic<std::uint32_t> peer_target_{0};

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> redirects_{0};
  std::atomic<std::uint64_t> puts_{0};
  std::atomic<std::uint64_t> deletes_{0};
  std::atomic<std::uint64_t> replications_{0};
  std::atomic<std::uint64_t> quorum_gets_{0};
  std::atomic<std::uint64_t> quorum_failures_{0};
  std::atomic<std::uint64_t> read_repairs_{0};
  std::atomic<std::uint64_t> rebalanced_keys_{0};
  std::atomic<std::uint64_t> hot_observed_{0};
  std::atomic<std::uint64_t> hot_reports_sent_{0};
  std::atomic<std::uint64_t> hot_reports_received_{0};
  std::atomic<std::uint64_t> hot_flagged_{0};
};

}  // namespace scp::net
