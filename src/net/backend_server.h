// scp_backend: one replica-group member serving GETs over TCP.
//
// Wraps a kvstore::StorageEngine preloaded with every key whose replica
// group (under the cluster-wide partitioner seed) contains this node. A GET
// for a key this node does not own is answered with REDIRECT to the key's
// first replica — with matching partitioner seeds across the tier that
// never happens, so a REDIRECT in the counters flags a misconfigured
// cluster. Per-node request counters are the measurement the live serving
// bench exists for: the max over backends of GETs served, normalized by the
// even split, is the live analogue of the paper's normalized max load.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/partitioner.h"
#include "kvstore/storage_engine.h"
#include "net/reactor_pool.h"
#include "obs/exposition.h"
#include "obs/metrics.h"

namespace scp::net {

struct BackendConfig {
  std::string address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned (see BackendServer::port)
  std::uint32_t node_id = 0;
  std::uint32_t nodes = 8;        ///< n
  std::uint32_t replication = 2;  ///< d
  std::string partitioner = "hash";
  std::uint64_t partition_seed = 1;
  /// Keys 0…items-1 are preloaded where owned; 0 = empty store.
  std::uint64_t items = 0;
  std::uint32_t value_bytes = 64;
  /// Hot-path instrumentation (service-time and loop-tick histograms).
  /// Off leaves only the ServerStats atomics — the overhead A/B baseline.
  bool metrics = true;
  /// Prometheus endpoint: -1 = none, 0 = kernel-assigned, else fixed port.
  std::int32_t metrics_port = -1;
  /// Reactor shards sharing the listening port (SO_REUSEPORT). The request
  /// path is stateless over the shared read-only storage, so sharding a
  /// backend changes only which thread serves a connection.
  std::uint32_t shards = 1;
  /// Test hook: force the single-acceptor round-robin accept path.
  bool force_fallback_accept = false;
  /// Event-loop backend for every shard (uring falls back to epoll where
  /// unavailable; reactor_kind() reports the effective choice).
  ReactorKind reactor = ReactorKind::kEpoll;
  /// UringLoop only: SQPOLL + spin-peek before blocking.
  bool busy_poll = false;
};

class BackendServer {
 public:
  explicit BackendServer(BackendConfig config);
  ~BackendServer();

  /// Binds, preloads the storage engine and starts serving. False on bind
  /// failure.
  bool start();
  /// Graceful stop: drains queued replies for up to `drain_s`.
  void stop(double drain_s = 1.0);

  std::uint16_t port() const noexcept { return pool_.port(); }
  bool running() const noexcept { return pool_.running(); }

  /// Counter snapshot, aggregated across shards (thread-safe).
  ServerStats stats() const;

  /// Full metrics snapshot: shard registries merged, plus the ServerStats
  /// counters under "backend.*" names. With shards > 1 each shard's series
  /// also appear as "backend.shardK.*" (thread-safe).
  obs::MetricsSnapshot metrics_snapshot() const;

  /// Bound Prometheus endpoint port, or 0 when config.metrics_port == -1.
  std::uint16_t metrics_http_port() const noexcept;

  /// Effective reactor backend (after any uring→epoll fallback).
  ReactorKind reactor_kind() const noexcept { return pool_.reactor_kind(); }

  /// Summed reactor counters across shards — syscalls and wakeups feed the
  /// syscalls/request and frames/wakeup measurements (thread-safe).
  ReactorPool::Totals loop_totals() const { return pool_.totals(); }

  const StorageEngine& storage() const noexcept { return storage_; }
  const BackendConfig& config() const noexcept { return config_; }

 private:
  void preload();
  void handle(std::size_t shard, Reactor& loop, ConnId conn,
              Message&& message);

  BackendConfig config_;
  std::unique_ptr<ReplicaPartitioner> partitioner_;
  StorageEngine storage_;
  ReactorPool pool_;
  // One registry per shard so the hot path never shares a cache line across
  // reactors; scrapes merge them (merge_shard_snapshots).
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries_;
  std::vector<obs::Timer*> service_us_;  // empty = instrumentation off
  std::unique_ptr<obs::MetricsHttpServer> metrics_http_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> redirects_{0};
};

}  // namespace scp::net
