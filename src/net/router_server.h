// scp_router: the edge of a distributed front-end fleet.
//
// Clients speak the ordinary wire protocol to the router; the router owns
// one connection per fleet member and dispatches every GET to one of the
// key's two candidate front ends (src/net/fleet.h) by power-of-two-choices
// on a live load signal: each member's own request counter scraped through
// the existing src/obs metrics path (kMetricsRequest over the same
// connection, on a periodic timer) plus the router's locally tracked
// in-flight delta since that scrape. Replies are relayed back verbatim;
// when a non-owning member answers kRedirect with the owner's fleet index
// (a cached key landed on the wrong member), the router follows the hop
// transparently — the client never sees a REDIRECT.
//
// Request/reply matching is by key per fleet-member connection — NOT FIFO,
// because a member answers cache hits and redirects immediately but
// forwards only when its backend responds, so replies legitimately overtake
// one another. Scrape replies (kMetricsReply/kStatsReply/kPong) are
// filtered out before matching; an unmatched key is a protocol error that
// resets the connection. A member connection dying re-dispatches its queued
// requests to the surviving candidate (or fails them after the hop budget).
//
// The router is deliberately stateless beyond the fleet seed and endpoint
// list — any number of router replicas can front the same fleet, so the
// edge itself is not a new single point of failure.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/fleet.h"
#include "net/reactor.h"
#include "obs/exposition.h"
#include "obs/metrics.h"

namespace scp::net {

struct RouterConfig {
  std::string address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned
  /// Fleet member endpoints, indexed by fleet index — the order must match
  /// each member's --fleet-index or redirects bounce forever.
  std::vector<std::pair<std::string, std::uint16_t>> frontends;
  /// Must match every member's fleet seed (the key -> owner mapping).
  std::uint64_t fleet_seed = 0;
  std::uint64_t seed = 1;  ///< power-of-two tie-breaks
  /// Cadence of the per-member obs scrape feeding the load signal.
  double scrape_interval_s = 0.050;
  /// Dispatch budget per request: the initial send plus redirect follows
  /// and dead-member re-dispatches.
  std::uint32_t max_hops = 3;
  /// Per-request deadline before the member connection is reset.
  double timeout_s = 0.500;
  /// Max keys per kBatchGet dispatch frame. GET dispatches for one member
  /// accumulate during a reactor wakeup and flush as one batch frame
  /// (sooner when the queue reaches this cap); the member answers each key
  /// with its own reply frame, which the by-key matching absorbs
  /// unchanged. <= 1 disables batching (one kGet frame per dispatch,
  /// byte-identical to the unbatched wire traffic). Clamped to
  /// kMaxBatchEntries.
  std::uint32_t batch_max = 64;
  bool metrics = true;
  /// Prometheus endpoint: -1 = none, 0 = kernel-assigned, else fixed port.
  std::int32_t metrics_port = -1;
  ReactorKind reactor = ReactorKind::kEpoll;
  bool busy_poll = false;
};

class RouterServer {
 public:
  explicit RouterServer(RouterConfig config);
  ~RouterServer();

  /// Binds, queues fleet-member connections and starts the loop. False on a
  /// bind failure or an empty fleet.
  bool start();
  /// Graceful stop: waits for in-flight dispatches (up to drain_s), then
  /// drains queued replies.
  void stop(double drain_s = 1.0);

  std::uint16_t port() const noexcept;
  bool running() const noexcept;

  /// Blocks until every fleet-member connection is up (true) or the timeout
  /// expires (false). Call after start().
  bool wait_frontends_up(double timeout_s) const;

  /// Counter snapshot (thread-safe). Field mapping for the router role:
  /// requests = client GETs, forwarded = kValue/kMiss replies relayed,
  /// redirects = redirect hops followed, retries = dispatches beyond a
  /// request's first, attempts = total member sends, failures = kError
  /// replies to clients (relayed or router-generated). Once every reply has
  /// landed, requests == forwarded + failures.
  ServerStats stats() const;

  /// Registry snapshot plus the counters under "router.*" (thread-safe).
  obs::MetricsSnapshot metrics_snapshot() const;

  /// Bound Prometheus endpoint port, or 0 when config.metrics_port == -1.
  std::uint16_t metrics_http_port() const noexcept;

  /// Effective reactor backend (after any uring→epoll fallback).
  ReactorKind reactor_kind() const noexcept;

 private:
  struct PendingRequest {
    ConnId client = kInvalidConn;
    std::uint64_t key = 0;
    /// Dispatched op: kGet, kQuorumGet, kPut or kDelete (writes redirect to
    /// the fleet owner exactly like cached reads, so both need replaying).
    MsgType op = MsgType::kGet;
    std::string payload;  ///< kPut only: the value (kept for re-dispatch)
    std::chrono::steady_clock::time_point deadline;
    std::uint32_t hops = 0;      ///< dispatches so far (this one included)
    std::uint64_t start_ns = 0;  ///< client kGet arrival
  };

  /// A GET dispatch awaiting the wakeup's batch flush (batch_max > 1). The
  /// member's load delta (router_.on_dispatch) is counted at queue time so
  /// power-of-two-choices sees same-wakeup dispatches; the wire send, the
  /// pending entry and the attempt counters happen at flush.
  struct QueuedDispatch {
    ConnId client = kInvalidConn;
    std::uint64_t key = 0;
    std::uint32_t hops = 0;
    std::uint64_t start_ns = 0;
  };

  struct MemberState {
    std::string address;
    std::uint16_t port = 0;
    ConnId conn = kInvalidConn;
    bool up = false;
    std::uint32_t connect_attempts = 0;
    std::deque<PendingRequest> pending;   ///< in flight, oldest first
    std::vector<QueuedDispatch> queued;   ///< awaiting batch flush
  };

  void handle(ConnId conn, Message&& message);
  void handle_client(ConnId conn, Message&& message);
  void handle_member(std::uint32_t member, Message&& message);
  void on_conn_close(ConnId conn);
  void on_conn_connect(ConnId conn, bool ok);

  /// Sends `key` to `member`, recording the pending entry. False when the
  /// connection is down or the send fails (nothing recorded).
  bool dispatch_to(std::uint32_t member, ConnId client, std::uint64_t key,
                   std::uint32_t hops, std::uint64_t start_ns,
                   MsgType op = MsgType::kGet, const std::string& payload = {});
  /// Routes by power-of-two-choices and dispatches; fails the request when
  /// no candidate is live or the hop budget is spent.
  void dispatch(ConnId client, std::uint64_t key, std::uint32_t hops,
                std::uint64_t start_ns, MsgType op = MsgType::kGet,
                const std::string& payload = {});
  void fail_request(ConnId client, std::uint64_t key);
  /// Reactor before-flush hook: sends every member's queued GET dispatches
  /// (one kBatchGet each, plain kGet for a queue of one) so the batch frames
  /// ride the wakeup's gathered write.
  void flush_member_queues();
  void flush_member_queue(std::uint32_t member);
  void schedule_reconnect(std::uint32_t member);
  void scrape_members();
  void sweep_timeouts();

  RouterConfig config_;
  std::unique_ptr<Reactor> loop_;
  FleetRouter router_;
  Rng rng_;

  std::vector<MemberState> members_;
  std::unordered_map<ConnId, std::uint32_t> member_by_conn_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> redirects_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> attempts_{0};
  /// kBatchGet frames dispatched and the keys they carried.
  std::atomic<std::uint64_t> batch_frames_{0};
  std::atomic<std::uint64_t> batch_keys_{0};
  std::atomic<std::uint64_t> scrapes_{0};  ///< load-signal scrape rounds
  std::atomic<std::uint32_t> frontends_up_{0};
  std::atomic<std::uint64_t> pending_total_{0};
  std::atomic<bool> stopping_{false};

  obs::MetricsRegistry registry_;
  obs::Timer* request_us_ = nullptr;
  obs::Timer* member_rtt_us_ = nullptr;
  std::vector<obs::Counter*> member_dispatches_;  ///< per fleet index

  std::unique_ptr<obs::MetricsHttpServer> metrics_http_;
};

}  // namespace scp::net
