// scp_stats — scrape a live SCP server's counters and metrics over the wire
// protocol (kStats + kMetricsRequest) and pretty-print or JSON-dump them.
//
//   scp_stats --port 9000                  # one human-readable snapshot
//   scp_stats --port 9000 --json           # one JSON document on stdout
//   scp_stats --port 9000 --interval 1 --count 5   # poll five times
#include <cstdio>
#include <thread>

#include "common/flags.h"
#include "obs/exposition.h"
#include "net/reactor.h"
#include "net/sync_client.h"

namespace {

using namespace scp;
using namespace scp::net;

void print_stats_text(const ServerStats& stats,
                      const obs::MetricsSnapshot& metrics) {
  std::printf(
      "stats: requests=%llu hits=%llu misses=%llu redirects=%llu "
      "forwarded=%llu retries=%llu failures=%llu attempts=%llu\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.redirects),
      static_cast<unsigned long long>(stats.forwarded),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.failures),
      static_cast<unsigned long long>(stats.attempts));
  for (const auto& [name, value] : metrics.counters) {
    std::printf("counter %-32s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : metrics.gauges) {
    std::printf("gauge   %-32s %lld\n", name.c_str(),
                static_cast<long long>(value));
  }
  for (const auto& [name, hist] : metrics.timers) {
    std::printf("timer   %-32s %s\n", name.c_str(), hist.summary().c_str());
  }
}

void print_stats_json(const ServerStats& stats,
                      const obs::MetricsSnapshot& metrics) {
  JsonWriter w;
  w.begin_object();
  w.key("stats").begin_object();
  w.field("requests", stats.requests);
  w.field("hits", stats.hits);
  w.field("misses", stats.misses);
  w.field("redirects", stats.redirects);
  w.field("forwarded", stats.forwarded);
  w.field("retries", stats.retries);
  w.field("failures", stats.failures);
  w.field("attempts", stats.attempts);
  w.end();
  w.key("metrics");
  obs::write_json(w, metrics);
  w.end();
  std::printf("%s\n", w.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint64_t port = 0;
  bool json = false;
  bool prometheus = false;
  double interval_s = 0.0;
  std::uint64_t count = 1;
  double timeout_s = 1.0;
  bool probe_uring = false;

  FlagSet flags("scp_stats: poll a live SCP server and print its metrics");
  flags.add_string("host", &host, "server address");
  flags.add_uint64("port", &port, "server wire-protocol port (required)");
  flags.add_bool("json", &json, "emit JSON instead of text");
  flags.add_bool("prometheus", &prometheus,
                 "emit Prometheus text exposition instead of text");
  flags.add_double("interval", &interval_s,
                   "seconds between polls (0 = single shot)");
  flags.add_uint64("count", &count, "number of polls (0 = until killed)");
  flags.add_double("timeout", &timeout_s, "per-request timeout (seconds)");
  flags.add_bool("probe-uring", &probe_uring,
                 "probe io_uring support and exit: 0 = usable, 3 = not "
                 "(CI gates uring smoke runs on this)");
  if (!flags.parse(argc, argv)) return 2;
  if (probe_uring) {
    std::string reason;
    if (scp::net::uring_available(&reason)) {
      std::printf("io_uring: available\n");
      return 0;
    }
    std::printf("io_uring: unavailable (%s)\n", reason.c_str());
    return 3;
  }
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "scp_stats: --port is required\n");
    return 2;
  }

  SyncClient client;
  if (!client.connect(host, static_cast<std::uint16_t>(port), timeout_s)) {
    std::fprintf(stderr, "scp_stats: cannot connect to %s:%llu\n",
                 host.c_str(), static_cast<unsigned long long>(port));
    return 1;
  }

  for (std::uint64_t i = 0; count == 0 || i < count; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          interval_s > 0 ? interval_s : 1.0));
    }
    Message stats_req;
    stats_req.type = MsgType::kStats;
    auto stats_reply = client.call(stats_req, timeout_s);
    if (!stats_reply || stats_reply->type != MsgType::kStatsReply) {
      std::fprintf(stderr, "scp_stats: kStats request failed\n");
      return 1;
    }
    Message metrics_req;
    metrics_req.type = MsgType::kMetricsRequest;
    auto metrics_reply = client.call(metrics_req, timeout_s);
    if (!metrics_reply || metrics_reply->type != MsgType::kMetricsReply) {
      std::fprintf(stderr, "scp_stats: kMetricsRequest failed\n");
      return 1;
    }
    if (json) {
      print_stats_json(stats_reply->stats, metrics_reply->metrics);
    } else if (prometheus) {
      std::fputs(obs::to_prometheus_text(metrics_reply->metrics).c_str(),
                 stdout);
    } else {
      print_stats_text(stats_reply->stats, metrics_reply->metrics);
    }
    std::fflush(stdout);
  }
  return 0;
}
